//! A networked Silo serving TPC-C over the live ZygOS runtime — the
//! paper's §6.3 setup in miniature: each RPC carries a transaction type;
//! the handler executes it against the shared OCC database.
//!
//! ```text
//! cargo run --release --example silo_tpcc
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use zygos::core::spinlock::SpinLock;
use zygos::lab::{Case, LiveHost, Scenario};
use zygos::load::SharedRecorder;
use zygos::net::flow::ConnId;
use zygos::net::packet::RpcMessage;
use zygos::runtime::{RpcApp, Server};
use zygos::silo::tpcc::{Tpcc, TpccConfig, TpccRng, TxnType};
use zygos::sim::dist::ServiceDist;

/// The networked Silo application: opcode selects the transaction type.
struct SiloApp {
    tpcc: Tpcc,
    /// Input generation is serialized; transaction execution is fully
    /// concurrent (OCC).
    rng: SpinLock<TpccRng>,
}

impl RpcApp for SiloApp {
    fn handle(&self, _conn: ConnId, req: &RpcMessage) -> RpcMessage {
        let kind = match req.header.opcode {
            0 => TxnType::NewOrder,
            1 => TxnType::Payment,
            2 => TxnType::OrderStatus,
            3 => TxnType::Delivery,
            _ => TxnType::StockLevel,
        };
        let mut rng = {
            // Clone a forked generator so the lock is not held during
            // transaction execution.
            let mut shared = self.rng.lock();

            TpccRng::new(shared.uniform(0, u64::MAX - 1))
        };
        let out = self.tpcc.run(kind, &mut rng);
        let body = bytes::Bytes::copy_from_slice(&[
            out.committed as u8,
            out.user_aborted as u8,
            out.retries.min(255) as u8,
        ]);
        RpcMessage::new(req.header.opcode, req.header.req_id, body)
    }
}

fn main() {
    println!("loading TPC-C (1 warehouse, reduced scale for the example)...");
    let tpcc = Tpcc::load(TpccConfig {
        warehouses: 1,
        districts: 10,
        customers_per_district: 300,
        items: 5_000,
        initial_orders: 300,
        seed: 7,
    });
    let app = Arc::new(SiloApp {
        tpcc,
        rng: SpinLock::new(TpccRng::new(99)),
    });

    let cores = 4;
    let sc = Scenario::builder("silo-tpcc")
        .service(ServiceDist::deterministic_us(33.0)) // measured TPC-C mean
        .cores(cores)
        .conns(32)
        .loads(vec![0.5])
        .case(Case::live("ZygOS", LiveHost::Zygos))
        .build()
        .expect("valid scenario");
    let cfg = zygos::lab::runtime_config_for(&sc, &sc.cases[0]).expect("live case");
    let (server, client) = Server::start(cfg, app);
    println!("serving TPC-C on {cores} ZygOS cores");

    let mut mix_rng = TpccRng::new(5);
    let recorder = SharedRecorder::new();
    let requests = 3_000u64;
    let mut committed = 0u64;
    let mut sent = Vec::with_capacity(requests as usize);
    let window = 16;
    let mut outstanding = 0;
    let mut next_id = 0u64;
    let mut received = 0u64;
    while received < requests {
        while outstanding < window && next_id < requests {
            let opcode = match TxnType::sample(&mut mix_rng) {
                TxnType::NewOrder => 0,
                TxnType::Payment => 1,
                TxnType::OrderStatus => 2,
                TxnType::Delivery => 3,
                TxnType::StockLevel => 4,
            };
            sent.push(Instant::now());
            client.send(
                ConnId((next_id % 32) as u32),
                &RpcMessage::new(opcode, next_id, bytes::Bytes::new()),
            );
            next_id += 1;
            outstanding += 1;
        }
        if let Some((_, resp)) = client.recv_timeout(Duration::from_secs(30)) {
            recorder.record_std(sent[resp.header.req_id as usize].elapsed());
            if resp.body.first() == Some(&1) {
                committed += 1;
            }
            received += 1;
            outstanding -= 1;
        } else {
            eprintln!("timed out waiting for responses");
            break;
        }
    }

    let hist = recorder.snapshot();
    let stats = server.stats();
    println!("completed {received} transactions ({committed} committed)");
    println!("end-to-end latency: {}", hist.summary());
    println!(
        "scheduler: steal rate {:.1}%, {} IPIs",
        100.0 * stats.steal_fraction(),
        stats.ipis_sent
    );
    server.shutdown();
}
