//! The paper's synthetic microbenchmark in miniature (Figure 6 shape):
//! sweep offered load for 10µs exponential tasks on the 16-core system
//! simulator and print p99 latency vs throughput for all four systems —
//! written as one declarative `zygos_lab` scenario.
//!
//! ```text
//! cargo run --release --example synthetic_latency
//! ```

use zygos::lab::{Case, Scenario, SimHost};
use zygos::sim::dist::ServiceDist;

fn main() {
    let loads: Vec<f64> = (1..=18).map(|i| i as f64 * 0.05).collect();
    let mut builder = Scenario::builder("synthetic-latency")
        .service(ServiceDist::exponential_us(10.0))
        .loads(loads)
        .requests(30_000, 6_000);
    for (label, host) in [
        ("Linux (floating connections)", SimHost::LinuxFloating),
        ("IX", SimHost::Ix),
        ("ZygOS (no interrupts)", SimHost::ZygosNoInterrupts),
        ("ZygOS", SimHost::Zygos),
    ] {
        builder = builder.case(Case::sim(label, host));
    }
    let sc = builder.build().expect("valid scenario");
    let report = zygos::lab::run_scenario(&sc, false).expect("runs");

    println!("synthetic RPC benchmark: 16 cores, exponential S = 10us, SLO = 100us (10x S)");
    println!(
        "{:<28} {:>10} {:>12} {:>10}",
        "system", "MRPS", "p99 (us)", "steals %"
    );
    for series in &report.series {
        // Report the highest load whose p99 meets the 100µs SLO.
        let best = series
            .points
            .iter()
            .filter(|p| p.p99_us <= 100.0)
            .max_by(|a, b| a.mrps.total_cmp(&b.mrps));
        match best {
            Some(p) => println!(
                "{:<28} {:>10.2} {:>12.1} {:>10.1}",
                series.label,
                p.mrps,
                p.p99_us,
                100.0 * p.steal_fraction
            ),
            None => println!("{:<28} never meets the SLO", series.label),
        }
    }
    println!();
    println!("full sweep for ZygOS (throughput MRPS -> p99 us):");
    let zygos = report.series("ZygOS").expect("case present");
    for p in &zygos.points {
        println!(
            "  {:>6.3} MRPS -> {:>8.1} us (steals {:>4.1}%)",
            p.mrps,
            p.p99_us,
            100.0 * p.steal_fraction
        );
    }
}
