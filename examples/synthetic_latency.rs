//! The paper's synthetic microbenchmark in miniature (Figure 6 shape):
//! sweep offered load for 10µs exponential tasks on the 16-core system
//! simulator and print p99 latency vs throughput for all four systems.
//!
//! ```text
//! cargo run --release --example synthetic_latency
//! ```

use zygos::sim::dist::ServiceDist;
use zygos::sysim::{latency_throughput_sweep, SysConfig, SystemKind};

fn main() {
    let systems = [
        SystemKind::LinuxFloating,
        SystemKind::Ix,
        SystemKind::ZygosNoInterrupts,
        SystemKind::Zygos,
    ];
    let loads: Vec<f64> = (1..=18).map(|i| i as f64 * 0.05).collect();
    println!("synthetic RPC benchmark: 16 cores, exponential S = 10us, SLO = 100us (10x S)");
    println!(
        "{:<28} {:>10} {:>12} {:>10}",
        "system", "MRPS", "p99 (us)", "steals %"
    );
    for system in systems {
        let mut cfg = SysConfig::paper(system, ServiceDist::exponential_us(10.0), 0.5);
        cfg.requests = 30_000;
        cfg.warmup = 6_000;
        let points = latency_throughput_sweep(&cfg, &loads);
        // Report the highest load whose p99 meets the 100µs SLO.
        let best = points
            .iter()
            .filter(|p| p.p99_us <= 100.0)
            .max_by(|a, b| a.mrps.total_cmp(&b.mrps));
        match best {
            Some(p) => println!(
                "{:<28} {:>10.2} {:>12.1} {:>10.1}",
                system.label(),
                p.mrps,
                p.p99_us,
                100.0 * p.steal_fraction
            ),
            None => println!("{:<28} never meets the SLO", system.label()),
        }
    }
    println!();
    println!("full sweep for ZygOS (throughput MRPS -> p99 us):");
    let mut cfg = SysConfig::paper(SystemKind::Zygos, ServiceDist::exponential_us(10.0), 0.5);
    cfg.requests = 30_000;
    cfg.warmup = 6_000;
    for p in latency_throughput_sweep(&cfg, &loads) {
        println!(
            "  {:>6.3} MRPS -> {:>8.1} us (steals {:>4.1}%)",
            p.mrps,
            p.p99_us,
            100.0 * p.steal_fraction
        );
    }
}
