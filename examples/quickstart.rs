//! Quickstart: run a ZygOS server on a few worker cores, fire a burst of
//! echo RPCs at it over the loopback port, and print latency + scheduler
//! statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use zygos::core::stats::StatsSnapshot;
use zygos::lab::{Case, LiveHost, Scenario};
use zygos::load::SharedRecorder;
use zygos::net::flow::ConnId;
use zygos::net::packet::RpcMessage;
use zygos::runtime::{app::EchoApp, Server};
use zygos::sim::dist::ServiceDist;

fn main() {
    let cores = 4;
    let conns = 64;
    let requests: u64 = 20_000;

    // The host configuration comes from the scenario plane — the same
    // lowering `lab run` and the fig binaries use — while this example
    // drives its own closed-loop echo traffic.
    let sc = Scenario::builder("quickstart")
        .service(ServiceDist::deterministic_us(1.0))
        .cores(cores)
        .conns(conns)
        .loads(vec![0.5])
        .case(Case::live("ZygOS", LiveHost::Zygos))
        .build()
        .expect("valid scenario");
    let cfg = zygos::lab::runtime_config_for(&sc, &sc.cases[0]).expect("live case");

    println!("starting ZygOS runtime: {cores} cores, {conns} connections");
    let (server, client) = Server::start(cfg, Arc::new(EchoApp));

    let recorder = SharedRecorder::new();
    let started = Instant::now();
    let mut sent_at = vec![Instant::now(); requests as usize];
    for id in 0..requests {
        sent_at[id as usize] = Instant::now();
        let conn = ConnId((id % conns as u64) as u32);
        client.send(
            conn,
            &RpcMessage::new(1, id, bytes::Bytes::from_static(b"ping")),
        );
        // A small pipelining window keeps the server busy without flooding.
        if id % 64 == 63 {
            for _ in 0..64 {
                if let Some((_, resp)) = client.recv_timeout(Duration::from_secs(10)) {
                    recorder.record_std(sent_at[resp.header.req_id as usize].elapsed());
                }
            }
        }
    }
    while recorder.count() < requests {
        match client.recv_timeout(Duration::from_secs(10)) {
            Some((_, resp)) => recorder.record_std(sent_at[resp.header.req_id as usize].elapsed()),
            None => break,
        }
    }
    let elapsed = started.elapsed();

    let hist = recorder.snapshot();
    let stats: StatsSnapshot = server.stats();
    println!("completed {} echo RPCs in {elapsed:?}", hist.count());
    println!("latency: {}", hist.summary());
    println!(
        "scheduler: {} local events, {} stolen ({:.1}% steal rate), {} IPIs sent",
        stats.local_events,
        stats.stolen_events,
        100.0 * stats.steal_fraction(),
        stats.ipis_sent,
    );
    server.shutdown();
    println!("done.");
}
