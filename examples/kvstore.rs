//! A memcached-style KV server on the ZygOS runtime, driven by the USR
//! workload model (paper §6.2 in miniature).
//!
//! ```text
//! cargo run --release --example kvstore
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use zygos::kv::proto::{encode_get, encode_set, KvServer};
use zygos::kv::workload::{KvWorkload, WorkloadKind};
use zygos::lab::{Case, LiveHost, Scenario};
use zygos::load::SharedRecorder;
use zygos::net::flow::ConnId;
use zygos::net::packet::RpcMessage;
use zygos::runtime::{RpcApp, Server};
use zygos::sim::dist::ServiceDist;
use zygos::sim::rng::Xoshiro256;

struct KvApp(KvServer);

impl RpcApp for KvApp {
    fn handle(&self, _conn: ConnId, req: &RpcMessage) -> RpcMessage {
        self.0.handle(req)
    }
}

fn key_bytes(index: u64) -> Vec<u8> {
    // Fixed-width keys in the USR style.
    format!("usr:{index:016}").into_bytes()
}

fn main() {
    let app = Arc::new(KvApp(KvServer::new(256)));
    // Host configuration via the scenario plane (the example drives its
    // own USR traffic below).
    let sc = Scenario::builder("kvstore")
        .service(ServiceDist::deterministic_us(2.0))
        .cores(4)
        .conns(64)
        .loads(vec![0.5])
        .case(Case::live("ZygOS", LiveHost::Zygos))
        .build()
        .expect("valid scenario");
    let cfg = zygos::lab::runtime_config_for(&sc, &sc.cases[0]).expect("live case");
    let (server, client) = Server::start(cfg, Arc::clone(&app) as _);

    let workload = KvWorkload::new(WorkloadKind::Usr);
    let mut rng = Xoshiro256::new(42);

    // Preload a slice of the keyspace.
    println!("preloading 50k keys...");
    let preload = 50_000u64;
    for i in 0..preload {
        let op = workload.sample(&mut rng);
        let key = key_bytes(op.key_index % preload);
        client.send(
            ConnId((i % 64) as u32),
            &encode_set(u64::MAX - i, &key, &vec![0xAB; op.value_len]),
        );
        if i % 512 == 511 {
            for _ in 0..512 {
                client.recv_timeout(Duration::from_secs(10));
            }
        }
    }
    while client.pending_responses() > 0 {
        client.recv_timeout(Duration::from_millis(100));
    }

    println!("running USR mix...");
    let recorder = SharedRecorder::new();
    let requests = 30_000u64;
    let mut sent = Vec::with_capacity(requests as usize);
    let mut hits = 0u64;
    for id in 0..requests {
        let op = workload.sample(&mut rng);
        let key = key_bytes(op.key_index % preload);
        let msg = if op.is_get {
            encode_get(id, &key)
        } else {
            encode_set(id, &key, &vec![0xCD; op.value_len])
        };
        sent.push(Instant::now());
        client.send(ConnId((id % 64) as u32), &msg);
        if id % 64 == 63 {
            for _ in 0..64 {
                if let Some((_, resp)) = client.recv_timeout(Duration::from_secs(10)) {
                    if resp.header.req_id < requests {
                        recorder.record_std(sent[resp.header.req_id as usize].elapsed());
                        if resp.header.opcode == 1 && resp.body.first() == Some(&1) {
                            hits += 1;
                        }
                    }
                }
            }
        }
    }
    while recorder.count() < requests {
        match client.recv_timeout(Duration::from_secs(5)) {
            Some((_, resp)) if resp.header.req_id < requests => {
                recorder.record_std(sent[resp.header.req_id as usize].elapsed());
                if resp.header.opcode == 1 && resp.body.first() == Some(&1) {
                    hits += 1;
                }
            }
            Some(_) => {}
            None => break,
        }
    }

    let hist = recorder.snapshot();
    let (store_hits, store_misses) = app.0.store().stats();
    println!("latency: {}", hist.summary());
    println!("GET hits observed by client: {hits}; store counters: {store_hits} hits / {store_misses} misses");
    let stats = server.stats();
    println!(
        "scheduler: steal rate {:.1}%, {} IPIs",
        100.0 * stats.steal_fraction(),
        stats.ipis_sent
    );
    server.shutdown();
}
