//! Elastic core allocation over the bundled diurnal trace.
//!
//! Drives the elastic system (with the preemptive quantum) from the
//! **recorded diurnal request trace** bundled with `zygos_lab` — a
//! timestamped arrival log whose rate sweeps trough → peak → trough —
//! replayed through the `ArrivalSource` trait, and prints the p99 and
//! granted cores at two mean utilizations, plus the core-seconds saved
//! against a static 16-core allocation. (Earlier revisions approximated
//! the day with a hand-written phase list; the trace replaced it.)
//!
//! ```text
//! cargo run --release --example elastic_cores
//! ```

use zygos::lab::{traces, Case, Scenario, SimHost};
use zygos::load::source::ArrivalSpec;
use zygos::sim::dist::ServiceDist;

fn main() {
    let trace = traces::diurnal();
    println!(
        "diurnal trace over exponential(10us), 16-core server ({} arrivals, trough 0.25x .. peak 1.75x)",
        trace.len() + 1
    );
    let sc = Scenario::builder("elastic-cores")
        .service(ServiceDist::exponential_us(10.0))
        .arrivals(ArrivalSpec::Trace(trace))
        .loads(vec![0.15, 0.3, 0.5, 0.65])
        .requests(30_000, 5_000)
        .case(Case::sim("ZygOS (static)", SimHost::Zygos))
        .case(
            Case::sim("ZygOS (elastic)", SimHost::Elastic)
                .min_cores(2)
                .quantum_us(25.0),
        )
        .build()
        .expect("valid scenario");
    let report = zygos::lab::run_scenario(&sc, false).expect("runs");
    let stat = report.series("ZygOS (static)").expect("present");
    let elastic = report.series("ZygOS (elastic)").expect("present");

    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>10}",
        "mean load", "static p99", "elastic p99", "cores", "saved"
    );
    let mut static_core_secs = 0.0;
    let mut elastic_core_secs = 0.0;
    for (s, e) in stat.points.iter().zip(&elastic.points) {
        static_core_secs += s.core_seconds;
        elastic_core_secs += e.core_seconds;
        println!(
            "{:<10.2} {:>10.1}us {:>10.1}us {:>10.2} {:>9.0}%",
            s.load,
            s.p99_us,
            e.p99_us,
            e.avg_cores,
            100.0 * (1.0 - e.avg_cores / 16.0),
        );
    }
    println!(
        "\ntotal core-seconds: static {static_core_secs:.3}, elastic {elastic_core_secs:.3} \
         ({:.0}% saved over the trace)",
        100.0 * (1.0 - elastic_core_secs / static_core_secs)
    );
}
