//! Elastic core allocation over a diurnal load schedule.
//!
//! Drives `SystemKind::Elastic` (with the preemptive quantum) through a
//! day-shaped sequence of load phases — trough, ramp, peak, ramp-down —
//! and prints, per phase, the p99 and the cores actually granted, plus the
//! core-seconds saved against a static 16-core allocation.
//!
//! ```text
//! cargo run --release --example elastic_cores
//! ```

use zygos::sim::dist::ServiceDist;
use zygos::sysim::{run_system, SysConfig, SystemKind};

fn main() {
    // A scaled day: each phase is one simulation at that phase's load.
    let phases: &[(&str, f64)] = &[
        ("night trough", 0.10),
        ("morning ramp", 0.30),
        ("midday", 0.50),
        ("evening peak", 0.65),
        ("wind-down", 0.30),
        ("late night", 0.15),
    ];
    let service = ServiceDist::exponential_us(10.0);

    println!("diurnal schedule over exponential(10us), 16-core server");
    println!(
        "{:<14} {:>6} {:>12} {:>12} {:>10} {:>10}",
        "phase", "load", "static p99", "elastic p99", "cores", "saved"
    );
    let mut static_core_secs = 0.0;
    let mut elastic_core_secs = 0.0;
    for &(name, load) in phases {
        let mut stat = SysConfig::paper(SystemKind::Zygos, service.clone(), load);
        stat.requests = 30_000;
        stat.warmup = 5_000;
        let s = run_system(&stat);

        let mut cfg = SysConfig::paper(SystemKind::Elastic { min_cores: 2 }, service.clone(), load);
        cfg.requests = 30_000;
        cfg.warmup = 5_000;
        cfg.preemption_quantum_us = 25.0;
        let e = run_system(&cfg);

        static_core_secs += s.core_seconds_used();
        elastic_core_secs += e.core_seconds_used();
        println!(
            "{:<14} {:>6.2} {:>10.1}us {:>10.1}us {:>10.2} {:>9.0}%",
            name,
            load,
            s.p99_us(),
            e.p99_us(),
            e.avg_active_cores,
            100.0 * (1.0 - e.avg_active_cores / 16.0),
        );
    }
    println!(
        "\ntotal core-seconds: static {static_core_secs:.3}, elastic {elastic_core_secs:.3} \
         ({:.0}% saved over the day)",
        100.0 * (1.0 - elastic_core_secs / static_core_secs)
    );
}
