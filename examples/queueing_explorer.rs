//! Interactive exploration of the paper's §2.3 queueing models: pass a
//! distribution and a load, get the tail latencies of all four models —
//! the intuition behind Observations 1 and 2.
//!
//! ```text
//! cargo run --release --example queueing_explorer -- exponential 0.8
//! cargo run --release --example queueing_explorer -- bimodal-2 0.6
//! ```

use zygos::lab::{Case, Scenario};
use zygos::sim::dist::ServiceDist;
use zygos::sim::queueing::Policy;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dist_name = args.get(1).map(String::as_str).unwrap_or("exponential");
    let load = args
        .get(2)
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.8)
        .clamp(0.01, 0.99);

    let service = match dist_name {
        "deterministic" => ServiceDist::deterministic_us(1.0),
        "exponential" => ServiceDist::exponential_us(1.0),
        "bimodal-1" => ServiceDist::bimodal1_us(1.0),
        "bimodal-2" => ServiceDist::bimodal2_us(1.0),
        other => {
            eprintln!("unknown distribution '{other}' (use deterministic|exponential|bimodal-1|bimodal-2)");
            std::process::exit(1);
        }
    };

    println!("n = 16 servers, S = 1, {dist_name} service times, load = {load:.2}");
    println!(
        "{:<18} {:>10} {:>10} {:>10}",
        "model", "p50", "p99", "p99.9"
    );
    // One scenario, four queueing-model cases — the same machinery that
    // regenerates Figure 2.
    let mut builder = Scenario::builder("queueing-explorer")
        .service(service)
        .cores(16)
        .conns(16)
        .loads(vec![load])
        .requests(200_000, 20_000)
        .seed(1);
    for policy in Policy::ALL {
        builder = builder.case(Case::model(policy.label(16), policy));
    }
    let sc = builder.build().expect("valid scenario");
    let report = zygos::lab::run_scenario(&sc, false).expect("runs");
    for series in &report.series {
        let p = &series.points[0];
        println!(
            "{:<18} {:>10.2} {:>10.2} {:>10.2}",
            series.label, p.p50_us, p.p99_us, p.p999_us,
        );
    }
    println!();
    println!("Observation 1: single-queue (M/G/16/*) beats partitioned (16xM/G/1/*).");
    println!("Observation 2: FCFS beats PS except under very high dispersion (try bimodal-2).");
}
