//! The declarative experiment model: what a scenario *is*.
//!
//! A [`Scenario`] is the single description of one experiment matrix:
//!
//! * a [`WorkloadSpec`] — service-time distribution, arrival process
//!   ([`zygos_load::source::ArrivalSpec`]: Poisson, phases or trace
//!   replay), connection count and the offered-load grid;
//! * one or more [`Case`]s — each a host ([`HostSpec`]: the
//!   discrete-event simulator, the live multithreaded runtime, or a
//!   zero-overhead queueing model) plus a [`PolicySpec`] (allocation,
//!   admission, SLO classes, dispatch knobs);
//! * a [`ScaleSpec`] — full-size and smoke-size measurement windows;
//! * optional [`Claims`] — the acceptance assertions `lab --check`
//!   enforces, and a baseline tolerance for regression diffing.
//!
//! Construction goes through [`Scenario::builder`], and **every** way of
//! building a scenario funnels through [`ScenarioBuilder::build`], which
//! validates the spec as a whole: contradictory combinations (client-side
//! admission with no admission gate, a preemption quantum on a host that
//! cannot preempt, elastic knobs on a static host, claims over cases that
//! do not exist…) are rejected with a [`SpecError`] instead of being
//! silently ignored by whichever host happens not to read the field.

use zygos_load::retry::RetryPolicy;
use zygos_load::slo::TenantSlos;
use zygos_load::source::ArrivalSpec;
use zygos_sched::{BackgroundOrder, CreditConfig};
use zygos_sim::dist::ServiceDist;
use zygos_sim::queueing::Policy;
use zygos_sysim::config::AllocKind;
use zygos_sysim::fleet::AdmissionTopology;
use zygos_sysim::{
    AdmissionMode, CoreLayout, QueueDiscipline, RoutePolicy, SeriesKind, StageSpec, StagedConfig,
    TelemetryConfig,
};

/// Which simulator system model a [`HostSpec::Sim`] case runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimHost {
    /// ZygOS with work stealing and IPIs.
    Zygos,
    /// ZygOS without IPIs (cooperative ablation).
    ZygosNoInterrupts,
    /// ZygOS under the elastic control plane (`min_cores` and the
    /// preemption quantum come from the [`PolicySpec`]).
    Elastic,
    /// IX: shared-nothing run-to-completion.
    Ix,
    /// Linux, partitioned epoll sets.
    LinuxPartitioned,
    /// Linux, one floating epoll set.
    LinuxFloating,
    /// Staged multi-phase pipeline (`net_poll → … → app`) with a core
    /// layout; the pipeline comes from the scenario's `[[stages]]` block,
    /// the layout and discipline from the [`PolicySpec`].
    Staged,
}

/// Which live-runtime scheduler a [`HostSpec::Live`] case runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LiveHost {
    /// ZygOS with stealing.
    Zygos,
    /// Partitioned run-to-completion (stealing off).
    Partitioned,
    /// Shared floating queue.
    Floating,
    /// Elastic core gating (`quantum_events` from the [`PolicySpec`]).
    Elastic,
}

/// Where a case runs. One scenario may mix hosts — that is the point:
/// the same workload and policy run on the simulator and on the live
/// runtime, and both emit the same [`crate::report::Report`] schema.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostSpec {
    /// The full-system discrete-event simulator (`zygos-sysim`).
    Sim(SimHost),
    /// The live multithreaded runtime (`zygos-runtime`).
    Live(LiveHost),
    /// A zero-overhead idealized queueing model (`zygos_sim::queueing`).
    Model(Policy),
    /// A sharded fleet of simulator worlds behind an L4 balancer
    /// (`zygos_sysim::fleet`); the inner host is the per-shard model
    /// (ZygOS family only — validated). Needs a `[fleet]` block.
    Fleet(SimHost),
}

impl HostSpec {
    /// Stable string form (used in reports and TOML specs), e.g.
    /// `"sim:zygos"`, `"live:elastic"`, `"model:central-fcfs"`.
    pub fn id(&self) -> String {
        fn sim_name(h: &SimHost) -> &'static str {
            match h {
                SimHost::Zygos => "zygos",
                SimHost::ZygosNoInterrupts => "zygos-nointerrupts",
                SimHost::Elastic => "elastic",
                SimHost::Ix => "ix",
                SimHost::LinuxPartitioned => "linux-partitioned",
                SimHost::LinuxFloating => "linux-floating",
                SimHost::Staged => "staged",
            }
        }
        match self {
            HostSpec::Sim(h) => format!("sim:{}", sim_name(h)),
            HostSpec::Fleet(h) => format!("fleet:{}", sim_name(h)),
            HostSpec::Live(h) => format!(
                "live:{}",
                match h {
                    LiveHost::Zygos => "zygos",
                    LiveHost::Partitioned => "partitioned",
                    LiveHost::Floating => "floating",
                    LiveHost::Elastic => "elastic",
                }
            ),
            HostSpec::Model(p) => format!(
                "model:{}",
                match p {
                    Policy::CentralFcfs => "central-fcfs",
                    Policy::PartitionedFcfs => "partitioned-fcfs",
                    Policy::CentralPs => "central-ps",
                    Policy::PartitionedPs => "partitioned-ps",
                }
            ),
        }
    }

    /// Parses [`HostSpec::id`]'s format.
    pub fn parse(s: &str) -> Result<HostSpec, SpecError> {
        let host = match s {
            "sim:zygos" => HostSpec::Sim(SimHost::Zygos),
            "sim:zygos-nointerrupts" => HostSpec::Sim(SimHost::ZygosNoInterrupts),
            "sim:elastic" => HostSpec::Sim(SimHost::Elastic),
            "sim:ix" => HostSpec::Sim(SimHost::Ix),
            "sim:linux-partitioned" => HostSpec::Sim(SimHost::LinuxPartitioned),
            "sim:linux-floating" => HostSpec::Sim(SimHost::LinuxFloating),
            "sim:staged" => HostSpec::Sim(SimHost::Staged),
            "live:zygos" => HostSpec::Live(LiveHost::Zygos),
            "live:partitioned" => HostSpec::Live(LiveHost::Partitioned),
            "live:floating" => HostSpec::Live(LiveHost::Floating),
            "live:elastic" => HostSpec::Live(LiveHost::Elastic),
            "model:central-fcfs" => HostSpec::Model(Policy::CentralFcfs),
            "model:partitioned-fcfs" => HostSpec::Model(Policy::PartitionedFcfs),
            "model:central-ps" => HostSpec::Model(Policy::CentralPs),
            "model:partitioned-ps" => HostSpec::Model(Policy::PartitionedPs),
            // Fleet shards must be ZygOS-family worlds (the policy plane
            // the fleet exists to study); IX/Linux shards are rejected at
            // the parse, not silently accepted.
            "fleet:zygos" => HostSpec::Fleet(SimHost::Zygos),
            "fleet:zygos-nointerrupts" => HostSpec::Fleet(SimHost::ZygosNoInterrupts),
            "fleet:elastic" => HostSpec::Fleet(SimHost::Elastic),
            other => return Err(SpecError::new(format!("unknown host {other:?}"))),
        };
        Ok(host)
    }

    /// True for elastic hosts (the only ones that read elastic knobs).
    pub fn is_elastic(&self) -> bool {
        matches!(
            self,
            HostSpec::Sim(SimHost::Elastic)
                | HostSpec::Live(LiveHost::Elastic)
                | HostSpec::Fleet(SimHost::Elastic)
        )
    }

    /// True for fleet hosts (the only ones that read fleet knobs).
    pub fn is_fleet(&self) -> bool {
        matches!(self, HostSpec::Fleet(_))
    }
}

/// The workload every case of a scenario runs.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Application service-time distribution.
    pub service: ServiceDist,
    /// Shape of the arrival process (mean rate comes from the load grid).
    pub arrivals: ArrivalSpec,
    /// Server cores / workers.
    pub cores: usize,
    /// Client connections.
    pub conns: u32,
    /// Offered loads to sweep (fractions of ideal saturation).
    pub loads: Vec<f64>,
}

/// Admission-control selection for a case.
#[derive(Clone, Debug)]
pub struct AdmissionSpec {
    /// Where a creditless request is shed.
    pub mode: AdmissionMode,
    /// AIMD latency target in µs (ignored when [`PolicySpec::slo`] is set
    /// — per-class targets then derive from the bounds).
    pub target_us: Option<f64>,
    /// Full credit-pool override; defaults to
    /// `CreditConfig::for_cores(cores, target)`.
    pub credits: Option<CreditConfig>,
    /// Demand-weighted sender-side shares (live hosts only).
    pub overcommit: bool,
}

/// Per-case policy knobs. Host-specific knobs are `Option`s: leaving one
/// `None` takes the host's default, *setting* one on a host that cannot
/// honor it is a validation error — a scenario never silently drops a
/// knob.
#[derive(Clone, Debug, Default)]
pub struct PolicySpec {
    /// Elastic floor on granted cores (elastic hosts only; default 2).
    pub min_cores: Option<usize>,
    /// Which allocation policy staffs an elastic host (default
    /// SLO-driven).
    pub alloc: Option<AllocKind>,
    /// Preemptive quantum in µs (simulator ZygOS-family hosts only).
    pub quantum_us: Option<f64>,
    /// Cooperative quantum in events (live elastic host only; default 64).
    pub quantum_events: Option<usize>,
    /// Background (preempted) queue order (requires `quantum_us`).
    pub background_order: Option<BackgroundOrder>,
    /// Credit-based admission control; `None` admits everything.
    pub admission: Option<AdmissionSpec>,
    /// Per-tenant SLO classes.
    pub slo: Option<TenantSlos>,
    /// RX batch bound override (simulator hosts only).
    pub rx_batch: Option<u64>,
    /// Steal-victim order randomization (simulator hosts only; default
    /// true).
    pub randomize_steal_order: Option<bool>,
    /// IPI delivery latency override, ns (simulator hosts only).
    pub ipi_delivery_ns: Option<u64>,
    /// Per-steal cost override, ns (simulator hosts only).
    pub steal_extra_ns: Option<u64>,
    /// L4 connection-routing policy (fleet hosts only; default
    /// consistent-hash; pass-through requires a single shard).
    pub routing: Option<RoutePolicy>,
    /// Credit-admission topology (fleet hosts with admission armed only;
    /// default per-shard pools).
    pub fleet_admission: Option<AdmissionTopology>,
    /// Degraded shards as `(shard, service factor)` (fleet hosts only).
    pub degraded: Option<Vec<(usize, f64)>>,
    /// Shard loss as `(shard, at_us)` (fleet hosts only; needs Poisson
    /// arrivals and >= 2 shards).
    pub loss: Option<(usize, f64)>,
    /// Closed-loop retry: sheds and timeouts re-enter the arrival stream
    /// under this policy (ZygOS-family sim and fleet hosts only; `None`
    /// keeps the open-loop client).
    pub retry: Option<RetryPolicy>,
    /// Deterministic per-connection equal jitter on backoff retry delays
    /// (requires `retry`; default true).
    pub retry_jitter: Option<bool>,
    /// Client-side timeout feeding the retry policy, µs (requires
    /// `retry`). Timed-out work is *not* recalled from the server — the
    /// wasted service is what sustains a metastable failure.
    pub retry_timeout_us: Option<f64>,
    /// Scatter-gather fan-out: every user request fans to this many
    /// distinct shards and completes at the slowest sub-request (fleet
    /// hosts only; default 1; incompatible with shard loss).
    pub fanout: Option<usize>,
    /// Core layout of a staged pipeline (`sim:staged` only; default
    /// unified).
    pub layout: Option<CoreLayout>,
    /// Queue-discipline override applied to every stage of a staged
    /// pipeline (`sim:staged` only; default: each stage keeps the
    /// discipline its `[[stages]]` entry declares).
    pub discipline: Option<QueueDiscipline>,
}

/// Assembles the pipeline a `sim:staged` case runs: the scenario's shared
/// `[[stages]]` table with the case's layout and discipline overrides
/// applied. Lowering and validation both go through here, so a scenario
/// that builds is exactly a scenario whose every staged case runs.
pub fn staged_plan(stages: &[StageSpec], policy: &PolicySpec) -> StagedConfig {
    let mut stages = stages.to_vec();
    if let Some(d) = policy.discipline {
        for s in &mut stages {
            s.discipline = d;
        }
    }
    StagedConfig {
        stages,
        layout: policy.layout.unwrap_or_default(),
    }
}

/// One case: a label, a host, and the policy it runs.
#[derive(Clone, Debug)]
pub struct Case {
    /// Series label in reports (unique within a scenario).
    pub label: String,
    /// Where it runs.
    pub host: HostSpec,
    /// What it runs.
    pub policy: PolicySpec,
}

impl Case {
    /// A simulator case.
    pub fn sim(label: impl Into<String>, host: SimHost) -> Case {
        Case {
            label: label.into(),
            host: HostSpec::Sim(host),
            policy: PolicySpec::default(),
        }
    }

    /// A live-runtime case.
    pub fn live(label: impl Into<String>, host: LiveHost) -> Case {
        Case {
            label: label.into(),
            host: HostSpec::Live(host),
            policy: PolicySpec::default(),
        }
    }

    /// A zero-overhead queueing-model case.
    pub fn model(label: impl Into<String>, policy: Policy) -> Case {
        Case {
            label: label.into(),
            host: HostSpec::Model(policy),
            policy: PolicySpec::default(),
        }
    }

    /// A fleet case: `host` is the per-shard simulator model (ZygOS
    /// family only); the shard count comes from the scenario's `[fleet]`
    /// block.
    pub fn fleet(label: impl Into<String>, host: SimHost) -> Case {
        Case {
            label: label.into(),
            host: HostSpec::Fleet(host),
            policy: PolicySpec::default(),
        }
    }

    /// Selects the fleet's L4 routing policy.
    pub fn routing(mut self, r: RoutePolicy) -> Case {
        self.policy.routing = Some(r);
        self
    }

    /// Selects the fleet's credit-admission topology.
    pub fn fleet_admission(mut self, t: AdmissionTopology) -> Case {
        self.policy.fleet_admission = Some(t);
        self
    }

    /// Degrades shards: each `(shard, factor)` serves at `factor ×` its
    /// healthy cost.
    pub fn degraded(mut self, d: Vec<(usize, f64)>) -> Case {
        self.policy.degraded = Some(d);
        self
    }

    /// Loses a shard mid-run: `(shard, at_us)`.
    pub fn loss(mut self, shard: usize, at_us: f64) -> Case {
        self.policy.loss = Some((shard, at_us));
        self
    }

    /// Arms the closed retry loop: sheds and timeouts re-enter the
    /// arrival stream under `policy`.
    pub fn retry(mut self, policy: RetryPolicy) -> Case {
        self.policy.retry = Some(policy);
        self
    }

    /// Toggles deterministic equal jitter on backoff retry delays.
    pub fn retry_jitter(mut self, on: bool) -> Case {
        self.policy.retry_jitter = Some(on);
        self
    }

    /// Arms the client-side timeout that feeds the retry policy (µs).
    pub fn retry_timeout_us(mut self, t: f64) -> Case {
        self.policy.retry_timeout_us = Some(t);
        self
    }

    /// Sets the scatter-gather fan-out of a fleet case.
    pub fn fanout(mut self, m: usize) -> Case {
        self.policy.fanout = Some(m);
        self
    }

    /// Selects the staged pipeline's core layout (`sim:staged` only).
    pub fn layout(mut self, l: CoreLayout) -> Case {
        self.policy.layout = Some(l);
        self
    }

    /// Overrides every stage's queue discipline (`sim:staged` only).
    pub fn discipline(mut self, d: QueueDiscipline) -> Case {
        self.policy.discipline = Some(d);
        self
    }

    /// Sets the elastic floor on granted cores.
    pub fn min_cores(mut self, n: usize) -> Case {
        self.policy.min_cores = Some(n);
        self
    }

    /// Selects the allocation policy of an elastic host.
    pub fn alloc(mut self, kind: AllocKind) -> Case {
        self.policy.alloc = Some(kind);
        self
    }

    /// Arms the simulator's preemptive quantum.
    pub fn quantum_us(mut self, q: f64) -> Case {
        self.policy.quantum_us = Some(q);
        self
    }

    /// Sets the live cooperative quantum (events per dequeue).
    pub fn quantum_events(mut self, n: usize) -> Case {
        self.policy.quantum_events = Some(n);
        self
    }

    /// Orders the background (preempted) queue.
    pub fn background_order(mut self, o: BackgroundOrder) -> Case {
        self.policy.background_order = Some(o);
        self
    }

    /// Arms credit-based admission control shedding in `mode`.
    pub fn admission(mut self, mode: AdmissionMode) -> Case {
        let spec = self.policy.admission.get_or_insert(AdmissionSpec {
            mode,
            target_us: None,
            credits: None,
            overcommit: false,
        });
        spec.mode = mode;
        self
    }

    /// Sets the admission AIMD latency target (µs).
    pub fn credit_target_us(mut self, t: f64) -> Case {
        match &mut self.policy.admission {
            Some(a) => a.target_us = Some(t),
            None => {
                self.policy.admission = Some(AdmissionSpec {
                    mode: AdmissionMode::ServerEdge,
                    target_us: Some(t),
                    credits: None,
                    overcommit: false,
                })
            }
        }
        self
    }

    /// Overrides the full credit-pool configuration.
    pub fn credits(mut self, cfg: CreditConfig) -> Case {
        match &mut self.policy.admission {
            Some(a) => a.credits = Some(cfg),
            None => {
                self.policy.admission = Some(AdmissionSpec {
                    mode: AdmissionMode::ServerEdge,
                    target_us: None,
                    credits: Some(cfg),
                    overcommit: false,
                })
            }
        }
        self
    }

    /// Arms demand-weighted sender-side credit shares (live hosts).
    pub fn overcommit(mut self) -> Case {
        if let Some(a) = &mut self.policy.admission {
            a.overcommit = true;
        } else {
            self.policy.admission = Some(AdmissionSpec {
                mode: AdmissionMode::ClientSide,
                target_us: None,
                credits: None,
                overcommit: true,
            });
        }
        self
    }

    /// Attaches per-tenant SLO classes.
    pub fn slo(mut self, slos: TenantSlos) -> Case {
        self.policy.slo = Some(slos);
        self
    }

    /// Overrides the RX batch bound.
    pub fn rx_batch(mut self, b: u64) -> Case {
        self.policy.rx_batch = Some(b);
        self
    }

    /// Disables steal-victim randomization (ablation).
    pub fn sequential_steal(mut self) -> Case {
        self.policy.randomize_steal_order = Some(false);
        self
    }

    /// Overrides the IPI delivery latency (ablation).
    pub fn ipi_delivery_ns(mut self, ns: u64) -> Case {
        self.policy.ipi_delivery_ns = Some(ns);
        self
    }

    /// Overrides the per-steal cost (ablation).
    pub fn steal_extra_ns(mut self, ns: u64) -> Case {
        self.policy.steal_extra_ns = Some(ns);
        self
    }
}

/// Telemetry requested for a scenario's simulator cases: lifecycle
/// tracing (which puts the p99 sojourn decomposition into the report)
/// and/or control-tick time-series. The simulator instruments the
/// ZygOS-family hosts; IX/Linux and live cases carry empty telemetry, so
/// validation requires at least one case that can actually record.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetrySpec {
    /// Arm the lifecycle tracer (decomposition fields in the report).
    pub trace: bool,
    /// Record every `sample_period`-th request (1 = every request).
    pub sample_period: u32,
    /// Time-series to harvest on the control tick.
    pub series: Vec<SeriesKind>,
    /// Harvest one point every `series_every` control ticks.
    pub series_every: u32,
    /// Cap on stored points per series (excess is counted, not kept).
    pub max_series_points: usize,
}

impl Default for TelemetrySpec {
    fn default() -> Self {
        let d = TelemetryConfig::default();
        TelemetrySpec {
            trace: true,
            sample_period: d.sample_period,
            series: Vec::new(),
            series_every: d.series_every,
            max_series_points: d.max_series_points,
        }
    }
}

impl TelemetrySpec {
    /// The host-side config this spec lowers to.
    pub fn to_config(&self) -> TelemetryConfig {
        TelemetryConfig {
            trace: self.trace,
            sample_period: self.sample_period,
            series: self.series.clone(),
            series_every: self.series_every,
            max_series_points: self.max_series_points,
        }
    }
}

/// A `[search]` block: the paper's "maximum load @ SLO" metric as a
/// committed gate. Every deterministic (sim or model) case bisects the
/// load axis for the highest load whose latency quantile meets the
/// bound; warmable simulator cases reuse checkpoint prefixes across the
/// probes (see `docs/TAIL.md`), so only the first probe pays a cold
/// warmup. Live cases carry no search result — a wall clock cannot
/// binary-search loads honestly.
#[derive(Clone, Debug, PartialEq)]
pub struct SearchSpec {
    /// Which latency quantile the SLO binds (0.5, 0.99, 0.999, …).
    pub quantile: f64,
    /// The SLO bound on that quantile, µs.
    pub bound_us: f64,
    /// Load-grid resolution of the bisection (16 ⇒ 1/16-load steps).
    pub resolution: usize,
}

impl Default for SearchSpec {
    fn default() -> Self {
        SearchSpec {
            quantile: 0.99,
            bound_us: 100.0,
            resolution: 16,
        }
    }
}

/// A `[tail]` block: RESTART importance splitting for deep-tail
/// quantiles at one load. Trajectories entering rare high-backlog
/// states are cloned (weights divided by the split factor), so tail
/// mass is sampled 10–100× more often than brute force at matched base
/// cost; the master trajectory stays bit-identical to the brute-force
/// run, so every result carries both estimates. ZygOS-family simulator
/// cases only, always untraced (checkpoints drop the observer plane).
/// Estimator math and bias caveats live in `docs/TAIL.md`.
#[derive(Clone, Debug, PartialEq)]
pub struct TailSpec {
    /// The offered load to study (usually the interesting knee).
    pub load: f64,
    /// Which deep quantile to estimate (default 0.999).
    pub quantile: f64,
    /// Ascending backlog thresholds; crossing level `i` splits the
    /// trajectory.
    pub levels: Vec<usize>,
    /// Clones per level crossing (weight divides by this).
    pub splits: usize,
    /// Events between backlog-level checks.
    pub check_every: u64,
    /// Cap on total clone events (truncation is counted and reported).
    pub clone_budget: u64,
}

impl Default for TailSpec {
    fn default() -> Self {
        TailSpec {
            load: 0.8,
            quantile: 0.999,
            levels: vec![32, 64],
            splits: 4,
            check_every: 64,
            clone_budget: 2_000_000,
        }
    }
}

/// Measurement sizing, full and smoke.
#[derive(Clone, Debug)]
pub struct ScaleSpec {
    /// Completions measured per point (full mode).
    pub requests: u64,
    /// Warmup completions discarded per point (full mode).
    pub warmup: u64,
    /// Completions measured per point under `--smoke`.
    pub smoke_requests: u64,
    /// Warmup under `--smoke`.
    pub smoke_warmup: u64,
    /// Load grid override under `--smoke` (`None` keeps the full grid).
    pub smoke_loads: Option<Vec<f64>>,
    /// RNG seed (arrivals, service sampling, victim shuffles).
    pub seed: u64,
}

impl Default for ScaleSpec {
    fn default() -> Self {
        ScaleSpec {
            requests: 50_000,
            warmup: 10_000,
            smoke_requests: 8_000,
            smoke_warmup: 2_000,
            smoke_loads: None,
            seed: 0x5A47,
        }
    }
}

impl ScaleSpec {
    /// The `(requests, warmup)` pair for a mode.
    pub fn window(&self, smoke: bool) -> (u64, u64) {
        if smoke {
            (self.smoke_requests, self.smoke_warmup)
        } else {
            (self.requests, self.warmup)
        }
    }
}

/// The fleet topology shared by a scenario's `fleet:*` cases: N
/// independent shards, each `workload.cores` wide, behind the L4
/// balancer. `workload.conns` is the fleet-wide connection count the
/// routing policy partitions; `workload.loads` are fractions of the
/// *fleet's* ideal saturation (`shards × cores` healthy cores); the
/// `[scale]` windows are fleet totals, divided by connection share.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FleetSpec {
    /// Number of server shards.
    pub shards: usize,
}

/// A `[faults]` block: scenario-wide adversarial injections, lowered by
/// the runner onto the arrival/service machinery every host already
/// models (no fault-specific code paths in the hosts — see
/// `docs/FAULTS.md`). All entries are optional but at least one must be
/// armed.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultsSpec {
    /// Overload burst `(at_us, duration_us, factor)`: the arrival rate
    /// multiplies by `factor` from `at_us` for `duration_us`, then
    /// returns to the configured load — the metastable-failure probe.
    /// Needs Poisson arrivals (lowered as phased Poisson).
    pub burst: Option<(f64, f64, f64)>,
    /// Connection churn `(interval_us, spike_us, factor)`: a cyclic
    /// arrival spike of `spike_us` every `interval_us` — reconnect
    /// stampedes. Mutually exclusive with `burst`; needs Poisson
    /// arrivals.
    pub churn: Option<(f64, f64, f64)>,
    /// Slow-client drain stalls `(fraction, stall_us)`: a `fraction` of
    /// responses stall in the client's drain path for `stall_us`,
    /// modelled mean-field as a uniform service inflation of
    /// `(mean + fraction × stall) / mean`.
    pub slow_clients: Option<(f64, f64)>,
    /// Transient shard slowdown `(shard, factor)`, applied to every
    /// fleet case on top of its own `degraded` list.
    pub slowdown: Option<(usize, f64)>,
}

impl FaultsSpec {
    /// True when nothing is armed (a contradictory empty block).
    pub fn is_empty(&self) -> bool {
        self.burst.is_none()
            && self.churn.is_none()
            && self.slow_clients.is_none()
            && self.slowdown.is_none()
    }
}

/// The `fleet_tail_gap` claim: a degraded shard must drag the fleet p99
/// under affinity routing, and load-aware routing must claw most of it
/// back. Checked at every grid point by label triple.
#[derive(Clone, Debug)]
pub struct FleetGapClaim {
    /// Label of the healthy reference case.
    pub healthy: String,
    /// Label of the degraded case under affinity (e.g. consistent-hash)
    /// routing.
    pub degraded: String,
    /// Label of the degraded case under load-aware (e.g. po2c) routing.
    pub recovered: String,
    /// The degraded case's p99 must be at least this multiple of the
    /// healthy case's.
    pub min_ratio: f64,
    /// The recovered case must close at least this fraction of the
    /// degraded−healthy p99 gap.
    pub min_recovery: f64,
}

/// The `staged_crossover` claim: at the lowest grid load, pooling every
/// core must pay — the unified case's p99 must win or tie
/// (`split >= low_ratio × unified`); at the highest grid load, batch
/// commitment must cost the unified case its tail
/// (`unified >= high_ratio × split`).
#[derive(Clone, Debug)]
pub struct StagedCrossoverClaim {
    /// Label of the unified-layout case.
    pub unified: String,
    /// Label of the split-layout case.
    pub split: String,
    /// At the lowest load: split p99 must be at least this multiple of
    /// unified p99.
    pub low_ratio: f64,
    /// At the highest load: unified p99 must be at least this multiple of
    /// split p99.
    pub high_ratio: f64,
}

/// The `retry_storm` claim: at overload points, backoff-with-jitter
/// keeps the admitted tail bounded and its goodput within a claimed
/// fraction of the drop baseline, while naive immediate retry feeds the
/// storm and diverges past the same bound. Checked at every overload
/// grid point by label triple.
#[derive(Clone, Debug)]
pub struct RetryStormClaim {
    /// Label of the backoff-retry case (stays bounded).
    pub backoff: String,
    /// Label of the no-retry baseline case.
    pub drop: String,
    /// Label of the naive immediate-retry case (diverges).
    pub naive: String,
    /// The p99 bound the backoff case must stay at or below, µs.
    pub bound_us: f64,
    /// Backoff goodput must be at least this fraction of drop goodput.
    pub min_goodput_ratio: f64,
}

/// The `metastable_recovery` claim: after the `[faults]` burst ends,
/// the admission-gated case's windowed p99 and credit capacity must
/// return to their pre-burst levels within `windows` series intervals,
/// while the ungated twin's windowed p99 stays degraded for the rest of
/// the run — the retry loop sustains the overload the trigger started.
/// Read from the `window_p99_us` and `credit_capacity` series.
#[derive(Clone, Debug)]
pub struct MetastableRecoveryClaim {
    /// Label of the admission-gated case (recovers).
    pub gated: String,
    /// Label of the ungated twin (stays metastable).
    pub ungated: String,
    /// Recovery deadline after burst end, in series intervals.
    pub windows: usize,
}

/// The `scatter_gather` claim: fanning every request over M shards must
/// amplify the user-level p99 (completion at the slowest replica), and
/// load-aware routing with fleet-wide credits must claw a claimed
/// fraction of that amplification back. Checked at every grid point by
/// label triple.
#[derive(Clone, Debug)]
pub struct ScatterGatherClaim {
    /// Label of the fan-out-1 reference case.
    pub base: String,
    /// Label of the fanned (fan-out > 1) case.
    pub fanned: String,
    /// Label of the fanned case under load-aware routing and fleet-wide
    /// credits.
    pub recovered: String,
    /// The fanned p99 must be at least this multiple of the base p99.
    pub min_amplification: f64,
    /// The recovered case must close at least this fraction of the
    /// fanned−base p99 gap.
    pub min_recovery: f64,
}

/// Acceptance claims `lab --check` enforces over a scenario's report.
/// All off by default; [`ScenarioBuilder::build`] rejects claims that no
/// case can back.
#[derive(Clone, Debug)]
pub struct Claims {
    /// Loads at or above this are "overload points" (default 1.19).
    pub overload_from: f64,
    /// Every admission-gated case's p99 must stay at or below this at
    /// overload points (and must shed there).
    pub admitted_p99_bound_us: Option<f64>,
    /// Every ungated case's p99 must exceed this at overload points.
    pub uncontrolled_diverge_past_us: Option<f64>,
    /// At overload points, the first client-side-admission case must
    /// waste strictly less wire time than the first server-edge case
    /// (which must waste some).
    pub client_waste_below_server: bool,
    /// At overload points, the loosest SLO class of every multi-tenant
    /// admission case must carry a strictly larger shed share than the
    /// strictest.
    pub loose_sheds_first: bool,
    /// Ceiling on the loosest class's own shed *rate* at overload — the
    /// per-class-occupancy floor guarantee (e.g. 0.95: batch still admits
    /// at least 5% of its arrivals while a strict tenant saturates).
    pub loose_floor_max_shed_rate: Option<f64>,
    /// At loads at or below this, every elastic case must grant fewer
    /// cores than the configured fleet (it parks).
    pub elastic_parks_below_load: Option<f64>,
    /// Degraded-shard tail claim over a fleet label triple (see
    /// [`FleetGapClaim`]).
    pub fleet_tail_gap: Option<FleetGapClaim>,
    /// Layout-crossover claim over a staged label pair (see
    /// [`StagedCrossoverClaim`]).
    pub staged_crossover: Option<StagedCrossoverClaim>,
    /// Retry-storm containment claim over a label triple (see
    /// [`RetryStormClaim`]).
    pub retry_storm: Option<RetryStormClaim>,
    /// Metastable-failure recovery claim over a gated/ungated pair (see
    /// [`MetastableRecoveryClaim`]).
    pub metastable_recovery: Option<MetastableRecoveryClaim>,
    /// Scatter-gather tail-at-scale claim over a fleet label triple (see
    /// [`ScatterGatherClaim`]).
    pub scatter_gather: Option<ScatterGatherClaim>,
}

impl Default for Claims {
    fn default() -> Self {
        Claims {
            overload_from: 1.19,
            admitted_p99_bound_us: None,
            uncontrolled_diverge_past_us: None,
            client_waste_below_server: false,
            loose_sheds_first: false,
            loose_floor_max_shed_rate: None,
            elastic_parks_below_load: None,
            fleet_tail_gap: None,
            staged_crossover: None,
            retry_storm: None,
            metastable_recovery: None,
            scatter_gather: None,
        }
    }
}

impl Claims {
    /// True when no claim is armed (check mode then only diffs the
    /// baseline).
    pub fn is_empty(&self) -> bool {
        self.admitted_p99_bound_us.is_none()
            && self.uncontrolled_diverge_past_us.is_none()
            && !self.client_waste_below_server
            && !self.loose_sheds_first
            && self.loose_floor_max_shed_rate.is_none()
            && self.elastic_parks_below_load.is_none()
            && self.fleet_tail_gap.is_none()
            && self.staged_crossover.is_none()
            && self.retry_storm.is_none()
            && self.metastable_recovery.is_none()
            && self.scatter_gather.is_none()
    }
}

/// A validated experiment description. Construct via
/// [`Scenario::builder`] (or the TOML front end, which goes through the
/// same builder).
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Scenario name (also the baseline file stem).
    pub name: String,
    /// The shared workload.
    pub workload: WorkloadSpec,
    /// The cases (series) to run.
    pub cases: Vec<Case>,
    /// Measurement sizing.
    pub scale: ScaleSpec,
    /// Fleet topology shared by the scenario's `fleet:*` cases (required
    /// exactly when such a case exists).
    pub fleet: Option<FleetSpec>,
    /// The pipeline shared by the scenario's `sim:staged` cases (required
    /// exactly when such a case exists); cases reshape it via their
    /// layout/discipline knobs, see [`staged_plan`].
    pub stages: Option<Vec<StageSpec>>,
    /// Adversarial fault injections shared by every case (`None` injects
    /// nothing).
    pub faults: Option<FaultsSpec>,
    /// Telemetry recorded by simulator cases (`None` records nothing).
    pub telemetry: Option<TelemetrySpec>,
    /// Max-load@SLO search over every deterministic case.
    pub search: Option<SearchSpec>,
    /// RESTART importance splitting over ZygOS-family simulator cases.
    pub tail: Option<TailSpec>,
    /// Acceptance claims.
    pub claims: Claims,
    /// Relative tolerance for baseline diffs (default 0.5 — smoke
    /// windows are deterministic but small, and the gate exists to catch
    /// regressions, not formatting noise).
    pub check_tolerance: f64,
}

impl Scenario {
    /// Starts a builder.
    pub fn builder(name: impl Into<String>) -> ScenarioBuilder {
        ScenarioBuilder {
            name: name.into(),
            service: None,
            arrivals: ArrivalSpec::Poisson,
            cores: 16,
            conns: 2752,
            loads: Vec::new(),
            cases: Vec::new(),
            scale: ScaleSpec::default(),
            fleet: None,
            stages: None,
            faults: None,
            telemetry: None,
            search: None,
            tail: None,
            claims: Claims::default(),
            check_tolerance: 0.5,
        }
    }

    /// The case with `label`, if any.
    pub fn case(&self, label: &str) -> Option<&Case> {
        self.cases.iter().find(|c| c.label == label)
    }

    /// True for hosts the simulator's tracer instruments (the
    /// ZygOS-family models; IX/Linux and live hosts record nothing).
    pub fn host_is_traced(host: HostSpec) -> bool {
        matches!(
            host,
            HostSpec::Sim(SimHost::Zygos | SimHost::ZygosNoInterrupts | SimHost::Elastic)
        )
    }

    /// The load grid for a mode.
    pub fn loads(&self, smoke: bool) -> &[f64] {
        match (&self.scale.smoke_loads, smoke) {
            (Some(l), true) => l,
            _ => &self.workload.loads,
        }
    }
}

/// A rejected scenario: what contradicted what.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    msg: String,
}

impl SpecError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        SpecError { msg: msg.into() }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid scenario: {}", self.msg)
    }
}

impl std::error::Error for SpecError {}

/// Builds and validates a [`Scenario`].
pub struct ScenarioBuilder {
    name: String,
    service: Option<ServiceDist>,
    arrivals: ArrivalSpec,
    cores: usize,
    conns: u32,
    loads: Vec<f64>,
    cases: Vec<Case>,
    scale: ScaleSpec,
    fleet: Option<FleetSpec>,
    stages: Option<Vec<StageSpec>>,
    faults: Option<FaultsSpec>,
    telemetry: Option<TelemetrySpec>,
    search: Option<SearchSpec>,
    tail: Option<TailSpec>,
    claims: Claims,
    check_tolerance: f64,
}

impl ScenarioBuilder {
    /// Sets the service-time distribution (required).
    pub fn service(mut self, d: ServiceDist) -> Self {
        self.service = Some(d);
        self
    }

    /// Sets the arrival process (default Poisson).
    pub fn arrivals(mut self, a: ArrivalSpec) -> Self {
        self.arrivals = a;
        self
    }

    /// Sets the core count (default 16, the paper's testbed).
    pub fn cores(mut self, n: usize) -> Self {
        self.cores = n;
        self
    }

    /// Sets the connection count (default 2752, the paper's testbed).
    pub fn conns(mut self, n: u32) -> Self {
        self.conns = n;
        self
    }

    /// Sets the offered-load grid (required, non-empty).
    pub fn loads(mut self, loads: Vec<f64>) -> Self {
        self.loads = loads;
        self
    }

    /// Adds a case.
    pub fn case(mut self, case: Case) -> Self {
        self.cases.push(case);
        self
    }

    /// Sets full-mode measurement sizing.
    pub fn requests(mut self, requests: u64, warmup: u64) -> Self {
        self.scale.requests = requests;
        self.scale.warmup = warmup;
        self
    }

    /// Sets smoke-mode measurement sizing.
    pub fn smoke(mut self, requests: u64, warmup: u64) -> Self {
        self.scale.smoke_requests = requests;
        self.scale.smoke_warmup = warmup;
        self
    }

    /// Overrides the smoke-mode load grid.
    pub fn smoke_loads(mut self, loads: Vec<f64>) -> Self {
        self.scale.smoke_loads = Some(loads);
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.scale.seed = seed;
        self
    }

    /// Sets the fleet topology for `fleet:*` cases.
    pub fn fleet(mut self, f: FleetSpec) -> Self {
        self.fleet = Some(f);
        self
    }

    /// Sets the pipeline for `sim:staged` cases.
    pub fn stages(mut self, s: Vec<StageSpec>) -> Self {
        self.stages = Some(s);
        self
    }

    /// Arms scenario-wide adversarial fault injections.
    pub fn faults(mut self, f: FaultsSpec) -> Self {
        self.faults = Some(f);
        self
    }

    /// Arms scenario-wide telemetry (simulator cases).
    pub fn telemetry(mut self, t: TelemetrySpec) -> Self {
        self.telemetry = Some(t);
        self
    }

    /// Arms the max-load@SLO search over deterministic cases.
    pub fn search(mut self, s: SearchSpec) -> Self {
        self.search = Some(s);
        self
    }

    /// Arms RESTART importance splitting over ZygOS-family sim cases.
    pub fn tail(mut self, t: TailSpec) -> Self {
        self.tail = Some(t);
        self
    }

    /// Replaces the claims block.
    pub fn claims(mut self, claims: Claims) -> Self {
        self.claims = claims;
        self
    }

    /// Sets the baseline-diff tolerance.
    pub fn check_tolerance(mut self, tol: f64) -> Self {
        self.check_tolerance = tol;
        self
    }

    /// Validates everything and returns the scenario.
    pub fn build(self) -> Result<Scenario, SpecError> {
        let err = |msg: String| Err(SpecError::new(msg));
        if self.name.is_empty()
            || !self
                .name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return err(format!(
                "name {:?} must be non-empty [a-zA-Z0-9_-] (it names the baseline file)",
                self.name
            ));
        }
        let Some(service) = self.service else {
            return err("a workload needs a service-time distribution".into());
        };
        if self.cores == 0 {
            return err("cores must be >= 1".into());
        }
        if self.conns == 0 {
            return err("conns must be >= 1".into());
        }
        if self.loads.is_empty() {
            return err("the load grid is empty".into());
        }
        for grid in [Some(&self.loads), self.scale.smoke_loads.as_ref()]
            .into_iter()
            .flatten()
        {
            for &l in grid {
                if !(l > 0.0 && l <= 4.0) {
                    return err(format!("load {l} out of range (0, 4]"));
                }
            }
        }
        if self.scale.requests == 0 || self.scale.smoke_requests == 0 {
            return err("requests must be >= 1 in both modes".into());
        }
        if self.cases.is_empty() {
            return err("a scenario needs at least one case".into());
        }
        for (i, case) in self.cases.iter().enumerate() {
            if case.label.is_empty() {
                return err(format!("case {i} has an empty label"));
            }
            if self.cases[..i].iter().any(|c| c.label == case.label) {
                return err(format!("duplicate case label {:?}", case.label));
            }
            validate_case(case, self.cores)?;
        }
        let fleet_cases: Vec<&Case> = self.cases.iter().filter(|c| c.host.is_fleet()).collect();
        match (&self.fleet, fleet_cases.is_empty()) {
            (None, false) => {
                return err("fleet:* cases need a [fleet] block naming the shard count".into())
            }
            (Some(_), true) => {
                return err("a [fleet] block with no fleet:* case to shard".into());
            }
            _ => {}
        }
        if let Some(f) = &self.fleet {
            if f.shards == 0 {
                return err("fleet shards must be >= 1".into());
            }
            for case in &fleet_cases {
                let fail =
                    |msg: String| Err(SpecError::new(format!("case {:?}: {msg}", case.label)));
                let p = &case.policy;
                if p.routing == Some(RoutePolicy::PassThrough) && f.shards != 1 {
                    return fail(format!(
                        "pass-through routing is the 1-shard differential wire; \
                         this fleet has {} shards",
                        f.shards
                    ));
                }
                if let Some(degraded) = &p.degraded {
                    for &(shard, factor) in degraded {
                        if shard >= f.shards {
                            return fail(format!(
                                "degraded shard {shard} out of range [0, {})",
                                f.shards
                            ));
                        }
                        if !(factor.is_finite() && factor > 0.0) {
                            return fail(format!(
                                "degradation factor must be positive, got {factor}"
                            ));
                        }
                        if degraded.iter().filter(|d| d.0 == shard).count() > 1 {
                            return fail(format!("shard {shard} degraded twice"));
                        }
                    }
                }
                if let Some((shard, at_us)) = p.loss {
                    if shard >= f.shards {
                        return fail(format!("lost shard {shard} out of range [0, {})", f.shards));
                    }
                    if f.shards < 2 {
                        return fail("shard loss needs >= 2 shards (someone must survive)".into());
                    }
                    if !(at_us.is_finite() && at_us > 0.0) {
                        return fail(format!("loss time must be positive, got {at_us}"));
                    }
                    if !matches!(self.arrivals, ArrivalSpec::Poisson) {
                        return fail(
                            "shard loss re-plans survivor arrivals as phased Poisson; \
                             it needs the Poisson arrival process"
                                .into(),
                        );
                    }
                }
                if let Some(m) = p.fanout {
                    if m < 1 {
                        return fail("fanout must be >= 1".into());
                    }
                    if m > f.shards {
                        return fail(format!(
                            "fan-out {m} exceeds {} shards (replica sets are distinct)",
                            f.shards
                        ));
                    }
                    if m > 1 && p.loss.is_some() {
                        return fail(
                            "scatter-gather is incompatible with shard loss \
                             (a fanned request has no survivor re-plan)"
                                .into(),
                        );
                    }
                }
            }
        }
        if let Some(fl) = &self.faults {
            if fl.is_empty() {
                return err("a [faults] block that injects nothing: \
                     arm burst, churn, slow_clients or slowdown"
                    .into());
            }
            if fl.burst.is_some() && fl.churn.is_some() {
                return err(
                    "[faults] burst and churn both re-plan the arrival process; pick one".into(),
                );
            }
            if fl.burst.is_some() || fl.churn.is_some() {
                if !matches!(self.arrivals, ArrivalSpec::Poisson) {
                    return err("[faults] burst/churn lower onto phased Poisson; \
                         they need the Poisson arrival process"
                        .into());
                }
                if self.cases.iter().any(|c| c.policy.loss.is_some()) {
                    return err(
                        "[faults] burst/churn and shard loss both re-plan arrivals; pick one"
                            .into(),
                    );
                }
            }
            if let Some((at_us, duration_us, factor)) = fl.burst {
                for (v, what) in [
                    (at_us, "at_us"),
                    (duration_us, "duration_us"),
                    (factor, "factor"),
                ] {
                    if !(v.is_finite() && v > 0.0) {
                        return err(format!("[faults] burst {what} must be positive, got {v}"));
                    }
                }
            }
            if let Some((interval_us, spike_us, factor)) = fl.churn {
                for (v, what) in [
                    (interval_us, "interval_us"),
                    (spike_us, "spike_us"),
                    (factor, "factor"),
                ] {
                    if !(v.is_finite() && v > 0.0) {
                        return err(format!("[faults] churn {what} must be positive, got {v}"));
                    }
                }
            }
            if let Some((fraction, stall_us)) = fl.slow_clients {
                if !(fraction > 0.0 && fraction < 1.0) {
                    return err(format!(
                        "[faults] slow_clients fraction {fraction} out of range (0, 1)"
                    ));
                }
                if !(stall_us.is_finite() && stall_us > 0.0) {
                    return err(format!(
                        "[faults] slow_clients stall must be positive, got {stall_us}"
                    ));
                }
            }
            if let Some((shard, factor)) = fl.slowdown {
                let Some(f) = &self.fleet else {
                    return err(
                        "[faults] slowdown degrades a shard; it needs a [fleet] block".into(),
                    );
                };
                if shard >= f.shards {
                    return err(format!(
                        "[faults] slowdown shard {shard} out of range [0, {})",
                        f.shards
                    ));
                }
                if !(factor.is_finite() && factor > 0.0) {
                    return err(format!(
                        "[faults] slowdown factor must be positive, got {factor}"
                    ));
                }
            }
        }
        let staged_cases: Vec<&Case> = self
            .cases
            .iter()
            .filter(|c| c.host == HostSpec::Sim(SimHost::Staged))
            .collect();
        match (&self.stages, staged_cases.is_empty()) {
            (None, false) => {
                return err("sim:staged cases need a [[stages]] block naming the pipeline".into())
            }
            (Some(_), true) => {
                return err("a [[stages]] block with no sim:staged case to run it".into());
            }
            _ => {}
        }
        if let Some(stages) = &self.stages {
            for case in &staged_cases {
                if let Err(msg) = staged_plan(stages, &case.policy).validate(self.cores) {
                    return err(format!("case {:?}: {msg}", case.label));
                }
            }
        }
        if self
            .cases
            .iter()
            .any(|c| matches!(c.host, HostSpec::Model(_)))
        {
            for grid in [Some(&self.loads), self.scale.smoke_loads.as_ref()]
                .into_iter()
                .flatten()
            {
                if grid.iter().any(|&l| l >= 1.0) {
                    return err(
                        "zero-overhead queueing models are only stable below saturation: \
                         a model case needs every load < 1.0"
                            .into(),
                    );
                }
            }
        }
        if let Some(t) = &self.telemetry {
            if t.to_config().is_off() {
                return err(
                    "a [telemetry] block that records nothing: arm `trace` or list series".into(),
                );
            }
            if t.sample_period == 0 || t.series_every == 0 || t.max_series_points == 0 {
                return err("telemetry periods and caps must be >= 1".into());
            }
            // Fleet worlds harvest (shard-namespaced) series but never
            // trace: lifecycle correlation keys collide across shards.
            let any_traced = self.cases.iter().any(|c| Scenario::host_is_traced(c.host));
            let any_fleet = self.cases.iter().any(|c| c.host.is_fleet());
            if t.trace && !any_traced {
                return err(
                    "lifecycle tracing is recorded by ZygOS-family simulator hosts only \
                     (fleet worlds harvest series, never traces); \
                     every case here would silently record nothing"
                        .into(),
                );
            }
            if !any_traced && !any_fleet {
                return err(
                    "telemetry is recorded by ZygOS-family simulator hosts only; \
                     every case here would silently record nothing"
                        .into(),
                );
            }
        }
        if let Some(s) = &self.search {
            if !(s.quantile > 0.0 && s.quantile < 1.0) {
                return err(format!(
                    "search quantile {} out of range (0, 1)",
                    s.quantile
                ));
            }
            if !s.bound_us.is_finite() || s.bound_us <= 0.0 {
                return err(format!(
                    "search bound_us must be positive, got {}",
                    s.bound_us
                ));
            }
            if !(2..=1000).contains(&s.resolution) {
                return err(format!(
                    "search resolution {} out of range [2, 1000]",
                    s.resolution
                ));
            }
            if self
                .cases
                .iter()
                .all(|c| matches!(c.host, HostSpec::Live(_)))
            {
                return err(
                    "a [search] block needs a deterministic (sim or model) case; \
                     a wall clock cannot binary-search loads honestly"
                        .into(),
                );
            }
        }
        if let Some(t) = &self.tail {
            if !(t.load > 0.0 && t.load <= 4.0) {
                return err(format!("tail load {} out of range (0, 4]", t.load));
            }
            if !(t.quantile > 0.0 && t.quantile < 1.0) {
                return err(format!("tail quantile {} out of range (0, 1)", t.quantile));
            }
            if t.levels.is_empty() || !t.levels.windows(2).all(|w| w[0] < w[1]) {
                return err("tail levels must be non-empty and strictly ascending".into());
            }
            if t.splits < 2 {
                return err(format!("tail splits must be >= 2, got {}", t.splits));
            }
            if t.check_every == 0 {
                return err("tail check_every must be >= 1".into());
            }
            if !self.cases.iter().any(|c| Scenario::host_is_traced(c.host)) {
                return err("a [tail] block needs a ZygOS-family simulator case; \
                     only those worlds are checkpoint-cloneable"
                    .into());
            }
        }
        validate_claims(
            &self.claims,
            &self.cases,
            &self.loads,
            &self.scale,
            self.faults.as_ref(),
            self.telemetry.as_ref(),
        )?;
        if self.check_tolerance <= 0.0 {
            return err("check tolerance must be positive".into());
        }
        Ok(Scenario {
            name: self.name,
            workload: WorkloadSpec {
                service,
                arrivals: self.arrivals,
                cores: self.cores,
                conns: self.conns,
                loads: self.loads,
            },
            cases: self.cases,
            scale: self.scale,
            fleet: self.fleet,
            stages: self.stages,
            faults: self.faults,
            telemetry: self.telemetry,
            search: self.search,
            tail: self.tail,
            claims: self.claims,
            check_tolerance: self.check_tolerance,
        })
    }
}

/// Per-case consistency: every knob must be readable by the chosen host.
fn validate_case(case: &Case, cores: usize) -> Result<(), SpecError> {
    let p = &case.policy;
    let label = &case.label;
    let fail = |msg: String| Err(SpecError::new(format!("case {label:?}: {msg}")));
    let sim_family = matches!(
        case.host,
        HostSpec::Sim(SimHost::Zygos | SimHost::ZygosNoInterrupts | SimHost::Elastic)
    );
    match case.host {
        HostSpec::Model(_) => {
            // Zero-overhead models take no policy at all.
            if p.admission.is_some()
                || p.slo.is_some()
                || p.min_cores.is_some()
                || p.alloc.is_some()
                || p.quantum_us.is_some()
                || p.quantum_events.is_some()
                || p.background_order.is_some()
                || p.rx_batch.is_some()
                || p.randomize_steal_order.is_some()
                || p.ipi_delivery_ns.is_some()
                || p.steal_extra_ns.is_some()
            {
                return fail("queueing models are zero-overhead; they take no policy knobs".into());
            }
        }
        HostSpec::Sim(_) => {
            if p.quantum_events.is_some() {
                return fail(
                    "quantum_events is the live cooperative quantum; \
                     the simulator preempts via quantum_us"
                        .into(),
                );
            }
            if let Some(q) = p.quantum_us {
                if q <= 0.0 {
                    return fail(format!("quantum_us must be positive, got {q}"));
                }
                if !sim_family {
                    return fail("a preemption quantum needs a ZygOS-family host".into());
                }
            }
            if p.background_order.is_some() && p.quantum_us.is_none() {
                return fail(
                    "background_order orders the preempted queue; it needs quantum_us".into(),
                );
            }
            if !case.host.is_elastic() {
                if p.min_cores.is_some() {
                    return fail("min_cores is an elastic knob; host is static".into());
                }
                if p.alloc.is_some() {
                    return fail("alloc picks the elastic controller; host is static".into());
                }
            }
            if let Some(m) = p.min_cores {
                if m == 0 || m > cores {
                    return fail(format!("min_cores {m} out of range [1, {cores}]"));
                }
            }
            // The simulator models the credit gate and the SLO windows
            // only in the ZygOS-family host (zygos.rs); IX/Linux would
            // silently drop the knobs, so they are rejected instead.
            if !sim_family && p.admission.is_some() {
                return fail(
                    "the simulator models the credit gate for ZygOS-family hosts only \
                     (IX/Linux would silently ignore it)"
                        .into(),
                );
            }
            if !sim_family && p.slo.is_some() {
                return fail(
                    "the simulator collects SLO windows for ZygOS-family hosts only \
                     (IX/Linux would silently ignore the classes)"
                        .into(),
                );
            }
            if let Some(a) = &p.admission {
                if a.overcommit {
                    return fail(
                        "credit overcommitment is a live client mechanism; \
                         the simulator models the converged distribution already"
                            .into(),
                    );
                }
            }
        }
        HostSpec::Fleet(_) => {
            // Every fleet base is a ZygOS-family simulator world, so the
            // sim-family knobs (admission, SLO classes, quantum_us) all
            // lower onto each shard unchanged. Parsing already rejects
            // non-family shard ids; this catches programmatic builds.
            if matches!(
                case.host,
                HostSpec::Fleet(
                    SimHost::Staged
                        | SimHost::Ix
                        | SimHost::LinuxPartitioned
                        | SimHost::LinuxFloating
                )
            ) {
                return fail("fleet shards must be ZygOS-family worlds".into());
            }
            if p.quantum_events.is_some() {
                return fail(
                    "quantum_events is the live cooperative quantum; \
                     the simulator preempts via quantum_us"
                        .into(),
                );
            }
            if let Some(q) = p.quantum_us {
                if q <= 0.0 {
                    return fail(format!("quantum_us must be positive, got {q}"));
                }
            }
            if p.background_order.is_some() && p.quantum_us.is_none() {
                return fail(
                    "background_order orders the preempted queue; it needs quantum_us".into(),
                );
            }
            if !case.host.is_elastic() {
                if p.min_cores.is_some() {
                    return fail("min_cores is an elastic knob; host is static".into());
                }
                if p.alloc.is_some() {
                    return fail("alloc picks the elastic controller; host is static".into());
                }
            }
            if let Some(m) = p.min_cores {
                if m == 0 || m > cores {
                    return fail(format!("min_cores {m} out of range [1, {cores}]"));
                }
            }
            if let Some(a) = &p.admission {
                if a.overcommit {
                    return fail(
                        "credit overcommitment is a live client mechanism; \
                         the simulator models the converged distribution already"
                            .into(),
                    );
                }
            }
            if p.fleet_admission.is_some() && p.admission.is_none() {
                return fail(
                    "fleet_admission places the credit pool but no [cases.admission] \
                     gate is armed"
                        .into(),
                );
            }
        }
        HostSpec::Live(host) => {
            if p.quantum_us.is_some() {
                return fail(
                    "the live runtime cannot preempt a closure; \
                     use quantum_events (cooperative) on live:elastic"
                        .into(),
                );
            }
            if p.background_order.is_some() {
                return fail("the live runtime has no preempted background queue".into());
            }
            if p.rx_batch.is_some() || p.ipi_delivery_ns.is_some() || p.steal_extra_ns.is_some() {
                return fail("cost-model knobs are simulator-only".into());
            }
            if p.randomize_steal_order.is_some() {
                return fail("the live idle sweep always randomizes victims".into());
            }
            if host != LiveHost::Elastic {
                if p.quantum_events.is_some() {
                    return fail("quantum_events needs live:elastic".into());
                }
                if p.min_cores.is_some() || p.alloc.is_some() {
                    return fail("elastic knobs on a static live host".into());
                }
            }
            if let Some(q) = p.quantum_events {
                if q == 0 {
                    return fail("quantum_events must be >= 1".into());
                }
            }
            if let Some(m) = p.min_cores {
                if m == 0 || m > cores {
                    return fail(format!("min_cores {m} out of range [1, {cores}]"));
                }
            }
        }
    }
    // Layout and discipline shape a staged pipeline; every other host
    // would silently ignore them.
    if case.host != HostSpec::Sim(SimHost::Staged) && (p.layout.is_some() || p.discipline.is_some())
    {
        return fail("layout/discipline shape a staged pipeline; they need sim:staged".into());
    }
    // Fleet knobs parameterize the balancer and the shard topology;
    // on a single-world host they would silently do nothing.
    if !case.host.is_fleet()
        && (p.routing.is_some()
            || p.fleet_admission.is_some()
            || p.degraded.is_some()
            || p.loss.is_some()
            || p.fanout.is_some())
    {
        return fail("routing/fleet_admission/degraded/loss/fanout need a fleet:* host".into());
    }
    // The closed retry loop is modelled by the ZygOS-family simulator
    // worlds (single-shard or fleeted); every other host is open-loop.
    if p.retry.is_some() && !sim_family && !case.host.is_fleet() {
        return fail(
            "the closed retry loop is modelled by ZygOS-family simulator worlds only \
             (sim:zygos* / elastic / fleet:*)"
                .into(),
        );
    }
    if p.retry.is_none() && (p.retry_jitter.is_some() || p.retry_timeout_us.is_some()) {
        return fail(
            "retry_jitter/retry_timeout_us shape the retry loop; arm `retry` first".into(),
        );
    }
    if let Some(r) = &p.retry {
        // A policy with nothing to feed it never fires: retries are
        // triggered by sheds (admission) or client timeouts.
        if p.admission.is_none() && p.retry_timeout_us.is_none() {
            return fail(
                "a retry policy with nothing to feed it: arm admission (sheds) \
                 or retry_timeout_us (timeouts)"
                    .into(),
            );
        }
        if let Some(t) = p.retry_timeout_us {
            if !(t.is_finite() && t > 0.0) {
                return fail(format!("retry_timeout_us must be positive, got {t}"));
            }
        }
        match r {
            RetryPolicy::Drop => {}
            RetryPolicy::Backoff {
                factor,
                max_attempts,
                ..
            } => {
                if !(factor.is_finite() && *factor >= 1.0) {
                    return fail(format!("backoff factor must be >= 1, got {factor}"));
                }
                if *max_attempts == 0 {
                    return fail("backoff max_attempts must be >= 1".into());
                }
            }
            RetryPolicy::HedgeToDeadline { deadline_us } => {
                if *deadline_us == 0 {
                    return fail("hedge deadline_us must be >= 1".into());
                }
            }
        }
    }
    // Host-independent admission consistency — the headline rejection:
    // a shed location without a gate to shed from.
    if let Some(a) = &p.admission {
        if a.mode == AdmissionMode::ClientSide
            && a.credits.is_none()
            && a.target_us.is_none()
            && p.slo.is_none()
        {
            return fail(
                "client-side admission with no credit pool: set credit_target_us, \
                 a credits override, or SLO classes to derive targets from"
                    .into(),
            );
        }
        if a.credits.is_none() && a.target_us.is_none() && p.slo.is_none() {
            return fail(
                "admission is armed but has no AIMD target: set credit_target_us, \
                 a credits override, or SLO classes"
                    .into(),
            );
        }
        if let Some(t) = a.target_us {
            if t <= 0.0 {
                return fail(format!("credit_target_us must be positive, got {t}"));
            }
        }
    }
    Ok(())
}

/// Claims must be backed by cases that can produce their evidence.
fn validate_claims(
    claims: &Claims,
    cases: &[Case],
    loads: &[f64],
    scale: &ScaleSpec,
    faults: Option<&FaultsSpec>,
    telemetry: Option<&TelemetrySpec>,
) -> Result<(), SpecError> {
    let fail = |msg: &str| Err(SpecError::new(format!("claims: {msg}")));
    let has_admission = |c: &Case| c.policy.admission.is_some();
    let overload_in = |grid: &[f64]| grid.iter().any(|&l| l >= claims.overload_from);
    let needs_overload = claims.admitted_p99_bound_us.is_some()
        || claims.uncontrolled_diverge_past_us.is_some()
        || claims.client_waste_below_server
        || claims.loose_sheds_first
        || claims.loose_floor_max_shed_rate.is_some();
    if needs_overload {
        if !overload_in(loads) {
            return fail("an overload claim needs a load at or above overload_from in the grid");
        }
        if let Some(sl) = &scale.smoke_loads {
            if !overload_in(sl) {
                return fail(
                    "overload claims also apply under --smoke: add an overload point \
                             to smoke_loads",
                );
            }
        }
    }
    if claims.admitted_p99_bound_us.is_some() && !cases.iter().any(has_admission) {
        return fail("admitted_p99_bound_us needs at least one admission-gated case");
    }
    if claims.uncontrolled_diverge_past_us.is_some() && cases.iter().all(has_admission) {
        return fail("uncontrolled_diverge_past_us needs at least one ungated case");
    }
    if claims.client_waste_below_server {
        let mode_of = |c: &Case| c.policy.admission.as_ref().map(|a| a.mode);
        let has = |m| cases.iter().any(|c| mode_of(c) == Some(m));
        if !has(AdmissionMode::ServerEdge) || !has(AdmissionMode::ClientSide) {
            return fail(
                "client_waste_below_server needs one server-edge and one client-side case",
            );
        }
    }
    if claims.loose_sheds_first || claims.loose_floor_max_shed_rate.is_some() {
        // Per-class shed metrics come from the simulator host; a live
        // case cannot back these claims (its report carries no class
        // vectors).
        let multi_tenant = cases.iter().any(|c| {
            matches!(c.host, HostSpec::Sim(_))
                && has_admission(c)
                && c.policy
                    .slo
                    .as_ref()
                    .is_some_and(|s| s.classes().len() >= 2)
        });
        if !multi_tenant {
            return fail(
                "tenant-shedding claims need a simulator admission case with >= 2 SLO classes",
            );
        }
    }
    if claims.elastic_parks_below_load.is_some() && !cases.iter().any(|c| c.host.is_elastic()) {
        return fail("elastic_parks_below_load needs an elastic case");
    }
    if let Some(g) = &claims.fleet_tail_gap {
        let labels = [&g.healthy, &g.degraded, &g.recovered];
        for pair in [(0, 1), (0, 2), (1, 2)] {
            if labels[pair.0] == labels[pair.1] {
                return fail("fleet_tail_gap needs three distinct case labels");
            }
        }
        for label in labels {
            match cases.iter().find(|c| &c.label == label) {
                None => {
                    return Err(SpecError::new(format!(
                        "claims: fleet_tail_gap names unknown case {label:?}"
                    )))
                }
                Some(c) if !c.host.is_fleet() => {
                    return Err(SpecError::new(format!(
                        "claims: fleet_tail_gap case {label:?} is not a fleet:* host"
                    )))
                }
                Some(_) => {}
            }
        }
        if !(g.min_ratio.is_finite() && g.min_ratio >= 1.0) {
            return fail("fleet_tail_gap min_ratio must be >= 1");
        }
        if !(g.min_recovery > 0.0 && g.min_recovery <= 1.0) {
            return fail("fleet_tail_gap min_recovery must be in (0, 1]");
        }
    }
    if let Some(g) = &claims.staged_crossover {
        if g.unified == g.split {
            return fail("staged_crossover needs two distinct case labels");
        }
        for label in [&g.unified, &g.split] {
            match cases.iter().find(|c| &c.label == label) {
                None => {
                    return Err(SpecError::new(format!(
                        "claims: staged_crossover names unknown case {label:?}"
                    )))
                }
                Some(c) if c.host != HostSpec::Sim(SimHost::Staged) => {
                    return Err(SpecError::new(format!(
                        "claims: staged_crossover case {label:?} is not a sim:staged host"
                    )))
                }
                Some(_) => {}
            }
        }
        if !(g.low_ratio.is_finite() && g.low_ratio > 0.0) {
            return fail("staged_crossover low_ratio must be positive");
        }
        if !(g.high_ratio.is_finite() && g.high_ratio >= 1.0) {
            return fail("staged_crossover high_ratio must be >= 1");
        }
        // A crossover needs two distinct loads to cross between — in
        // every grid the check will actually see.
        for grid in [Some(loads), scale.smoke_loads.as_deref()]
            .into_iter()
            .flatten()
        {
            let (min, max) = grid
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &l| {
                    (lo.min(l), hi.max(l))
                });
            if min >= max {
                return fail("staged_crossover needs a grid with two distinct loads");
            }
        }
    }
    if let Some(g) = &claims.retry_storm {
        let labels = [&g.backoff, &g.drop, &g.naive];
        for pair in [(0, 1), (0, 2), (1, 2)] {
            if labels[pair.0] == labels[pair.1] {
                return fail("retry_storm needs three distinct case labels");
            }
        }
        let case_of = |label: &String| -> Result<&Case, SpecError> {
            cases.iter().find(|c| &c.label == label).ok_or_else(|| {
                SpecError::new(format!("claims: retry_storm names unknown case {label:?}"))
            })
        };
        let backoff = case_of(&g.backoff)?;
        if !matches!(backoff.policy.retry, Some(RetryPolicy::Backoff { .. })) {
            return fail("retry_storm backoff case must arm a backoff retry policy");
        }
        let drop = case_of(&g.drop)?;
        if !matches!(drop.policy.retry, None | Some(RetryPolicy::Drop)) {
            return fail("retry_storm drop case must not re-issue (no retry, or \"drop\")");
        }
        let naive = case_of(&g.naive)?;
        if !matches!(
            naive.policy.retry,
            Some(RetryPolicy::Backoff { .. } | RetryPolicy::HedgeToDeadline { .. })
        ) {
            return fail("retry_storm naive case must arm a re-issuing retry policy");
        }
        if !(g.bound_us.is_finite() && g.bound_us > 0.0) {
            return fail("retry_storm bound_us must be positive");
        }
        if !(g.min_goodput_ratio > 0.0 && g.min_goodput_ratio <= 1.0) {
            return fail("retry_storm min_goodput_ratio must be in (0, 1]");
        }
        if !overload_in(loads) {
            return fail("retry_storm is an overload claim: add a load at or above overload_from");
        }
        if let Some(sl) = &scale.smoke_loads {
            if !overload_in(sl) {
                return fail(
                    "retry_storm also applies under --smoke: add an overload point to smoke_loads",
                );
            }
        }
    }
    if let Some(g) = &claims.metastable_recovery {
        if g.gated == g.ungated {
            return fail("metastable_recovery needs two distinct case labels");
        }
        for (label, wants_gate) in [(&g.gated, true), (&g.ungated, false)] {
            match cases.iter().find(|c| &c.label == label) {
                None => {
                    return Err(SpecError::new(format!(
                        "claims: metastable_recovery names unknown case {label:?}"
                    )))
                }
                Some(c) if !Scenario::host_is_traced(c.host) => {
                    return Err(SpecError::new(format!(
                        "claims: metastable_recovery case {label:?} must be a ZygOS-family \
                         simulator host (the claim reads its control-tick series)"
                    )))
                }
                Some(c) if c.policy.admission.is_some() != wants_gate => {
                    return Err(SpecError::new(format!(
                        "claims: metastable_recovery {} case {label:?} must {} admission",
                        if wants_gate { "gated" } else { "ungated" },
                        if wants_gate { "arm" } else { "run without" },
                    )))
                }
                Some(_) => {}
            }
        }
        if g.windows == 0 {
            return fail("metastable_recovery windows must be >= 1");
        }
        if faults.and_then(|f| f.burst).is_none() {
            return fail("metastable_recovery recovers from the [faults] burst; arm one");
        }
        let series_ok = telemetry.is_some_and(|t| {
            t.series.contains(&SeriesKind::WindowP99)
                && t.series.contains(&SeriesKind::CreditCapacity)
        });
        if !series_ok {
            return fail(
                "metastable_recovery reads the window_p99_us and credit_capacity series; \
                 list both in [telemetry]",
            );
        }
    }
    if let Some(g) = &claims.scatter_gather {
        let labels = [&g.base, &g.fanned, &g.recovered];
        for pair in [(0, 1), (0, 2), (1, 2)] {
            if labels[pair.0] == labels[pair.1] {
                return fail("scatter_gather needs three distinct case labels");
            }
        }
        let case_of = |label: &String| -> Result<&Case, SpecError> {
            match cases.iter().find(|c| &c.label == label) {
                None => Err(SpecError::new(format!(
                    "claims: scatter_gather names unknown case {label:?}"
                ))),
                Some(c) if !c.host.is_fleet() => Err(SpecError::new(format!(
                    "claims: scatter_gather case {label:?} is not a fleet:* host"
                ))),
                Some(c) => Ok(c),
            }
        };
        if case_of(&g.base)?.policy.fanout.unwrap_or(1) != 1 {
            return fail("scatter_gather base case must run fan-out 1");
        }
        for label in [&g.fanned, &g.recovered] {
            if case_of(label)?.policy.fanout.unwrap_or(1) < 2 {
                return Err(SpecError::new(format!(
                    "claims: scatter_gather case {label:?} must fan out (fanout >= 2)"
                )));
            }
        }
        if !(g.min_amplification.is_finite() && g.min_amplification >= 1.0) {
            return fail("scatter_gather min_amplification must be >= 1");
        }
        if !(g.min_recovery > 0.0 && g.min_recovery <= 1.0) {
            return fail("scatter_gather min_recovery must be in (0, 1]");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use zygos_load::slo::Slo;
    use zygos_load::source::Phase;

    fn base() -> ScenarioBuilder {
        Scenario::builder("t")
            .service(ServiceDist::exponential_us(10.0))
            .loads(vec![0.5])
    }

    #[test]
    fn minimal_scenario_builds() {
        let s = base().case(Case::sim("zygos", SimHost::Zygos)).build();
        let s = s.expect("valid");
        assert_eq!(s.cases.len(), 1);
        assert_eq!(s.cases[0].host.id(), "sim:zygos");
    }

    #[test]
    fn host_ids_round_trip() {
        for host in [
            HostSpec::Sim(SimHost::Zygos),
            HostSpec::Sim(SimHost::Elastic),
            HostSpec::Sim(SimHost::LinuxFloating),
            HostSpec::Sim(SimHost::Staged),
            HostSpec::Live(LiveHost::Elastic),
            HostSpec::Live(LiveHost::Partitioned),
            HostSpec::Model(Policy::CentralFcfs),
            HostSpec::Model(Policy::PartitionedPs),
        ] {
            assert_eq!(HostSpec::parse(&host.id()).expect("parses"), host);
        }
        assert!(HostSpec::parse("sim:does-not-exist").is_err());
    }

    #[test]
    fn contradictory_specs_are_rejected() {
        // Client-side admission with no pool to draw credits from.
        let e = base()
            .case(Case::sim("c", SimHost::Zygos).admission(AdmissionMode::ClientSide))
            .build()
            .expect_err("must reject");
        assert!(e.to_string().contains("no credit pool"), "{e}");
        // A preemption quantum on a host that cannot preempt.
        assert!(base()
            .case(Case::sim("q", SimHost::Ix).quantum_us(25.0))
            .build()
            .is_err());
        assert!(base()
            .case(Case::live("lq", LiveHost::Zygos).quantum_us(25.0))
            .build()
            .is_err());
        // Elastic knobs on a static host.
        assert!(base()
            .case(Case::sim("m", SimHost::Zygos).min_cores(2))
            .build()
            .is_err());
        // Background order without a quantum.
        assert!(base()
            .case(Case::sim("b", SimHost::Zygos).background_order(BackgroundOrder::Srpt))
            .build()
            .is_err());
        // Policy knobs on a zero-overhead model.
        assert!(base()
            .case(Case::model("p", Policy::CentralFcfs).rx_batch(64))
            .build()
            .is_err());
        // Overcommitment in the simulator.
        assert!(base()
            .case(
                Case::sim("o", SimHost::Zygos)
                    .admission(AdmissionMode::ClientSide)
                    .credit_target_us(70.0)
                    .overcommit()
            )
            .build()
            .is_err());
        // Duplicate labels.
        assert!(base()
            .case(Case::sim("x", SimHost::Zygos))
            .case(Case::sim("x", SimHost::Ix))
            .build()
            .is_err());
    }

    #[test]
    fn retry_specs_validate() {
        let backoff = RetryPolicy::Backoff {
            base_us: 20,
            factor: 2.0,
            max_attempts: 4,
        };
        // A retry policy with nothing to feed it (no sheds, no timeouts).
        let e = base()
            .case(Case::sim("r", SimHost::Zygos).retry(backoff))
            .build()
            .expect_err("nothing feeds it");
        assert!(e.to_string().contains("nothing to feed"), "{e}");
        // Retry on hosts that do not model the closed loop.
        for c in [
            Case::sim("ix", SimHost::Ix)
                .retry(backoff)
                .retry_timeout_us(500.0),
            Case::live("lv", LiveHost::Zygos)
                .retry(backoff)
                .retry_timeout_us(500.0),
        ] {
            assert!(base().case(c).build().is_err());
        }
        // Jitter/timeout without a policy to shape.
        assert!(base()
            .case(Case::sim("j", SimHost::Zygos).retry_jitter(false))
            .build()
            .is_err());
        assert!(base()
            .case(Case::sim("t", SimHost::Zygos).retry_timeout_us(500.0))
            .build()
            .is_err());
        // Degenerate policy parameters.
        assert!(base()
            .case(
                Case::sim("f", SimHost::Zygos)
                    .retry(RetryPolicy::Backoff {
                        base_us: 20,
                        factor: 0.5,
                        max_attempts: 4,
                    })
                    .retry_timeout_us(500.0)
            )
            .build()
            .is_err());
        assert!(base()
            .case(
                Case::sim("h", SimHost::Zygos)
                    .retry(RetryPolicy::HedgeToDeadline { deadline_us: 0 })
                    .retry_timeout_us(500.0)
            )
            .build()
            .is_err());
        // Timeout-fed retry on a plain sim host builds.
        base()
            .case(
                Case::sim("ok", SimHost::Zygos)
                    .retry(backoff)
                    .retry_timeout_us(500.0),
            )
            .build()
            .expect("valid");
    }

    #[test]
    fn adversarial_claims_validate() {
        let backoff = RetryPolicy::Backoff {
            base_us: 20,
            factor: 2.0,
            max_attempts: 4,
        };
        let storm = |b: ScenarioBuilder| {
            b.loads(vec![0.5, 1.4])
                .case(
                    Case::sim("backoff", SimHost::Zygos)
                        .admission(AdmissionMode::ServerEdge)
                        .credit_target_us(70.0)
                        .retry(backoff),
                )
                .case(
                    Case::sim("drop", SimHost::Zygos)
                        .admission(AdmissionMode::ServerEdge)
                        .credit_target_us(70.0),
                )
                .case(
                    Case::sim("naive", SimHost::Zygos)
                        .retry(RetryPolicy::Backoff {
                            base_us: 1,
                            factor: 1.0,
                            max_attempts: 8,
                        })
                        .retry_timeout_us(400.0),
                )
        };
        let claim = |backoff: &str, drop: &str, naive: &str| RetryStormClaim {
            backoff: backoff.into(),
            drop: drop.into(),
            naive: naive.into(),
            bound_us: 400.0,
            min_goodput_ratio: 0.8,
        };
        storm(base())
            .claims(Claims {
                retry_storm: Some(claim("backoff", "drop", "naive")),
                ..Claims::default()
            })
            .build()
            .expect("valid");
        // Role mismatches: the drop case re-issues, the naive one drops.
        let e = storm(base())
            .claims(Claims {
                retry_storm: Some(claim("drop", "backoff", "naive")),
                ..Claims::default()
            })
            .build()
            .expect_err("roles swapped");
        assert!(e.to_string().contains("backoff retry policy"), "{e}");
        // No overload point to read the storm at.
        assert!(storm(base())
            .smoke_loads(vec![0.5])
            .claims(Claims {
                retry_storm: Some(claim("backoff", "drop", "naive")),
                ..Claims::default()
            })
            .build()
            .is_err());

        let meta_claim = MetastableRecoveryClaim {
            gated: "gated".into(),
            ungated: "ungated".into(),
            windows: 4,
        };
        let twins = |b: ScenarioBuilder| {
            b.case(
                Case::sim("gated", SimHost::Zygos)
                    .admission(AdmissionMode::ServerEdge)
                    .credit_target_us(70.0)
                    .retry(backoff),
            )
            .case(
                Case::sim("ungated", SimHost::Zygos)
                    .retry(backoff)
                    .retry_timeout_us(400.0),
            )
            .faults(FaultsSpec {
                burst: Some((2_000.0, 1_000.0, 1.5)),
                ..FaultsSpec::default()
            })
        };
        let series = TelemetrySpec {
            trace: false,
            series: vec![SeriesKind::WindowP99, SeriesKind::CreditCapacity],
            ..TelemetrySpec::default()
        };
        twins(base())
            .telemetry(series.clone())
            .claims(Claims {
                metastable_recovery: Some(meta_claim.clone()),
                ..Claims::default()
            })
            .build()
            .expect("valid");
        // Without the burst there is nothing to recover from; without the
        // series there is nothing to read recovery off.
        let e = twins(base())
            .telemetry(series.clone())
            .faults(FaultsSpec {
                slow_clients: Some((0.1, 200.0)),
                ..FaultsSpec::default()
            })
            .claims(Claims {
                metastable_recovery: Some(meta_claim.clone()),
                ..Claims::default()
            })
            .build()
            .expect_err("no burst");
        assert!(e.to_string().contains("burst"), "{e}");
        assert!(twins(base())
            .claims(Claims {
                metastable_recovery: Some(meta_claim),
                ..Claims::default()
            })
            .build()
            .is_err());

        let sg_claim = ScatterGatherClaim {
            base: "m1".into(),
            fanned: "m4".into(),
            recovered: "m4r".into(),
            min_amplification: 1.2,
            min_recovery: 0.3,
        };
        let fanned = |b: ScenarioBuilder| {
            b.case(Case::fleet("m1", SimHost::Zygos))
                .case(Case::fleet("m4", SimHost::Zygos).fanout(4))
                .case(
                    Case::fleet("m4r", SimHost::Zygos)
                        .fanout(4)
                        .routing(RoutePolicy::PowerOfTwoChoices),
                )
                .fleet(FleetSpec { shards: 8 })
        };
        fanned(base())
            .claims(Claims {
                scatter_gather: Some(sg_claim.clone()),
                ..Claims::default()
            })
            .build()
            .expect("valid");
        // The base case must not fan out.
        assert!(fanned(base())
            .claims(Claims {
                scatter_gather: Some(ScatterGatherClaim {
                    base: "m4".into(),
                    fanned: "m1".into(),
                    ..sg_claim
                }),
                ..Claims::default()
            })
            .build()
            .is_err());
    }

    #[test]
    fn fanout_specs_validate() {
        // Fan-out on a non-fleet host.
        assert!(base()
            .case(Case::sim("z", SimHost::Zygos).fanout(2))
            .build()
            .is_err());
        // Fan-out wider than the fleet.
        let e = base()
            .case(Case::fleet("f", SimHost::Zygos).fanout(5))
            .fleet(FleetSpec { shards: 4 })
            .build()
            .expect_err("wider than fleet");
        assert!(e.to_string().contains("exceeds"), "{e}");
        // Fan-out with shard loss.
        assert!(base()
            .case(Case::fleet("f", SimHost::Zygos).fanout(2).loss(0, 500.0))
            .fleet(FleetSpec { shards: 4 })
            .build()
            .is_err());
        base()
            .case(Case::fleet("f", SimHost::Zygos).fanout(4))
            .fleet(FleetSpec { shards: 4 })
            .build()
            .expect("valid");
    }

    #[test]
    fn faults_specs_validate() {
        let burst = FaultsSpec {
            burst: Some((2_000.0, 1_000.0, 1.5)),
            ..FaultsSpec::default()
        };
        // An empty block injects nothing.
        let e = base()
            .case(Case::sim("z", SimHost::Zygos))
            .faults(FaultsSpec::default())
            .build()
            .expect_err("empty faults");
        assert!(e.to_string().contains("injects nothing"), "{e}");
        // Burst and churn both re-plan arrivals.
        assert!(base()
            .case(Case::sim("z", SimHost::Zygos))
            .faults(FaultsSpec {
                churn: Some((5_000.0, 500.0, 3.0)),
                ..burst.clone()
            })
            .build()
            .is_err());
        // Burst needs Poisson arrivals.
        assert!(base()
            .arrivals(ArrivalSpec::Phased(vec![Phase {
                duration_us: 1_000.0,
                rate_factor: 1.0,
            }]))
            .case(Case::sim("z", SimHost::Zygos))
            .faults(burst.clone())
            .build()
            .is_err());
        // Burst and shard loss both re-plan arrivals.
        assert!(base()
            .case(Case::fleet("f", SimHost::Zygos).loss(0, 500.0))
            .fleet(FleetSpec { shards: 2 })
            .faults(burst.clone())
            .build()
            .is_err());
        // Slowdown without a fleet to degrade, and out of range.
        assert!(base()
            .case(Case::sim("z", SimHost::Zygos))
            .faults(FaultsSpec {
                slowdown: Some((0, 3.0)),
                ..FaultsSpec::default()
            })
            .build()
            .is_err());
        assert!(base()
            .case(Case::fleet("f", SimHost::Zygos))
            .fleet(FleetSpec { shards: 2 })
            .faults(FaultsSpec {
                slowdown: Some((2, 3.0)),
                ..FaultsSpec::default()
            })
            .build()
            .is_err());
        // Slow-client fraction outside (0, 1).
        assert!(base()
            .case(Case::sim("z", SimHost::Zygos))
            .faults(FaultsSpec {
                slow_clients: Some((1.5, 200.0)),
                ..FaultsSpec::default()
            })
            .build()
            .is_err());
        // A valid burst rides along untouched.
        let sc = base()
            .case(Case::sim("z", SimHost::Zygos))
            .faults(burst.clone())
            .build()
            .expect("valid");
        assert_eq!(sc.faults, Some(burst));
    }

    #[test]
    fn staged_specs_validate() {
        let stages = || StagedConfig::zygos_equivalent().stages;
        // A staged case with no [[stages]] block to lower.
        let e = base()
            .case(Case::sim("s", SimHost::Staged))
            .build()
            .expect_err("no stages");
        assert!(e.to_string().contains("[[stages]]"), "{e}");
        // A [[stages]] block with no staged case to run it.
        let e = base()
            .case(Case::sim("z", SimHost::Zygos))
            .stages(stages())
            .build()
            .expect_err("no staged case");
        assert!(e.to_string().contains("no sim:staged case"), "{e}");
        // Staged knobs on hosts that would silently drop them.
        let e = base()
            .case(Case::sim("z", SimHost::Zygos).layout(CoreLayout::Unified))
            .build()
            .expect_err("layout on zygos");
        assert!(e.to_string().contains("sim:staged"), "{e}");
        assert!(base()
            .case(Case::sim("ix", SimHost::Ix).discipline(QueueDiscipline::Cfcfs))
            .build()
            .is_err());
        // A layout the pipeline cannot satisfy (split of a 1-stage plan).
        let e = base()
            .case(Case::sim("s", SimHost::Staged).layout(CoreLayout::SplitNet { net_cores: 2 }))
            .stages(stages())
            .build()
            .expect_err("split of single stage");
        assert!(e.to_string().contains("case \"s\""), "{e}");
        // Fleet shards cannot be staged worlds.
        assert!(base()
            .case(Case::fleet("f", SimHost::Staged))
            .fleet(FleetSpec { shards: 2 })
            .build()
            .is_err());
        // A valid staged pair builds, and overrides flow into the plan.
        let sc = base()
            .case(Case::sim("unified", SimHost::Staged).discipline(QueueDiscipline::Cfcfs))
            .case(Case::sim("split", SimHost::Staged).layout(CoreLayout::SplitNet { net_cores: 1 }))
            .stages(StagedConfig::paper_pipeline(&zygos_net::cost::CostModel::zygos()).stages)
            .build()
            .expect("valid");
        let plan = staged_plan(
            sc.stages.as_ref().expect("kept"),
            &sc.case("unified").expect("exists").policy,
        );
        assert!(plan
            .stages
            .iter()
            .all(|s| s.discipline == QueueDiscipline::Cfcfs));
        assert_eq!(plan.layout, CoreLayout::Unified);
    }

    #[test]
    fn staged_crossover_claim_needs_staged_pair() {
        let stages = StagedConfig::zygos_equivalent().stages;
        let claim = |unified: &str, split: &str| Claims {
            staged_crossover: Some(StagedCrossoverClaim {
                unified: unified.into(),
                split: split.into(),
                low_ratio: 1.0,
                high_ratio: 1.1,
            }),
            ..Claims::default()
        };
        let two_loads = || {
            Scenario::builder("t")
                .service(ServiceDist::exponential_us(10.0))
                .loads(vec![0.3, 0.8])
        };
        // Names must exist and be staged hosts.
        let e = two_loads()
            .case(Case::sim("u", SimHost::Staged))
            .stages(stages.clone())
            .claims(claim("u", "missing"))
            .build()
            .expect_err("unknown label");
        assert!(e.to_string().contains("unknown case"), "{e}");
        let e = two_loads()
            .case(Case::sim("u", SimHost::Staged))
            .case(Case::sim("z", SimHost::Zygos))
            .stages(stages.clone())
            .claims(claim("u", "z"))
            .build()
            .expect_err("non-staged label");
        assert!(e.to_string().contains("not a sim:staged"), "{e}");
        // A single-load grid has nothing to cross between.
        let e = base()
            .case(Case::sim("u", SimHost::Staged))
            .case(Case::sim("s", SimHost::Staged))
            .stages(stages.clone())
            .claims(claim("u", "s"))
            .build()
            .expect_err("one load");
        assert!(e.to_string().contains("two distinct loads"), "{e}");
        // The valid shape builds.
        assert!(two_loads()
            .case(Case::sim("u", SimHost::Staged))
            .case(Case::sim("s", SimHost::Staged))
            .stages(stages)
            .claims(claim("u", "s"))
            .build()
            .is_ok());
    }

    #[test]
    fn claims_need_backing_cases() {
        let claims = Claims {
            loose_sheds_first: true,
            ..Claims::default()
        };
        let e = Scenario::builder("t")
            .service(ServiceDist::exponential_us(10.0))
            .loads(vec![1.4])
            .case(Case::sim("z", SimHost::Zygos))
            .claims(claims.clone())
            .build()
            .expect_err("no multi-tenant case");
        assert!(e.to_string().contains("SLO classes"), "{e}");
        // With a backing case it builds.
        let ok = Scenario::builder("t")
            .service(ServiceDist::exponential_us(10.0))
            .loads(vec![1.4])
            .case(
                Case::sim("z", SimHost::Zygos)
                    .admission(AdmissionMode::ServerEdge)
                    .credit_target_us(70.0)
                    .slo(TenantSlos::new(vec![
                        zygos_load::slo::SloClass::new("i", Slo::p99(100.0)),
                        zygos_load::slo::SloClass::new("b", Slo::p99(1000.0)),
                    ])),
            )
            .claims(claims)
            .build();
        assert!(ok.is_ok(), "{ok:?}");
    }

    #[test]
    fn telemetry_needs_a_host_that_records() {
        // An all-off block is contradictory.
        let off = TelemetrySpec {
            trace: false,
            series: Vec::new(),
            ..TelemetrySpec::default()
        };
        let e = base()
            .case(Case::sim("z", SimHost::Zygos))
            .telemetry(off)
            .build()
            .expect_err("records nothing");
        assert!(e.to_string().contains("records nothing"), "{e}");
        // Telemetry over hosts the tracer does not instrument.
        let e = base()
            .case(Case::sim("ix", SimHost::Ix))
            .telemetry(TelemetrySpec::default())
            .build()
            .expect_err("no traced host");
        assert!(e.to_string().contains("ZygOS-family"), "{e}");
        // With a ZygOS-family case it builds and lowers faithfully.
        let sc = base()
            .case(Case::sim("z", SimHost::Zygos))
            .telemetry(TelemetrySpec {
                series: vec![SeriesKind::ActiveCores],
                series_every: 4,
                ..TelemetrySpec::default()
            })
            .build()
            .expect("valid");
        let cfg = sc.telemetry.as_ref().expect("kept").to_config();
        assert!(cfg.trace && !cfg.is_off());
        assert_eq!(cfg.series, vec![SeriesKind::ActiveCores]);
        assert_eq!(cfg.series_every, 4);
    }

    #[test]
    fn overload_claims_need_overload_points() {
        let claims = Claims {
            admitted_p99_bound_us: Some(200.0),
            ..Claims::default()
        };
        let e = base()
            .case(
                Case::sim("c", SimHost::Zygos)
                    .admission(AdmissionMode::ServerEdge)
                    .credit_target_us(70.0),
            )
            .claims(claims)
            .build()
            .expect_err("grid tops out at 0.5");
        assert!(e.to_string().contains("overload"), "{e}");
    }

    #[test]
    fn search_and_tail_blocks_validate() {
        // A valid pair of blocks builds and is carried through.
        let sc = base()
            .case(Case::sim("z", SimHost::Zygos))
            .search(SearchSpec {
                quantile: 0.99,
                bound_us: 100.0,
                resolution: 16,
            })
            .tail(TailSpec {
                load: 0.8,
                ..TailSpec::default()
            })
            .build()
            .expect("valid");
        assert_eq!(sc.search.as_ref().map(|s| s.resolution), Some(16));
        assert_eq!(sc.tail.as_ref().map(|t| t.splits), Some(4));
        // A search over live-only cases has nothing honest to bisect.
        let e = Scenario::builder("t")
            .service(ServiceDist::exponential_us(200.0))
            .loads(vec![0.2])
            .case(Case::live("l", LiveHost::Zygos))
            .search(SearchSpec::default())
            .build()
            .expect_err("live only");
        assert!(e.to_string().contains("deterministic"), "{e}");
        // Tail splitting needs a checkpoint-cloneable (ZygOS-family) case.
        let e = base()
            .case(Case::sim("ix", SimHost::Ix))
            .tail(TailSpec::default())
            .build()
            .expect_err("no zygos-family case");
        assert!(e.to_string().contains("ZygOS-family"), "{e}");
        // Degenerate knobs are rejected.
        assert!(base()
            .case(Case::sim("z", SimHost::Zygos))
            .search(SearchSpec {
                resolution: 1,
                ..SearchSpec::default()
            })
            .build()
            .is_err());
        assert!(base()
            .case(Case::sim("z", SimHost::Zygos))
            .tail(TailSpec {
                levels: vec![40, 40],
                ..TailSpec::default()
            })
            .build()
            .is_err());
        assert!(base()
            .case(Case::sim("z", SimHost::Zygos))
            .tail(TailSpec {
                splits: 1,
                ..TailSpec::default()
            })
            .build()
            .is_err());
    }
}
