//! `zygos_lab` — the scenario plane: one declarative experiment API over
//! every host in the workspace.
//!
//! Before this crate, the experiment matrix of conf_sosp_PrekasKB17's
//! evaluation ({system, load, service distribution, connection count})
//! was expressed three different ways: `zygos_sysim::SysConfig`,
//! `zygos_runtime::RuntimeConfig`, and a dozen fig binaries each
//! re-assembling workload + policy + output plumbing by hand. A
//! [`Scenario`] replaces all three as the way an experiment is
//! *described*:
//!
//! * **one workload** — service distribution plus an arrival process
//!   behind the [`zygos_load::source::ArrivalSource`] trait (Poisson,
//!   piecewise phases, or replay of a timestamped trace such as the
//!   bundled diurnal log in [`traces`]);
//! * **any host** — each [`spec::Case`] runs on the discrete-event
//!   simulator, the live multithreaded runtime, or a zero-overhead
//!   queueing model, and all of them reduce to the same
//!   [`report::Report`] JSON schema;
//! * **one policy vocabulary** — allocation, admission and SLO classes
//!   reuse the `zygos-sched` policy plane types, and the builder rejects
//!   contradictory specs instead of letting a host silently ignore them;
//! * **one regression gate** — `lab run scenarios/*.toml --smoke
//!   --check` evaluates each scenario's [`spec::Claims`] and diffs its
//!   report against a committed baseline, so *adding a scenario file
//!   adds a CI gate*.
//!
//! ```
//! use zygos_lab::{Case, Scenario, SimHost};
//! use zygos_sim::dist::ServiceDist;
//!
//! let sc = Scenario::builder("quick")
//!     .service(ServiceDist::exponential_us(10.0))
//!     .cores(4)
//!     .conns(16)
//!     .loads(vec![0.3])
//!     .requests(4_000, 1_000)
//!     .smoke(1_000, 200)
//!     .case(Case::sim("ZygOS", SimHost::Zygos))
//!     .build()
//!     .expect("valid scenario");
//! let report = zygos_lab::run_scenario(&sc, true).expect("runs");
//! assert!(report.series[0].points[0].p99_us > 40.0);
//! ```

pub mod bench;
pub mod check;
pub mod fromtoml;
pub mod report;
pub mod runner;
pub mod spec;
pub mod toml;
pub mod traces;

pub use bench::{
    check_bench, run_bench, BenchReport, BENCH_BASELINE, PAR_MIN_RATIO, PAR_PAIR,
    REGRESSION_TOLERANCE, TRACE_ON_MAX_OVERHEAD, TRACE_PAIR, WARM_MIN_SPEEDUP, WARM_PAIR,
};
pub use check::{check_baseline, check_claims, check_telemetry};
pub use fromtoml::scenario_from_toml;
pub use report::{PointMetrics, Report, SearchResult, Series, TailResult, TraceSeries};
pub use runner::{
    fleet_config_for, max_load_at_slo, run_case, run_point, run_scenario, run_scenario_threads,
    runtime_config_for, sys_config_for, xy,
};
pub use spec::{
    staged_plan, AdmissionSpec, Case, Claims, FleetGapClaim, FleetSpec, HostSpec, LiveHost,
    PolicySpec, ScaleSpec, Scenario, ScenarioBuilder, SearchSpec, SimHost, SpecError,
    StagedCrossoverClaim, TailSpec, TelemetrySpec, WorkloadSpec,
};
