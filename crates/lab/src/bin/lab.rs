//! `lab` — run declarative scenarios, check claims and baselines.
//!
//! ```text
//! lab run <spec.toml>... [--smoke] [--check] [--baselines DIR] [--write-baselines] [--json]
//! lab bench [--smoke] [--check] [--write] [--out FILE]
//! lab trace <spec.toml> [--smoke] [--chrome FILE]
//! lab gen-trace [--out FILE]
//! ```
//!
//! * `run` executes each scenario (every case × every load) and prints
//!   the unified series in the workspace's grep-friendly layout. With
//!   `--check` it evaluates the scenario's claims and diffs the report
//!   against `DIR/<name>.json` (default `scenarios/baselines`), exiting
//!   nonzero on any violation — the CI gate. `--write-baselines`
//!   (re)writes the baseline files instead of comparing.
//! * `bench` times the canonical experiment-plane workloads (events/sec,
//!   points/sec). With `--check` it compares rates against the committed
//!   `BENCH_expplane.json` baseline and fails on a >30% regression;
//!   `--write` (re)writes that baseline. See `docs/PERFORMANCE.md`.
//! * `trace` re-runs the scenario's ZygOS-family simulator cases with
//!   the lifecycle tracer at full fidelity and prints the p50/p99
//!   sojourn decomposition (queueing vs service vs steal/IPI vs
//!   preemption) per case × load. `--chrome FILE` additionally writes
//!   the raw lifecycle events in Chrome trace-event format — load the
//!   file in `chrome://tracing` or Perfetto. See `docs/OBSERVABILITY.md`.
//! * `gen-trace` regenerates the bundled diurnal trace file.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use zygos_lab::{
    check_baseline, check_bench, check_claims, check_telemetry, run_bench, run_scenario,
    scenario_from_toml, sys_config_for, BenchReport, Report, Scenario, BENCH_BASELINE,
    REGRESSION_TOLERANCE,
};
use zygos_sysim::{run_system, TelemetryConfig};
use zygos_telemetry::{decompose, decomposition_at_quantile, ChromeTrace};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("gen-trace") => cmd_gen_trace(&args[1..]),
        _ => {
            eprintln!(
                "usage: lab run <spec.toml>... [--smoke] [--check] [--baselines DIR] \
                 [--write-baselines] [--json]\n       lab bench [--smoke] [--check] [--write] \
                 [--out FILE]\n       lab trace <spec.toml> [--smoke] [--chrome FILE]\n       \
                 lab gen-trace [--out FILE]"
            );
            ExitCode::from(2)
        }
    }
}

/// `lab trace`: full-fidelity lifecycle tracing of a scenario's
/// simulator cases, independent of whatever `[telemetry]` block the
/// spec carries (tracing here is forced on, series stay off so the
/// engine event stream is untouched).
fn cmd_trace(args: &[String]) -> ExitCode {
    let mut smoke = false;
    let mut chrome: Option<PathBuf> = None;
    let mut spec: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--chrome" => match it.next() {
                Some(p) => chrome = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--chrome needs a path");
                    return ExitCode::from(2);
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}");
                return ExitCode::from(2);
            }
            path if spec.is_none() => spec = Some(PathBuf::from(path)),
            extra => {
                eprintln!("lab trace takes one scenario file (got extra {extra:?})");
                return ExitCode::from(2);
            }
        }
    }
    let Some(spec) = spec else {
        eprintln!("no scenario file given");
        return ExitCode::from(2);
    };
    match run_trace(&spec, smoke, chrome.as_deref()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("lab trace FAILED [{}]: {e}", spec.display());
            ExitCode::FAILURE
        }
    }
}

fn run_trace(spec_path: &Path, smoke: bool, chrome: Option<&Path>) -> Result<(), String> {
    let text = std::fs::read_to_string(spec_path)
        .map_err(|e| format!("reading {}: {e}", spec_path.display()))?;
    let sc: Scenario = scenario_from_toml(&text).map_err(|e| e.to_string())?;
    println!(
        "# lab trace {} ({} scale)",
        sc.name,
        if smoke { "smoke" } else { "full" }
    );
    println!(
        "# columns: scenario\tseries\tload\tquantile\ttotal_us\tqueue_us\tservice_us\t\
         steal_us\tpreempt_us"
    );
    let mut ct = ChromeTrace::new();
    let mut pid = 0u32;
    let mut traced = 0usize;
    for case in &sc.cases {
        if !Scenario::host_is_traced(case.host) {
            continue;
        }
        for &load in sc.loads(smoke) {
            let mut cfg = sys_config_for(&sc, case, load, smoke).map_err(|e| e.to_string())?;
            cfg.telemetry = Some(TelemetryConfig::full_trace());
            let out = run_system(&cfg);
            let tel = out
                .telemetry
                .ok_or_else(|| format!("case {:?} produced no telemetry", case.label))?;
            if tel.dropped > 0 {
                eprintln!(
                    "# note: {} @ load {:.2} dropped {} lifecycle events (ring full)",
                    case.label, load, tel.dropped
                );
            }
            let mut decomps = decompose(&tel.events);
            for q in [0.50, 0.99] {
                if let Some(d) = decomposition_at_quantile(&mut decomps, q) {
                    let (queue_us, service_us, steal_us, preempt_us) = d.as_us();
                    println!(
                        "{}\t{}\t{:.4}\tp{:.0}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{:.3}",
                        sc.name,
                        case.label,
                        load,
                        q * 100.0,
                        d.total_ns as f64 / 1_000.0,
                        queue_us,
                        service_us,
                        steal_us,
                        preempt_us,
                    );
                }
            }
            if chrome.is_some() {
                pid += 1;
                ct.add_process(pid, &format!("{} @ load {:.2}", case.label, load));
                ct.add_events(pid, &tel.events);
            }
            traced += 1;
        }
    }
    if traced == 0 {
        return Err(
            "no ZygOS-family simulator case to trace (IX/Linux hosts are not instrumented)"
                .to_string(),
        );
    }
    if let Some(path) = chrome {
        std::fs::write(path, ct.finish())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!(
            "# wrote chrome trace {} ({} process(es))",
            path.display(),
            pid
        );
    }
    Ok(())
}

fn cmd_bench(args: &[String]) -> ExitCode {
    let mut smoke = false;
    let mut check = false;
    let mut write = false;
    let mut out = PathBuf::from(BENCH_BASELINE);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--check" => check = true,
            "--write" => write = true,
            "--out" => match it.next() {
                Some(p) => out = PathBuf::from(p),
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::from(2);
            }
        }
    }
    if check && write {
        eprintln!("--check and --write are mutually exclusive (a write would overwrite the baseline the check compares against)");
        return ExitCode::from(2);
    }
    let report = run_bench(smoke);
    println!(
        "# lab bench ({} scale)",
        if smoke { "smoke" } else { "full" }
    );
    println!("# columns: workload\twall_ms\trate\tunit");
    for e in &report.entries {
        let (rate, unit) = if e.events_per_sec > 0.0 {
            (e.events_per_sec, "events/sec")
        } else {
            (e.points_per_sec, "points/sec")
        };
        println!("{}\t{:.1}\t{:.0}\t{}", e.name, e.wall_ms, rate, unit);
    }
    if write {
        if let Err(e) = std::fs::write(&out, report.to_json()) {
            eprintln!("writing {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        println!("# wrote bench baseline {}", out.display());
        return ExitCode::SUCCESS;
    }
    if check {
        let text = match std::fs::read_to_string(&out) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "no bench baseline {} ({e}); create it with `lab bench --smoke --write`",
                    out.display()
                );
                return ExitCode::FAILURE;
            }
        };
        let baseline = match BenchReport::from_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("parsing {}: {e}", out.display());
                return ExitCode::FAILURE;
            }
        };
        let errs = check_bench(&report, &baseline, REGRESSION_TOLERANCE);
        if !errs.is_empty() {
            for e in errs {
                eprintln!("lab bench FAILED: {e}");
            }
            return ExitCode::FAILURE;
        }
        println!("# lab bench check OK ({} workloads)", report.entries.len());
    }
    ExitCode::SUCCESS
}

fn cmd_gen_trace(args: &[String]) -> ExitCode {
    let mut out = PathBuf::from("crates/lab/traces/diurnal.trace");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(p) => out = PathBuf::from(p),
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::from(2);
            }
        }
    }
    let text = zygos_lab::traces::regenerate_diurnal();
    if let Err(e) = std::fs::write(&out, &text) {
        eprintln!("writing {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!(
        "# wrote {} ({} arrivals, seed {:#x})",
        out.display(),
        zygos_lab::traces::DIURNAL_ARRIVALS,
        zygos_lab::traces::DIURNAL_SEED
    );
    ExitCode::SUCCESS
}

struct RunFlags {
    smoke: bool,
    check: bool,
    write_baselines: bool,
    json: bool,
    baselines: PathBuf,
    specs: Vec<PathBuf>,
}

fn parse_run_flags(args: &[String]) -> Result<RunFlags, String> {
    let mut flags = RunFlags {
        smoke: false,
        check: false,
        write_baselines: false,
        json: false,
        baselines: PathBuf::from("scenarios/baselines"),
        specs: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => flags.smoke = true,
            "--check" => flags.check = true,
            "--write-baselines" => flags.write_baselines = true,
            "--json" => flags.json = true,
            "--baselines" => {
                flags.baselines = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--baselines needs a dir".to_string())?,
                );
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            spec => flags.specs.push(PathBuf::from(spec)),
        }
    }
    if flags.specs.is_empty() {
        return Err("no scenario files given".to_string());
    }
    Ok(flags)
}

fn cmd_run(args: &[String]) -> ExitCode {
    let flags = match parse_run_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let mut failures = 0usize;
    for spec in &flags.specs {
        match run_one(spec, &flags) {
            Ok(errs) if errs.is_empty() => {}
            Ok(errs) => {
                failures += errs.len();
                for e in errs {
                    eprintln!("lab check FAILED [{}]: {e}", spec.display());
                }
            }
            Err(e) => {
                failures += 1;
                eprintln!("lab FAILED [{}]: {e}", spec.display());
            }
        }
    }
    if failures == 0 {
        if flags.check {
            println!("# lab check OK ({} scenario(s))", flags.specs.len());
        }
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Runs one scenario file; returns check violations (empty = pass).
fn run_one(spec_path: &Path, flags: &RunFlags) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(spec_path)
        .map_err(|e| format!("reading {}: {e}", spec_path.display()))?;
    let sc: Scenario = scenario_from_toml(&text).map_err(|e| e.to_string())?;
    let report = run_scenario(&sc, flags.smoke).map_err(|e| e.to_string())?;

    if flags.json {
        print!("{}", report.to_json());
    } else {
        print_report(&sc, &report);
    }

    let mut errs = Vec::new();
    if flags.check || flags.write_baselines {
        errs.extend(check_claims(&sc, &report));
        errs.extend(check_telemetry(&sc, &report));
    }
    if flags.write_baselines {
        let path = flags.baselines.join(format!("{}.json", sc.name));
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
        std::fs::write(&path, report.to_json())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("# wrote baseline {}", path.display());
    } else if flags.check {
        let path = flags.baselines.join(format!("{}.json", sc.name));
        let baseline_text = std::fs::read_to_string(&path).map_err(|e| {
            format!(
                "no baseline {} ({e}); create it with --write-baselines",
                path.display()
            )
        })?;
        let baseline = Report::from_json(&baseline_text)
            .map_err(|e| format!("parsing baseline {}: {e}", path.display()))?;
        errs.extend(check_baseline(&sc, &report, &baseline));
    }
    Ok(errs)
}

/// Prints a report in the workspace's grep-friendly series layout.
fn print_report(sc: &Scenario, report: &Report) {
    println!(
        "# scenario {} ({} mode): {} case(s), arrivals {}",
        report.scenario,
        if report.smoke { "smoke" } else { "full" },
        report.series.len(),
        sc.workload.arrivals.label(),
    );
    println!("# columns: scenario\tseries\tmetric\tload\tvalue");
    for s in &report.series {
        // The [search] and [tail] headline rows: load-free metrics, so
        // the load column carries the search answer / studied load.
        if let Some(sr) = &s.search {
            println!(
                "{}\t{}\tmax_load_at_slo(p{}<={:.0}us)\t{:.4}\t{} probe(s), {} cold",
                report.scenario,
                s.label,
                sr.quantile * 100.0,
                sr.bound_us,
                sr.max_load,
                sr.probes,
                sr.cold_probes,
            );
        }
        if let Some(t) = &s.tail {
            println!(
                "{}\t{}\ttail_p{}_us\t{:.4}\t{:.3}",
                report.scenario,
                s.label,
                t.quantile * 100.0,
                t.load,
                t.value_us,
            );
            println!(
                "{}\t{}\ttail_p{}_brute_us\t{:.4}\t{:.3}",
                report.scenario,
                s.label,
                t.quantile * 100.0,
                t.load,
                t.brute_value_us,
            );
            println!(
                "{}\t{}\ttail_clones\t{:.4}\t{} ({} truncated), {} clone event(s)",
                report.scenario, s.label, t.load, t.clones, t.truncated, t.clone_events,
            );
        }
        for p in &s.points {
            let metrics: [(&str, f64); 7] = [
                ("p99_us", p.p99_us),
                ("p50_us", p.p50_us),
                ("mrps", p.mrps),
                ("shed", p.shed_fraction),
                ("wire_waste_us", p.wasted_wire_us),
                ("cores", p.avg_cores),
                ("steal", p.steal_fraction),
            ];
            for (name, v) in metrics {
                println!(
                    "{}\t{}\t{}\t{:.4}\t{:.3}",
                    report.scenario, s.label, name, p.load, v
                );
            }
            for (c, share) in p.shed_share_by_class.iter().enumerate() {
                println!(
                    "{}\t{}\tshed_share_class{}\t{:.4}\t{:.3}",
                    report.scenario, s.label, c, p.load, share
                );
            }
            // Retry-plane rows only when the client plane actually
            // re-issued or abandoned (open-loop points stay 7 rows).
            if p.retry_rate > 0.0 || p.give_up_rate > 0.0 {
                let retry: [(&str, f64); 3] = [
                    ("retry_rate", p.retry_rate),
                    ("give_up_rate", p.give_up_rate),
                    ("goodput", p.goodput),
                ];
                for (name, v) in retry {
                    println!(
                        "{}\t{}\t{}\t{:.4}\t{:.3}",
                        report.scenario, s.label, name, p.load, v
                    );
                }
            }
            // Staged hosts: the per-stage queueing decomposition, named
            // by the pipeline's own stage names.
            for (i, wait) in p.stage_p99_wait_us.iter().enumerate() {
                let stage = sc
                    .stages
                    .as_ref()
                    .and_then(|st| st.get(i))
                    .map_or_else(|| format!("stage{i}"), |st| st.name.clone());
                println!(
                    "{}\t{}\tstage_p99_wait_us:{}\t{:.4}\t{:.3}",
                    report.scenario, s.label, stage, p.load, wait
                );
            }
            // Decomposition rows only when the point was actually traced
            // (untraced points carry honest zeros, not measurements).
            let decomp: [(&str, f64); 4] = [
                ("p99_queue_us", p.p99_queue_us),
                ("p99_service_us", p.p99_service_us),
                ("p99_steal_us", p.p99_steal_us),
                ("p99_preempt_us", p.p99_preempt_us),
            ];
            if decomp.iter().any(|(_, v)| *v > 0.0) {
                for (name, v) in decomp {
                    println!(
                        "{}\t{}\t{}\t{:.4}\t{:.3}",
                        report.scenario, s.label, name, p.load, v
                    );
                }
            }
            for ts in &p.timeseries {
                println!(
                    "{}\t{}\tseries:{}\t{:.4}\t{} point(s), last {:.3}",
                    report.scenario,
                    s.label,
                    ts.name,
                    p.load,
                    ts.points.len(),
                    ts.points.last().map_or(0.0, |&(_, v)| v),
                );
            }
        }
    }
}
