//! Bundled workload traces.
//!
//! The **diurnal** trace is a timestamped request log whose arrival rate
//! follows one sinusoidal "day" (trough → peak → trough, factors
//! 0.25–1.75 around a unit mean): the workload-replay input behind
//! `fig12_elastic`'s trace panel and the `arrivals = "diurnal"` scenario
//! key. It is committed at `crates/lab/traces/diurnal.trace` and embedded
//! here, so scenarios replay it without caring about working directories.
//!
//! The file is *generated*, by the deterministic
//! [`zygos_load::source::Trace::synthetic_diurnal`] generator —
//! regenerate it with `lab gen-trace` after changing the generator, and
//! the `bundled_trace_matches_generator` test will hold you to it.

use std::sync::{Arc, OnceLock};

use zygos_load::source::Trace;

/// The committed trace text (timestamps in µs, one per line).
pub const DIURNAL_TRACE_TEXT: &str = include_str!("../traces/diurnal.trace");

/// Arrivals in the bundled diurnal trace.
pub const DIURNAL_ARRIVALS: usize = 8192;

/// Generator seed of the bundled diurnal trace.
pub const DIURNAL_SEED: u64 = 0xD1A7;

/// The bundled diurnal trace, parsed once.
pub fn diurnal() -> Arc<Trace> {
    static TRACE: OnceLock<Arc<Trace>> = OnceLock::new();
    Arc::clone(TRACE.get_or_init(|| {
        Arc::new(Trace::parse(DIURNAL_TRACE_TEXT).expect("bundled trace is well-formed"))
    }))
}

/// Regenerates the bundled trace's text (what `lab gen-trace` writes).
pub fn regenerate_diurnal() -> String {
    Trace::synthetic_diurnal(DIURNAL_ARRIVALS, DIURNAL_SEED).to_text()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundled_trace_matches_generator() {
        assert_eq!(
            DIURNAL_TRACE_TEXT,
            regenerate_diurnal(),
            "crates/lab/traces/diurnal.trace is stale — regenerate with `lab gen-trace`"
        );
    }

    #[test]
    fn bundled_trace_parses_with_unit_mean_rate() {
        let t = diurnal();
        assert_eq!(t.len() + 1, DIURNAL_ARRIVALS);
        let rate = t.mean_rate_per_us();
        assert!((rate - 1.0).abs() < 0.1, "mean rate = {rate}");
    }
}
