//! TOML scenario specs → [`crate::spec::Scenario`].
//!
//! The file format (see `docs/SCENARIOS.md` for the full reference):
//!
//! ```toml
//! name = "fig13-overload"
//!
//! [workload]
//! service = "exponential"   # deterministic | bimodal-1 | bimodal-2 | two-point | lognormal
//! mean_us = 10.0
//! cores = 16
//! conns = 2752
//! loads = [0.8, 1.2, 1.4]
//! arrivals = "poisson"      # or "diurnal" (bundled trace), or phases = [[dur_us, factor], ...]
//!
//! [scale]
//! requests = 50_000
//! warmup = 10_000
//! smoke_requests = 8_000
//! smoke_warmup = 2_000
//!
//! [[case]]
//! label = "ZygOS (credits)"
//! host = "sim:zygos"
//! admission = true
//! admission_mode = "server-edge"
//! credit_target_us = 70.0
//!
//! [claims]
//! admitted_p99_bound_us = 200.0
//! ```
//!
//! Every key is checked: unknown keys, wrong types, and contradictory
//! combinations (`admission_mode` without `admission = true`, a quantum
//! on a host that cannot preempt, …) are errors. Everything funnels into
//! [`crate::spec::ScenarioBuilder::build`], so TOML-built and
//! programmatically-built scenarios pass the same validation.

use std::sync::Arc;

use zygos_load::slo::{Slo, SloClass, TenantSlos};
use zygos_load::source::{ArrivalSpec, Phase, Trace};
use zygos_sched::BackgroundOrder;
use zygos_sim::dist::ServiceDist;
use zygos_sysim::config::AllocKind;
use zygos_sysim::AdmissionMode;

use zygos_sysim::SeriesKind;

use zygos_sysim::fleet::AdmissionTopology;
use zygos_sysim::RoutePolicy;

use zygos_sysim::{CoreLayout, QueueDiscipline, StageSpec};

use zygos_load::retry::RetryPolicy;

use crate::spec::{
    Case, Claims, FaultsSpec, FleetGapClaim, FleetSpec, HostSpec, MetastableRecoveryClaim,
    RetryStormClaim, ScatterGatherClaim, Scenario, SearchSpec, SpecError, StagedCrossoverClaim,
    TailSpec, TelemetrySpec,
};
use crate::toml::{self, Table, Value};

/// Parses a scenario from TOML text.
pub fn scenario_from_toml(text: &str) -> Result<Scenario, SpecError> {
    let doc = toml::parse(text).map_err(SpecError::new)?;
    check_keys("top level", &doc.root, &["name"])?;
    for table in doc.tables.keys() {
        if !matches!(
            table.as_str(),
            "workload"
                | "scale"
                | "fleet"
                | "faults"
                | "telemetry"
                | "search"
                | "tail"
                | "claims"
                | "check"
        ) {
            return Err(SpecError::new(format!("unknown table [{table}]")));
        }
    }
    for array in doc.arrays.keys() {
        if !matches!(array.as_str(), "case" | "stages") {
            return Err(SpecError::new(format!("unknown array [[{array}]]")));
        }
    }
    let name = req_str(&doc.root, "name", "top level")?;
    let mut b = Scenario::builder(name);

    let Some(w) = doc.tables.get("workload") else {
        return Err(SpecError::new("missing [workload] table"));
    };
    check_keys(
        "[workload]",
        w,
        &[
            "service",
            "mean_us",
            "fast_us",
            "slow_us",
            "p_fast",
            "cv2",
            "cores",
            "conns",
            "loads",
            "arrivals",
            "trace_file",
            "phases",
        ],
    )?;
    b = b.service(parse_service(w)?);
    b = b.arrivals(parse_arrivals(w)?);
    if let Some(v) = opt_num(w, "cores", "[workload]")? {
        b = b.cores(as_count(v, "cores")?);
    }
    if let Some(v) = opt_num(w, "conns", "[workload]")? {
        b = b.conns(as_count(v, "conns")? as u32);
    }
    b = b.loads(req_num_array(w, "loads", "[workload]")?);

    if let Some(s) = doc.tables.get("scale") {
        check_keys(
            "[scale]",
            s,
            &[
                "requests",
                "warmup",
                "smoke_requests",
                "smoke_warmup",
                "smoke_loads",
                "seed",
            ],
        )?;
        let full_req = opt_num(s, "requests", "[scale]")?;
        let full_warm = opt_num(s, "warmup", "[scale]")?;
        if let (Some(r), Some(wu)) = (full_req, full_warm) {
            b = b.requests(
                as_count(r, "requests")? as u64,
                as_count(wu, "warmup")? as u64,
            );
        } else if full_req.is_some() || full_warm.is_some() {
            return Err(SpecError::new("[scale] requests and warmup come together"));
        }
        let sr = opt_num(s, "smoke_requests", "[scale]")?;
        let sw = opt_num(s, "smoke_warmup", "[scale]")?;
        if let (Some(r), Some(wu)) = (sr, sw) {
            b = b.smoke(
                as_count(r, "smoke_requests")? as u64,
                as_count(wu, "smoke_warmup")? as u64,
            );
        } else if sr.is_some() || sw.is_some() {
            return Err(SpecError::new(
                "[scale] smoke_requests and smoke_warmup come together",
            ));
        }
        if let Some(loads) = s.get("smoke_loads") {
            b = b.smoke_loads(num_array(loads, "smoke_loads")?);
        }
        if let Some(seed) = opt_num(s, "seed", "[scale]")? {
            b = b.seed(as_count(seed, "seed")? as u64);
        }
    }

    let Some(cases) = doc.arrays.get("case") else {
        return Err(SpecError::new("a scenario needs at least one [[case]]"));
    };
    for (i, t) in cases.iter().enumerate() {
        b = b.case(parse_case(t, i)?);
    }

    if let Some(stages) = doc.arrays.get("stages") {
        let mut out = Vec::new();
        for (i, t) in stages.iter().enumerate() {
            let ctx = format!("[[stages]] #{}", i + 1);
            check_keys(
                &ctx,
                t,
                &["name", "batch_fixed_ns", "fixed_ns", "discipline"],
            )?;
            let mut spec = StageSpec {
                name: req_str(t, "name", &ctx)?,
                batch_fixed_ns: 0,
                fixed_ns: 0,
                discipline: QueueDiscipline::default(),
            };
            if let Some(v) = opt_num(t, "batch_fixed_ns", &ctx)? {
                spec.batch_fixed_ns = as_count(v, "batch_fixed_ns")? as u64;
            }
            if let Some(v) = opt_num(t, "fixed_ns", &ctx)? {
                spec.fixed_ns = as_count(v, "fixed_ns")? as u64;
            }
            if let Some(v) = t.get("discipline") {
                spec.discipline = parse_discipline(&str_of(v, "discipline")?, &ctx)?;
            }
            out.push(spec);
        }
        b = b.stages(out);
    }

    if let Some(f) = doc.tables.get("fleet") {
        check_keys("[fleet]", f, &["shards"])?;
        let shards = opt_num(f, "shards", "[fleet]")?
            .ok_or_else(|| SpecError::new("[fleet] needs shards"))?;
        b = b.fleet(FleetSpec {
            shards: as_count(shards, "shards")?,
        });
    }
    if let Some(t) = doc.tables.get("faults") {
        b = b.faults(parse_faults(t)?);
    }
    if let Some(t) = doc.tables.get("telemetry") {
        b = b.telemetry(parse_telemetry(t)?);
    }
    if let Some(t) = doc.tables.get("search") {
        b = b.search(parse_search(t)?);
    }
    if let Some(t) = doc.tables.get("tail") {
        b = b.tail(parse_tail(t)?);
    }
    if let Some(c) = doc.tables.get("claims") {
        b = b.claims(parse_claims(c)?);
    }
    if let Some(c) = doc.tables.get("check") {
        check_keys("[check]", c, &["tolerance"])?;
        if let Some(t) = opt_num(c, "tolerance", "[check]")? {
            b = b.check_tolerance(t);
        }
    }
    b.build()
}

fn parse_service(w: &Table) -> Result<ServiceDist, SpecError> {
    let kind = req_str(w, "service", "[workload]")?;
    let mean = |key: &str| -> Result<f64, SpecError> {
        opt_num(w, key, "[workload]")?
            .ok_or_else(|| SpecError::new(format!("service {kind:?} needs {key}")))
    };
    Ok(match kind.as_str() {
        "deterministic" => ServiceDist::deterministic_us(mean("mean_us")?),
        "exponential" => ServiceDist::exponential_us(mean("mean_us")?),
        "bimodal-1" => ServiceDist::bimodal1_us(mean("mean_us")?),
        "bimodal-2" => ServiceDist::bimodal2_us(mean("mean_us")?),
        "lognormal" => ServiceDist::lognormal_us(mean("mean_us")?, mean("cv2")?),
        "two-point" => ServiceDist::TwoPoint {
            fast_us: mean("fast_us")?,
            slow_us: mean("slow_us")?,
            p_fast: mean("p_fast")?,
        },
        other => {
            return Err(SpecError::new(format!(
                "unknown service distribution {other:?}"
            )))
        }
    })
}

fn parse_arrivals(w: &Table) -> Result<ArrivalSpec, SpecError> {
    let named = w
        .get("arrivals")
        .map(|v| str_of(v, "arrivals"))
        .transpose()?;
    let trace_file = w
        .get("trace_file")
        .map(|v| str_of(v, "trace_file"))
        .transpose()?;
    let phases = w.get("phases");
    let armed = [named.is_some(), trace_file.is_some(), phases.is_some()]
        .iter()
        .filter(|&&b| b)
        .count();
    if armed > 1 {
        return Err(SpecError::new("pick one of arrivals / trace_file / phases"));
    }
    if let Some(path) = trace_file {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| SpecError::new(format!("trace_file {path:?}: {e}")))?;
        let trace = Trace::parse(&text).map_err(SpecError::new)?;
        return Ok(ArrivalSpec::Trace(Arc::new(trace)));
    }
    if let Some(v) = phases {
        let mut out = Vec::new();
        for (i, item) in v
            .as_arr()
            .ok_or_else(|| SpecError::new("phases must be an array"))?
            .iter()
            .enumerate()
        {
            let pair = item.as_arr().filter(|a| a.len() == 2).ok_or_else(|| {
                SpecError::new(format!("phases[{i}] must be [duration_us, factor]"))
            })?;
            out.push(Phase {
                duration_us: pair[0]
                    .as_num()
                    .ok_or_else(|| SpecError::new("phase duration must be a number"))?,
                rate_factor: pair[1]
                    .as_num()
                    .ok_or_else(|| SpecError::new("phase factor must be a number"))?,
            });
        }
        return Ok(ArrivalSpec::Phased(out));
    }
    match named.as_deref() {
        None | Some("poisson") => Ok(ArrivalSpec::Poisson),
        Some("diurnal") => Ok(ArrivalSpec::Trace(crate::traces::diurnal())),
        Some(other) => Err(SpecError::new(format!(
            "unknown arrivals {other:?} (poisson, diurnal, or use trace_file/phases)"
        ))),
    }
}

fn parse_case(t: &Table, index: usize) -> Result<Case, SpecError> {
    let ctx = format!("[[case]] #{}", index + 1);
    check_keys(
        &ctx,
        t,
        &[
            "label",
            "host",
            "min_cores",
            "alloc",
            "quantum_us",
            "quantum_events",
            "background_order",
            "rx_batch",
            "randomize_steal_order",
            "ipi_delivery_ns",
            "steal_extra_ns",
            "admission",
            "admission_mode",
            "credit_target_us",
            "overcommit",
            "slo_classes",
            "slo_bound_us",
            "routing",
            "fleet_admission",
            "degraded",
            "loss",
            "fanout",
            "retry",
            "retry_jitter",
            "retry_timeout_us",
            "layout",
            "net_cores",
            "poll_cores",
            "stack_cores",
            "discipline",
        ],
    )?;
    let label = req_str(t, "label", &ctx)?;
    let host = HostSpec::parse(&req_str(t, "host", &ctx)?)?;
    let mut case = Case {
        label,
        host,
        policy: Default::default(),
    };

    // Admission: `admission = true` arms the gate; `admission_mode`
    // without it is the canonical contradictory spec and is rejected.
    let armed = match t.get("admission") {
        None => false,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| SpecError::new(format!("{ctx}: admission must be true/false")))?,
    };
    let mode = t
        .get("admission_mode")
        .map(|v| str_of(v, "admission_mode"))
        .transpose()?;
    let overcommit = match t.get("overcommit") {
        None => false,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| SpecError::new(format!("{ctx}: overcommit must be true/false")))?,
    };
    if !armed {
        if let Some(m) = &mode {
            return Err(SpecError::new(format!(
                "{ctx}: admission_mode = {m:?} with admission off — arm `admission = true` \
                 or drop the mode"
            )));
        }
        if t.get("credit_target_us").is_some() || overcommit {
            return Err(SpecError::new(format!(
                "{ctx}: credit knobs with admission off"
            )));
        }
    } else {
        let mode = match mode.as_deref() {
            None | Some("server-edge") => AdmissionMode::ServerEdge,
            Some("client-side") => AdmissionMode::ClientSide,
            Some(other) => {
                return Err(SpecError::new(format!(
                    "{ctx}: unknown admission_mode {other:?}"
                )))
            }
        };
        case = case.admission(mode);
        if let Some(target) = opt_num(t, "credit_target_us", &ctx)? {
            case = case.credit_target_us(target);
        }
        if overcommit {
            case = case.overcommit();
            case = case.admission(mode); // overcommit() must not change the mode
        }
    }

    if let Some(v) = opt_num(t, "min_cores", &ctx)? {
        case = case.min_cores(as_count(v, "min_cores")?);
    }
    if let Some(v) = t.get("alloc") {
        case = case.alloc(match str_of(v, "alloc")?.as_str() {
            "utilization" => AllocKind::Utilization,
            "slo-driven" => AllocKind::SloDriven,
            other => return Err(SpecError::new(format!("{ctx}: unknown alloc {other:?}"))),
        });
    }
    if let Some(v) = opt_num(t, "quantum_us", &ctx)? {
        case = case.quantum_us(v);
    }
    if let Some(v) = opt_num(t, "quantum_events", &ctx)? {
        case = case.quantum_events(as_count(v, "quantum_events")?);
    }
    if let Some(v) = t.get("background_order") {
        case = case.background_order(match str_of(v, "background_order")?.as_str() {
            "fcfs" => BackgroundOrder::Fcfs,
            "srpt" => BackgroundOrder::Srpt,
            other => {
                return Err(SpecError::new(format!(
                    "{ctx}: unknown background_order {other:?}"
                )))
            }
        });
    }
    if let Some(v) = opt_num(t, "rx_batch", &ctx)? {
        case = case.rx_batch(as_count(v, "rx_batch")? as u64);
    }
    if let Some(v) = t.get("randomize_steal_order") {
        let randomize = v
            .as_bool()
            .ok_or_else(|| SpecError::new(format!("{ctx}: randomize_steal_order must be bool")))?;
        if !randomize {
            case = case.sequential_steal();
        } else {
            case.policy.randomize_steal_order = Some(true);
        }
    }
    if let Some(v) = opt_num(t, "ipi_delivery_ns", &ctx)? {
        case = case.ipi_delivery_ns(as_count(v, "ipi_delivery_ns")? as u64);
    }
    if let Some(v) = opt_num(t, "steal_extra_ns", &ctx)? {
        case = case.steal_extra_ns(as_count(v, "steal_extra_ns")? as u64);
    }

    // Fleet knobs: balancer policy, admission topology, and the injected
    // shard faults. Host/topology consistency is the builder's job.
    if let Some(v) = t.get("routing") {
        let name = str_of(v, "routing")?;
        case = case
            .routing(RoutePolicy::parse(&name).map_err(|e| SpecError::new(format!("{ctx}: {e}")))?);
    }
    if let Some(v) = t.get("fleet_admission") {
        case = case.fleet_admission(match str_of(v, "fleet_admission")?.as_str() {
            "per-shard" => AdmissionTopology::PerShard,
            "fleet-wide" => AdmissionTopology::FleetWide,
            other => {
                return Err(SpecError::new(format!(
                    "{ctx}: unknown fleet_admission {other:?} (per-shard, fleet-wide)"
                )))
            }
        });
    }
    if let Some(v) = t.get("degraded") {
        let mut out = Vec::new();
        for (i, item) in v
            .as_arr()
            .ok_or_else(|| SpecError::new(format!("{ctx}: degraded must be an array")))?
            .iter()
            .enumerate()
        {
            let pair = item.as_arr().filter(|a| a.len() == 2).ok_or_else(|| {
                SpecError::new(format!("{ctx}: degraded[{i}] must be [shard, factor]"))
            })?;
            let shard = pair[0]
                .as_num()
                .ok_or_else(|| SpecError::new(format!("{ctx}: degraded shard must be a number")))?;
            let factor = pair[1].as_num().ok_or_else(|| {
                SpecError::new(format!("{ctx}: degradation factor must be a number"))
            })?;
            out.push((as_count(shard, "degraded shard")?, factor));
        }
        if out.is_empty() {
            return Err(SpecError::new(format!("{ctx}: degraded is empty")));
        }
        case = case.degraded(out);
    }
    if let Some(v) = t.get("loss") {
        let pair = v
            .as_arr()
            .filter(|a| a.len() == 2)
            .ok_or_else(|| SpecError::new(format!("{ctx}: loss must be [shard, at_us]")))?;
        let shard = pair[0]
            .as_num()
            .ok_or_else(|| SpecError::new(format!("{ctx}: lost shard must be a number")))?;
        let at_us = pair[1]
            .as_num()
            .ok_or_else(|| SpecError::new(format!("{ctx}: loss time must be a number")))?;
        case = case.loss(as_count(shard, "lost shard")?, at_us);
    }
    if let Some(v) = opt_num(t, "fanout", &ctx)? {
        case = case.fanout(as_count(v, "fanout")?);
    }

    // Retry-plane knobs: the closed feedback loop, its jitter, and the
    // client timeout that feeds it.
    if let Some(v) = t.get("retry") {
        case = case.retry(parse_retry(v, &ctx)?);
    }
    if let Some(v) = t.get("retry_jitter") {
        let on = v
            .as_bool()
            .ok_or_else(|| SpecError::new(format!("{ctx}: retry_jitter must be true/false")))?;
        case = case.retry_jitter(on);
    }
    if let Some(v) = opt_num(t, "retry_timeout_us", &ctx)? {
        case = case.retry_timeout_us(v);
    }

    // Staged-pipeline knobs: the layout plus the core counts that size
    // it, and the whole-pipeline discipline override.
    let net_cores = opt_num(t, "net_cores", &ctx)?;
    let poll_cores = opt_num(t, "poll_cores", &ctx)?;
    let stack_cores = opt_num(t, "stack_cores", &ctx)?;
    let layout = t.get("layout").map(|v| str_of(v, "layout")).transpose()?;
    match layout.as_deref() {
        None => {
            if net_cores.is_some() || poll_cores.is_some() || stack_cores.is_some() {
                return Err(SpecError::new(format!(
                    "{ctx}: net_cores/poll_cores/stack_cores size a layout; set `layout` first"
                )));
            }
        }
        Some("unified") => {
            if net_cores.is_some() || poll_cores.is_some() || stack_cores.is_some() {
                return Err(SpecError::new(format!(
                    "{ctx}: the unified layout takes no core counts"
                )));
            }
            case = case.layout(CoreLayout::Unified);
        }
        Some("split-net") => {
            if poll_cores.is_some() || stack_cores.is_some() {
                return Err(SpecError::new(format!(
                    "{ctx}: poll_cores/stack_cores size the split-full layout"
                )));
            }
            let n = net_cores.ok_or_else(|| {
                SpecError::new(format!("{ctx}: layout \"split-net\" needs net_cores"))
            })?;
            case = case.layout(CoreLayout::SplitNet {
                net_cores: as_count(n, "net_cores")?,
            });
        }
        Some("split-full") => {
            if net_cores.is_some() {
                return Err(SpecError::new(format!(
                    "{ctx}: net_cores sizes the split-net layout"
                )));
            }
            let p = poll_cores.ok_or_else(|| {
                SpecError::new(format!("{ctx}: layout \"split-full\" needs poll_cores"))
            })?;
            let s = stack_cores.ok_or_else(|| {
                SpecError::new(format!("{ctx}: layout \"split-full\" needs stack_cores"))
            })?;
            case = case.layout(CoreLayout::SplitFull {
                poll_cores: as_count(p, "poll_cores")?,
                stack_cores: as_count(s, "stack_cores")?,
            });
        }
        Some(other) => {
            return Err(SpecError::new(format!(
                "{ctx}: unknown layout {other:?} (unified, split-net, split-full)"
            )))
        }
    }
    if let Some(v) = t.get("discipline") {
        case = case.discipline(parse_discipline(&str_of(v, "discipline")?, &ctx)?);
    }

    // SLO classes: either a full list or a uniform single-bound shortcut.
    if t.get("slo_classes").is_some() && t.get("slo_bound_us").is_some() {
        return Err(SpecError::new(format!(
            "{ctx}: pick one of slo_classes / slo_bound_us"
        )));
    }
    if let Some(v) = opt_num(t, "slo_bound_us", &ctx)? {
        case = case.slo(TenantSlos::uniform(Slo::p99(v)));
    }
    if let Some(v) = t.get("slo_classes") {
        let mut classes = Vec::new();
        for (i, item) in v
            .as_arr()
            .ok_or_else(|| SpecError::new(format!("{ctx}: slo_classes must be an array")))?
            .iter()
            .enumerate()
        {
            let pair = item.as_arr().filter(|a| a.len() == 2).ok_or_else(|| {
                SpecError::new(format!(
                    "{ctx}: slo_classes[{i}] must be [name, p99_bound_us]"
                ))
            })?;
            let name = pair[0]
                .as_str()
                .ok_or_else(|| SpecError::new(format!("{ctx}: class name must be a string")))?;
            let bound = pair[1]
                .as_num()
                .ok_or_else(|| SpecError::new(format!("{ctx}: class bound must be a number")))?;
            classes.push(SloClass::new(name, Slo::p99(bound)));
        }
        if classes.is_empty() {
            return Err(SpecError::new(format!("{ctx}: slo_classes is empty")));
        }
        case = case.slo(TenantSlos::new(classes));
    }
    Ok(case)
}

fn parse_discipline(name: &str, ctx: &str) -> Result<QueueDiscipline, SpecError> {
    QueueDiscipline::parse(name).ok_or_else(|| {
        SpecError::new(format!(
            "{ctx}: unknown discipline {name:?} (cfcfs, dfcfs, dfcfs-steal)"
        ))
    })
}

/// `[telemetry]`: `trace` (default true — writing the block means you
/// want the decomposition), `sample_period`, `series` (registry names),
/// `series_every`, `max_series_points`.
fn parse_telemetry(t: &Table) -> Result<TelemetrySpec, SpecError> {
    check_keys(
        "[telemetry]",
        t,
        &[
            "trace",
            "sample_period",
            "series",
            "series_every",
            "max_series_points",
        ],
    )?;
    let mut spec = TelemetrySpec::default();
    if let Some(v) = t.get("trace") {
        spec.trace = v
            .as_bool()
            .ok_or_else(|| SpecError::new("[telemetry] trace must be true/false"))?;
    }
    if let Some(v) = opt_num(t, "sample_period", "[telemetry]")? {
        spec.sample_period = as_count(v, "sample_period")? as u32;
    }
    if let Some(v) = opt_num(t, "series_every", "[telemetry]")? {
        spec.series_every = as_count(v, "series_every")? as u32;
    }
    if let Some(v) = opt_num(t, "max_series_points", "[telemetry]")? {
        spec.max_series_points = as_count(v, "max_series_points")?;
    }
    if let Some(v) = t.get("series") {
        let items = v
            .as_arr()
            .ok_or_else(|| SpecError::new("[telemetry] series must be an array of strings"))?;
        for item in items {
            let name = item
                .as_str()
                .ok_or_else(|| SpecError::new("[telemetry] series must hold strings"))?;
            let kind = SeriesKind::parse(name).ok_or_else(|| {
                SpecError::new(format!(
                    "[telemetry] unknown series {name:?} (admitted_rate, credit_capacity, \
                     active_cores, shed_by_class)"
                ))
            })?;
            spec.series.push(kind);
        }
    }
    Ok(spec)
}

/// `[search]`: `metric` (`"p50"` / `"p99"` / `"p999"`, default p99),
/// `bound_us` (required), `resolution` (default 16).
fn parse_search(t: &Table) -> Result<SearchSpec, SpecError> {
    check_keys("[search]", t, &["metric", "bound_us", "resolution"])?;
    let mut spec = SearchSpec::default();
    if let Some(v) = t.get("metric") {
        spec.quantile = match str_of(v, "metric")?.as_str() {
            "p50" => 0.50,
            "p99" => 0.99,
            "p999" => 0.999,
            other => {
                return Err(SpecError::new(format!(
                    "[search] unknown metric {other:?} (p50, p99, p999)"
                )))
            }
        };
    }
    spec.bound_us = opt_num(t, "bound_us", "[search]")?
        .ok_or_else(|| SpecError::new("[search] needs bound_us"))?;
    if let Some(v) = opt_num(t, "resolution", "[search]")? {
        spec.resolution = as_count(v, "resolution")?;
    }
    Ok(spec)
}

/// `[tail]`: `load` (required), `quantile`, `levels`, `splits`,
/// `check_every`, `clone_budget` — see `docs/TAIL.md` for how to pick
/// the levels.
fn parse_tail(t: &Table) -> Result<TailSpec, SpecError> {
    check_keys(
        "[tail]",
        t,
        &[
            "load",
            "quantile",
            "levels",
            "splits",
            "check_every",
            "clone_budget",
        ],
    )?;
    let mut spec = TailSpec {
        load: opt_num(t, "load", "[tail]")?
            .ok_or_else(|| SpecError::new("[tail] needs a load to study"))?,
        ..TailSpec::default()
    };
    if let Some(v) = opt_num(t, "quantile", "[tail]")? {
        spec.quantile = v;
    }
    if let Some(v) = t.get("levels") {
        spec.levels = num_array(v, "levels")?
            .into_iter()
            .map(|l| as_count(l, "levels"))
            .collect::<Result<_, _>>()?;
    }
    if let Some(v) = opt_num(t, "splits", "[tail]")? {
        spec.splits = as_count(v, "splits")?;
    }
    if let Some(v) = opt_num(t, "check_every", "[tail]")? {
        spec.check_every = as_count(v, "check_every")? as u64;
    }
    if let Some(v) = opt_num(t, "clone_budget", "[tail]")? {
        spec.clone_budget = as_count(v, "clone_budget")? as u64;
    }
    Ok(spec)
}

fn parse_claims(c: &Table) -> Result<Claims, SpecError> {
    check_keys(
        "[claims]",
        c,
        &[
            "overload_from",
            "admitted_p99_bound_us",
            "uncontrolled_diverge_past_us",
            "client_waste_below_server",
            "loose_sheds_first",
            "loose_floor_max_shed_rate",
            "elastic_parks_below_load",
            "fleet_tail_gap",
            "staged_crossover",
            "retry_storm",
            "metastable_recovery",
            "scatter_gather",
        ],
    )?;
    let mut claims = Claims::default();
    if let Some(v) = opt_num(c, "overload_from", "[claims]")? {
        claims.overload_from = v;
    }
    claims.admitted_p99_bound_us = opt_num(c, "admitted_p99_bound_us", "[claims]")?;
    claims.uncontrolled_diverge_past_us = opt_num(c, "uncontrolled_diverge_past_us", "[claims]")?;
    claims.loose_floor_max_shed_rate = opt_num(c, "loose_floor_max_shed_rate", "[claims]")?;
    claims.elastic_parks_below_load = opt_num(c, "elastic_parks_below_load", "[claims]")?;
    for (key, slot) in [
        (
            "client_waste_below_server",
            &mut claims.client_waste_below_server,
        ),
        ("loose_sheds_first", &mut claims.loose_sheds_first),
    ] {
        if let Some(v) = c.get(key) {
            *slot = v
                .as_bool()
                .ok_or_else(|| SpecError::new(format!("[claims] {key} must be bool")))?;
        }
    }
    if let Some(v) = c.get("fleet_tail_gap") {
        let items = v.as_arr().filter(|a| a.len() == 5).ok_or_else(|| {
            SpecError::new(
                "[claims] fleet_tail_gap must be \
                 [healthy, degraded, recovered, min_ratio, min_recovery]",
            )
        })?;
        let label = |i: usize, what: &str| {
            items[i]
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| SpecError::new(format!("fleet_tail_gap {what} must be a label")))
        };
        let num = |i: usize, what: &str| {
            items[i]
                .as_num()
                .ok_or_else(|| SpecError::new(format!("fleet_tail_gap {what} must be a number")))
        };
        claims.fleet_tail_gap = Some(FleetGapClaim {
            healthy: label(0, "healthy")?,
            degraded: label(1, "degraded")?,
            recovered: label(2, "recovered")?,
            min_ratio: num(3, "min_ratio")?,
            min_recovery: num(4, "min_recovery")?,
        });
    }
    if let Some(v) = c.get("staged_crossover") {
        let items = v.as_arr().filter(|a| a.len() == 4).ok_or_else(|| {
            SpecError::new(
                "[claims] staged_crossover must be \
                 [unified, split, low_ratio, high_ratio]",
            )
        })?;
        let label = |i: usize, what: &str| {
            items[i]
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| SpecError::new(format!("staged_crossover {what} must be a label")))
        };
        let num = |i: usize, what: &str| {
            items[i]
                .as_num()
                .ok_or_else(|| SpecError::new(format!("staged_crossover {what} must be a number")))
        };
        claims.staged_crossover = Some(StagedCrossoverClaim {
            unified: label(0, "unified")?,
            split: label(1, "split")?,
            low_ratio: num(2, "low_ratio")?,
            high_ratio: num(3, "high_ratio")?,
        });
    }
    if let Some(v) = c.get("retry_storm") {
        let items = v.as_arr().filter(|a| a.len() == 5).ok_or_else(|| {
            SpecError::new(
                "[claims] retry_storm must be \
                 [backoff, drop, naive, bound_us, min_goodput_ratio]",
            )
        })?;
        let label = |i: usize, what: &str| {
            items[i]
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| SpecError::new(format!("retry_storm {what} must be a label")))
        };
        let num = |i: usize, what: &str| {
            items[i]
                .as_num()
                .ok_or_else(|| SpecError::new(format!("retry_storm {what} must be a number")))
        };
        claims.retry_storm = Some(RetryStormClaim {
            backoff: label(0, "backoff")?,
            drop: label(1, "drop")?,
            naive: label(2, "naive")?,
            bound_us: num(3, "bound_us")?,
            min_goodput_ratio: num(4, "min_goodput_ratio")?,
        });
    }
    if let Some(v) = c.get("metastable_recovery") {
        let items = v.as_arr().filter(|a| a.len() == 3).ok_or_else(|| {
            SpecError::new("[claims] metastable_recovery must be [gated, ungated, windows]")
        })?;
        let label = |i: usize, what: &str| {
            items[i].as_str().map(str::to_string).ok_or_else(|| {
                SpecError::new(format!("metastable_recovery {what} must be a label"))
            })
        };
        let windows = items[2]
            .as_num()
            .ok_or_else(|| SpecError::new("metastable_recovery windows must be a number"))?;
        claims.metastable_recovery = Some(MetastableRecoveryClaim {
            gated: label(0, "gated")?,
            ungated: label(1, "ungated")?,
            windows: as_count(windows, "metastable_recovery windows")?,
        });
    }
    if let Some(v) = c.get("scatter_gather") {
        let items = v.as_arr().filter(|a| a.len() == 5).ok_or_else(|| {
            SpecError::new(
                "[claims] scatter_gather must be \
                 [base, fanned, recovered, min_amplification, min_recovery]",
            )
        })?;
        let label = |i: usize, what: &str| {
            items[i]
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| SpecError::new(format!("scatter_gather {what} must be a label")))
        };
        let num = |i: usize, what: &str| {
            items[i]
                .as_num()
                .ok_or_else(|| SpecError::new(format!("scatter_gather {what} must be a number")))
        };
        claims.scatter_gather = Some(ScatterGatherClaim {
            base: label(0, "base")?,
            fanned: label(1, "fanned")?,
            recovered: label(2, "recovered")?,
            min_amplification: num(3, "min_amplification")?,
            min_recovery: num(4, "min_recovery")?,
        });
    }
    Ok(claims)
}

/// `[faults]`: scenario-wide adversarial injections — `burst`
/// `[at_us, duration_us, factor]`, `churn` `[interval_us, spike_us,
/// factor]`, `slow_clients` `[fraction, stall_us]`, `slowdown`
/// `[shard, factor]`.
fn parse_faults(t: &Table) -> Result<FaultsSpec, SpecError> {
    check_keys(
        "[faults]",
        t,
        &["burst", "churn", "slow_clients", "slowdown"],
    )?;
    let nums = |v: &Value, n: usize, what: &str, shape: &str| -> Result<Vec<f64>, SpecError> {
        let items = v
            .as_arr()
            .filter(|a| a.len() == n)
            .ok_or_else(|| SpecError::new(format!("[faults] {what} must be {shape}")))?;
        items
            .iter()
            .map(|x| {
                x.as_num()
                    .ok_or_else(|| SpecError::new(format!("[faults] {what} must hold numbers")))
            })
            .collect()
    };
    let mut spec = FaultsSpec::default();
    if let Some(v) = t.get("burst") {
        let p = nums(v, 3, "burst", "[at_us, duration_us, factor]")?;
        spec.burst = Some((p[0], p[1], p[2]));
    }
    if let Some(v) = t.get("churn") {
        let p = nums(v, 3, "churn", "[interval_us, spike_us, factor]")?;
        spec.churn = Some((p[0], p[1], p[2]));
    }
    if let Some(v) = t.get("slow_clients") {
        let p = nums(v, 2, "slow_clients", "[fraction, stall_us]")?;
        spec.slow_clients = Some((p[0], p[1]));
    }
    if let Some(v) = t.get("slowdown") {
        let p = nums(v, 2, "slowdown", "[shard, factor]")?;
        spec.slowdown = Some((as_count(p[0], "slowdown shard")?, p[1]));
    }
    Ok(spec)
}

/// `retry = "drop"`, `["backoff", base_us, factor, max_attempts]`, or
/// `["hedge", deadline_us]`.
fn parse_retry(v: &Value, ctx: &str) -> Result<RetryPolicy, SpecError> {
    let shapes = "\"drop\", [\"backoff\", base_us, factor, max_attempts], \
                  or [\"hedge\", deadline_us]";
    if let Some(s) = v.as_str() {
        return match s {
            "drop" => Ok(RetryPolicy::Drop),
            other => Err(SpecError::new(format!(
                "{ctx}: unknown retry {other:?} ({shapes})"
            ))),
        };
    }
    let items = v
        .as_arr()
        .ok_or_else(|| SpecError::new(format!("{ctx}: retry must be {shapes}")))?;
    let kind = items
        .first()
        .and_then(|x| x.as_str())
        .ok_or_else(|| SpecError::new(format!("{ctx}: retry must be {shapes}")))?;
    let num = |i: usize, what: &str| -> Result<f64, SpecError> {
        items
            .get(i)
            .and_then(|x| x.as_num())
            .ok_or_else(|| SpecError::new(format!("{ctx}: retry {what} must be a number")))
    };
    match kind {
        "backoff" if items.len() == 4 => Ok(RetryPolicy::Backoff {
            base_us: as_count(num(1, "base_us")?, "retry base_us")? as u64,
            factor: num(2, "factor")?,
            max_attempts: as_count(num(3, "max_attempts")?, "retry max_attempts")? as u32,
        }),
        "hedge" if items.len() == 2 => Ok(RetryPolicy::HedgeToDeadline {
            deadline_us: as_count(num(1, "deadline_us")?, "retry deadline_us")? as u64,
        }),
        _ => Err(SpecError::new(format!("{ctx}: retry must be {shapes}"))),
    }
}

// --- small typed readers -------------------------------------------------

fn check_keys(ctx: &str, table: &Table, allowed: &[&str]) -> Result<(), SpecError> {
    for key in table.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(SpecError::new(format!("{ctx}: unknown key {key:?}")));
        }
    }
    Ok(())
}

fn str_of(v: &Value, what: &str) -> Result<String, SpecError> {
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| SpecError::new(format!("{what} must be a string")))
}

fn req_str(t: &Table, key: &str, ctx: &str) -> Result<String, SpecError> {
    t.get(key)
        .ok_or_else(|| SpecError::new(format!("{ctx}: missing {key}")))
        .and_then(|v| str_of(v, key))
}

fn opt_num(t: &Table, key: &str, ctx: &str) -> Result<Option<f64>, SpecError> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_num()
            .map(Some)
            .ok_or_else(|| SpecError::new(format!("{ctx}: {key} must be a number"))),
    }
}

fn num_array(v: &Value, what: &str) -> Result<Vec<f64>, SpecError> {
    v.as_arr()
        .ok_or_else(|| SpecError::new(format!("{what} must be an array")))?
        .iter()
        .map(|x| {
            x.as_num()
                .ok_or_else(|| SpecError::new(format!("{what} must hold numbers")))
        })
        .collect()
}

fn req_num_array(t: &Table, key: &str, ctx: &str) -> Result<Vec<f64>, SpecError> {
    num_array(
        t.get(key)
            .ok_or_else(|| SpecError::new(format!("{ctx}: missing {key}")))?,
        key,
    )
}

fn as_count(v: f64, what: &str) -> Result<usize, SpecError> {
    if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 {
        Ok(v as usize)
    } else {
        Err(SpecError::new(format!(
            "{what} must be a non-negative integer, got {v}"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
name = "mini"
[workload]
service = "exponential"
mean_us = 10.0
cores = 4
conns = 32
loads = [0.3, 0.6]
[[case]]
label = "ZygOS"
host = "sim:zygos"
"#;

    #[test]
    fn minimal_spec_parses() {
        let s = scenario_from_toml(MINIMAL).expect("valid");
        assert_eq!(s.name, "mini");
        assert_eq!(s.workload.cores, 4);
        assert_eq!(s.workload.loads, vec![0.3, 0.6]);
        assert_eq!(s.cases[0].host.id(), "sim:zygos");
    }

    #[test]
    fn admission_mode_without_admission_is_contradictory() {
        let text = MINIMAL.replace(
            "host = \"sim:zygos\"",
            "host = \"sim:zygos\"\nadmission_mode = \"client-side\"",
        );
        let e = scenario_from_toml(&text).expect_err("reject");
        assert!(e.to_string().contains("admission off"), "{e}");
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let text = MINIMAL.replace("mean_us = 10.0", "mean_us = 10.0\nfrobnicate = 3");
        let e = scenario_from_toml(&text).expect_err("reject");
        assert!(e.to_string().contains("frobnicate"), "{e}");
    }

    #[test]
    fn telemetry_block_parses_and_rejects_unknown_series() {
        let text = MINIMAL.to_string()
            + r#"
[telemetry]
series = ["admitted_rate", "active_cores", "shed_by_class"]
series_every = 8
sample_period = 2
"#;
        let s = scenario_from_toml(&text).expect("valid");
        let t = s.telemetry.as_ref().expect("armed");
        assert!(t.trace, "block present defaults the tracer on");
        assert_eq!(t.sample_period, 2);
        assert_eq!(t.series_every, 8);
        assert_eq!(
            t.series,
            vec![
                SeriesKind::AdmittedRate,
                SeriesKind::ActiveCores,
                SeriesKind::ShedByClass
            ]
        );
        let bad = text.replace("\"active_cores\"", "\"warp_factor\"");
        let e = scenario_from_toml(&bad).expect_err("reject");
        assert!(e.to_string().contains("warp_factor"), "{e}");
    }

    #[test]
    fn search_and_tail_tables_parse() {
        let text = MINIMAL.to_string()
            + r#"
[search]
metric = "p999"
bound_us = 250.0
resolution = 32
[tail]
load = 0.6
quantile = 0.9995
levels = [24, 48, 96]
splits = 8
check_every = 32
clone_budget = 500_000
"#;
        let s = scenario_from_toml(&text).expect("valid");
        let search = s.search.as_ref().expect("armed");
        assert_eq!(search.quantile, 0.999);
        assert_eq!(search.bound_us, 250.0);
        assert_eq!(search.resolution, 32);
        let tail = s.tail.as_ref().expect("armed");
        assert_eq!(tail.load, 0.6);
        assert_eq!(tail.levels, vec![24, 48, 96]);
        assert_eq!(tail.splits, 8);
        assert_eq!(tail.check_every, 32);
        assert_eq!(tail.clone_budget, 500_000);
        // Unknown metrics and missing required keys are loud.
        let e = scenario_from_toml(&text.replace("\"p999\"", "\"p42\"")).expect_err("reject");
        assert!(e.to_string().contains("p42"), "{e}");
        let e = scenario_from_toml(&text.replace("bound_us = 250.0", "")).expect_err("reject");
        assert!(e.to_string().contains("bound_us"), "{e}");
        let e = scenario_from_toml(&text.replace("load = 0.6", "")).expect_err("reject");
        assert!(e.to_string().contains("load"), "{e}");
    }

    #[test]
    fn staged_blocks_parse() {
        let text = r#"
name = "staged"
[workload]
service = "two-point"
fast_us = 2.0
slow_us = 200.0
p_fast = 0.95
cores = 16
conns = 256
loads = [0.5, 0.8]
[[stages]]
name = "net_poll"
batch_fixed_ns = 500
fixed_ns = 120
discipline = "dfcfs"
[[stages]]
name = "net_stack"
fixed_ns = 450
discipline = "dfcfs"
[[stages]]
name = "app"
fixed_ns = 830
[[case]]
label = "unified"
host = "sim:staged"
layout = "unified"
discipline = "cfcfs"
[[case]]
label = "split"
host = "sim:staged"
layout = "split-net"
net_cores = 1
[claims]
staged_crossover = ["unified", "split", 1.0, 1.1]
"#;
        let s = scenario_from_toml(text).expect("valid");
        let stages = s.stages.as_ref().expect("parsed");
        assert_eq!(stages.len(), 3);
        assert_eq!(stages[0].name, "net_poll");
        assert_eq!(stages[0].batch_fixed_ns, 500);
        assert_eq!(stages[1].discipline, QueueDiscipline::Dfcfs);
        assert_eq!(stages[2].discipline, QueueDiscipline::DfcfsSteal);
        let unified = s.case("unified").expect("present");
        assert_eq!(unified.policy.layout, Some(CoreLayout::Unified));
        assert_eq!(unified.policy.discipline, Some(QueueDiscipline::Cfcfs));
        let split = s.case("split").expect("present");
        assert_eq!(
            split.policy.layout,
            Some(CoreLayout::SplitNet { net_cores: 1 })
        );
        let claim = s.claims.staged_crossover.as_ref().expect("armed");
        assert_eq!(claim.unified, "unified");
        assert_eq!(claim.high_ratio, 1.1);
        // Contradictions stay loud: core counts without a layout, counts
        // of the wrong layout, unknown discipline names.
        let e = scenario_from_toml(
            &text.replace("layout = \"split-net\"\nnet_cores = 1", "net_cores = 1"),
        )
        .expect_err("counts without layout");
        assert!(e.to_string().contains("set `layout` first"), "{e}");
        let e = scenario_from_toml(&text.replace(
            "layout = \"split-net\"\nnet_cores = 1",
            "layout = \"split-net\"\npoll_cores = 1",
        ))
        .expect_err("wrong counts");
        assert!(e.to_string().contains("split-full"), "{e}");
        let e =
            scenario_from_toml(&text.replace("discipline = \"cfcfs\"", "discipline = \"lifo\""))
                .expect_err("unknown discipline");
        assert!(e.to_string().contains("lifo"), "{e}");
    }

    #[test]
    fn faults_retry_and_adversarial_claims_parse() {
        let text = r#"
name = "storm"
[workload]
service = "exponential"
mean_us = 10.0
cores = 4
conns = 64
loads = [0.5, 1.4]
[faults]
burst = [2000.0, 1000.0, 1.5]
slow_clients = [0.1, 200.0]
[telemetry]
series = ["window_p99_us", "credit_capacity"]
[[case]]
label = "backoff"
host = "sim:zygos"
admission = true
credit_target_us = 70.0
retry = ["backoff", 20, 2.0, 4]
retry_jitter = false
[[case]]
label = "drop"
host = "sim:zygos"
admission = true
credit_target_us = 70.0
retry = "drop"
[[case]]
label = "naive"
host = "sim:zygos"
retry = ["backoff", 1, 1.0, 8]
retry_timeout_us = 400.0
[claims]
retry_storm = ["backoff", "drop", "naive", 400.0, 0.8]
metastable_recovery = ["backoff", "naive", 4]
"#;
        let s = scenario_from_toml(text).expect("valid");
        let faults = s.faults.as_ref().expect("armed");
        assert_eq!(faults.burst, Some((2_000.0, 1_000.0, 1.5)));
        assert_eq!(faults.slow_clients, Some((0.1, 200.0)));
        let backoff = s.case("backoff").expect("present");
        assert_eq!(
            backoff.policy.retry,
            Some(RetryPolicy::Backoff {
                base_us: 20,
                factor: 2.0,
                max_attempts: 4
            })
        );
        assert_eq!(backoff.policy.retry_jitter, Some(false));
        assert_eq!(
            s.case("drop").unwrap().policy.retry,
            Some(RetryPolicy::Drop)
        );
        assert_eq!(
            s.case("naive").unwrap().policy.retry_timeout_us,
            Some(400.0)
        );
        let storm = s.claims.retry_storm.as_ref().expect("armed");
        assert_eq!(storm.naive, "naive");
        assert_eq!(storm.bound_us, 400.0);
        assert_eq!(storm.min_goodput_ratio, 0.8);
        let meta = s.claims.metastable_recovery.as_ref().expect("armed");
        assert_eq!(meta.gated, "backoff");
        assert_eq!(meta.windows, 4);
        // Unknown policy spellings and malformed shapes stay loud.
        let e = scenario_from_toml(&text.replace("\"drop\"", "\"shrug\"")).expect_err("reject");
        assert!(e.to_string().contains("shrug"), "{e}");
        let e = scenario_from_toml(&text.replace("[\"backoff\", 20, 2.0, 4]", "[\"backoff\", 20]"))
            .expect_err("reject");
        assert!(e.to_string().contains("backoff"), "{e}");
        let e =
            scenario_from_toml(&text.replace("burst = [2000.0, 1000.0, 1.5]", "burst = [2000.0]"))
                .expect_err("reject");
        assert!(e.to_string().contains("burst"), "{e}");
    }

    #[test]
    fn fanout_and_scatter_gather_parse() {
        let text = r#"
name = "sg"
[workload]
service = "exponential"
mean_us = 10.0
cores = 4
conns = 64
loads = [0.5]
[fleet]
shards = 8
[[case]]
label = "m1"
host = "fleet:zygos"
routing = "least-loaded"
[[case]]
label = "m4"
host = "fleet:zygos"
routing = "least-loaded"
fanout = 4
[[case]]
label = "m4r"
host = "fleet:zygos"
routing = "po2c"
fanout = 4
[claims]
scatter_gather = ["m1", "m4", "m4r", 1.2, 0.3]
"#;
        let s = scenario_from_toml(text).expect("valid");
        assert_eq!(s.case("m1").unwrap().policy.fanout, None);
        assert_eq!(s.case("m4").unwrap().policy.fanout, Some(4));
        let sg = s.claims.scatter_gather.as_ref().expect("armed");
        assert_eq!(sg.recovered, "m4r");
        assert_eq!(sg.min_amplification, 1.2);
        assert_eq!(sg.min_recovery, 0.3);
        let e = scenario_from_toml(&text.replace("fanout = 4\n[claims]", "fanout = 9\n[claims]"))
            .expect_err("reject");
        assert!(e.to_string().contains("exceeds"), "{e}");
    }

    #[test]
    fn full_featured_case_parses() {
        let s = scenario_from_toml(
            r#"
name = "full"
[workload]
service = "two-point"
fast_us = 0.5
slow_us = 500.0
p_fast = 0.995
cores = 16
conns = 2752
loads = [0.3, 0.7, 1.2]
arrivals = "diurnal"
[scale]
requests = 20_000
warmup = 4_000
smoke_requests = 2_000
smoke_warmup = 500
smoke_loads = [0.3, 1.2]
seed = 7
[[case]]
label = "elastic srpt"
host = "sim:elastic"
min_cores = 2
quantum_us = 25.0
background_order = "srpt"
alloc = "slo-driven"
[[case]]
label = "tenants"
host = "sim:zygos"
admission = true
admission_mode = "server-edge"
slo_classes = [["interactive", 100.0], ["batch", 1000.0]]
[claims]
overload_from = 1.19
loose_sheds_first = true
loose_floor_max_shed_rate = 0.95
elastic_parks_below_load = 0.31
[check]
tolerance = 0.4
"#,
        )
        .expect("valid");
        assert_eq!(s.cases.len(), 2);
        assert!(matches!(s.workload.arrivals, ArrivalSpec::Trace(_)));
        assert_eq!(s.scale.seed, 7);
        assert!(s.claims.loose_sheds_first);
        assert_eq!(s.check_tolerance, 0.4);
        let tenants = s.case("tenants").expect("present");
        assert_eq!(
            tenants.policy.slo.as_ref().map(|t| t.classes().len()),
            Some(2)
        );
    }
}
