//! Executing scenarios: the only place experiment descriptions become
//! host configurations.
//!
//! * [`run_scenario`] sweeps every case over the load grid and returns
//!   the unified [`Report`].
//! * [`sys_config_for`] / [`runtime_config_for`] are the **single**
//!   lowering points from a [`Scenario`] to `zygos_sysim::SysConfig` and
//!   `zygos_runtime::RuntimeConfig` — fig binaries and examples no
//!   longer assemble host configs by hand, which is what keeps sim/live
//!   parity checkable (see `tests/scenario.rs`).
//! * [`max_load_at_slo`] runs the paper's "maximum load @ SLO" search
//!   over one case (simulator and model hosts).
//!
//! The live host runs the same scenario against a real multithreaded
//! server: the replay thread pre-samples arrivals and service times
//! (deterministic in the scenario seed), sends open-loop, and reduces
//! client-observed latencies to the same [`PointMetrics`] schema. Wall
//! clocks are not simulators: live series are marked
//! non-deterministic and scenario authors should size live cases in the
//! hundreds-of-µs service range (see `docs/SCENARIOS.md`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use zygos_net::flow::ConnId;
use zygos_net::packet::RpcMessage;
use zygos_runtime::server::REJECT_OPCODE;
use zygos_runtime::{ClientPort, RuntimeConfig, SchedulerKind, Server};
use zygos_sched::CreditConfig;
use zygos_sim::queueing::{self, QueueConfig};
use zygos_sim::rng::Xoshiro256;
use zygos_sim::stats::LatencyHistogram;
use zygos_sysim::{
    max_load_at_quantile_slo_counting, run_fleet, run_restart, run_system, run_system_chain,
    warmable, AdmissionMode, AdmissionTopology, FleetConfig, FleetOutput, RoutePolicy, SysConfig,
    SysOutput, SystemKind, TailConfig, WARM_MAX_LOAD,
};
use zygos_telemetry::{decompose, decomposition_at_quantile};

use crate::report::{
    PointMetrics, Report, SearchResult, Series, TailResult, TraceSeries, SCHEMA_VERSION,
};
use zygos_load::source::{ArrivalSpec, Phase};

use crate::spec::{
    AdmissionSpec, Case, FaultsSpec, HostSpec, LiveHost, Scenario, SimHost, SpecError,
};

/// Hard per-point completion cap for live cases: wall-clock experiments
/// exist to prove parity and mechanism, not to soak a CI runner.
pub const LIVE_POINT_CAP: u64 = 4_000;

/// Deadline for one live point's drain (a hung server fails loudly).
const LIVE_POINT_DEADLINE: Duration = Duration::from_secs(60);

/// Worker threads for [`run_scenario`]: the host's parallelism, capped so
/// a big machine does not oversubscribe itself against the OS.
fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

/// Runs every case of a scenario over its load grid.
///
/// Simulator and model work is a pure function of `(config, seed)`, so
/// it fans out across worker threads; results are reassembled in grid
/// order, which makes the parallel run **byte-identical** to a sequential
/// one (pinned by `parallel_report_matches_sequential`). Live points are
/// wall-clock measurements and always run sequentially, after the
/// deterministic points have finished — a saturated machine would distort
/// their latencies.
pub fn run_scenario(sc: &Scenario, smoke: bool) -> Result<Report, SpecError> {
    run_scenario_threads(sc, smoke, default_parallelism())
}

/// One deterministic work item. The job list is a pure function of the
/// scenario and its load grid — never of thread timing — which is what
/// keeps the parallel fan-out byte-identical to a sequential run even
/// though warm-start chains couple consecutive grid points.
enum Job {
    /// Consecutive grid indices of one case, run as one warm-start chain
    /// (singleton for hosts that cannot warm-start).
    Chain { ci: usize, lis: Vec<usize> },
    /// The case's `[search]` bisection.
    Search { ci: usize },
    /// The case's `[tail]` importance-splitting run.
    Tail { ci: usize },
}

enum JobOut {
    Points(Vec<PointMetrics>),
    Search(SearchResult),
    Tail(TailResult),
}

fn run_job(sc: &Scenario, job: &Job, loads: &[f64], smoke: bool) -> Result<JobOut, SpecError> {
    match job {
        Job::Chain { ci, lis } => {
            let chain: Vec<f64> = lis.iter().map(|&li| loads[li]).collect();
            run_chain(sc, &sc.cases[*ci], &chain, smoke).map(JobOut::Points)
        }
        Job::Search { ci } => run_search(sc, &sc.cases[*ci], smoke).map(JobOut::Search),
        Job::Tail { ci } => run_tail(sc, &sc.cases[*ci], smoke).map(JobOut::Tail),
    }
}

/// The deterministic job list: one [`Job::Chain`] per warm-start chain
/// (per grid point for hosts that cannot warm), plus the case's
/// `[search]` and `[tail]` work.
fn jobs_for(sc: &Scenario, loads: &[f64], smoke: bool) -> Vec<Job> {
    let mut jobs = Vec::new();
    for (ci, case) in sc.cases.iter().enumerate() {
        if matches!(case.host, HostSpec::Live(_)) {
            continue;
        }
        if case_is_warmable(sc, case, loads, smoke) {
            jobs.extend(
                warm_chains(loads)
                    .into_iter()
                    .map(|lis| Job::Chain { ci, lis }),
            );
        } else {
            jobs.extend((0..loads.len()).map(|li| Job::Chain { ci, lis: vec![li] }));
        }
        if sc.search.is_some() {
            jobs.push(Job::Search { ci });
        }
        if sc.tail.is_some() && Scenario::host_is_traced(case.host) {
            jobs.push(Job::Tail { ci });
        }
    }
    jobs
}

/// Whether a case's lowered config can warm-start from a checkpoint
/// (ZygOS-family simulator, no tracing armed — see
/// `zygos_sysim::warmable` and `docs/TAIL.md`).
fn case_is_warmable(sc: &Scenario, case: &Case, loads: &[f64], smoke: bool) -> bool {
    matches!(case.host, HostSpec::Sim(_))
        && !loads.is_empty()
        && sys_config_for(sc, case, loads[0], smoke).is_ok_and(|cfg| warmable(&cfg))
}

/// Splits a load grid into maximal strictly-ascending runs at or below
/// [`WARM_MAX_LOAD`] — exactly the spans `run_system_chain` will
/// warm-start end to end. A pure function of the grid, so parallel
/// workers and a sequential run carve up identical chains.
fn warm_chains(loads: &[f64]) -> Vec<Vec<usize>> {
    let mut chains: Vec<Vec<usize>> = Vec::new();
    for i in 0..loads.len() {
        let chainable = i > 0
            && loads[i - 1] < loads[i]
            && loads[i - 1] <= WARM_MAX_LOAD
            && loads[i] <= WARM_MAX_LOAD;
        if chainable {
            chains.last_mut().expect("i > 0 has a chain").push(i);
        } else {
            chains.push(vec![i]);
        }
    }
    chains
}

/// [`run_scenario`] with an explicit worker count (`1` = sequential).
pub fn run_scenario_threads(
    sc: &Scenario,
    smoke: bool,
    threads: usize,
) -> Result<Report, SpecError> {
    let loads = sc.loads(smoke).to_vec();
    // One slot per deterministic job; live points are computed afterwards.
    let jobs = jobs_for(sc, &loads, smoke);
    let threads = threads.clamp(1, jobs.len().max(1));
    let results: Vec<Mutex<Option<Result<JobOut, SpecError>>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();
    if threads <= 1 {
        for (slot, job) in jobs.iter().enumerate() {
            *results[slot].lock().expect("poisoned") = Some(run_job(sc, job, &loads, smoke));
        }
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(slot) else {
                        return;
                    };
                    let out = run_job(sc, job, &loads, smoke);
                    *results[slot].lock().expect("poisoned") = Some(out);
                });
            }
        });
    }
    let mut by_case: Vec<Vec<Option<PointMetrics>>> =
        sc.cases.iter().map(|_| vec![None; loads.len()]).collect();
    let mut searches: Vec<Option<SearchResult>> = vec![None; sc.cases.len()];
    let mut tails: Vec<Option<TailResult>> = vec![None; sc.cases.len()];
    for (slot, job) in jobs.iter().enumerate() {
        let out = results[slot]
            .lock()
            .expect("poisoned")
            .take()
            .expect("every job ran")?;
        match (job, out) {
            (Job::Chain { ci, lis }, JobOut::Points(points)) => {
                for (&li, p) in lis.iter().zip(points) {
                    by_case[*ci][li] = Some(p);
                }
            }
            (Job::Search { ci }, JobOut::Search(s)) => searches[*ci] = Some(s),
            (Job::Tail { ci }, JobOut::Tail(t)) => tails[*ci] = Some(t),
            _ => unreachable!("job and result kinds always agree"),
        }
    }
    let mut series = Vec::with_capacity(sc.cases.len());
    for (ci, case) in sc.cases.iter().enumerate() {
        if matches!(case.host, HostSpec::Live(_)) {
            series.push(run_case(sc, case, smoke)?);
        } else {
            series.push(Series {
                label: case.label.clone(),
                host: case.host.id(),
                deterministic: true,
                points: by_case[ci]
                    .iter_mut()
                    .map(|p| p.take().expect("deterministic point computed"))
                    .collect(),
                search: searches[ci].take(),
                tail: tails[ci].take(),
            });
        }
    }
    Ok(Report {
        schema: SCHEMA_VERSION,
        scenario: sc.name.clone(),
        smoke,
        series,
    })
}

/// Runs one case over the load grid. Deterministic hosts run the same
/// warm-start chains and `[search]`/`[tail]` work as [`run_scenario`], so
/// a directly-run case reproduces its series in the full report exactly.
pub fn run_case(sc: &Scenario, case: &Case, smoke: bool) -> Result<Series, SpecError> {
    let loads = sc.loads(smoke).to_vec();
    if matches!(case.host, HostSpec::Live(_)) {
        let mut points = Vec::with_capacity(loads.len());
        for &load in &loads {
            points.push(run_point(sc, case, load, smoke)?);
        }
        return Ok(Series {
            label: case.label.clone(),
            host: case.host.id(),
            deterministic: false,
            points,
            search: None,
            tail: None,
        });
    }
    let chains = if case_is_warmable(sc, case, &loads, smoke) {
        warm_chains(&loads)
    } else {
        (0..loads.len()).map(|li| vec![li]).collect()
    };
    let mut slots: Vec<Option<PointMetrics>> = vec![None; loads.len()];
    for lis in chains {
        let chain: Vec<f64> = lis.iter().map(|&li| loads[li]).collect();
        for (&li, p) in lis.iter().zip(run_chain(sc, case, &chain, smoke)?) {
            slots[li] = Some(p);
        }
    }
    let search = match sc.search {
        Some(_) => Some(run_search(sc, case, smoke)?),
        None => None,
    };
    let tail = match &sc.tail {
        Some(_) if Scenario::host_is_traced(case.host) => Some(run_tail(sc, case, smoke)?),
        _ => None,
    };
    Ok(Series {
        label: case.label.clone(),
        host: case.host.id(),
        deterministic: true,
        points: slots
            .into_iter()
            .map(|p| p.expect("chains cover the grid"))
            .collect(),
        search,
        tail,
    })
}

/// Runs one case over consecutive grid loads as a warm-start chain
/// (simulator hosts; model points are independent anyway). The first
/// point of a chain is bit-identical to a cold run, so splitting a grid
/// into chains never changes which numbers are possible — only how much
/// warmup is re-simulated.
fn run_chain(
    sc: &Scenario,
    case: &Case,
    chain: &[f64],
    smoke: bool,
) -> Result<Vec<PointMetrics>, SpecError> {
    match case.host {
        HostSpec::Sim(_) => {
            let base = sys_config_for(sc, case, chain.first().copied().unwrap_or(0.5), smoke)?;
            Ok(run_system_chain(&base, chain)
                .into_iter()
                .zip(chain)
                .map(|(out, &load)| sim_metrics(load, out, case))
                .collect())
        }
        _ => chain
            .iter()
            .map(|&load| run_point(sc, case, load, smoke))
            .collect(),
    }
}

/// Runs the `[search]` block for one deterministic case: the paper's
/// "maximum load @ SLO" bisection. Simulator cases warm-start every
/// probe above the first from a checkpoint prefix (`cold_probes` stays
/// 1); model probes are cheap and always cold.
fn run_search(sc: &Scenario, case: &Case, smoke: bool) -> Result<SearchResult, SpecError> {
    let sp = sc
        .search
        .as_ref()
        .ok_or_else(|| SpecError::new("run_search needs a [search] block"))?;
    let (max_load, probes, cold_probes) = match case.host {
        HostSpec::Sim(_) => {
            // The lowering load is irrelevant: the bisection overwrites
            // `cfg.load` per probe.
            let base = sys_config_for(sc, case, 0.5, smoke)?;
            max_load_at_quantile_slo_counting(&base, sp.quantile, sp.bound_us, sp.resolution)
        }
        HostSpec::Model(policy) => {
            let (requests, warmup) = sc.scale.window(smoke);
            let mut probes = 0u32;
            let max_load = queueing::max_load_at_slo(
                |load| {
                    probes += 1;
                    queueing::simulate(&QueueConfig {
                        servers: sc.workload.cores,
                        load,
                        service: sc.workload.service.clone(),
                        policy,
                        requests,
                        seed: sc.scale.seed,
                        warmup,
                    })
                    .latency
                    .quantile_us(sp.quantile)
                },
                sp.bound_us,
                sp.resolution,
            );
            (max_load, probes, probes)
        }
        HostSpec::Fleet(_) => {
            // The bisection overwrites the fleet-level load knob per
            // probe; everything else in the lowering is load-independent.
            let base = fleet_config_for(sc, case, 0.5, smoke)?;
            let mut probes = 0u32;
            let max_load = queueing::max_load_at_slo(
                |load| {
                    probes += 1;
                    let mut fc = base.clone();
                    fc.base.load = load;
                    run_fleet(&fc).latency.quantile_us(sp.quantile)
                },
                sp.bound_us,
                sp.resolution,
            );
            (max_load, probes, probes)
        }
        HostSpec::Live(_) => {
            return Err(SpecError::new(
                "a [search] block cannot run on a wall-clock host",
            ));
        }
    };
    Ok(SearchResult {
        quantile: sp.quantile,
        bound_us: sp.bound_us,
        resolution: sp.resolution as u32,
        max_load,
        probes,
        cold_probes,
    })
}

/// Runs the `[tail]` block for one ZygOS-family simulator case: RESTART
/// importance splitting next to the brute-force estimate from the same
/// master trajectory. The splitting engine owns the clone trajectories
/// and per-event tracing cannot splice across clones, so tail runs
/// always go untraced.
fn run_tail(sc: &Scenario, case: &Case, smoke: bool) -> Result<TailResult, SpecError> {
    let tp = sc
        .tail
        .as_ref()
        .ok_or_else(|| SpecError::new("run_tail needs a [tail] block"))?;
    let mut cfg = sys_config_for(sc, case, tp.load, smoke)?;
    cfg.telemetry = None;
    let (_, t) = run_restart(
        &cfg,
        &TailConfig {
            quantile: tp.quantile,
            levels: tp.levels.clone(),
            splits: tp.splits,
            check_every: tp.check_every,
            clone_budget: tp.clone_budget,
        },
    );
    Ok(TailResult {
        load: tp.load,
        quantile: t.quantile,
        value_us: t.value_us,
        brute_value_us: t.brute_value_us,
        samples: t.samples as u64,
        total_weight: t.total_weight,
        clones: t.clones,
        truncated: t.truncated,
        master_events: t.master_events,
        clone_events: t.clone_events,
        max_backlog: t.max_backlog as u64,
    })
}

/// Runs one case at one load.
pub fn run_point(
    sc: &Scenario,
    case: &Case,
    load: f64,
    smoke: bool,
) -> Result<PointMetrics, SpecError> {
    match case.host {
        HostSpec::Sim(_) => {
            let cfg = sys_config_for(sc, case, load, smoke)?;
            Ok(sim_metrics(load, run_system(&cfg), case))
        }
        HostSpec::Model(policy) => {
            let (requests, warmup) = sc.scale.window(smoke);
            let out = queueing::simulate(&QueueConfig {
                servers: sc.workload.cores,
                load,
                service: sc.workload.service.clone(),
                policy,
                requests,
                seed: sc.scale.seed,
                warmup,
            });
            Ok(PointMetrics {
                load,
                mrps: if out.sim_time_us > 0.0 {
                    out.completed as f64 / out.sim_time_us
                } else {
                    0.0
                },
                p50_us: out.latency.p50_us(),
                p99_us: out.latency.p99_us(),
                p999_us: out.latency.quantile_us(0.999),
                avg_cores: sc.workload.cores as f64,
                core_seconds: sc.workload.cores as f64 * out.sim_time_us / 1e6,
                ..PointMetrics::default()
            })
        }
        HostSpec::Fleet(_) => {
            let fc = fleet_config_for(sc, case, load, smoke)?;
            Ok(fleet_metrics(load, run_fleet(&fc), case))
        }
        HostSpec::Live(_) => run_live_point(sc, case, load, smoke),
    }
}

/// The paper's "maximum load @ SLO" metric over one case (simulator or
/// model hosts; a wall-clock host cannot binary-search loads honestly).
pub fn max_load_at_slo(
    sc: &Scenario,
    case_label: &str,
    slo_us: f64,
    resolution: usize,
    smoke: bool,
) -> Result<f64, SpecError> {
    let case = sc
        .case(case_label)
        .ok_or_else(|| SpecError::new(format!("no case labelled {case_label:?}")))?;
    match case.host {
        HostSpec::Live(_) => Err(SpecError::new(
            "max_load_at_slo needs a deterministic host (sim or model)",
        )),
        _ => Ok(queueing::max_load_at_slo(
            |load| {
                run_point(sc, case, load, smoke)
                    .map(|p| p.p99_us)
                    .unwrap_or(f64::INFINITY)
            },
            slo_us,
            resolution,
        )),
    }
}

/// Lowers a simulator case at one load to a `SysConfig` — the single
/// construction point for simulator experiments.
pub fn sys_config_for(
    sc: &Scenario,
    case: &Case,
    load: f64,
    smoke: bool,
) -> Result<SysConfig, SpecError> {
    let HostSpec::Sim(host) = case.host else {
        return Err(SpecError::new(format!(
            "case {:?} does not run on the simulator",
            case.label
        )));
    };
    let mut cfg = lower_sim(sc, case, host, load, smoke);
    if let Some(t) = &sc.telemetry {
        // Only the ZygOS-family models record; leaving IX/Linux configs
        // off keeps their report zeros honest rather than silently
        // requested-and-dropped.
        if Scenario::host_is_traced(case.host) {
            cfg.telemetry = Some(t.to_config());
        }
    }
    Ok(cfg)
}

/// The shared sim-world lowering behind [`sys_config_for`] and
/// [`fleet_config_for`]: everything except telemetry (whose rules differ
/// between a single traced world and a series-only fleet shard).
fn lower_sim(sc: &Scenario, case: &Case, host: SimHost, load: f64, smoke: bool) -> SysConfig {
    let p = &case.policy;
    let system = match host {
        SimHost::Zygos => SystemKind::Zygos,
        SimHost::ZygosNoInterrupts => SystemKind::ZygosNoInterrupts,
        SimHost::Elastic => SystemKind::Elastic {
            min_cores: p.min_cores.unwrap_or(2),
        },
        SimHost::Ix => SystemKind::Ix,
        SimHost::LinuxPartitioned => SystemKind::LinuxPartitioned,
        SimHost::LinuxFloating => SystemKind::LinuxFloating,
        SimHost::Staged => SystemKind::Staged,
    };
    let mut cfg = SysConfig::paper(system, sc.workload.service.clone(), load);
    if host == SimHost::Staged {
        // Build validation pairs every staged case with a [[stages]]
        // block, so the plan is always present here.
        if let Some(stages) = &sc.stages {
            cfg.staged = Some(crate::spec::staged_plan(stages, p));
        }
    }
    cfg.cores = sc.workload.cores;
    cfg.conns = sc.workload.conns;
    cfg.arrivals = sc.workload.arrivals.clone();
    let (requests, warmup) = sc.scale.window(smoke);
    cfg.requests = requests;
    cfg.warmup = warmup;
    cfg.seed = sc.scale.seed;
    if let Some(b) = p.rx_batch {
        cfg.rx_batch = b;
    }
    if let Some(q) = p.quantum_us {
        cfg.preemption_quantum_us = q;
    }
    if let Some(o) = p.background_order {
        cfg.background_order = o;
    }
    if let Some(k) = p.alloc {
        cfg.elastic.alloc = k;
    }
    if let Some(r) = p.randomize_steal_order {
        cfg.randomize_steal_order = r;
    }
    if let Some(ns) = p.ipi_delivery_ns {
        cfg.cost.ipi_delivery_ns = ns;
    }
    if let Some(ns) = p.steal_extra_ns {
        cfg.cost.steal_extra_ns = ns;
    }
    cfg.slo = p.slo.clone();
    if let Some(a) = &p.admission {
        cfg.admission = Some(credit_config_for(a, sc.workload.cores));
        cfg.admission_mode = a.mode;
    }
    cfg.retry = p.retry;
    if let Some(j) = p.retry_jitter {
        cfg.retry_jitter = j;
    }
    cfg.retry_timeout_us = p.retry_timeout_us;
    if let Some(fl) = &sc.faults {
        apply_faults(&mut cfg, fl);
    }
    cfg
}

/// Lowers the scenario's `[faults]` block onto one sim world: burst and
/// churn re-plan the arrival process as phased Poisson, slow clients
/// inflate the service distribution mean-field. The shard `slowdown`
/// lowers in [`fleet_config_for`] instead — it needs the fleet topology.
fn apply_faults(cfg: &mut SysConfig, fl: &FaultsSpec) {
    if let Some((at_us, duration_us, factor)) = fl.burst {
        // Phased arrivals cycle, so the burst gets a tail phase sized to
        // outlive any plausible run — the cycle must never wrap into a
        // second burst. The base rate is NOT renormalized: `load` keeps
        // its steady-state meaning and the burst is extra offered work.
        let est_us = (cfg.warmup + cfg.requests) as f64 / cfg.lambda_per_us();
        let horizon_us = 8.0 * est_us.max(1.0) + at_us + duration_us;
        cfg.arrivals = ArrivalSpec::Phased(vec![
            Phase {
                duration_us: at_us,
                rate_factor: 1.0,
            },
            Phase {
                duration_us,
                rate_factor: factor,
            },
            Phase {
                duration_us: horizon_us,
                rate_factor: 1.0,
            },
        ]);
    }
    if let Some((interval_us, spike_us, factor)) = fl.churn {
        // Churn is the cyclic twin: a reconnect stampede every interval.
        cfg.arrivals = ArrivalSpec::Phased(vec![
            Phase {
                duration_us: interval_us,
                rate_factor: 1.0,
            },
            Phase {
                duration_us: spike_us,
                rate_factor: factor,
            },
        ]);
    }
    if let Some((fraction, stall_us)) = fl.slow_clients {
        // Mean-field lowering: a `fraction` of responses stalling the
        // drain path for `stall_us` inflates expected per-request service
        // by `fraction × stall`; scaled() keeps the shape (cv²) so only
        // the mean moves.
        let mean = cfg.service.mean_us();
        cfg.service = cfg.service.scaled((mean + fraction * stall_us) / mean);
    }
}

/// Lowers a fleet case at one load to a `FleetConfig` — the single
/// construction point for fleet experiments. The base world is lowered
/// exactly like a `sim:*` case ([`lower_sim`]); only the credit-pool
/// sizing and the telemetry rules differ:
///
/// * With [`AdmissionTopology::FleetWide`] the derived pool is sized for
///   the whole fleet (`shards × cores`) and split across shards by the
///   engine; per-shard topology sizes it for one shard's cores, same as
///   a single world. An explicit `credits` override always passes
///   through verbatim — it *is* the pool at whichever scope the topology
///   names.
/// * Fleet worlds harvest time-series only (shard-namespaced by the
///   engine); lifecycle tracing is forced off because correlation keys
///   collide across shards.
pub fn fleet_config_for(
    sc: &Scenario,
    case: &Case,
    load: f64,
    smoke: bool,
) -> Result<FleetConfig, SpecError> {
    let HostSpec::Fleet(host) = case.host else {
        return Err(SpecError::new(format!(
            "case {:?} does not run on the fleet host",
            case.label
        )));
    };
    let Some(f) = &sc.fleet else {
        return Err(SpecError::new(format!(
            "case {:?} needs a [fleet] block",
            case.label
        )));
    };
    let p = &case.policy;
    let mut base = lower_sim(sc, case, host, load, smoke);
    let topology = p.fleet_admission.unwrap_or(AdmissionTopology::PerShard);
    if let Some(a) = &p.admission {
        let pool_cores = match topology {
            AdmissionTopology::FleetWide => sc.workload.cores * f.shards,
            AdmissionTopology::PerShard => sc.workload.cores,
        };
        base.admission = Some(credit_config_for(a, pool_cores));
    }
    if let Some(t) = &sc.telemetry {
        let mut tc = t.to_config();
        tc.trace = false;
        if !tc.is_off() {
            base.telemetry = Some(tc);
        }
    }
    let mut fc = FleetConfig::new(
        base,
        f.shards,
        p.routing.unwrap_or(RoutePolicy::ConsistentHash),
    );
    fc.admission = topology;
    fc.degraded = p.degraded.clone().unwrap_or_default();
    fc.loss = p.loss;
    fc.fanout = p.fanout.unwrap_or(1);
    // The [faults] shard slowdown composes with the case's own degraded
    // list: factors multiply on an already-degraded shard.
    if let Some((shard, factor)) = sc.faults.as_ref().and_then(|fl| fl.slowdown) {
        match fc.degraded.iter_mut().find(|d| d.0 == shard) {
            Some(d) => d.1 *= factor,
            None => fc.degraded.push((shard, factor)),
        }
    }
    Ok(fc)
}

/// Lowers a live case to a `RuntimeConfig` — the single construction
/// point for live experiments.
pub fn runtime_config_for(sc: &Scenario, case: &Case) -> Result<RuntimeConfig, SpecError> {
    let HostSpec::Live(host) = case.host else {
        return Err(SpecError::new(format!(
            "case {:?} does not run on the live runtime",
            case.label
        )));
    };
    let p = &case.policy;
    let scheduler = match host {
        LiveHost::Zygos => SchedulerKind::Zygos { steal: true },
        LiveHost::Partitioned => SchedulerKind::Zygos { steal: false },
        LiveHost::Floating => SchedulerKind::Floating,
        LiveHost::Elastic => SchedulerKind::Elastic {
            steal: true,
            quantum_events: p.quantum_events.unwrap_or(64),
        },
    };
    let mut cfg = RuntimeConfig::zygos(sc.workload.cores, sc.workload.conns);
    cfg.scheduler = scheduler;
    cfg.slo = p.slo.clone();
    if let Some(a) = &p.admission {
        cfg.admission = Some(credit_config_for(a, sc.workload.cores));
        if a.mode == AdmissionMode::ClientSide {
            cfg.client_credits = true;
        }
        if a.overcommit {
            cfg.client_credits = true;
            cfg.credit_overcommit = true;
        }
    }
    Ok(cfg)
}

/// The credit pool a case runs: an explicit override, or
/// `CreditConfig::for_cores` at the case's target. With SLO classes
/// configured the AIMD runs in ratio space and the µs target is
/// irrelevant (any positive value); 1.0 is used then.
fn credit_config_for(a: &AdmissionSpec, cores: usize) -> CreditConfig {
    a.credits
        .unwrap_or_else(|| CreditConfig::for_cores(cores, a.target_us.unwrap_or(1.0)))
}

/// Reduces a simulator run to the unified schema.
fn sim_metrics(load: f64, out: SysOutput, case: &Case) -> PointMetrics {
    let classes = classes_of(case);
    let per_class = |f: &dyn Fn(usize) -> f64| -> Vec<f64> {
        if classes >= 2 {
            (0..classes).map(f).collect()
        } else {
            Vec::new()
        }
    };
    let (p99_queue_us, p99_service_us, p99_steal_us, p99_preempt_us) = out
        .telemetry
        .as_ref()
        .and_then(|t| {
            let mut decomps = decompose(&t.events);
            decomposition_at_quantile(&mut decomps, 0.99).map(|d| d.as_us())
        })
        .unwrap_or_default();
    let timeseries = out
        .telemetry
        .as_ref()
        .map(|t| {
            t.series
                .iter()
                .map(|s| TraceSeries {
                    name: s.name.clone(),
                    points: s.points.clone(),
                })
                .collect()
        })
        .unwrap_or_default();
    PointMetrics {
        load,
        mrps: out.throughput_mrps(),
        p50_us: out.latency.p50_us(),
        p99_us: out.p99_us(),
        p999_us: out.latency.quantile_us(0.999),
        steal_fraction: out.steal_fraction(),
        ipis_per_req: if out.completed == 0 {
            0.0
        } else {
            out.ipis as f64 / out.completed as f64
        },
        preemptions_per_req: out.preemptions_per_req(),
        avg_cores: out.avg_active_cores,
        core_seconds: out.core_seconds_used(),
        shed_fraction: out.shed_fraction(),
        wasted_wire_us: out.wasted_wire_us(),
        retry_rate: out.retry_rate(),
        give_up_rate: out.give_up_rate(),
        goodput: out.goodput_fraction(),
        shed_share_by_class: per_class(&|c| out.shed_share_of_class(c)),
        shed_rate_by_class: per_class(&|c| out.shed_rate_of_class(c)),
        p99_queue_us,
        p99_service_us,
        p99_steal_us,
        p99_preempt_us,
        stage_p99_wait_us: out.stage_p99_wait_us.clone(),
        timeseries,
    }
}

/// Reduces a fleet run to the unified schema. Every reduction is the
/// Σ-across-shards form of the matching [`sim_metrics`] formula, so for a
/// single shard each collapses to the identical floating-point operations
/// — that is what keeps the N=1 pass-through fleet **bit-identical** to
/// its `sim:*` base case (pinned by `tests/fleet_differential.rs`).
fn fleet_metrics(load: f64, out: FleetOutput, case: &Case) -> PointMetrics {
    let classes = classes_of(case);
    let sum = |f: &dyn Fn(&SysOutput) -> u64| -> u64 { out.shards.iter().map(f).sum() };
    let sumf = |f: &dyn Fn(&SysOutput) -> f64| -> f64 { out.shards.iter().map(f).sum() };
    let completed = sum(&|s| s.completed);
    let per_req = |n: u64| {
        if completed == 0 {
            0.0
        } else {
            n as f64 / completed as f64
        }
    };
    let local = sum(&|s| s.local_events);
    let stolen = sum(&|s| s.stolen_events);
    let offered = sum(&|s| s.admitted) + sum(&|s| s.rejected);
    let rejected_total: u64 = sum(&|s| s.rejected_by_class.iter().sum());
    let per_class = |f: &dyn Fn(usize) -> f64| -> Vec<f64> {
        if classes >= 2 {
            (0..classes).map(f).collect()
        } else {
            Vec::new()
        }
    };
    let timeseries = out
        .telemetry
        .as_ref()
        .map(|t| {
            t.series
                .iter()
                .map(|s| TraceSeries {
                    name: s.name.clone(),
                    points: s.points.clone(),
                })
                .collect()
        })
        .unwrap_or_default();
    let generated = out.generated();
    let per_generated = |n: u64| {
        if generated == 0 {
            0.0
        } else {
            n as f64 / generated as f64
        }
    };
    PointMetrics {
        load,
        // User-request throughput and tail: sub-request sums over the
        // fan-out, and the max-of-M quantile transform. Both collapse to
        // the plain merged reductions at fanout = 1 (exactly — ÷1.0 is
        // an IEEE 754 identity), preserving the N=1 bit-identity.
        mrps: out.throughput_mrps(),
        p50_us: out.latency.p50_us(),
        p99_us: out.p99_us(),
        p999_us: out.latency.quantile_us(0.999),
        steal_fraction: if local + stolen == 0 {
            0.0
        } else {
            stolen as f64 / (local + stolen) as f64
        },
        ipis_per_req: per_req(sum(&|s| s.ipis)),
        preemptions_per_req: per_req(sum(&|s| s.preemptions)),
        // Fleet-wide granted cores: the sum of each shard's average grant
        // (a 4-shard × 4-core healthy fleet reads 16).
        avg_cores: sumf(&|s| s.avg_active_cores),
        core_seconds: sumf(&|s| s.core_seconds_used()),
        shed_fraction: if offered == 0 {
            0.0
        } else {
            sum(&|s| s.rejected) as f64 / offered as f64
        },
        wasted_wire_us: sumf(&|s| s.wasted_wire_us()),
        retry_rate: per_generated(out.retries()),
        give_up_rate: per_generated(out.give_ups()),
        goodput: if generated == 0 {
            1.0
        } else {
            1.0 - out.give_ups() as f64 / generated as f64
        },
        shed_share_by_class: per_class(&|c| {
            if rejected_total == 0 {
                0.0
            } else {
                sum(&|s| s.rejected_by_class[c]) as f64 / rejected_total as f64
            }
        }),
        shed_rate_by_class: per_class(&|c| {
            let offered_c = sum(&|s| s.admitted_by_class[c]) + sum(&|s| s.rejected_by_class[c]);
            if offered_c == 0 {
                0.0
            } else {
                sum(&|s| s.rejected_by_class[c]) as f64 / offered_c as f64
            }
        }),
        // Fleet worlds never trace, so the p99 decomposition stays zero —
        // same as an untraced sim case. Staged hosts cannot shard, so
        // the per-stage waits stay empty too.
        p99_queue_us: 0.0,
        p99_service_us: 0.0,
        p99_steal_us: 0.0,
        p99_preempt_us: 0.0,
        stage_p99_wait_us: Vec::new(),
        timeseries,
    }
}

/// Tenant-class count of a case (1 without SLO classes).
fn classes_of(case: &Case) -> usize {
    case.policy.slo.as_ref().map_or(1, |t| t.classes().len())
}

/// One pre-sampled request of the live replay.
struct PlannedReq {
    at_us: f64,
    conn: u32,
    service_ns: u64,
}

/// Runs one live point: start the server, replay the arrival schedule
/// open-loop, reduce client-observed latencies.
fn run_live_point(
    sc: &Scenario,
    case: &Case,
    load: f64,
    smoke: bool,
) -> Result<PointMetrics, SpecError> {
    let cfg = runtime_config_for(sc, case)?;
    let (requests, warmup) = sc.scale.window(smoke);
    let total = requests.clamp(1, LIVE_POINT_CAP);
    let warmup = warmup.min(total / 4);

    // Pre-sample the open-loop schedule: deterministic in the seed, and
    // the generator never slows down with the server (§3.1).
    let rate_per_us = load * sc.workload.cores as f64 / sc.workload.service.mean_us();
    let mut rng = Xoshiro256::new(sc.scale.seed);
    let mut arrivals = sc.workload.arrivals.source(rate_per_us);
    let mut plan = Vec::with_capacity(total as usize);
    let mut t = 0.0f64;
    for _ in 0..total {
        t += arrivals.next_gap_us(&mut rng);
        plan.push(PlannedReq {
            at_us: t,
            conn: rng.next_bounded(sc.workload.conns as u64) as u32,
            service_ns: sc.workload.service.sample(&mut rng).as_nanos(),
        });
    }

    // The app burns each request's pre-sampled service time (carried in
    // the request body), so the live host serves the same workload the
    // simulator models.
    let app = |_c: ConnId, req: &RpcMessage| {
        let ns = req
            .body
            .get(..8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
            .unwrap_or(0);
        if ns > 0 {
            std::thread::sleep(Duration::from_nanos(ns));
        }
        RpcMessage::new(0, req.header.req_id, Bytes::new())
    };
    let (server, client) = Server::start(cfg, Arc::new(app));

    let mut sent_at: Vec<Option<Instant>> = vec![None; total as usize];
    let mut latency = LatencyHistogram::new();
    let mut completions = 0u64;
    let mut wire_rejects = 0u64;
    let mut sent = 0u64;
    let mut core_samples = (0u64, 0.0f64);
    let mut window: (Option<Instant>, Option<Instant>) = (None, None);
    let start = Instant::now();
    let mut next = 0usize;
    let deadline = start + LIVE_POINT_DEADLINE;

    let drain = |client: &ClientPort,
                 sent_at: &mut [Option<Instant>],
                 latency: &mut LatencyHistogram,
                 completions: &mut u64,
                 wire_rejects: &mut u64,
                 window: &mut (Option<Instant>, Option<Instant>)| {
        while let Some((_, resp)) = client.recv_timeout(Duration::ZERO) {
            let id = resp.header.req_id as usize;
            if resp.header.opcode == REJECT_OPCODE {
                *wire_rejects += 1;
                continue;
            }
            let now = Instant::now();
            *completions += 1;
            if *completions == warmup.max(1) {
                window.0 = Some(now);
            }
            if *completions > warmup {
                if let Some(sent) = sent_at.get(id).copied().flatten() {
                    latency.record_nanos(now.duration_since(sent).as_nanos() as u64);
                }
                window.1 = Some(now);
            }
        }
    };

    // Send loop: dispatch due arrivals, harvest responses in the gaps.
    while next < plan.len() && Instant::now() < deadline {
        let due = start + Duration::from_nanos((plan[next].at_us * 1_000.0) as u64);
        let now = Instant::now();
        if now < due {
            drain(
                &client,
                &mut sent_at,
                &mut latency,
                &mut completions,
                &mut wire_rejects,
                &mut window,
            );
            let still = due.saturating_duration_since(Instant::now());
            if still > Duration::from_micros(200) {
                std::thread::sleep(still / 2);
            } else {
                std::hint::spin_loop();
            }
            continue;
        }
        let req = &plan[next];
        let msg = RpcMessage::new(
            1,
            next as u64,
            Bytes::copy_from_slice(&req.service_ns.to_le_bytes()),
        );
        sent_at[next] = Some(Instant::now());
        if client.try_send(ConnId(req.conn), &msg) {
            sent += 1;
        } else {
            sent_at[next] = None; // Shed locally (zero-balance client credits).
        }
        next += 1;
        if next.is_multiple_of(64) {
            if let Some(active) = server.active_cores() {
                core_samples.0 += 1;
                core_samples.1 += active as f64;
            }
        }
    }

    // Drain until every sent request is answered (or the deadline).
    while completions + wire_rejects < sent && Instant::now() < deadline {
        drain(
            &client,
            &mut sent_at,
            &mut latency,
            &mut completions,
            &mut wire_rejects,
            &mut window,
        );
        if let Some(active) = server.active_cores() {
            core_samples.0 += 1;
            core_samples.1 += active as f64;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    let local_sheds = client.local_sheds();
    server.shutdown();

    let window_us = match window {
        (Some(a), Some(b)) if b > a => b.duration_since(a).as_nanos() as f64 / 1_000.0,
        _ => start.elapsed().as_nanos() as f64 / 1_000.0,
    };
    let measured = completions.saturating_sub(warmup);
    let avg_cores = if core_samples.0 > 0 {
        core_samples.1 / core_samples.0 as f64
    } else {
        sc.workload.cores as f64
    };
    let offered = sent + local_sheds;
    Ok(PointMetrics {
        load,
        mrps: if window_us > 0.0 {
            measured as f64 / window_us
        } else {
            0.0
        },
        p50_us: if latency.is_empty() {
            0.0
        } else {
            latency.p50_us()
        },
        p99_us: if latency.is_empty() {
            0.0
        } else {
            latency.p99_us()
        },
        p999_us: if latency.is_empty() {
            0.0
        } else {
            latency.quantile_us(0.999)
        },
        avg_cores,
        core_seconds: avg_cores * window_us / 1e6,
        shed_fraction: if offered == 0 {
            0.0
        } else {
            (wire_rejects + local_sheds) as f64 / offered as f64
        },
        // The loopback wire has no modelled RTT: live rejects burn
        // scheduling work but zero wire time by construction.
        wasted_wire_us: 0.0,
        ..PointMetrics::default()
    })
}

/// Convenience: `(x, y)` pairs for printing a metric of a series.
pub fn xy(
    points: &[PointMetrics],
    x: impl Fn(&PointMetrics) -> f64,
    y: impl Fn(&PointMetrics) -> f64,
) -> Vec<(f64, f64)> {
    points.iter().map(|p| (x(p), y(p))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Case;
    use zygos_sim::dist::ServiceDist;

    fn tiny() -> Scenario {
        Scenario::builder("tiny")
            .service(ServiceDist::exponential_us(10.0))
            .cores(4)
            .conns(16)
            .loads(vec![0.3])
            .requests(4_000, 1_000)
            .smoke(1_500, 300)
            .case(Case::sim("zygos", SimHost::Zygos))
            .build()
            .expect("valid")
    }

    #[test]
    fn sim_case_produces_schema_metrics() {
        let sc = tiny();
        let report = run_scenario(&sc, true).expect("runs");
        assert_eq!(report.series.len(), 1);
        let p = &report.series[0].points[0];
        assert_eq!(p.load, 0.3);
        assert!(
            p.p99_us > 40.0,
            "exp(10) p99 ≈ 46µs + overheads: {}",
            p.p99_us
        );
        assert!(p.mrps > 0.0);
        assert!(report.series[0].deterministic);
    }

    #[test]
    fn sim_runs_are_reproducible() {
        let sc = tiny();
        let a = run_scenario(&sc, true).expect("runs");
        let b = run_scenario(&sc, true).expect("runs");
        assert_eq!(a, b, "same scenario, same seed, same report");
    }

    #[test]
    fn parallel_report_matches_sequential() {
        // Deterministic work is a pure function of (config, seed): the
        // parallel fan-out must emit byte-identical report JSON even
        // though warm-start chains couple consecutive grid points and
        // [search]/[tail] jobs interleave with them.
        use crate::spec::{FleetSpec, SearchSpec, TailSpec};
        let sc = Scenario::builder("par")
            .service(ServiceDist::exponential_us(10.0))
            .cores(4)
            .conns(16)
            .loads(vec![0.2, 0.5, 0.8])
            .requests(4_000, 1_000)
            .smoke(1_200, 240)
            .case(Case::sim("zygos", SimHost::Zygos))
            .case(Case::sim("ix", crate::spec::SimHost::Ix))
            .case(Case::model("mg4", zygos_sim::queueing::Policy::CentralFcfs))
            .fleet(FleetSpec { shards: 3 })
            .case(Case::fleet("fleet-ch", SimHost::Zygos))
            .case(
                Case::fleet("fleet-po2c-degraded", SimHost::Zygos)
                    .routing(RoutePolicy::PowerOfTwoChoices)
                    .degraded(vec![(1, 2.0)]),
            )
            .search(SearchSpec {
                bound_us: 120.0,
                resolution: 8,
                ..SearchSpec::default()
            })
            .tail(TailSpec {
                load: 0.8,
                quantile: 0.99,
                levels: vec![8, 16],
                ..TailSpec::default()
            })
            .build()
            .expect("valid");
        let seq = run_scenario_threads(&sc, true, 1).expect("runs");
        let par = run_scenario_threads(&sc, true, 4).expect("runs");
        assert_eq!(seq.to_json(), par.to_json(), "byte-identical JSON");
    }

    #[test]
    fn search_and_tail_populate_the_report() {
        use crate::spec::{SearchSpec, TailSpec};
        let sc = Scenario::builder("st")
            .service(ServiceDist::exponential_us(10.0))
            .cores(4)
            .conns(16)
            .loads(vec![0.3, 0.6])
            .requests(4_000, 1_000)
            .smoke(1_500, 300)
            .case(Case::sim("zygos", SimHost::Zygos))
            .case(Case::sim("ix", crate::spec::SimHost::Ix))
            .search(SearchSpec {
                quantile: 0.99,
                bound_us: 100.0,
                resolution: 8,
            })
            .tail(TailSpec {
                load: 0.7,
                quantile: 0.99,
                levels: vec![8, 16],
                ..TailSpec::default()
            })
            .build()
            .expect("valid");
        let a = run_scenario(&sc, true).expect("runs");
        let b = run_scenario(&sc, true).expect("runs");
        assert_eq!(a, b, "search and tail results are deterministic");
        let zygos = a.series("zygos").expect("series");
        let ix = a.series("ix").expect("series");
        // Every deterministic case carries a search result; warm-start
        // prefix reuse leaves exactly one cold probe on the ZygOS case.
        let zs = zygos.search.as_ref().expect("zygos searches");
        assert!(zs.max_load > 0.0 && zs.max_load < 1.0, "{zs:?}");
        assert_eq!(zs.cold_probes, 1, "{zs:?}");
        assert!(zs.probes > zs.cold_probes, "{zs:?}");
        let ixs = ix.search.as_ref().expect("ix searches");
        assert_eq!(ixs.cold_probes, ixs.probes, "IX cannot warm-start");
        // [tail] runs only on the ZygOS-family case, and its brute
        // estimate comes from the same master trajectory.
        let zt = zygos.tail.as_ref().expect("zygos has a tail result");
        assert!(
            ix.tail.is_none(),
            "IX hosts cannot run the splitting engine"
        );
        assert!(zt.value_us > 0.0 && zt.brute_value_us > 0.0, "{zt:?}");
        assert!(zt.samples > 0 && zt.total_weight > 0.0, "{zt:?}");
        // run_case reproduces the full-report series exactly.
        let direct = run_case(&sc, sc.case("zygos").expect("case"), true).expect("runs");
        assert_eq!(&direct, zygos);
    }

    #[test]
    fn warm_chains_are_a_pure_function_of_the_grid() {
        // Ascending spans chain; descents, repeats and beyond-cap loads
        // break them.
        assert_eq!(
            warm_chains(&[0.2, 0.5, 0.8]),
            vec![vec![0, 1, 2]],
            "ascending grid is one chain"
        );
        assert_eq!(
            warm_chains(&[0.5, 0.3, 0.6]),
            vec![vec![0], vec![1, 2]],
            "a descent starts a new chain"
        );
        assert_eq!(
            warm_chains(&[0.9, 1.2, 1.4]),
            vec![vec![0], vec![1], vec![2]],
            "beyond WARM_MAX_LOAD every point is cold"
        );
        assert_eq!(warm_chains(&[]), Vec::<Vec<usize>>::new());
    }

    #[test]
    fn model_case_runs_below_saturation() {
        let sc = Scenario::builder("model")
            .service(ServiceDist::exponential_us(1.0))
            .cores(16)
            .conns(16)
            .loads(vec![0.5])
            .requests(5_000, 1_000)
            .smoke(2_000, 400)
            .case(Case::model(
                "M/G/16/FCFS",
                zygos_sim::queueing::Policy::CentralFcfs,
            ))
            .build()
            .expect("valid");
        let report = run_scenario(&sc, true).expect("runs");
        let p = &report.series[0].points[0];
        assert!(p.p99_us > 4.0, "exp p99 ≥ 4.6·S̄: {}", p.p99_us);
        assert_eq!(p.steal_fraction, 0.0, "models have no stealing");
    }

    #[test]
    fn live_case_round_trips_the_same_schema() {
        let sc = Scenario::builder("live")
            .service(ServiceDist::deterministic_us(200.0))
            .cores(2)
            .conns(8)
            .loads(vec![0.2])
            .requests(400, 50)
            .smoke(200, 25)
            .case(Case::live("zygos", LiveHost::Zygos))
            .build()
            .expect("valid");
        let report = run_scenario(&sc, true).expect("runs");
        let s = &report.series[0];
        assert!(!s.deterministic);
        let p = &s.points[0];
        assert!(
            p.p99_us >= 200.0,
            "latency at least the service time: {}",
            p.p99_us
        );
        assert!(p.shed_fraction == 0.0, "no gate, no sheds");
    }

    #[test]
    fn telemetry_decomposes_the_tail_and_carries_series() {
        use crate::spec::TelemetrySpec;
        use zygos_sysim::SeriesKind;
        let sc = Scenario::builder("telem")
            .service(ServiceDist::exponential_us(10.0))
            .cores(4)
            .conns(64)
            .loads(vec![1.3])
            .requests(6_000, 1_200)
            .smoke(3_000, 600)
            .case(
                Case::sim("credits", SimHost::Zygos)
                    .admission(AdmissionMode::ServerEdge)
                    .credit_target_us(70.0),
            )
            .telemetry(TelemetrySpec {
                series: vec![SeriesKind::AdmittedRate, SeriesKind::CreditCapacity],
                ..TelemetrySpec::default()
            })
            .build()
            .expect("valid");
        let report = run_scenario(&sc, true).expect("runs");
        let p = &report.series[0].points[0];
        // The decomposition is an exact partition of the tail sojourn:
        // components sum to the measured p99 within bucket precision.
        let sum = p.p99_queue_us + p.p99_service_us + p.p99_steal_us + p.p99_preempt_us;
        assert!(
            (sum - p.p99_us).abs() <= 0.01 * p.p99_us,
            "decomposition {sum:.2} vs p99 {:.2}",
            p.p99_us
        );
        assert!(p.p99_queue_us > 0.0 && p.p99_service_us > 0.0);
        for want in ["admitted_rate", "credit_capacity"] {
            assert!(
                p.timeseries
                    .iter()
                    .any(|s| s.name == want && !s.points.is_empty()),
                "series {want} missing from the report point"
            );
        }
    }

    #[test]
    fn tracing_leaves_base_report_metrics_bit_identical() {
        use crate::spec::TelemetrySpec;
        // The same scenario with and without the tracer: every base
        // metric must match bit-for-bit (tracing only observes), and the
        // traced run additionally carries the decomposition.
        let plain = tiny();
        let mut traced = tiny();
        traced.telemetry = Some(TelemetrySpec::default()); // trace, no series
        let a = run_scenario(&plain, true).expect("runs");
        let b = run_scenario(&traced, true).expect("runs");
        let (pa, pb) = (&a.series[0].points[0], &b.series[0].points[0]);
        for (x, y, name) in [
            (pa.mrps, pb.mrps, "mrps"),
            (pa.p50_us, pb.p50_us, "p50"),
            (pa.p99_us, pb.p99_us, "p99"),
            (pa.p999_us, pb.p999_us, "p999"),
            (pa.steal_fraction, pb.steal_fraction, "steal"),
            (pa.avg_cores, pb.avg_cores, "cores"),
        ] {
            assert_eq!(x.to_bits(), y.to_bits(), "{name} perturbed by tracing");
        }
        assert_eq!(
            pa.p99_queue_us, 0.0,
            "untraced run carries no decomposition"
        );
        assert!(
            pb.p99_queue_us + pb.p99_service_us > 0.0,
            "traced run decomposes"
        );
    }

    #[test]
    fn max_load_search_is_monotone_sane() {
        let sc = tiny();
        let l = max_load_at_slo(&sc, "zygos", 100.0, 8, true).expect("searches");
        assert!((0.25..1.0).contains(&l), "load@SLO = {l}");
    }
}
