//! A minimal TOML reader for scenario specs.
//!
//! The workspace builds offline (no registry), so this is a small
//! hand-rolled parser covering the subset the scenario format uses:
//!
//! * `key = value` pairs with string, float/integer, boolean and array
//!   values (arrays may nest and mix, e.g. `[["interactive", 100.0]]`);
//! * `[table]` headers and `[[array-of-tables]]` headers (one nesting
//!   level of dotted names is *not* supported — scenario specs are flat);
//! * `#` comments and blank lines.
//!
//! Anything outside that subset is a parse error with a line number —
//! a scenario spec should never silently lose a key.

use std::collections::BTreeMap;

/// A parsed TOML value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// Any numeric literal (TOML integers are widened).
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `[ ... ]`, possibly nested.
    Arr(Vec<Value>),
}

impl Value {
    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean content, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// One flat table of keys.
pub type Table = BTreeMap<String, Value>;

/// A parsed spec file: root keys, named tables, and arrays of tables.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Document {
    /// Keys above the first header.
    pub root: Table,
    /// `[name]` tables.
    pub tables: BTreeMap<String, Table>,
    /// `[[name]]` arrays of tables, in file order.
    pub arrays: BTreeMap<String, Vec<Table>>,
}

/// Parses a scenario TOML document.
pub fn parse(text: &str) -> Result<Document, String> {
    enum Target {
        Root,
        Table(String),
        Array(String, usize),
    }
    let mut doc = Document::default();
    let mut target = Target::Root;
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let at = |msg: String| format!("line {}: {msg}", lineno + 1);
        if let Some(name) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
            let name = name.trim().to_string();
            check_name(&name).map_err(&at)?;
            let list = doc.arrays.entry(name.clone()).or_default();
            list.push(Table::new());
            target = Target::Array(name, list.len() - 1);
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            let name = name.trim().to_string();
            check_name(&name).map_err(&at)?;
            if doc.tables.contains_key(&name) {
                return Err(at(format!("duplicate table [{name}]")));
            }
            doc.tables.insert(name.clone(), Table::new());
            target = Target::Table(name);
            continue;
        }
        let Some(eq) = find_top_level_eq(line) else {
            return Err(at(format!(
                "expected `key = value` or a [header], got {line:?}"
            )));
        };
        let key = line[..eq].trim().to_string();
        check_name(&key).map_err(&at)?;
        let (value, rest) = parse_value(line[eq + 1..].trim()).map_err(&at)?;
        if !rest.trim().is_empty() {
            return Err(at(format!("trailing content after value: {rest:?}")));
        }
        let table = match &target {
            Target::Root => &mut doc.root,
            Target::Table(name) => doc.tables.get_mut(name).expect("current table"),
            Target::Array(name, idx) => &mut doc.arrays.get_mut(name).expect("current array")[*idx],
        };
        if table.insert(key.clone(), value).is_some() {
            return Err(at(format!("duplicate key {key:?}")));
        }
    }
    Ok(doc)
}

/// Strips a `#` comment that is not inside a string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Finds the `=` separating key from value (keys are bare, so the first
/// `=` outside a string is it).
fn find_top_level_eq(line: &str) -> Option<usize> {
    line.find('=')
}

fn check_name(name: &str) -> Result<(), String> {
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Err(format!(
            "bad key/table name {name:?} (bare [a-zA-Z0-9_-] only)"
        ));
    }
    Ok(())
}

/// Parses one value off the front of `s`; returns it and the rest.
fn parse_value(s: &str) -> Result<(Value, &str), String> {
    let s = s.trim_start();
    if let Some(rest) = s.strip_prefix('"') {
        let mut out = String::new();
        let mut chars = rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => return Ok((Value::Str(out), &rest[i + 1..])),
                '\\' => match chars.next() {
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    other => return Err(format!("unknown string escape {other:?}")),
                },
                c => out.push(c),
            }
        }
        return Err("unterminated string".to_string());
    }
    if let Some(mut rest) = s.strip_prefix('[') {
        let mut items = Vec::new();
        loop {
            rest = rest.trim_start();
            if let Some(after) = rest.strip_prefix(']') {
                return Ok((Value::Arr(items), after));
            }
            let (item, after) = parse_value(rest)?;
            items.push(item);
            rest = after.trim_start();
            if let Some(after) = rest.strip_prefix(',') {
                rest = after;
            } else if !rest.starts_with(']') {
                return Err(format!("expected ',' or ']' in array, got {rest:?}"));
            }
        }
    }
    if let Some(rest) = s.strip_prefix("true") {
        return Ok((Value::Bool(true), rest));
    }
    if let Some(rest) = s.strip_prefix("false") {
        return Ok((Value::Bool(false), rest));
    }
    // Number: consume the numeric token.
    let end = s
        .char_indices()
        .find(|(_, c)| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E' | '_'))
        .map(|(i, _)| i)
        .unwrap_or(s.len());
    if end == 0 {
        return Err(format!("expected a value, got {s:?}"));
    }
    let token: String = s[..end].chars().filter(|&c| c != '_').collect();
    let n: f64 = token
        .parse()
        .map_err(|_| format!("bad number {:?}", &s[..end]))?;
    Ok((Value::Num(n), &s[end..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_scenario_shape() {
        let doc = parse(
            r#"
# A scenario.
name = "fig13-overload"

[workload]
service = "exponential"
mean_us = 10.0
loads = [0.8, 1.2, 1.4]
conns = 2752

[[case]]
label = "ZygOS (static)"
host = "sim:zygos"

[[case]]
label = "tenants"
admission = true
slo_classes = [["interactive", 100.0], ["batch", 1000.0]]

[claims]
loose_sheds_first = true
"#,
        )
        .expect("parses");
        assert_eq!(doc.root["name"], Value::Str("fig13-overload".into()));
        let w = &doc.tables["workload"];
        assert_eq!(w["mean_us"], Value::Num(10.0));
        assert_eq!(
            w["loads"],
            Value::Arr(vec![Value::Num(0.8), Value::Num(1.2), Value::Num(1.4)])
        );
        let cases = &doc.arrays["case"];
        assert_eq!(cases.len(), 2);
        assert_eq!(cases[1]["admission"], Value::Bool(true));
        let classes = cases[1]["slo_classes"].as_arr().expect("array");
        assert_eq!(
            classes[0],
            Value::Arr(vec![Value::Str("interactive".into()), Value::Num(100.0)])
        );
        assert_eq!(doc.tables["claims"]["loose_sheds_first"], Value::Bool(true));
    }

    #[test]
    fn comments_and_underscored_numbers() {
        let doc = parse("a = 50_000 # fifty k\nb = \"x # not a comment\"\n").expect("parses");
        assert_eq!(doc.root["a"], Value::Num(50_000.0));
        assert_eq!(doc.root["b"], Value::Str("x # not a comment".into()));
        // An escaped quote must not end the string for the comment scan.
        let doc = parse("c = \"a\\\"b # not a comment\" # real comment\n").expect("parses");
        assert_eq!(doc.root["c"], Value::Str("a\"b # not a comment".into()));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("ok = 1\nbroken").expect_err("reject");
        assert!(e.starts_with("line 2:"), "{e}");
        let e = parse("x = 1\nx = 2").expect_err("duplicate");
        assert!(e.contains("duplicate key"), "{e}");
        let e = parse("[t]\n[t]").expect_err("duplicate table");
        assert!(e.contains("duplicate table"), "{e}");
        assert!(parse("a = [1, 2").is_err(), "unterminated array");
        assert!(parse("a = \"oops").is_err(), "unterminated string");
    }
}
