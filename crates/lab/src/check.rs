//! `lab --check`: acceptance claims and baseline regression diffs.
//!
//! Two independent gates, both driven from the scenario spec so a new
//! scenario file automatically becomes a CI gate:
//!
//! * [`check_claims`] — semantic assertions ([`crate::spec::Claims`])
//!   over the fresh report: bounded admitted tails at overload, diverging
//!   uncontrolled baselines, client-side wire savings, weighted-fair shed
//!   order and the per-class floor, elastic parking. These encode *what
//!   the experiment is supposed to show*; a refactor that silently
//!   changes the outcome fails here with a sentence naming the claim.
//! * [`check_baseline`] — structural and numeric comparison against a
//!   committed baseline JSON: same series, same grid, and (for
//!   deterministic hosts) headline metrics within the scenario's
//!   tolerance. This catches quiet drift that no claim covers.

use crate::report::{PointMetrics, Report, Series};
use crate::spec::{Case, HostSpec, Scenario};
use zygos_sysim::AdmissionMode;

/// Evaluates the scenario's claims over a report. Returns every
/// violation (empty = pass).
pub fn check_claims(sc: &Scenario, report: &Report) -> Vec<String> {
    let claims = &sc.claims;
    let mut errs = Vec::new();
    fn claim(errs: &mut Vec<String>, ok: bool, msg: String) {
        if !ok {
            errs.push(msg);
        }
    }
    fn overload(s: &Series, from: f64) -> Vec<&PointMetrics> {
        s.points.iter().filter(|p| p.load >= from).collect()
    }
    let case_of = |s: &Series| sc.case(&s.label);
    let gated = |c: &Case| c.policy.admission.is_some();

    if let Some(bound) = claims.admitted_p99_bound_us {
        for s in report
            .series
            .iter()
            .filter(|s| case_of(s).is_some_and(gated))
        {
            for p in overload(s, claims.overload_from) {
                claim(
                    &mut errs,
                    p.p99_us <= bound,
                    format!(
                        "[{}] load {:.2}: admitted p99 {:.0}us exceeds the {bound:.0}us bound",
                        s.label, p.load, p.p99_us
                    ),
                );
                claim(
                    &mut errs,
                    p.shed_fraction > 0.0,
                    format!(
                        "[{}] load {:.2}: an admission gate must shed at overload",
                        s.label, p.load
                    ),
                );
            }
        }
    }
    if let Some(past) = claims.uncontrolled_diverge_past_us {
        for s in report.series.iter().filter(|s| {
            case_of(s).is_some_and(|c| !gated(c) && !matches!(c.host, HostSpec::Model(_)))
        }) {
            for p in overload(s, claims.overload_from) {
                claim(
                    &mut errs,
                    p.p99_us > past,
                    format!(
                        "[{}] load {:.2}: ungated p99 {:.0}us should diverge past {past:.0}us — \
                         overload too weak?",
                        s.label, p.load, p.p99_us
                    ),
                );
            }
        }
    }
    if claims.client_waste_below_server {
        let with_mode = |mode: AdmissionMode| {
            report.series.iter().find(|s| {
                case_of(s)
                    .and_then(|c| c.policy.admission.as_ref())
                    .is_some_and(|a| a.mode == mode)
            })
        };
        match (
            with_mode(AdmissionMode::ServerEdge),
            with_mode(AdmissionMode::ClientSide),
        ) {
            (Some(server), Some(client)) => {
                for (sp, cp) in overload(server, claims.overload_from)
                    .iter()
                    .zip(overload(client, claims.overload_from).iter())
                {
                    claim(
                        &mut errs,
                        sp.wasted_wire_us > 0.0,
                        format!(
                            "[{}] load {:.2}: server-edge shedding must burn wire RTT",
                            server.label, sp.load
                        ),
                    );
                    claim(
                        &mut errs,
                        cp.wasted_wire_us < sp.wasted_wire_us,
                        format!(
                            "load {:.2}: client-side waste {:.0}us must sit strictly below \
                             server-edge {:.0}us",
                            cp.load, cp.wasted_wire_us, sp.wasted_wire_us
                        ),
                    );
                }
            }
            _ => errs.push(
                "client_waste_below_server: missing a server-edge or client-side series".into(),
            ),
        }
    }
    if claims.loose_sheds_first || claims.loose_floor_max_shed_rate.is_some() {
        for s in &report.series {
            let Some(case) = case_of(s) else { continue };
            let Some(slos) = &case.policy.slo else {
                continue;
            };
            if !gated(case) || slos.classes().len() < 2 {
                continue;
            }
            // Class ranks by bound: strictest = smallest bound.
            let bounds: Vec<f64> = slos.classes().iter().map(|c| c.slo.bound_us).collect();
            let strict = idx_min(&bounds);
            let loose = idx_max(&bounds);
            for p in overload(s, claims.overload_from) {
                if p.shed_share_by_class.len() < 2 {
                    // Hosts that do not report per-class metrics (live
                    // series) cannot back these claims; validation
                    // requires a sim case, so skipping is safe here.
                    continue;
                }
                if claims.loose_sheds_first {
                    let (ls, ss) = (
                        p.shed_share_by_class.get(loose).copied().unwrap_or(0.0),
                        p.shed_share_by_class.get(strict).copied().unwrap_or(0.0),
                    );
                    claim(
                        &mut errs,
                        ls > ss,
                        format!(
                            "[{}] load {:.2}: loosest class shed share {ls:.2} must exceed \
                             strictest {ss:.2}",
                            s.label, p.load
                        ),
                    );
                }
                if let Some(max_rate) = claims.loose_floor_max_shed_rate {
                    let rate = p.shed_rate_by_class.get(loose).copied().unwrap_or(0.0);
                    claim(
                        &mut errs,
                        rate <= max_rate,
                        format!(
                            "[{}] load {:.2}: loosest class shed rate {rate:.2} breaches its \
                             occupancy floor (max {max_rate:.2})",
                            s.label, p.load
                        ),
                    );
                }
            }
        }
    }
    if let Some(below) = claims.elastic_parks_below_load {
        for s in report
            .series
            .iter()
            .filter(|s| case_of(s).is_some_and(|c| c.host.is_elastic()))
        {
            for p in s.points.iter().filter(|p| p.load <= below) {
                claim(
                    &mut errs,
                    p.avg_cores < sc.workload.cores as f64,
                    format!(
                        "[{}] load {:.2}: an elastic host must park below load {below:.2} \
                         (granted {:.2} of {})",
                        s.label, p.load, p.avg_cores, sc.workload.cores
                    ),
                );
            }
        }
    }
    if let Some(g) = &claims.fleet_tail_gap {
        let find = |label: &str| report.series.iter().find(|s| s.label == label);
        match (find(&g.healthy), find(&g.degraded), find(&g.recovered)) {
            (Some(h), Some(d), Some(r)) => {
                for ((hp, dp), rp) in h.points.iter().zip(&d.points).zip(&r.points) {
                    claim(
                        &mut errs,
                        dp.p99_us >= g.min_ratio * hp.p99_us,
                        format!(
                            "[{}] load {:.2}: degraded fleet p99 {:.1}us is under {}x the \
                             healthy p99 {:.1}us",
                            d.label, dp.load, dp.p99_us, g.min_ratio, hp.p99_us
                        ),
                    );
                    let gap = dp.p99_us - hp.p99_us;
                    claim(
                        &mut errs,
                        dp.p99_us - rp.p99_us >= g.min_recovery * gap,
                        format!(
                            "[{}] load {:.2}: load-aware routing recovered only {:.1}us of the \
                             {gap:.1}us degraded-vs-healthy p99 gap (claimed at least {:.0}%)",
                            r.label,
                            rp.load,
                            dp.p99_us - rp.p99_us,
                            g.min_recovery * 100.0
                        ),
                    );
                }
            }
            _ => {
                errs.push("fleet_tail_gap names a case that is missing from the report".to_string())
            }
        }
    }
    if let Some(g) = &claims.staged_crossover {
        let find = |label: &str| report.series.iter().find(|s| s.label == label);
        match (find(&g.unified), find(&g.split)) {
            (Some(u), Some(s)) if !u.points.is_empty() && u.points.len() == s.points.len() => {
                // The crossover claim reads the grid's extremes: pooling
                // wins the light tail, splitting wins the heavy tail.
                let lo = idx_min(&u.points.iter().map(|p| p.load).collect::<Vec<_>>());
                let hi = idx_max(&u.points.iter().map(|p| p.load).collect::<Vec<_>>());
                let (ul, sl) = (&u.points[lo], &s.points[lo]);
                claim(
                    &mut errs,
                    sl.p99_us >= g.low_ratio * ul.p99_us,
                    format!(
                        "load {:.2}: split p99 {:.1}us undercuts {}x the unified p99 {:.1}us — \
                         pooling should win the light tail",
                        sl.load, sl.p99_us, g.low_ratio, ul.p99_us
                    ),
                );
                let (uh, sh) = (&u.points[hi], &s.points[hi]);
                claim(
                    &mut errs,
                    uh.p99_us >= g.high_ratio * sh.p99_us,
                    format!(
                        "load {:.2}: unified p99 {:.1}us is under {}x the split p99 {:.1}us — \
                         the HoL-blocking crossover did not appear",
                        uh.load, uh.p99_us, g.high_ratio, sh.p99_us
                    ),
                );
            }
            _ => errs
                .push("staged_crossover names a case that is missing from the report".to_string()),
        }
    }
    if let Some(g) = &claims.retry_storm {
        let find = |label: &str| report.series.iter().find(|s| s.label == label);
        match (find(&g.backoff), find(&g.drop), find(&g.naive)) {
            (Some(b), Some(d), Some(n)) => {
                for ((bp, dp), np) in overload(b, claims.overload_from)
                    .iter()
                    .zip(overload(d, claims.overload_from))
                    .zip(overload(n, claims.overload_from))
                {
                    claim(
                        &mut errs,
                        bp.p99_us <= g.bound_us,
                        format!(
                            "[{}] load {:.2}: backoff-retry p99 {:.0}us exceeds the {:.0}us \
                             storm bound",
                            b.label, bp.load, bp.p99_us, g.bound_us
                        ),
                    );
                    claim(
                        &mut errs,
                        bp.goodput >= g.min_goodput_ratio * dp.goodput,
                        format!(
                            "[{}] load {:.2}: backoff goodput {:.3} fell under {:.0}% of the \
                             drop baseline's {:.3}",
                            b.label,
                            bp.load,
                            bp.goodput,
                            g.min_goodput_ratio * 100.0,
                            dp.goodput
                        ),
                    );
                    claim(
                        &mut errs,
                        np.p99_us > g.bound_us,
                        format!(
                            "[{}] load {:.2}: naive-retry p99 {:.0}us should diverge past \
                             {:.0}us — storm too weak?",
                            n.label, np.load, np.p99_us, g.bound_us
                        ),
                    );
                    claim(
                        &mut errs,
                        np.retry_rate > bp.retry_rate,
                        format!(
                            "[{}] load {:.2}: naive retry rate {:.2} should exceed backoff's \
                             {:.2} — the storm is what backoff is supposed to damp",
                            n.label, np.load, np.retry_rate, bp.retry_rate
                        ),
                    );
                }
            }
            _ => errs.push("retry_storm names a case that is missing from the report".to_string()),
        }
    }
    if let Some(g) = &claims.metastable_recovery {
        let find = |label: &str| report.series.iter().find(|s| s.label == label);
        let burst = sc.faults.as_ref().and_then(|f| f.burst);
        match (find(&g.gated), find(&g.ungated), burst) {
            (Some(gs), Some(us), Some((at_us, duration_us, _))) => {
                let end_us = at_us + duration_us;
                for (gp, up) in gs.points.iter().zip(&us.points) {
                    // The recovery deadline is `windows` series intervals
                    // past burst end, with the interval read off the
                    // harvested series itself.
                    let Some(wp) = series_of(gp, "window_p99_us") else {
                        errs.push(format!(
                            "[{}] load {:.2}: metastable_recovery needs a non-empty \
                             window_p99_us series",
                            gs.label, gp.load
                        ));
                        continue;
                    };
                    let Some(dt) = series_dt(wp) else {
                        errs.push(format!(
                            "[{}] load {:.2}: window_p99_us has too few points to define \
                             a recovery window",
                            gs.label, gp.load
                        ));
                        continue;
                    };
                    let deadline_us = end_us + g.windows as f64 * dt;
                    let tol = sc.check_tolerance;
                    match (
                        mean_where(wp, |t| t < at_us),
                        mean_where(wp, |t| t >= deadline_us),
                    ) {
                        (Some(pre), Some(post)) => claim(
                            &mut errs,
                            post <= (1.0 + tol) * pre,
                            format!(
                                "[{}] load {:.2}: gated window p99 {post:.1}us after the \
                                 recovery deadline never returned to the pre-burst \
                                 {pre:.1}us — admission did not break the metastable state",
                                gs.label, gp.load
                            ),
                        ),
                        _ => errs.push(format!(
                            "[{}] load {:.2}: window_p99_us has no pre-burst or \
                             post-deadline samples (burst at {at_us:.0}us, deadline \
                             {deadline_us:.0}us)",
                            gs.label, gp.load
                        )),
                    }
                    match series_of(gp, "credit_capacity").map(|cs| {
                        (
                            mean_where(cs, |t| t < at_us),
                            mean_where(cs, |t| t >= deadline_us),
                        )
                    }) {
                        Some((Some(pre), Some(post))) => claim(
                            &mut errs,
                            post >= (1.0 - tol) * pre,
                            format!(
                                "[{}] load {:.2}: credit capacity {post:.1} after the \
                                 recovery deadline never re-opened to the pre-burst \
                                 {pre:.1} — AIMD stayed clamped",
                                gs.label, gp.load
                            ),
                        ),
                        _ => errs.push(format!(
                            "[{}] load {:.2}: metastable_recovery needs a credit_capacity \
                             series spanning the burst",
                            gs.label, gp.load
                        )),
                    }
                    // The ungated twin must stay degraded: the closed
                    // retry loop sustains the overload the burst started.
                    match series_of(up, "window_p99_us").map(|uw| {
                        (
                            mean_where(uw, |t| t < at_us),
                            mean_where(uw, |t| t >= deadline_us),
                        )
                    }) {
                        Some((Some(pre), Some(post))) => claim(
                            &mut errs,
                            post >= 2.0 * pre,
                            format!(
                                "[{}] load {:.2}: ungated window p99 {post:.1}us settled back \
                                 near the pre-burst {pre:.1}us — the metastable state did \
                                 not persist (burst too weak or retries too gentle?)",
                                us.label, up.load
                            ),
                        ),
                        _ => errs.push(format!(
                            "[{}] load {:.2}: metastable_recovery needs the ungated twin's \
                             window_p99_us series spanning the burst",
                            us.label, up.load
                        )),
                    }
                }
            }
            (_, _, None) => errs
                .push("metastable_recovery needs the [faults] burst in the scenario".to_string()),
            _ => errs.push(
                "metastable_recovery names a case that is missing from the report".to_string(),
            ),
        }
    }
    if let Some(g) = &claims.scatter_gather {
        let find = |label: &str| report.series.iter().find(|s| s.label == label);
        match (find(&g.base), find(&g.fanned), find(&g.recovered)) {
            (Some(b), Some(f), Some(r)) => {
                for ((bp, fp), rp) in b.points.iter().zip(&f.points).zip(&r.points) {
                    claim(
                        &mut errs,
                        fp.p99_us >= g.min_amplification * bp.p99_us,
                        format!(
                            "[{}] load {:.2}: fanned p99 {:.1}us is under {}x the fan-out-1 \
                             p99 {:.1}us — no tail-at-scale amplification",
                            f.label, fp.load, fp.p99_us, g.min_amplification, bp.p99_us
                        ),
                    );
                    let gap = fp.p99_us - bp.p99_us;
                    claim(
                        &mut errs,
                        fp.p99_us - rp.p99_us >= g.min_recovery * gap,
                        format!(
                            "[{}] load {:.2}: recovered only {:.1}us of the {gap:.1}us \
                             fan-out p99 gap (claimed at least {:.0}%)",
                            r.label,
                            rp.load,
                            fp.p99_us - rp.p99_us,
                            g.min_recovery * 100.0
                        ),
                    );
                }
            }
            _ => {
                errs.push("scatter_gather names a case that is missing from the report".to_string())
            }
        }
    }
    errs
}

/// Pins the telemetry the scenario requested: every ZygOS-family sim
/// series must carry the p99 sojourn decomposition (components summing
/// to the measured p99 within 1% — the attribution is an exact
/// partition, so the bound only absorbs histogram bucketing) and one
/// non-empty time-series per requested kind. Returns every violation.
pub fn check_telemetry(sc: &Scenario, report: &Report) -> Vec<String> {
    let Some(tel) = &sc.telemetry else {
        return Vec::new();
    };
    let mut errs = Vec::new();
    for s in &report.series {
        let Some(case) = sc.case(&s.label) else {
            continue;
        };
        if !Scenario::host_is_traced(case.host) {
            continue;
        }
        for p in &s.points {
            if tel.trace && p.p99_us > 0.0 {
                let sum = p.p99_queue_us + p.p99_service_us + p.p99_steal_us + p.p99_preempt_us;
                if (sum - p.p99_us).abs() > 0.01 * p.p99_us {
                    errs.push(format!(
                        "[{}] load {:.2}: decomposition sum {sum:.2}us does not match the \
                         measured p99 {:.2}us (must agree within 1%)",
                        s.label, p.load, p.p99_us
                    ));
                }
            }
            for kind in &tel.series {
                // Per-class kinds register one series per class; a name
                // prefix match covers both spellings.
                let present = p
                    .timeseries
                    .iter()
                    .any(|ts| ts.name.starts_with(kind.name()) && !ts.points.is_empty());
                if !present {
                    errs.push(format!(
                        "[{}] load {:.2}: requested series {:?} is missing or empty",
                        s.label,
                        p.load,
                        kind.name()
                    ));
                }
            }
        }
    }
    errs
}

/// Compares a fresh report against a committed baseline. Structure must
/// match exactly; deterministic series additionally compare headline
/// numbers within `sc.check_tolerance` (relative, with small absolute
/// floors so near-zero metrics do not produce infinite ratios).
pub fn check_baseline(sc: &Scenario, fresh: &Report, baseline: &Report) -> Vec<String> {
    let mut errs = Vec::new();
    if baseline.scenario != fresh.scenario {
        errs.push(format!(
            "baseline is for scenario {:?}, report is {:?}",
            baseline.scenario, fresh.scenario
        ));
        return errs;
    }
    if baseline.smoke != fresh.smoke {
        errs.push(format!(
            "baseline was recorded at {} scale, this run is {} — rerun with the matching mode \
             or regenerate with --write-baselines",
            mode(baseline.smoke),
            mode(fresh.smoke)
        ));
        return errs;
    }
    if baseline.series.len() != fresh.series.len() {
        errs.push(format!(
            "series count changed: baseline {}, report {} — regenerate the baseline",
            baseline.series.len(),
            fresh.series.len()
        ));
        return errs;
    }
    for (b, f) in baseline.series.iter().zip(&fresh.series) {
        if b.label != f.label || b.host != f.host {
            errs.push(format!(
                "series changed: baseline {:?}@{} vs report {:?}@{}",
                b.label, b.host, f.label, f.host
            ));
            continue;
        }
        if b.points.len() != f.points.len() {
            errs.push(format!(
                "[{}] grid changed: baseline {} points, report {}",
                f.label,
                b.points.len(),
                f.points.len()
            ));
            continue;
        }
        for (bp, fp) in b.points.iter().zip(&f.points) {
            if (bp.load - fp.load).abs() > 1e-9 {
                errs.push(format!(
                    "[{}] grid changed: baseline load {:.4}, report {:.4}",
                    f.label, bp.load, fp.load
                ));
                continue;
            }
            if !(b.deterministic && f.deterministic) {
                continue; // Wall-clock series: structural compare only.
            }
            // Headline metrics only: the point is catching regressions,
            // not entombing every digit.
            let label = f.label.clone();
            let mut field = |name: &str, bv: f64, fv: f64, abs_floor: f64| {
                let scale = bv.abs().max(fv.abs()).max(abs_floor);
                if (bv - fv).abs() > sc.check_tolerance * scale {
                    errs.push(format!(
                        "[{label}] load {:.2}: {name} drifted from {bv:.3} to {fv:.3} \
                         (tolerance {:.0}%)",
                        bp.load,
                        sc.check_tolerance * 100.0
                    ));
                }
            };
            field("p99_us", bp.p99_us, fp.p99_us, 5.0);
            field("mrps", bp.mrps, fp.mrps, 0.01);
            field("shed_fraction", bp.shed_fraction, fp.shed_fraction, 0.1);
            field("avg_cores", bp.avg_cores, fp.avg_cores, 2.0);
            field("goodput", bp.goodput, fp.goodput, 0.1);
            field("retry_rate", bp.retry_rate, fp.retry_rate, 0.1);
            if (bp.wasted_wire_us > 0.0) != (fp.wasted_wire_us > 0.0) {
                errs.push(format!(
                    "[{label}] load {:.2}: wasted_wire_us changed sign class \
                     ({:.0} vs {:.0})",
                    bp.load, bp.wasted_wire_us, fp.wasted_wire_us
                ));
            }
        }
        // Search and tail results: presence is structural; values compare
        // within the same tolerance. Probe counts are deliberately not
        // compared — they are pinned by unit tests, not baselines.
        if b.search.is_some() != f.search.is_some() {
            errs.push(format!(
                "[{}] search result presence changed — regenerate the baseline",
                f.label
            ));
        }
        if b.tail.is_some() != f.tail.is_some() {
            errs.push(format!(
                "[{}] tail result presence changed — regenerate the baseline",
                f.label
            ));
        }
        if b.deterministic && f.deterministic {
            let label = f.label.clone();
            let mut field = |name: &str, bv: f64, fv: f64, abs_floor: f64| {
                let scale = bv.abs().max(fv.abs()).max(abs_floor);
                if (bv - fv).abs() > sc.check_tolerance * scale {
                    errs.push(format!(
                        "[{label}] {name} drifted from {bv:.3} to {fv:.3} (tolerance {:.0}%)",
                        sc.check_tolerance * 100.0
                    ));
                }
            };
            if let (Some(bs), Some(fs)) = (&b.search, &f.search) {
                field("search.max_load", bs.max_load, fs.max_load, 0.05);
            }
            if let (Some(bt), Some(ft)) = (&b.tail, &f.tail) {
                field("tail.value_us", bt.value_us, ft.value_us, 5.0);
                field(
                    "tail.brute_value_us",
                    bt.brute_value_us,
                    ft.brute_value_us,
                    5.0,
                );
            }
        }
    }
    errs
}

fn mode(smoke: bool) -> &'static str {
    if smoke {
        "smoke"
    } else {
        "full"
    }
}

fn idx_min(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn idx_max(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// The named time-series of a point, if present and non-empty.
fn series_of<'a>(p: &'a PointMetrics, name: &str) -> Option<&'a [(f64, f64)]> {
    p.timeseries
        .iter()
        .find(|ts| ts.name == name && !ts.points.is_empty())
        .map(|ts| ts.points.as_slice())
}

/// Median spacing between consecutive series samples, µs. Median rather
/// than mean: the window-p99 harvest skips empty windows, so gaps can be
/// multiples of the tick interval.
fn series_dt(points: &[(f64, f64)]) -> Option<f64> {
    if points.len() < 2 {
        return None;
    }
    let mut gaps: Vec<f64> = points.windows(2).map(|w| w[1].0 - w[0].0).collect();
    gaps.sort_by(f64::total_cmp);
    Some(gaps[gaps.len() / 2])
}

/// Mean of series values at times satisfying `pred` (`None` if no sample
/// does).
fn mean_where(points: &[(f64, f64)], pred: impl Fn(f64) -> bool) -> Option<f64> {
    let vals: Vec<f64> = points
        .iter()
        .filter(|(t, _)| pred(*t))
        .map(|&(_, v)| v)
        .collect();
    if vals.is_empty() {
        None
    } else {
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::SCHEMA_VERSION;
    use crate::spec::{Case, Claims, Scenario, SimHost};
    use zygos_sim::dist::ServiceDist;

    fn scenario() -> Scenario {
        let claims = Claims {
            admitted_p99_bound_us: Some(200.0),
            uncontrolled_diverge_past_us: Some(200.0),
            ..Claims::default()
        };
        Scenario::builder("chk")
            .service(ServiceDist::exponential_us(10.0))
            .loads(vec![1.2])
            .case(Case::sim("static", SimHost::Zygos))
            .case(
                Case::sim("credits", SimHost::Zygos)
                    .admission(AdmissionMode::ServerEdge)
                    .credit_target_us(70.0),
            )
            .claims(claims)
            .build()
            .expect("valid")
    }

    fn report(static_p99: f64, credits_p99: f64, shed: f64) -> Report {
        let point = |p99: f64, shed: f64| PointMetrics {
            load: 1.2,
            p99_us: p99,
            shed_fraction: shed,
            mrps: 1.0,
            avg_cores: 16.0,
            ..PointMetrics::default()
        };
        Report {
            schema: SCHEMA_VERSION,
            scenario: "chk".into(),
            smoke: true,
            series: vec![
                Series {
                    label: "static".into(),
                    host: "sim:zygos".into(),
                    deterministic: true,
                    points: vec![point(static_p99, 0.0)],
                    search: None,
                    tail: None,
                },
                Series {
                    label: "credits".into(),
                    host: "sim:zygos".into(),
                    deterministic: true,
                    points: vec![point(credits_p99, shed)],
                    search: None,
                    tail: None,
                },
            ],
        }
    }

    #[test]
    fn claims_pass_and_fail_as_expected() {
        let sc = scenario();
        assert!(check_claims(&sc, &report(2_500.0, 90.0, 0.3)).is_empty());
        let errs = check_claims(&sc, &report(2_500.0, 400.0, 0.3));
        assert!(errs.iter().any(|e| e.contains("exceeds")), "{errs:?}");
        let errs = check_claims(&sc, &report(150.0, 90.0, 0.3));
        assert!(errs.iter().any(|e| e.contains("diverge")), "{errs:?}");
        let errs = check_claims(&sc, &report(2_500.0, 90.0, 0.0));
        assert!(errs.iter().any(|e| e.contains("must shed")), "{errs:?}");
    }

    #[test]
    fn staged_crossover_claim_reads_grid_extremes() {
        use crate::spec::StagedCrossoverClaim;
        use zygos_net::cost::CostModel;
        use zygos_sysim::{CoreLayout, StagedConfig};
        let plan = StagedConfig::paper_pipeline(&CostModel::zygos());
        let mut sc = Scenario::builder("xover")
            .service(ServiceDist::exponential_us(10.0))
            .loads(vec![0.5, 0.8])
            .stages(plan.stages.clone())
            .case(Case::sim("unified", SimHost::Staged))
            .case(Case::sim("split", SimHost::Staged).layout(CoreLayout::SplitNet { net_cores: 1 }))
            .build()
            .expect("valid");
        sc.claims.staged_crossover = Some(StagedCrossoverClaim {
            unified: "unified".into(),
            split: "split".into(),
            low_ratio: 1.0,
            high_ratio: 1.1,
        });
        let mk = |label: &str, p99s: [f64; 2]| Series {
            label: label.into(),
            host: "sim:staged".into(),
            deterministic: true,
            points: p99s
                .iter()
                .zip([0.5, 0.8])
                .map(|(&p99, load)| PointMetrics {
                    load,
                    p99_us: p99,
                    ..PointMetrics::default()
                })
                .collect(),
            search: None,
            tail: None,
        };
        let report = |u: [f64; 2], s: [f64; 2]| Report {
            schema: SCHEMA_VERSION,
            scenario: "xover".into(),
            smoke: true,
            series: vec![mk("unified", u), mk("split", s)],
        };
        // Unified wins low, loses high by >1.1x: the claimed crossover.
        assert!(check_claims(&sc, &report([200.0, 550.0], [210.0, 450.0])).is_empty());
        // Split beats unified at low load: pooling claim fires.
        let errs = check_claims(&sc, &report([200.0, 550.0], [180.0, 450.0]));
        assert!(errs.iter().any(|e| e.contains("light tail")), "{errs:?}");
        // No high-load gap: crossover claim fires.
        let errs = check_claims(&sc, &report([200.0, 460.0], [210.0, 450.0]));
        assert!(errs.iter().any(|e| e.contains("crossover")), "{errs:?}");
        // A renamed series is loud, not silently skipped.
        let mut r = report([200.0, 550.0], [210.0, 450.0]);
        r.series[1].label = "renamed".into();
        let errs = check_claims(&sc, &r);
        assert!(errs.iter().any(|e| e.contains("missing")), "{errs:?}");
    }

    #[test]
    fn telemetry_pins_catch_bad_decomposition_and_missing_series() {
        use crate::report::TraceSeries;
        use crate::spec::TelemetrySpec;
        use zygos_sysim::SeriesKind;
        let mut sc = scenario();
        sc.telemetry = Some(TelemetrySpec {
            series: vec![SeriesKind::AdmittedRate],
            ..TelemetrySpec::default()
        });
        // Bare points: no decomposition, no series — both pins fire.
        let bare = report(2_500.0, 90.0, 0.3);
        let errs = check_telemetry(&sc, &bare);
        assert!(errs.iter().any(|e| e.contains("decomposition")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("admitted_rate")), "{errs:?}");
        // Faithful points: components partition the p99, series present.
        let mut good = bare.clone();
        for s in &mut good.series {
            for p in &mut s.points {
                p.p99_queue_us = 0.6 * p.p99_us;
                p.p99_service_us = 0.4 * p.p99_us;
                p.timeseries = vec![TraceSeries {
                    name: "admitted_rate".into(),
                    points: vec![(25.0, 1.2)],
                }];
            }
        }
        assert!(check_telemetry(&sc, &good).is_empty());
        // A scenario without telemetry pins nothing.
        let plain = scenario();
        assert!(check_telemetry(&plain, &bare).is_empty());
    }

    #[test]
    fn baseline_diff_tolerates_noise_but_not_drift() {
        let sc = scenario();
        let base = report(2_500.0, 90.0, 0.3);
        // Within 50% tolerance.
        assert!(check_baseline(&sc, &report(2_600.0, 100.0, 0.35), &base).is_empty());
        // p99 doubled: drift.
        let errs = check_baseline(&sc, &report(2_500.0, 190.0, 0.3), &base);
        assert!(
            errs.iter().any(|e| e.contains("p99_us drifted")),
            "{errs:?}"
        );
        // Structural changes are loud.
        let mut renamed = base.clone();
        renamed.series[0].label = "renamed".into();
        let errs = check_baseline(&sc, &base, &renamed);
        assert!(
            errs.iter().any(|e| e.contains("series changed")),
            "{errs:?}"
        );
    }

    #[test]
    fn baseline_gates_search_and_tail_results() {
        use crate::report::{SearchResult, TailResult};
        let sc = scenario();
        let mut base = report(2_500.0, 90.0, 0.3);
        base.series[0].search = Some(SearchResult {
            quantile: 0.99,
            bound_us: 100.0,
            resolution: 16,
            max_load: 0.8125,
            probes: 5,
            cold_probes: 1,
        });
        base.series[0].tail = Some(TailResult {
            load: 0.8,
            quantile: 0.999,
            value_us: 200.0,
            brute_value_us: 195.0,
            samples: 10_000,
            total_weight: 9_000.0,
            clones: 40,
            truncated: 0,
            master_events: 80_000,
            clone_events: 20_000,
            max_backlog: 50,
        });
        // Identical results pass; probe counts are free to differ.
        let mut fresh = base.clone();
        fresh.series[0].search.as_mut().expect("set").probes = 7;
        assert!(check_baseline(&sc, &fresh, &base).is_empty());
        // A drifted search load or tail estimate fails.
        let mut drifted = base.clone();
        drifted.series[0].search.as_mut().expect("set").max_load = 0.25;
        let errs = check_baseline(&sc, &drifted, &base);
        assert!(
            errs.iter().any(|e| e.contains("search.max_load")),
            "{errs:?}"
        );
        let mut drifted = base.clone();
        drifted.series[0].tail.as_mut().expect("set").value_us = 900.0;
        let errs = check_baseline(&sc, &drifted, &base);
        assert!(errs.iter().any(|e| e.contains("tail.value_us")), "{errs:?}");
        // Dropping a result entirely is structural.
        let mut missing = base.clone();
        missing.series[0].search = None;
        let errs = check_baseline(&sc, &missing, &base);
        assert!(
            errs.iter().any(|e| e.contains("search result presence")),
            "{errs:?}"
        );
    }
}
