//! `lab bench` — the experiment plane's performance trajectory.
//!
//! Times a fixed set of canonical workloads and reports events/sec
//! (simulator engine throughput) and points/sec (scenario sweep
//! throughput). The committed baseline at the repo root
//! ([`BENCH_BASELINE`]) is the trajectory anchor: `lab bench --check`
//! fails when a rate regresses more than [`REGRESSION_TOLERANCE`] below
//! it, so a future PR cannot quietly give back the experiment plane's
//! speed. See `docs/PERFORMANCE.md` for the design and the numbers.
//!
//! Wall-clock caveats: rates are machine-dependent, so the baseline is
//! only meaningful against the machine class that wrote it, and the check
//! tolerance is deliberately loose (30%) to ride out shared-runner noise.
//! Rates, not wall times, are compared — they are stable across the
//! smoke/full scales.

use std::time::Instant;

use zygos_sim::dist::ServiceDist;
use zygos_sysim::{
    latency_throughput_sweep, latency_throughput_sweep_cold, run_fleet, run_system, CoreLayout,
    FleetConfig, RoutePolicy, StagedConfig, SysConfig, SystemKind, TelemetryConfig,
};

use crate::report::Json;
use crate::runner::run_scenario_threads;
use crate::spec::{Case, Scenario, SimHost};

/// Repo-root baseline file name.
pub const BENCH_BASELINE: &str = "BENCH_expplane.json";

/// Maximum tolerated relative rate regression against the baseline.
pub const REGRESSION_TOLERANCE: f64 = 0.30;

/// The untraced/traced twin workloads the telemetry overhead gate
/// compares *within one bench run* (same binary, same machine, back to
/// back — so the comparison is noise-correlated in a way cross-run
/// baseline diffs cannot be). The untraced twin runs with telemetry
/// `None`, which is also the state a scenario without a `[telemetry]`
/// block runs in: its cost over the pre-telemetry engine is one
/// predictable `Option` branch per lifecycle point, gated by the
/// committed baseline ratchet (see `docs/PERFORMANCE.md`).
pub const TRACE_PAIR: (&str, &str) = ("engine-zygos-0.8", "engine-zygos-0.8-traced");

/// Documented bound on full-fidelity tracing overhead: with every
/// request's whole lifecycle recorded (`sample_period = 1`, the worst
/// case — ~7 ring stores per request plus the deterministic merge-sort
/// of the full event stream at collection), the traced twin's events/sec
/// must stay within this fraction of the untraced twin. Measured
/// ~42-45% on the reference machine (see `docs/PERFORMANCE.md`); the
/// bound leaves shared-runner headroom. Production-style tracing uses
/// `sample_period > 1`, which divides the cost by the period.
pub const TRACE_ON_MAX_OVERHEAD: f64 = 0.60;

/// The cold/warm twin sweeps the warm-start gate compares within one
/// bench run: the same deep-warmup ascending grid, run once point by
/// point from scratch and once as a checkpoint warm-start chain. Like
/// [`TRACE_PAIR`], the comparison is a same-run ratio, so it is immune
/// to machine-class drift.
pub const WARM_PAIR: (&str, &str) = ("sweep-cold", "sweep-warm");

/// Required points/sec speedup of the warm twin over the cold twin. The
/// chain re-simulates only `warmup/8` requests per point instead of the
/// full warmup, worth ~2.8x on the canonical deep-warmup grid (see
/// `docs/TAIL.md`); the gate leaves headroom for scheduler noise.
pub const WARM_MIN_SPEEDUP: f64 = 2.0;

/// The sequential/parallel twin sweeps of the canonical scenario.
pub const PAR_PAIR: (&str, &str) = ("lab-sweep-seq", "lab-sweep-par");

/// Required points/sec ratio of the parallel sweep over the sequential
/// one. On a single-core runner the fan-out degrades to sequential plus
/// scheduling overhead, so the floor only guards against a pathological
/// slowdown, not a parallelism win.
pub const PAR_MIN_RATIO: f64 = 0.8;

/// Baseline schema version. v2 added the [`WARM_PAIR`] twin sweeps; v3
/// added the `engine-staged-split` workload; v4 added
/// `engine-retry-storm`.
pub const BENCH_SCHEMA: u32 = 4;

/// One timed workload.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchEntry {
    /// Workload name (stable across PRs; the baseline joins on it).
    pub name: String,
    /// Wall-clock of the run, milliseconds.
    pub wall_ms: f64,
    /// Engine events processed (0 for scenario-sweep entries).
    pub events: u64,
    /// Events per second (0 for scenario-sweep entries).
    pub events_per_sec: f64,
    /// Grid points produced (0 for single-run engine entries).
    pub points: u64,
    /// Points per second (0 for single-run engine entries).
    pub points_per_sec: f64,
}

/// A full bench run.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Schema version of the JSON layout.
    pub schema: u32,
    /// Whether this ran at smoke scale.
    pub smoke: bool,
    /// One entry per canonical workload.
    pub entries: Vec<BenchEntry>,
}

/// Scales a request count down for smoke mode.
fn scale(requests: u64, warmup: u64, smoke: bool) -> (u64, u64) {
    if smoke {
        (requests / 5, warmup / 5)
    } else {
        (requests, warmup)
    }
}

/// The canonical engine workloads: one per distinct hot path of the
/// simulator (steal/IPI loop, elastic control plane + preemption, credit
/// AIMD under overload, run-to-completion batching, FCFS + far-horizon
/// events).
fn engine_workloads(smoke: bool) -> Vec<(&'static str, SysConfig)> {
    let mut out = Vec::new();

    let mut cfg = SysConfig::paper(SystemKind::Zygos, ServiceDist::exponential_us(10.0), 0.8);
    (cfg.requests, cfg.warmup) = scale(200_000, 20_000, smoke);
    out.push(("engine-zygos-0.8", cfg));

    let mut cfg = SysConfig::paper(
        SystemKind::Elastic { min_cores: 2 },
        ServiceDist::exponential_us(10.0),
        0.3,
    );
    (cfg.requests, cfg.warmup) = scale(120_000, 12_000, smoke);
    cfg.preemption_quantum_us = 25.0;
    out.push(("engine-elastic-quantum", cfg));

    let mut cfg = SysConfig::paper(SystemKind::Zygos, ServiceDist::exponential_us(10.0), 1.3);
    (cfg.requests, cfg.warmup) = scale(120_000, 12_000, smoke);
    cfg.admission = Some(zygos_sched::CreditConfig::for_cores(cfg.cores, 70.0));
    out.push(("engine-credits-1.3", cfg));

    // The traced twin of engine-zygos-0.8: identical workload with the
    // lifecycle tracer at full fidelity. check_bench compares the pair.
    let mut cfg = SysConfig::paper(SystemKind::Zygos, ServiceDist::exponential_us(10.0), 0.8);
    (cfg.requests, cfg.warmup) = scale(200_000, 20_000, smoke);
    cfg.telemetry = Some(TelemetryConfig::full_trace());
    out.push(("engine-zygos-0.8-traced", cfg));

    let mut cfg = SysConfig::paper(SystemKind::Ix, ServiceDist::exponential_us(10.0), 0.8);
    (cfg.requests, cfg.warmup) = scale(200_000, 20_000, smoke);
    cfg.rx_batch = 16;
    out.push(("engine-ix-batch16", cfg));

    // The staged pipeline engine: the paper's three-stage decomposition
    // on a split-net layout — the staged plane's hot path (per-stage
    // queues, segment handoff events, per-stage wait telemetry).
    let mut cfg = SysConfig::paper(SystemKind::Staged, ServiceDist::exponential_us(10.0), 0.8);
    (cfg.requests, cfg.warmup) = scale(150_000, 15_000, smoke);
    let mut plan = StagedConfig::paper_pipeline(&cfg.cost);
    plan.layout = CoreLayout::SplitNet { net_cores: 2 };
    cfg.staged = Some(plan);
    out.push(("engine-staged-split", cfg));

    let mut cfg = SysConfig::paper(
        SystemKind::LinuxFloating,
        ServiceDist::exponential_us(50.0),
        0.6,
    );
    (cfg.requests, cfg.warmup) = scale(100_000, 10_000, smoke);
    out.push(("engine-linux-floating", cfg));

    // The closed-loop retry plane's hot path: credit admission under
    // overload with every rejection feeding the jittered-backoff retry
    // queue — the adversarial-workload machinery (retry scheduling,
    // give-up accounting, wheel traffic from retry timers) on top of
    // the AIMD loop engine-credits-1.3 already times.
    let mut cfg = SysConfig::paper(SystemKind::Zygos, ServiceDist::exponential_us(10.0), 1.3);
    (cfg.requests, cfg.warmup) = scale(120_000, 12_000, smoke);
    cfg.admission = Some(zygos_sched::CreditConfig::for_cores(cfg.cores, 70.0));
    cfg.retry = Some(zygos_load::retry::RetryPolicy::Backoff {
        base_us: 50,
        factor: 2.0,
        max_attempts: 4,
    });
    out.push(("engine-retry-storm", cfg));

    out
}

/// The canonical sweep scenario (a fig06-shaped grid over four hosts).
fn sweep_scenario() -> Scenario {
    Scenario::builder("bench-fig06-sweep")
        .service(ServiceDist::exponential_us(10.0))
        .cores(16)
        .conns(2752)
        .loads(vec![0.1, 0.3, 0.5, 0.7, 0.8, 0.9])
        .requests(30_000, 6_000)
        .smoke(6_000, 1_200)
        .smoke_loads(vec![0.3, 0.6, 0.9])
        .case(Case::sim("linux-floating", SimHost::LinuxFloating))
        .case(Case::sim("ix", SimHost::Ix))
        .case(Case::sim("zygos-noint", SimHost::ZygosNoInterrupts))
        .case(Case::sim("zygos", SimHost::Zygos))
        .build()
        .expect("canonical sweep scenario is valid")
}

/// Runs the canonical workloads and returns the timed report.
pub fn run_bench(smoke: bool) -> BenchReport {
    let mut entries = Vec::new();
    for (name, cfg) in engine_workloads(smoke) {
        let start = Instant::now();
        let out = run_system(&cfg);
        let wall = start.elapsed();
        let secs = wall.as_secs_f64().max(1e-9);
        entries.push(BenchEntry {
            name: name.to_string(),
            wall_ms: wall.as_secs_f64() * 1e3,
            events: out.events,
            events_per_sec: out.events as f64 / secs,
            points: 0,
            points_per_sec: 0.0,
        });
    }
    // The fleet engine: four 4-core ZygOS shards behind a po2c balancer
    // with one shard serving at 3x cost — the scenario plane's `fleet:*`
    // hot path, including the degraded-capacity lowering.
    let mut base = SysConfig::paper(SystemKind::Zygos, ServiceDist::exponential_us(10.0), 0.75);
    base.cores = 4;
    base.conns = 256;
    (base.requests, base.warmup) = scale(120_000, 12_000, smoke);
    let mut fc = FleetConfig::new(base, 4, RoutePolicy::PowerOfTwoChoices);
    fc.degraded = vec![(0, 3.0)];
    let start = Instant::now();
    let out = run_fleet(&fc);
    let wall = start.elapsed();
    let secs = wall.as_secs_f64().max(1e-9);
    entries.push(BenchEntry {
        name: "engine-fleet-po2c".to_string(),
        wall_ms: wall.as_secs_f64() * 1e3,
        events: out.events(),
        events_per_sec: out.events() as f64 / secs,
        points: 0,
        points_per_sec: 0.0,
    });
    // The warm-start twin sweeps: a deliberately deep warmup (the regime
    // the checkpoint chain exists for) over an ascending grid. Cold runs
    // pay convergence + measurement at every point; warm chains pay only
    // warmup/8 re-equilibration plus the measurement window. Smoke only
    // halves this pair (not /5): the warm side's wall time must stay
    // large enough that its rate — and the warm/cold ratio the
    // [`WARM_MIN_SPEEDUP`] gate reads — is not scheduler-jitter noise.
    let (requests, warmup) = if smoke {
        (2_500, 30_000)
    } else {
        (5_000, 60_000)
    };
    let mut cfg = SysConfig::paper(SystemKind::Zygos, ServiceDist::exponential_us(10.0), 0.3);
    cfg.requests = requests;
    cfg.warmup = warmup;
    let loads = [0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
    for (name, warm) in [(WARM_PAIR.0, false), (WARM_PAIR.1, true)] {
        let start = Instant::now();
        let pts = if warm {
            latency_throughput_sweep(&cfg, &loads)
        } else {
            latency_throughput_sweep_cold(&cfg, &loads)
        };
        let wall = start.elapsed();
        let secs = wall.as_secs_f64().max(1e-9);
        entries.push(BenchEntry {
            name: name.to_string(),
            wall_ms: wall.as_secs_f64() * 1e3,
            events: 0,
            events_per_sec: 0.0,
            points: pts.len() as u64,
            points_per_sec: pts.len() as f64 / secs,
        });
    }
    let sc = sweep_scenario();
    for (name, threads) in [(PAR_PAIR.0, 1usize), (PAR_PAIR.1, 0usize)] {
        let start = Instant::now();
        let report = if threads == 1 {
            run_scenario_threads(&sc, smoke, 1)
        } else {
            crate::runner::run_scenario(&sc, smoke)
        }
        .expect("canonical sweep runs");
        let wall = start.elapsed();
        let secs = wall.as_secs_f64().max(1e-9);
        let points: u64 = report.series.iter().map(|s| s.points.len() as u64).sum();
        entries.push(BenchEntry {
            name: name.to_string(),
            wall_ms: wall.as_secs_f64() * 1e3,
            events: 0,
            events_per_sec: 0.0,
            points,
            points_per_sec: points as f64 / secs,
        });
    }
    BenchReport {
        schema: BENCH_SCHEMA,
        smoke,
        entries,
    }
}

/// Compares a fresh run against the committed baseline. Returns every
/// violation (empty = pass). Only *rates* are compared, and only
/// downward: faster is never an error (rewrite the baseline to ratchet).
pub fn check_bench(fresh: &BenchReport, baseline: &BenchReport, tolerance: f64) -> Vec<String> {
    let mut errs = Vec::new();
    if baseline.smoke != fresh.smoke {
        errs.push(format!(
            "baseline was recorded at {} scale, this run is {} — compare matching modes \
             or regenerate with --write",
            if baseline.smoke { "smoke" } else { "full" },
            if fresh.smoke { "smoke" } else { "full" },
        ));
        return errs;
    }
    for b in &baseline.entries {
        let Some(f) = fresh.entries.iter().find(|f| f.name == b.name) else {
            errs.push(format!(
                "baseline entry {:?} missing from this run — regenerate with --write",
                b.name
            ));
            continue;
        };
        let (bv, fv, what) = if b.events_per_sec > 0.0 {
            (b.events_per_sec, f.events_per_sec, "events/sec")
        } else {
            (b.points_per_sec, f.points_per_sec, "points/sec")
        };
        if fv < bv * (1.0 - tolerance) {
            errs.push(format!(
                "[{}] {what} regressed: baseline {:.0}, this run {:.0} \
                 (allowed floor {:.0}; wall-clock noise is documented in docs/PERFORMANCE.md)",
                b.name,
                bv,
                fv,
                bv * (1.0 - tolerance),
            ));
        }
    }
    // The telemetry overhead gate rides the same fresh run: full-fidelity
    // tracing must stay within its documented bound of the untraced twin.
    let entry = |name: &str| fresh.entries.iter().find(|e| e.name == name);
    if let (Some(off), Some(on)) = (entry(TRACE_PAIR.0), entry(TRACE_PAIR.1)) {
        let floor = off.events_per_sec * (1.0 - TRACE_ON_MAX_OVERHEAD);
        if on.events_per_sec < floor {
            errs.push(format!(
                "[{}] full-fidelity tracing overhead breaches its documented bound: \
                 traced {:.0} events/sec vs untraced {:.0} (floor {:.0}, bound {:.0}%)",
                TRACE_PAIR.1,
                on.events_per_sec,
                off.events_per_sec,
                floor,
                TRACE_ON_MAX_OVERHEAD * 100.0,
            ));
        }
    }
    // The warm-start gate rides the same fresh run: the chained sweep
    // must actually deliver its speedup over the cold twin, or the
    // tail-acceleration machinery has silently stopped warming.
    if let (Some(cold), Some(warm)) = (entry(WARM_PAIR.0), entry(WARM_PAIR.1)) {
        let floor = cold.points_per_sec * WARM_MIN_SPEEDUP;
        if warm.points_per_sec < floor {
            errs.push(format!(
                "[{}] warm-start sweep lost its speedup: warm {:.1} points/sec vs \
                 cold {:.1} (required >= {:.1}x, floor {:.1})",
                WARM_PAIR.1, warm.points_per_sec, cold.points_per_sec, WARM_MIN_SPEEDUP, floor,
            ));
        }
    }
    // The parallel sweep must not fall meaningfully behind the
    // sequential twin (it may not beat it on a one-core runner).
    if let (Some(seq), Some(par)) = (entry(PAR_PAIR.0), entry(PAR_PAIR.1)) {
        let floor = seq.points_per_sec * PAR_MIN_RATIO;
        if par.points_per_sec < floor {
            errs.push(format!(
                "[{}] parallel sweep fell behind the sequential twin: {:.1} points/sec \
                 vs {:.1} (floor {:.1})",
                PAR_PAIR.1, par.points_per_sec, seq.points_per_sec, floor,
            ));
        }
    }
    errs
}

impl BenchReport {
    /// Serializes to pretty JSON (same shortest-round-trip convention as
    /// the scenario reports).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", self.schema);
        let _ = writeln!(out, "  \"smoke\": {},", self.smoke);
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"wall_ms\": {}, \"events\": {}, \
                 \"events_per_sec\": {}, \"points\": {}, \"points_per_sec\": {}}}",
                e.name,
                num(e.wall_ms),
                e.events,
                num(e.events_per_sec),
                e.points,
                num(e.points_per_sec),
            );
            out.push_str(if i + 1 < self.entries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses the output of [`BenchReport::to_json`].
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let v = Json::parse(text)?;
        let Json::Obj(top) = v else {
            return Err("bench baseline: expected an object".into());
        };
        let num_of = |j: &Json, what: &str| -> Result<f64, String> {
            match j {
                Json::Num(n) => Ok(*n),
                other => Err(format!("{what}: expected number, got {other:?}")),
            }
        };
        let schema = num_of(top.get("schema").ok_or("missing key \"schema\"")?, "schema")? as u32;
        if schema != BENCH_SCHEMA {
            return Err(format!(
                "bench baseline schema v{schema} does not match this binary's v{BENCH_SCHEMA}; \
                 regenerate it with --write"
            ));
        }
        let smoke = match top.get("smoke").ok_or("missing key \"smoke\"")? {
            Json::Bool(b) => *b,
            other => return Err(format!("smoke: expected bool, got {other:?}")),
        };
        let Some(Json::Arr(items)) = top.get("entries") else {
            return Err("entries: expected array".into());
        };
        let mut entries = Vec::new();
        for it in items {
            let Json::Obj(o) = it else {
                return Err("entry: expected object".into());
            };
            let f = |k: &str| -> Result<f64, String> {
                num_of(o.get(k).ok_or_else(|| format!("missing key {k:?}"))?, k)
            };
            let name = match o.get("name").ok_or("missing key \"name\"")? {
                Json::Str(s) => s.clone(),
                other => return Err(format!("name: expected string, got {other:?}")),
            };
            entries.push(BenchEntry {
                name,
                wall_ms: f("wall_ms")?,
                events: f("events")? as u64,
                events_per_sec: f("events_per_sec")?,
                points: f("points")? as u64,
                points_per_sec: f("points_per_sec")?,
            });
        }
        Ok(BenchReport {
            schema,
            smoke,
            entries,
        })
    }
}

/// JSON has no NaN/Inf; rates are physical, clamp any slip-through.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            schema: BENCH_SCHEMA,
            smoke: true,
            entries: vec![
                BenchEntry {
                    name: "engine-zygos-0.8".into(),
                    wall_ms: 100.0,
                    events: 1_000_000,
                    events_per_sec: 10_000_000.0,
                    points: 0,
                    points_per_sec: 0.0,
                },
                BenchEntry {
                    name: "lab-sweep-seq".into(),
                    wall_ms: 200.0,
                    events: 0,
                    events_per_sec: 0.0,
                    points: 12,
                    points_per_sec: 60.0,
                },
            ],
        }
    }

    #[test]
    fn bench_json_round_trips() {
        let r = sample();
        assert_eq!(BenchReport::from_json(&r.to_json()).expect("parses"), r);
    }

    #[test]
    fn check_flags_regressions_only_downward() {
        let base = sample();
        let mut fresh = sample();
        // 10% slower: within the 30% tolerance.
        fresh.entries[0].events_per_sec = 9_000_000.0;
        assert!(check_bench(&fresh, &base, REGRESSION_TOLERANCE).is_empty());
        // 40% slower: flagged.
        fresh.entries[0].events_per_sec = 6_000_000.0;
        let errs = check_bench(&fresh, &base, REGRESSION_TOLERANCE);
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].contains("events/sec regressed"));
        // 10x faster: never an error.
        fresh.entries[0].events_per_sec = 100_000_000.0;
        assert!(check_bench(&fresh, &base, REGRESSION_TOLERANCE).is_empty());
    }

    #[test]
    fn check_catches_scale_mismatch_and_missing_entries() {
        let base = sample();
        let mut fresh = sample();
        fresh.smoke = false;
        let errs = check_bench(&fresh, &base, REGRESSION_TOLERANCE);
        assert!(errs[0].contains("smoke"), "{errs:?}");
        let mut fresh = sample();
        fresh.entries.remove(1);
        let errs = check_bench(&fresh, &base, REGRESSION_TOLERANCE);
        assert!(errs[0].contains("missing"), "{errs:?}");
    }

    #[test]
    fn trace_overhead_gate_compares_the_twin_pair() {
        let pair = |on_rate: f64| {
            let mut r = sample();
            r.entries.push(BenchEntry {
                name: TRACE_PAIR.1.into(),
                wall_ms: 100.0,
                events: 1_000_000,
                events_per_sec: on_rate,
                points: 0,
                points_per_sec: 0.0,
            });
            r
        };
        // Traced twin 50% slower than the untraced run: within the bound.
        let fresh = pair(5_000_000.0);
        assert!(check_bench(&fresh, &fresh, REGRESSION_TOLERANCE).is_empty());
        // Traced twin 65% slower: the overhead gate fires.
        let fresh = pair(3_500_000.0);
        let errs = check_bench(&fresh, &fresh, REGRESSION_TOLERANCE);
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].contains("tracing overhead"), "{errs:?}");
        // Without the traced twin in the run, the gate stays silent.
        let fresh = sample();
        assert!(check_bench(&fresh, &fresh, REGRESSION_TOLERANCE).is_empty());
    }

    #[test]
    fn warm_start_gate_compares_the_twin_sweeps() {
        let pair = |cold_rate: f64, warm_rate: f64| {
            let mut r = sample();
            for (name, rate) in [(WARM_PAIR.0, cold_rate), (WARM_PAIR.1, warm_rate)] {
                r.entries.push(BenchEntry {
                    name: name.into(),
                    wall_ms: 100.0,
                    events: 0,
                    events_per_sec: 0.0,
                    points: 6,
                    points_per_sec: rate,
                });
            }
            r
        };
        // 2.5x speedup: comfortably above the 2x floor.
        let fresh = pair(10.0, 25.0);
        assert!(check_bench(&fresh, &fresh, REGRESSION_TOLERANCE).is_empty());
        // 1.5x: the warm-start machinery has stopped paying for itself.
        let fresh = pair(10.0, 15.0);
        let errs = check_bench(&fresh, &fresh, REGRESSION_TOLERANCE);
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].contains("warm-start sweep"), "{errs:?}");
        // Without the pair in the run, the gate stays silent.
        let fresh = sample();
        assert!(check_bench(&fresh, &fresh, REGRESSION_TOLERANCE).is_empty());
    }

    #[test]
    fn parallel_ratio_gate_compares_the_twin_sweeps() {
        let pair = |par_rate: f64| {
            let mut r = sample();
            // sample() already carries lab-sweep-seq at 60 points/sec.
            r.entries.push(BenchEntry {
                name: PAR_PAIR.1.into(),
                wall_ms: 100.0,
                events: 0,
                events_per_sec: 0.0,
                points: 12,
                points_per_sec: par_rate,
            });
            r
        };
        // Parallel at 90% of sequential: a one-core runner, fine.
        let fresh = pair(54.0);
        assert!(check_bench(&fresh, &fresh, REGRESSION_TOLERANCE).is_empty());
        // Parallel at half the sequential rate: pathological, flagged.
        let fresh = pair(30.0);
        let errs = check_bench(&fresh, &fresh, REGRESSION_TOLERANCE);
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].contains("parallel sweep"), "{errs:?}");
    }

    #[test]
    fn smoke_bench_produces_all_entries() {
        let r = run_bench(true);
        assert_eq!(r.entries.len(), 13);
        assert!(
            r.entries.iter().any(|e| e.name == "engine-staged-split"),
            "the staged engine workload is part of the canonical set"
        );
        assert!(
            r.entries.iter().any(|e| e.name == "engine-retry-storm"),
            "the closed-loop retry workload is part of the canonical set"
        );
        for e in &r.entries {
            assert!(
                e.events_per_sec > 0.0 || e.points_per_sec > 0.0,
                "{} has no rate",
                e.name
            );
        }
        for name in [WARM_PAIR.0, WARM_PAIR.1, PAR_PAIR.0, PAR_PAIR.1] {
            assert!(
                r.entries.iter().any(|e| e.name == name),
                "{name} missing from the bench run"
            );
        }
    }
}
