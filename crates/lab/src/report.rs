//! The unified result schema and its JSON round trip.
//!
//! Every host — simulator, live runtime, queueing model — reduces a run
//! to the same [`PointMetrics`], so a [`Report`] is diffable across
//! hosts and across commits (`lab --check` compares a freshly produced
//! report against a committed baseline JSON). The JSON codec is
//! hand-rolled (this workspace builds offline, without serde); it covers
//! exactly the subset the schema needs, and the round trip is pinned by
//! tests and by `tests/scenario.rs` at the workspace root.
//!
//! Metrics that a host cannot produce are `0` (e.g. `steal_fraction` for
//! a queueing model, `wasted_wire_us` on the loopback live runtime) —
//! the *schema* never changes shape across hosts; that is what makes a
//! sim series and a live series of the same scenario directly
//! comparable.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One measured point (one case at one offered load).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct PointMetrics {
    /// Offered load (fraction of ideal saturation).
    pub load: f64,
    /// Measured goodput, MRPS.
    pub mrps: f64,
    /// Median latency, µs.
    pub p50_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: f64,
    /// 99.9th-percentile latency, µs.
    pub p999_us: f64,
    /// Fraction of events executed by non-home cores.
    pub steal_fraction: f64,
    /// IPIs per measured request.
    pub ipis_per_req: f64,
    /// Quantum preemptions per measured request.
    pub preemptions_per_req: f64,
    /// Time-averaged granted cores.
    pub avg_cores: f64,
    /// Granted core-seconds over the measurement window.
    pub core_seconds: f64,
    /// Fraction of arrivals shed by the credit gate.
    pub shed_fraction: f64,
    /// Wire time burned by shed requests, µs.
    pub wasted_wire_us: f64,
    /// Retry re-issues per generated request (0 without a retry policy;
    /// hosts that do not model the retry loop report 0).
    pub retry_rate: f64,
    /// Permanent client abandons per generated request.
    pub give_up_rate: f64,
    /// Fraction of generated requests not abandoned (`1 − give_up_rate`
    /// on hosts that model the retry loop; 0 on hosts that do not).
    pub goodput: f64,
    /// Each class's share of all sheds (empty without tenant classes).
    pub shed_share_by_class: Vec<f64>,
    /// Each class's own shed rate (empty without tenant classes).
    pub shed_rate_by_class: Vec<f64>,
    /// p99 sojourn decomposition, µs: time the p99 request spent queued
    /// (wire ingress + HoL blocking). Zero when tracing is off or the
    /// host records nothing. The four components sum to the p99 sojourn
    /// (within histogram bucket precision, checked by `lab --check`).
    pub p99_queue_us: f64,
    /// p99 decomposition: application execution + response TX + egress.
    pub p99_service_us: f64,
    /// p99 decomposition: steal grab + the stolen result's ride home.
    pub p99_steal_us: f64,
    /// p99 decomposition: background-queue wait after preemptions.
    pub p99_preempt_us: f64,
    /// Staged hosts only: p99 queue wait ahead of each pipeline stage,
    /// µs, pipeline order (empty on every other host). This is the
    /// per-stage tail decomposition the layout crossover is read from.
    pub stage_p99_wait_us: Vec<f64>,
    /// Control-tick time-series harvested at this point (empty when the
    /// scenario requests none): admitted rate, credit capacity, active
    /// cores, per-class shed rate — one entry per registered series.
    pub timeseries: Vec<TraceSeries>,
}

/// One named time-series of a point: `(t_us, value)` samples in time
/// order, as harvested from the host's telemetry registry.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct TraceSeries {
    /// Registry name (`admitted_rate`, `credit_capacity`, `active_cores`,
    /// `shed_rate_class<i>`).
    pub name: String,
    /// `(time µs since run start, value)` samples.
    pub points: Vec<(f64, f64)>,
}

/// The outcome of a `[search]` block for one case: the paper's
/// "maximum load @ SLO" metric plus the probe accounting that pins the
/// checkpoint-prefix-reuse win (`cold_probes` stays 1 for warmable
/// cases).
#[derive(Clone, Debug, PartialEq)]
pub struct SearchResult {
    /// The latency quantile the SLO binds.
    pub quantile: f64,
    /// The SLO bound, µs.
    pub bound_us: f64,
    /// Bisection grid resolution.
    pub resolution: u32,
    /// Highest load meeting the bound (0 when even the lowest fails).
    pub max_load: f64,
    /// Total bisection probes run.
    pub probes: u32,
    /// Probes that paid a full cold warmup.
    pub cold_probes: u32,
}

/// The outcome of a `[tail]` block for one case: the
/// importance-splitting deep-tail estimate next to the brute-force
/// estimate from the bit-identical master trajectory (see
/// `docs/TAIL.md` for the estimator).
#[derive(Clone, Debug, PartialEq)]
pub struct TailResult {
    /// The load studied.
    pub load: f64,
    /// The deep quantile estimated.
    pub quantile: f64,
    /// Splitting (weighted) estimate of that quantile, µs.
    pub value_us: f64,
    /// Brute-force estimate from the master trajectory alone, µs.
    pub brute_value_us: f64,
    /// Weighted samples collected (master + clones).
    pub samples: u64,
    /// Total sample weight (≈ master completions when unbiased).
    pub total_weight: f64,
    /// Trajectory clones spawned.
    pub clones: u64,
    /// Clone spawns suppressed by the budget (nonzero ⇒ biased low).
    pub truncated: u64,
    /// Events run by the master trajectory.
    pub master_events: u64,
    /// Events run by all clones together.
    pub clone_events: u64,
    /// Deepest backlog level observed.
    pub max_backlog: u64,
}

/// One case's sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Case label.
    pub label: String,
    /// Host id ([`crate::spec::HostSpec::id`]).
    pub host: String,
    /// Whether reruns reproduce the numbers exactly (sim and model hosts;
    /// live wall-clock series are structural-compare only).
    pub deterministic: bool,
    /// One point per grid load.
    pub points: Vec<PointMetrics>,
    /// Max-load@SLO search result (`None` when the scenario has no
    /// `[search]` block or the host cannot run one).
    pub search: Option<SearchResult>,
    /// Importance-splitting result (`None` without a `[tail]` block or
    /// on non-ZygOS-family hosts).
    pub tail: Option<TailResult>,
}

/// A full scenario result.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// Schema version (bump on shape changes so stale baselines fail
    /// loudly instead of diffing garbage).
    pub schema: u32,
    /// Scenario name.
    pub scenario: String,
    /// Whether this ran at smoke scale.
    pub smoke: bool,
    /// One series per case, scenario order.
    pub series: Vec<Series>,
}

/// Current schema version. v2 added the p99 sojourn decomposition and
/// per-point telemetry time-series; v3 added per-series `search` and
/// `tail` results; v4 added per-point `stage_p99_wait_us` (staged
/// hosts); v5 added the retry plane (`retry_rate`, `give_up_rate`,
/// `goodput`).
pub const SCHEMA_VERSION: u32 = 5;

impl Report {
    /// The series with `label`, if any.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Serializes to pretty JSON. `f64` values use Rust's shortest
    /// round-trip formatting, so `parse(to_json(r)) == r` exactly.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", self.schema);
        let _ = writeln!(out, "  \"scenario\": {},", quote(&self.scenario));
        let _ = writeln!(out, "  \"smoke\": {},", self.smoke);
        out.push_str("  \"series\": [\n");
        for (i, s) in self.series.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"label\": {},", quote(&s.label));
            let _ = writeln!(out, "      \"host\": {},", quote(&s.host));
            let _ = writeln!(out, "      \"deterministic\": {},", s.deterministic);
            out.push_str("      \"points\": [\n");
            for (j, p) in s.points.iter().enumerate() {
                out.push_str("        {");
                let fields = [
                    ("load", p.load),
                    ("mrps", p.mrps),
                    ("p50_us", p.p50_us),
                    ("p99_us", p.p99_us),
                    ("p999_us", p.p999_us),
                    ("steal_fraction", p.steal_fraction),
                    ("ipis_per_req", p.ipis_per_req),
                    ("preemptions_per_req", p.preemptions_per_req),
                    ("avg_cores", p.avg_cores),
                    ("core_seconds", p.core_seconds),
                    ("shed_fraction", p.shed_fraction),
                    ("wasted_wire_us", p.wasted_wire_us),
                    ("retry_rate", p.retry_rate),
                    ("give_up_rate", p.give_up_rate),
                    ("goodput", p.goodput),
                    ("p99_queue_us", p.p99_queue_us),
                    ("p99_service_us", p.p99_service_us),
                    ("p99_steal_us", p.p99_steal_us),
                    ("p99_preempt_us", p.p99_preempt_us),
                ];
                for (name, v) in fields {
                    let _ = write!(out, "\"{name}\": {}, ", num(v));
                }
                let _ = write!(
                    out,
                    "\"shed_share_by_class\": {}, \"shed_rate_by_class\": {}, \
                     \"stage_p99_wait_us\": {}, \"timeseries\": {}",
                    num_array(&p.shed_share_by_class),
                    num_array(&p.shed_rate_by_class),
                    num_array(&p.stage_p99_wait_us),
                    series_array(&p.timeseries)
                );
                out.push('}');
                out.push_str(if j + 1 < s.points.len() { ",\n" } else { "\n" });
            }
            out.push_str("      ],\n");
            let _ = writeln!(out, "      \"search\": {},", search_json(&s.search));
            let _ = writeln!(out, "      \"tail\": {}", tail_json(&s.tail));
            out.push_str(if i + 1 < self.series.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses the output of [`Report::to_json`] (any equivalent JSON,
    /// really — the parser is a small general one).
    pub fn from_json(text: &str) -> Result<Report, String> {
        let v = Json::parse(text)?;
        let top = v.object("report")?;
        let schema = get(top, "schema")?.number("schema")? as u32;
        if schema != SCHEMA_VERSION {
            return Err(format!(
                "baseline schema v{schema} does not match this binary's v{SCHEMA_VERSION}; \
                 regenerate it with --write-baselines"
            ));
        }
        let mut series = Vec::new();
        for (i, sv) in get(top, "series")?.array("series")?.iter().enumerate() {
            let so = sv.object(&format!("series[{i}]"))?;
            let mut points = Vec::new();
            for (j, pv) in get(so, "points")?.array("points")?.iter().enumerate() {
                let po = pv.object(&format!("point[{j}]"))?;
                let f = |k: &str| -> Result<f64, String> { get(po, k)?.number(k) };
                let arr = |k: &str| -> Result<Vec<f64>, String> {
                    get(po, k)?.array(k)?.iter().map(|x| x.number(k)).collect()
                };
                let mut timeseries = Vec::new();
                for (k, tv) in get(po, "timeseries")?
                    .array("timeseries")?
                    .iter()
                    .enumerate()
                {
                    let to = tv.object(&format!("timeseries[{k}]"))?;
                    let mut pts = Vec::new();
                    for pair in get(to, "points")?.array("points")? {
                        let pair = pair.array("series point")?;
                        if pair.len() != 2 {
                            return Err("series point must be [t_us, value]".into());
                        }
                        pts.push((pair[0].number("t_us")?, pair[1].number("value")?));
                    }
                    timeseries.push(TraceSeries {
                        name: get(to, "name")?.string("name")?,
                        points: pts,
                    });
                }
                points.push(PointMetrics {
                    load: f("load")?,
                    mrps: f("mrps")?,
                    p50_us: f("p50_us")?,
                    p99_us: f("p99_us")?,
                    p999_us: f("p999_us")?,
                    steal_fraction: f("steal_fraction")?,
                    ipis_per_req: f("ipis_per_req")?,
                    preemptions_per_req: f("preemptions_per_req")?,
                    avg_cores: f("avg_cores")?,
                    core_seconds: f("core_seconds")?,
                    shed_fraction: f("shed_fraction")?,
                    wasted_wire_us: f("wasted_wire_us")?,
                    retry_rate: f("retry_rate")?,
                    give_up_rate: f("give_up_rate")?,
                    goodput: f("goodput")?,
                    shed_share_by_class: arr("shed_share_by_class")?,
                    shed_rate_by_class: arr("shed_rate_by_class")?,
                    p99_queue_us: f("p99_queue_us")?,
                    p99_service_us: f("p99_service_us")?,
                    p99_steal_us: f("p99_steal_us")?,
                    p99_preempt_us: f("p99_preempt_us")?,
                    stage_p99_wait_us: arr("stage_p99_wait_us")?,
                    timeseries,
                });
            }
            let search = match get(so, "search")? {
                Json::Null => None,
                v => {
                    let o = v.object("search")?;
                    let f = |k: &str| -> Result<f64, String> { get(o, k)?.number(k) };
                    Some(SearchResult {
                        quantile: f("quantile")?,
                        bound_us: f("bound_us")?,
                        resolution: f("resolution")? as u32,
                        max_load: f("max_load")?,
                        probes: f("probes")? as u32,
                        cold_probes: f("cold_probes")? as u32,
                    })
                }
            };
            let tail = match get(so, "tail")? {
                Json::Null => None,
                v => {
                    let o = v.object("tail")?;
                    let f = |k: &str| -> Result<f64, String> { get(o, k)?.number(k) };
                    Some(TailResult {
                        load: f("load")?,
                        quantile: f("quantile")?,
                        value_us: f("value_us")?,
                        brute_value_us: f("brute_value_us")?,
                        samples: f("samples")? as u64,
                        total_weight: f("total_weight")?,
                        clones: f("clones")? as u64,
                        truncated: f("truncated")? as u64,
                        master_events: f("master_events")? as u64,
                        clone_events: f("clone_events")? as u64,
                        max_backlog: f("max_backlog")? as u64,
                    })
                }
            };
            series.push(Series {
                label: get(so, "label")?.string("label")?,
                host: get(so, "host")?.string("host")?,
                deterministic: get(so, "deterministic")?.boolean("deterministic")?,
                points,
                search,
                tail,
            });
        }
        Ok(Report {
            schema,
            scenario: get(top, "scenario")?.string("scenario")?,
            smoke: get(top, "smoke")?.boolean("smoke")?,
            series,
        })
    }
}

fn get<'a>(map: &'a BTreeMap<String, Json>, key: &str) -> Result<&'a Json, String> {
    map.get(key).ok_or_else(|| format!("missing key {key:?}"))
}

/// JSON has no NaN/Inf; metrics are physical quantities, so clamp any
/// non-finite slip-through to 0 rather than emitting invalid JSON.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn num_array(vs: &[f64]) -> String {
    let inner: Vec<String> = vs.iter().map(|&v| num(v)).collect();
    format!("[{}]", inner.join(", "))
}

fn search_json(s: &Option<SearchResult>) -> String {
    match s {
        None => "null".to_string(),
        Some(s) => format!(
            "{{\"quantile\": {}, \"bound_us\": {}, \"resolution\": {}, \
             \"max_load\": {}, \"probes\": {}, \"cold_probes\": {}}}",
            num(s.quantile),
            num(s.bound_us),
            s.resolution,
            num(s.max_load),
            s.probes,
            s.cold_probes
        ),
    }
}

fn tail_json(t: &Option<TailResult>) -> String {
    match t {
        None => "null".to_string(),
        Some(t) => format!(
            "{{\"load\": {}, \"quantile\": {}, \"value_us\": {}, \
             \"brute_value_us\": {}, \"samples\": {}, \"total_weight\": {}, \
             \"clones\": {}, \"truncated\": {}, \"master_events\": {}, \
             \"clone_events\": {}, \"max_backlog\": {}}}",
            num(t.load),
            num(t.quantile),
            num(t.value_us),
            num(t.brute_value_us),
            t.samples,
            num(t.total_weight),
            t.clones,
            t.truncated,
            t.master_events,
            t.clone_events,
            t.max_backlog
        ),
    }
}

fn series_array(series: &[TraceSeries]) -> String {
    let inner: Vec<String> = series
        .iter()
        .map(|s| {
            let pts: Vec<String> = s
                .points
                .iter()
                .map(|&(t, v)| format!("[{}, {}]", num(t), num(v)))
                .collect();
            format!(
                "{{\"name\": {}, \"points\": [{}]}}",
                quote(&s.name),
                pts.join(", ")
            )
        })
        .collect();
    format!("[{}]", inner.join(", "))
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A small JSON value tree (enough for the report schema).
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub(crate) fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    fn object(&self, what: &str) -> Result<&BTreeMap<String, Json>, String> {
        match self {
            Json::Obj(m) => Ok(m),
            other => Err(format!("{what}: expected object, got {other:?}")),
        }
    }

    fn array(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(a) => Ok(a),
            other => Err(format!("{what}: expected array, got {other:?}")),
        }
    }

    fn number(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Num(n) => Ok(*n),
            other => Err(format!("{what}: expected number, got {other:?}")),
        }
    }

    fn string(&self, what: &str) -> Result<String, String> {
        match self {
            Json::Str(s) => Ok(s.clone()),
            other => Err(format!("{what}: expected string, got {other:?}")),
        }
    }

    fn boolean(&self, what: &str) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("{what}: expected bool, got {other:?}")),
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err("unexpected end of input".to_string());
    };
    match c {
        b'{' => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(&b',') => *pos += 1,
                    Some(&b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(&b',') => *pos += 1,
                    Some(&b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        b'"' => {
            *pos += 1;
            let mut out = String::new();
            loop {
                let Some(&c) = b.get(*pos) else {
                    return Err("unterminated string".to_string());
                };
                *pos += 1;
                match c {
                    b'"' => return Ok(Json::Str(out)),
                    b'\\' => {
                        let Some(&e) = b.get(*pos) else {
                            return Err("unterminated escape".to_string());
                        };
                        *pos += 1;
                        match e {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'r' => out.push('\r'),
                            b'u' => {
                                if *pos + 4 > b.len() {
                                    return Err("truncated \\u escape".to_string());
                                }
                                let hex = std::str::from_utf8(&b[*pos..*pos + 4])
                                    .map_err(|_| "bad \\u escape".to_string())?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| "bad \\u escape".to_string())?;
                                out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                                *pos += 4;
                            }
                            other => return Err(format!("unknown escape \\{}", other as char)),
                        }
                    }
                    c => {
                        // Multi-byte UTF-8: copy the full sequence.
                        let len = utf8_len(c);
                        if len == 1 {
                            out.push(c as char);
                        } else {
                            let start = *pos - 1;
                            let end = start + len;
                            let s = std::str::from_utf8(b.get(start..end).unwrap_or_default())
                                .map_err(|_| "invalid UTF-8 in string".to_string())?;
                            out.push_str(s);
                            *pos = end;
                        }
                    }
                }
            }
        }
        b't' => expect_word(b, pos, "true", Json::Bool(true)),
        b'f' => expect_word(b, pos, "false", Json::Bool(false)),
        b'n' => expect_word(b, pos, "null", Json::Null),
        _ => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&b[start..*pos]).expect("ascii");
            s.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number {s:?} at byte {start}"))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn expect_word(b: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected {word:?} at byte {pos}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            schema: SCHEMA_VERSION,
            scenario: "fig13-overload".to_string(),
            smoke: true,
            series: vec![
                Series {
                    label: "ZygOS (static)".to_string(),
                    host: "sim:zygos".to_string(),
                    deterministic: true,
                    points: vec![PointMetrics {
                        load: 1.2,
                        mrps: 1.52,
                        p50_us: 21.5,
                        p99_us: 2431.0,
                        p999_us: 3000.25,
                        avg_cores: 16.0,
                        core_seconds: 0.81,
                        ..PointMetrics::default()
                    }],
                    search: Some(SearchResult {
                        quantile: 0.99,
                        bound_us: 100.0,
                        resolution: 16,
                        max_load: 0.8125,
                        probes: 5,
                        cold_probes: 1,
                    }),
                    tail: Some(TailResult {
                        load: 0.8,
                        quantile: 0.999,
                        value_us: 212.5,
                        brute_value_us: 208.0,
                        samples: 41_000,
                        total_weight: 12_000.25,
                        clones: 96,
                        truncated: 0,
                        master_events: 150_000,
                        clone_events: 42_000,
                        max_backlog: 71,
                    }),
                },
                Series {
                    label: "ZygOS (credits)".to_string(),
                    host: "sim:zygos".to_string(),
                    deterministic: true,
                    points: vec![PointMetrics {
                        load: 1.2,
                        mrps: 1.41,
                        p99_us: 87.0,
                        shed_fraction: 0.33,
                        wasted_wire_us: 19_000.0,
                        retry_rate: 0.41,
                        give_up_rate: 0.05,
                        goodput: 0.95,
                        shed_share_by_class: vec![0.01, 0.99],
                        shed_rate_by_class: vec![0.02, 0.61],
                        p99_queue_us: 61.5,
                        p99_service_us: 24.25,
                        p99_steal_us: 1.0,
                        p99_preempt_us: 0.25,
                        stage_p99_wait_us: vec![12.5, 0.0, 87.25],
                        timeseries: vec![TraceSeries {
                            name: "admitted_rate".to_string(),
                            points: vec![(25.0, 1.4), (50.0, 1.38)],
                        }],
                        ..PointMetrics::default()
                    }],
                    search: None,
                    tail: None,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let r = sample();
        let back = Report::from_json(&r.to_json()).expect("parses");
        assert_eq!(back, r);
    }

    #[test]
    fn schema_mismatch_is_loud() {
        let mut r = sample();
        r.schema = SCHEMA_VERSION + 1;
        let e = Report::from_json(&r.to_json()).expect_err("must reject");
        assert!(e.contains("schema"), "{e}");
    }

    #[test]
    fn strings_with_specials_survive() {
        let mut r = sample();
        r.series[0].label = "weird \"label\" \\ with\nnewline — µs".to_string();
        let back = Report::from_json(&r.to_json()).expect("parses");
        assert_eq!(back.series[0].label, r.series[0].label);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Report::from_json("").is_err());
        assert!(Report::from_json("{\"schema\": 1").is_err());
        assert!(Report::from_json("[1,2,3]").is_err());
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
        assert!(Json::parse("{\"a\": nope}").is_err());
    }

    #[test]
    fn shortest_roundtrip_floats_are_exact() {
        // The property the equality test rides on: Rust's f64 Display is
        // shortest-round-trip.
        for v in [0.1, 1.0 / 3.0, 2431.0, f64::MIN_POSITIVE, 1e300] {
            let s = num(v);
            assert_eq!(s.parse::<f64>().expect("parses"), v);
        }
        assert_eq!(num(f64::NAN), "0", "non-finite clamps");
    }
}
