//! Robustness: the KV protocol handler must answer (not panic on) any
//! syntactically framed but semantically malformed request.

use bytes::Bytes;
use proptest::prelude::*;
use zygos_kv::proto::KvServer;
use zygos_net::packet::RpcMessage;

proptest! {
    #[test]
    fn handler_total_on_arbitrary_bodies(
        opcode in any::<u16>(),
        req_id in any::<u64>(),
        body in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let server = KvServer::new(8);
        let req = RpcMessage::new(opcode, req_id, Bytes::from(body));
        let resp = server.handle(&req);
        // Every response echoes the request id, well- or mal-formed.
        prop_assert_eq!(resp.header.req_id, req_id);
    }
}
