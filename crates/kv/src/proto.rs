//! The KV wire protocol: GET/SET/DELETE over the framed RPC format.
//!
//! Body layouts (little-endian lengths):
//!
//! * GET request: `[klen: u16][key]` — response: `[found: u8][value]`
//! * SET request: `[klen: u16][key][value]` — response: `[existed: u8]`
//! * DELETE request: `[klen: u16][key]` — response: `[existed: u8]`

use bytes::{Buf, BufMut, Bytes, BytesMut};
use zygos_net::packet::RpcMessage;

use crate::store::KvStore;

/// Opcodes in the RPC header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KvOp {
    /// Read a key.
    Get = 1,
    /// Write a key.
    Set = 2,
    /// Remove a key.
    Delete = 3,
}

impl KvOp {
    /// Decodes an opcode.
    pub fn from_u16(v: u16) -> Option<KvOp> {
        match v {
            1 => Some(KvOp::Get),
            2 => Some(KvOp::Set),
            3 => Some(KvOp::Delete),
            _ => None,
        }
    }
}

/// Builds a GET request message.
pub fn encode_get(req_id: u64, key: &[u8]) -> RpcMessage {
    let mut b = BytesMut::with_capacity(2 + key.len());
    b.put_u16_le(key.len() as u16);
    b.extend_from_slice(key);
    RpcMessage::new(KvOp::Get as u16, req_id, b.freeze())
}

/// Builds a SET request message.
pub fn encode_set(req_id: u64, key: &[u8], value: &[u8]) -> RpcMessage {
    let mut b = BytesMut::with_capacity(2 + key.len() + value.len());
    b.put_u16_le(key.len() as u16);
    b.extend_from_slice(key);
    b.extend_from_slice(value);
    RpcMessage::new(KvOp::Set as u16, req_id, b.freeze())
}

/// Builds a DELETE request message.
pub fn encode_delete(req_id: u64, key: &[u8]) -> RpcMessage {
    let mut b = BytesMut::with_capacity(2 + key.len());
    b.put_u16_le(key.len() as u16);
    b.extend_from_slice(key);
    RpcMessage::new(KvOp::Delete as u16, req_id, b.freeze())
}

/// The server-side request handler — plug this into the runtime as the
/// application layer.
pub struct KvServer {
    store: KvStore,
}

impl KvServer {
    /// Creates a server over a store with the given shard count.
    pub fn new(shards: usize) -> Self {
        KvServer {
            store: KvStore::new(shards),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// Handles one request, producing the response message.
    ///
    /// Unknown opcodes or malformed bodies produce an error response with
    /// opcode `0xFFFF` (never a panic — the network is untrusted input).
    pub fn handle(&self, req: &RpcMessage) -> RpcMessage {
        let error = || RpcMessage::new(0xFFFF, req.header.req_id, Bytes::new());
        let Some(op) = KvOp::from_u16(req.header.opcode) else {
            return error();
        };
        let mut body = &req.body[..];
        if body.len() < 2 {
            return error();
        }
        let klen = body.get_u16_le() as usize;
        if body.len() < klen {
            return error();
        }
        let key = Bytes::copy_from_slice(&body[..klen]);
        body.advance(klen);
        match op {
            KvOp::Get => {
                let mut out = BytesMut::new();
                match self.store.get(&key) {
                    Some(v) => {
                        out.put_u8(1);
                        out.extend_from_slice(&v);
                    }
                    None => out.put_u8(0),
                }
                RpcMessage::new(KvOp::Get as u16, req.header.req_id, out.freeze())
            }
            KvOp::Set => {
                let existed = self.store.set(key, Bytes::copy_from_slice(body));
                RpcMessage::new(
                    KvOp::Set as u16,
                    req.header.req_id,
                    Bytes::copy_from_slice(&[existed as u8]),
                )
            }
            KvOp::Delete => {
                let existed = self.store.delete(&key);
                RpcMessage::new(
                    KvOp::Delete as u16,
                    req.header.req_id,
                    Bytes::copy_from_slice(&[existed as u8]),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_then_get_roundtrip() {
        let s = KvServer::new(4);
        let r1 = s.handle(&encode_set(1, b"key", b"value"));
        assert_eq!(r1.header.req_id, 1);
        assert_eq!(&r1.body[..], &[0], "did not exist before");
        let r2 = s.handle(&encode_get(2, b"key"));
        assert_eq!(r2.body[0], 1);
        assert_eq!(&r2.body[1..], b"value");
    }

    #[test]
    fn get_miss() {
        let s = KvServer::new(4);
        let r = s.handle(&encode_get(1, b"nope"));
        assert_eq!(&r.body[..], &[0]);
    }

    #[test]
    fn delete_semantics() {
        let s = KvServer::new(4);
        s.handle(&encode_set(1, b"k", b"v"));
        assert_eq!(s.handle(&encode_delete(2, b"k")).body[0], 1);
        assert_eq!(s.handle(&encode_delete(3, b"k")).body[0], 0);
    }

    #[test]
    fn malformed_requests_get_error_response() {
        let s = KvServer::new(4);
        // Unknown opcode.
        let bad = RpcMessage::new(99, 7, Bytes::from_static(b"\x03\x00abc"));
        assert_eq!(s.handle(&bad).header.opcode, 0xFFFF);
        // Truncated body.
        let short = RpcMessage::new(KvOp::Get as u16, 8, Bytes::from_static(b"\xff"));
        assert_eq!(s.handle(&short).header.opcode, 0xFFFF);
        // Key length exceeding body.
        let lying = RpcMessage::new(KvOp::Get as u16, 9, Bytes::from_static(b"\xff\x00a"));
        assert_eq!(s.handle(&lying).header.opcode, 0xFFFF);
    }

    #[test]
    fn response_echoes_request_id() {
        let s = KvServer::new(1);
        for id in [0u64, 42, u64::MAX] {
            assert_eq!(s.handle(&encode_get(id, b"x")).header.req_id, id);
        }
    }
}
