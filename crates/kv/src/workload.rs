//! The USR and ETC workload models (Atikoglu et al., SIGMETRICS'12), as
//! approximated by mutilate and used in the paper's Figure 9.
//!
//! * **USR**: tiny fixed-size records (~20B keys, 2B values), ≈99.8% GET —
//!   the highest-rate, smallest-task workload in the paper.
//! * **ETC**: the general-purpose pool: 20–45B keys, value sizes spread
//!   from a few bytes to ~1KiB (approximated with a generalized-Pareto
//!   body), ≈90% GET.
//!
//! [`KvWorkload::service_dist`] converts a workload into an empirical
//! service-time distribution for the system simulator: a base per-request
//! cost (hash + lookup) plus a per-byte copy cost. Mean task sizes come out
//! at ~1µs (USR) and ~2µs (ETC), matching the paper's "<2µs mean" (§6.2).

use zygos_sim::dist::ServiceDist;
use zygos_sim::rng::Xoshiro256;

/// Which trace model to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Facebook USR: user-account lookups.
    Usr,
    /// Facebook ETC: the general cache pool.
    Etc,
}

impl WorkloadKind {
    /// Figure-9 panel label.
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadKind::Usr => "USR",
            WorkloadKind::Etc => "ETC",
        }
    }
}

/// One generated operation.
#[derive(Clone, Debug)]
pub struct KvOpSpec {
    /// True for GET, false for SET.
    pub is_get: bool,
    /// Key index in `[0, keyspace)`.
    pub key_index: u64,
    /// Value size in bytes (for SETs, and the size returned by GET hits).
    pub value_len: usize,
}

/// A workload generator.
#[derive(Clone, Debug)]
pub struct KvWorkload {
    kind: WorkloadKind,
    /// Number of distinct keys.
    pub keyspace: u64,
}

impl KvWorkload {
    /// Creates a generator with the workload's default keyspace.
    pub fn new(kind: WorkloadKind) -> Self {
        KvWorkload {
            kind,
            keyspace: match kind {
                WorkloadKind::Usr => 1_000_000,
                WorkloadKind::Etc => 1_000_000,
            },
        }
    }

    /// The GET fraction of the mix.
    pub fn get_ratio(&self) -> f64 {
        match self.kind {
            WorkloadKind::Usr => 0.998,
            WorkloadKind::Etc => 0.90,
        }
    }

    /// Key length in bytes.
    pub fn key_len(&self, rng: &mut Xoshiro256) -> usize {
        match self.kind {
            WorkloadKind::Usr => 19,
            WorkloadKind::Etc => 20 + rng.next_bounded(26) as usize,
        }
    }

    /// Value length in bytes.
    pub fn value_len(&self, rng: &mut Xoshiro256) -> usize {
        match self.kind {
            WorkloadKind::Usr => 2,
            WorkloadKind::Etc => {
                // Generalized-Pareto-ish body capped at 1 KiB: most values
                // are tens of bytes, with a heavy-ish tail.
                let u = rng.next_f64_open();
                let v = 20.0 * ((1.0 - u).powf(-0.35) - 1.0) / 0.35 + 2.0;
                (v as usize).clamp(2, 1024)
            }
        }
    }

    /// Generates one operation (Zipf-less uniform popularity; popularity
    /// skew does not change the scheduling behaviour Figure 9 studies).
    pub fn sample(&self, rng: &mut Xoshiro256) -> KvOpSpec {
        let is_get = rng.next_f64() < self.get_ratio();
        KvOpSpec {
            is_get,
            key_index: rng.next_bounded(self.keyspace),
            value_len: self.value_len(rng),
        }
    }

    /// Service time of one operation in microseconds: a base cost (hash,
    /// shard lock, lookup) plus a per-byte copy cost.
    pub fn service_us(&self, op: &KvOpSpec) -> f64 {
        let base = if op.is_get { 0.9 } else { 1.1 };
        base + op.value_len as f64 * 0.001
    }

    /// Builds an empirical service-time distribution by sampling `n` ops —
    /// the input the Figure 9 harness feeds to the system simulator.
    pub fn service_dist(&self, n: usize, seed: u64) -> ServiceDist {
        let mut rng = Xoshiro256::new(seed);
        let samples: Vec<f64> = (0..n)
            .map(|_| {
                let op = self.sample(&mut rng);
                self.service_us(&op)
            })
            .collect();
        ServiceDist::empirical_us(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usr_is_tiny_and_read_dominated() {
        let w = KvWorkload::new(WorkloadKind::Usr);
        let mut rng = Xoshiro256::new(1);
        let n = 50_000;
        let gets = (0..n).filter(|_| w.sample(&mut rng).is_get).count();
        assert!(gets as f64 / n as f64 > 0.99);
        assert_eq!(w.value_len(&mut rng), 2);
        assert_eq!(w.key_len(&mut rng), 19);
    }

    #[test]
    fn etc_values_are_spread() {
        let w = KvWorkload::new(WorkloadKind::Etc);
        let mut rng = Xoshiro256::new(2);
        let lens: Vec<usize> = (0..20_000).map(|_| w.value_len(&mut rng)).collect();
        let small = lens.iter().filter(|&&l| l < 64).count();
        let large = lens.iter().filter(|&&l| l > 256).count();
        assert!(small > 10_000, "mostly small values: {small}");
        assert!(large > 50, "but a real tail: {large}");
        assert!(lens.iter().all(|&l| (2..=1024).contains(&l)));
    }

    #[test]
    fn mean_service_under_two_micros() {
        // Paper §6.2: memcached has "<2µs mean task size".
        for kind in [WorkloadKind::Usr, WorkloadKind::Etc] {
            let w = KvWorkload::new(kind);
            let d = w.service_dist(50_000, 3);
            let mean = d.mean_us();
            assert!(
                (0.5..2.2).contains(&mean),
                "{}: mean = {mean}",
                kind.label()
            );
        }
    }

    #[test]
    fn usr_faster_than_etc() {
        let usr = KvWorkload::new(WorkloadKind::Usr).service_dist(20_000, 4);
        let etc = KvWorkload::new(WorkloadKind::Etc).service_dist(20_000, 4);
        assert!(usr.mean_us() < etc.mean_us());
    }

    #[test]
    fn key_indices_cover_keyspace() {
        let w = KvWorkload::new(WorkloadKind::Usr);
        let mut rng = Xoshiro256::new(5);
        for _ in 0..10_000 {
            assert!(w.sample(&mut rng).key_index < w.keyspace);
        }
    }
}
