//! A memcached-like in-memory key-value store (paper §6.2).
//!
//! The paper uses memcached with the Facebook **USR** and **ETC** workloads
//! (Atikoglu et al., SIGMETRICS'12) as a near-worst case for ZygOS: tiny
//! (<2µs) tasks with low dispersion. This crate provides:
//!
//! * [`store`] — a sharded hash table with per-shard locks and optional
//!   LRU-ish capacity eviction (memcached's slab eviction simplified to the
//!   behaviour that matters here: bounded memory, hit/miss accounting).
//! * [`proto`] — GET/SET request handlers speaking the repository's framed
//!   RPC format, directly usable as a `zygos-runtime` application.
//! * [`workload`] — USR/ETC key/value-size and operation-mix models and a
//!   service-time model used by the Figure 9 simulator harness.

pub mod proto;
pub mod store;
pub mod workload;

pub use proto::{KvOp, KvServer};
pub use store::KvStore;
pub use workload::{KvWorkload, WorkloadKind};
