//! The sharded hash table with optional capacity eviction.
//!
//! memcached evicts via per-slab LRU when memory fills. We reproduce the
//! behaviour that matters at the workload level — bounded residency with
//! approximately-LRU victim choice — with a CLOCK (second-chance) sweep
//! per shard: cheap on the hit path (one relaxed flag store, no list
//! manipulation), which is what makes it usable inside µs-scale handlers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use parking_lot::Mutex;

struct Entry {
    value: Bytes,
    /// CLOCK reference bit: set on access, cleared by the sweep hand.
    referenced: bool,
}

struct ShardState {
    map: HashMap<Bytes, Entry>,
    /// Keys in insertion order for the CLOCK sweep (tombstoned lazily).
    ring: Vec<Bytes>,
    hand: usize,
}

struct Shard {
    state: Mutex<ShardState>,
}

/// A sharded, thread-safe KV store with hit/miss accounting and optional
/// per-shard capacity eviction (CLOCK).
pub struct KvStore {
    shards: Vec<Shard>,
    /// Maximum resident keys per shard; `usize::MAX` = unbounded.
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// FNV-1a.
fn hash(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl KvStore {
    /// Creates an unbounded store with `shards` shards (rounded up to a
    /// power of two).
    pub fn new(shards: usize) -> Self {
        Self::with_capacity(shards, usize::MAX)
    }

    /// Creates a store bounded to `total_capacity` resident keys
    /// (approximately; the bound is enforced per shard).
    pub fn with_capacity(shards: usize, total_capacity: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let per_shard_capacity = if total_capacity == usize::MAX {
            usize::MAX
        } else {
            (total_capacity / n).max(1)
        };
        KvStore {
            shards: (0..n)
                .map(|_| Shard {
                    state: Mutex::new(ShardState {
                        map: HashMap::new(),
                        ring: Vec::new(),
                        hand: 0,
                    }),
                })
                .collect(),
            per_shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &[u8]) -> &Shard {
        &self.shards[(hash(key) as usize) & (self.shards.len() - 1)]
    }

    /// GET.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        let mut state = self.shard(key).state.lock();
        let got = match state.map.get_mut(key) {
            Some(entry) => {
                entry.referenced = true;
                Some(entry.value.clone())
            }
            None => None,
        };
        drop(state);
        match &got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Runs the CLOCK hand until one victim is evicted.
    ///
    /// Caller holds the shard lock and guarantees the map is non-empty.
    fn evict_one(&self, state: &mut ShardState) {
        loop {
            if state.ring.is_empty() {
                return;
            }
            let idx = state.hand % state.ring.len();
            let key = state.ring[idx].clone();
            match state.map.get_mut(&key) {
                None => {
                    // Lazily compact tombstones (deleted keys).
                    state.ring.swap_remove(idx);
                    continue;
                }
                Some(entry) if entry.referenced => {
                    // Second chance.
                    entry.referenced = false;
                    state.hand = state.hand.wrapping_add(1);
                }
                Some(_) => {
                    state.map.remove(&key);
                    state.ring.swap_remove(idx);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
    }

    /// SET; returns `true` if the key existed before. May evict one
    /// resident key when the shard is at capacity.
    pub fn set(&self, key: Bytes, value: Bytes) -> bool {
        let mut state = self.shard(&key).state.lock();
        if let Some(entry) = state.map.get_mut(&key) {
            entry.value = value;
            entry.referenced = true;
            return true;
        }
        if state.map.len() >= self.per_shard_capacity {
            self.evict_one(&mut state);
        }
        state.ring.push(key.clone());
        state.map.insert(
            key,
            Entry {
                value,
                referenced: false,
            },
        );
        false
    }

    /// DELETE; returns `true` if the key existed. The CLOCK ring entry is
    /// tombstoned and reclaimed lazily by the sweep.
    pub fn delete(&self, key: &[u8]) -> bool {
        self.shard(key).state.lock().map.remove(key).is_some()
    }

    /// Number of resident keys.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.state.lock().map.len()).sum()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of capacity evictions performed.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn get_set_delete() {
        let s = KvStore::new(8);
        assert!(s.get(b"k").is_none());
        assert!(!s.set(Bytes::from_static(b"k"), Bytes::from_static(b"v")));
        assert_eq!(s.get(b"k").unwrap(), Bytes::from_static(b"v"));
        assert!(s.set(Bytes::from_static(b"k"), Bytes::from_static(b"v2")));
        assert_eq!(s.get(b"k").unwrap(), Bytes::from_static(b"v2"));
        assert!(s.delete(b"k"));
        assert!(!s.delete(b"k"));
        assert!(s.is_empty());
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let s = KvStore::new(2);
        s.set(Bytes::from_static(b"a"), Bytes::from_static(b"1"));
        s.get(b"a");
        s.get(b"b");
        s.get(b"a");
        assert_eq!(s.stats(), (2, 1));
    }

    #[test]
    fn many_keys_spread_over_shards() {
        let s = KvStore::new(16);
        for i in 0..10_000u32 {
            s.set(
                Bytes::copy_from_slice(&i.to_le_bytes()),
                Bytes::from_static(b"v"),
            );
        }
        assert_eq!(s.len(), 10_000);
        let per_shard: Vec<usize> = s
            .shards
            .iter()
            .map(|sh| sh.state.lock().map.len())
            .collect();
        assert!(
            per_shard.iter().all(|&n| n > 300),
            "shards balanced: {per_shard:?}"
        );
    }

    #[test]
    fn capacity_bound_is_enforced() {
        let s = KvStore::with_capacity(1, 100);
        for i in 0..1_000u32 {
            s.set(
                Bytes::copy_from_slice(&i.to_le_bytes()),
                Bytes::from_static(b"v"),
            );
        }
        assert!(s.len() <= 100, "resident = {}", s.len());
        assert_eq!(s.evictions(), 900);
    }

    #[test]
    fn clock_keeps_hot_keys() {
        let s = KvStore::with_capacity(1, 64);
        let hot = Bytes::from_static(b"hot-key");
        s.set(hot.clone(), Bytes::from_static(b"h"));
        // Keep touching the hot key while churning cold keys through.
        for i in 0..2_000u32 {
            s.set(
                Bytes::copy_from_slice(&i.to_le_bytes()),
                Bytes::from_static(b"c"),
            );
            s.get(&hot);
        }
        assert!(s.get(&hot).is_some(), "hot key survived the churn");
    }

    #[test]
    fn eviction_interacts_with_delete_tombstones() {
        let s = KvStore::with_capacity(1, 8);
        for i in 0..8u32 {
            s.set(
                Bytes::copy_from_slice(&i.to_le_bytes()),
                Bytes::from_static(b"v"),
            );
        }
        // Delete half; the CLOCK ring holds tombstones until swept.
        for i in 0..4u32 {
            assert!(s.delete(&i.to_le_bytes()));
        }
        assert_eq!(s.len(), 4);
        // Refill past capacity: sweeping must skip tombstones correctly.
        for i in 100..120u32 {
            s.set(
                Bytes::copy_from_slice(&i.to_le_bytes()),
                Bytes::from_static(b"v"),
            );
        }
        assert!(s.len() <= 8);
    }

    #[test]
    fn update_at_capacity_does_not_evict() {
        let s = KvStore::with_capacity(1, 4);
        for i in 0..4u32 {
            s.set(
                Bytes::copy_from_slice(&i.to_le_bytes()),
                Bytes::from_static(b"v"),
            );
        }
        // Overwriting an existing key is not an insertion.
        s.set(
            Bytes::copy_from_slice(&0u32.to_le_bytes()),
            Bytes::from_static(b"v2"),
        );
        assert_eq!(s.evictions(), 0);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let s = Arc::new(KvStore::new(16));
        let writers: Vec<_> = (0..4u32)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..5_000u32 {
                        let key = (t * 1_000_000 + i).to_le_bytes();
                        s.set(Bytes::copy_from_slice(&key), Bytes::copy_from_slice(&key));
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(s.len(), 20_000);
        // Every stored value equals its key.
        for t in 0..4u32 {
            for i in (0..5_000u32).step_by(997) {
                let key = (t * 1_000_000 + i).to_le_bytes();
                assert_eq!(&s.get(&key).unwrap()[..], &key);
            }
        }
    }
}
