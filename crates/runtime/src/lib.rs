//! A live, multithreaded implementation of the ZygOS scheduler.
//!
//! Worker threads stand in for the paper's cores; a loopback
//! [`client::ClientPort`] stands in for the NIC: it applies the real RSS
//! mapping from `zygos-net` and delivers request frames into per-core
//! ingress rings. The workers run the actual concurrent machinery from
//! `zygos-core` — shuffle queues, the connection state machine, trylock
//! steals, remote-syscall shipping, and doorbells.
//!
//! Three scheduling modes ([`config::SchedulerKind`]):
//!
//! * **Zygos** — the paper's design: home-core network processing,
//!   connection-granularity stealing, syscalls shipped home, doorbell
//!   "IPIs". `steal: false` degenerates it to a run-to-completion
//!   partitioned dataplane (the IX/Linux-partitioned shape).
//! * **Floating** — all ready events in one shared queue that any worker
//!   may claim, with no ownership: the Linux-floating model, *including*
//!   its §4.3 hazard (per-connection response order is not guaranteed) —
//!   kept deliberately to demonstrate what the shuffle layer's busy-state
//!   exclusivity buys.
//!
//! ## Honest limits of the live runtime
//!
//! True exit-less IPIs cannot preempt a Rust closure, so the doorbell is
//! checked at event boundaries (and wakes parked workers immediately); a
//! single long-running handler still blocks its core — in the *simulator*
//! (`zygos-sysim`) IPIs do preempt, which is why all paper figures come
//! from there. On a 1-CPU host the runtime's wall-clock numbers are
//! meaningless; its job is to prove the scheduler logic correct under real
//! concurrency, which the test suite does.

pub mod app;
pub mod client;
pub mod config;
pub mod server;

pub use app::RpcApp;
pub use client::ClientPort;
pub use config::{RuntimeConfig, SchedulerKind};
pub use server::Server;
// What [`Server::metric_series`] returns — re-exported so callers need
// not depend on `zygos-telemetry` directly.
pub use zygos_telemetry::TimeSeries;
