//! The server: worker threads running the scheduling loop.
//!
//! The *order* in which a worker serves its queues is not written here: it
//! comes from the shared `zygos_sched` policy plane. Every worker walks
//! the [`DispatchPolicy`] ladder its [`SchedulerKind`] maps to (the same
//! `ZygosPolicy`/`FcfsPolicy` objects the simulator drives), this file
//! binds each rung to the live mechanism — MPSC rings, the shuffle layer,
//! doorbells, the idle sweep. The elastic controller likewise consumes an
//! [`AllocPolicy`] trait object, and the optional credit gate is the
//! lock-free [`CreditGate`] sibling of the simulator's `CreditPool` (same
//! AIMD rule and invariants).
//!
//! # The live latency signal
//!
//! With [`RuntimeConfig::slo`](crate::RuntimeConfig::slo) set, every
//! framed request is stamped at ingress and its **sojourn** (frame →
//! response produced) lands in a per-core, per-tenant-class window.
//! Worker 0's control tick harvests the windows and computes the same two
//! signals the simulator's `Control` event computes:
//!
//! * the worst per-class p99-vs-SLO-bound ratio, fed to the SLO-margin
//!   `SloController` as `PolicySignal::slo_ratio` — the live runtime and
//!   the simulator now drive the *same* allocation policy object with a
//!   *measured* signal (the PR-2 `slo_ratio: None` stub is gone);
//! * the worst per-class tail-vs-credit-target ratio (targets derived
//!   from the SLO bounds), fed to the [`CreditGate`]'s AIMD — per-tenant
//!   SLO-driven admission instead of a queue-depth constant.
//!
//! The windows measure server sojourn rather than the simulator's
//! client-observed latency (the loopback wire adds no modelled RTT); both
//! are the quantity their host's SLO is written against.
//!
//! With [`RuntimeConfig::client_credits`](crate::RuntimeConfig::client_credits),
//! responses additionally piggyback a credit grant
//! ([`CreditGate::grant_for_response`]) in the wire header, and the
//! [`ClientPort`] refuses to send while a connection's
//! balance is zero — Breakwater's sender-side credit distribution, which
//! turns every shed from a burned round-trip into a local, free decision.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Sender};
use zygos_load::slo::{TenantSlos, CREDIT_HEADROOM, MIN_WINDOW_SAMPLES};
use zygos_sched::{
    AllocPolicy, AllocatorConfig, BackgroundOrder, BuiltinDispatch, CoreAllocator, CreditGate,
    DispatchPolicy, ElasticGate, FcfsPolicy, PolicySignal, QuantumPolicy, Rung, SloController,
    SloTuning, UtilizationPolicy, ZygosPolicy,
};

use zygos_core::doorbell::{Doorbell, IpiReason};
use zygos_core::idle::{IdlePolicy, PollTarget};
use zygos_core::shuffle::ShuffleLayer;
use zygos_core::spinlock::SpinLock;
use zygos_core::stats::{CoreStats, StatsSnapshot};
use zygos_core::syscall::{BatchedSyscall, RemoteSyscallChannel};
use zygos_net::flow::{ConnId, FiveTuple};
use zygos_net::packet::{Packet, RpcMessage};
use zygos_net::ring::MpscRing;
use zygos_net::rss::Rss;
use zygos_net::wire::Framer;
use zygos_telemetry::{Registry, SeriesId, TimeSeries};

use crate::app::RpcApp;
use crate::client::ClientPort;
use crate::config::{RuntimeConfig, SchedulerKind};

/// Opcode of the reply sent for a request shed by the credit gate: the
/// client-visible backpressure signal (Breakwater's explicit reject).
pub const REJECT_OPCODE: u16 = 0xFFFF;

/// A framed request plus its ingress timestamp: the stamp is what turns
/// the runtime from SLO-blind into a measured-latency host (sojourn =
/// stamp → response produced).
pub(crate) struct Stamped {
    pub(crate) msg: RpcMessage,
    pub(crate) ingress: Instant,
}

pub(crate) struct Shared {
    pub(crate) cfg: RuntimeConfig,
    pub(crate) shuffle: ShuffleLayer<Stamped>,
    /// Per-core ingress rings (the "NIC").
    pub(crate) rings: Vec<MpscRing<Packet>>,
    /// Per-core remote-syscall channels.
    remote_sys: Vec<RemoteSyscallChannel>,
    pub(crate) doorbells: Vec<Doorbell>,
    stats: Vec<CoreStats>,
    /// Floating mode: the shared ready queue.
    floating_q: SpinLock<VecDeque<(ConnId, Stamped)>>,
    resp_tx: Sender<(ConnId, Bytes)>,
    stop: AtomicBool,
    /// Connection → home core (RSS).
    pub(crate) conn_home: Vec<u16>,
    /// The dispatch policy every worker's loop walks (rung order, steal
    /// gating) — shared with the simulator by construction. Enum-dispatch
    /// over the built-in policies: the walk runs on every dispatch, and a
    /// virtual call per decision is pure overhead when the policy set is
    /// closed.
    dispatch: BuiltinDispatch,
    /// Elastic mode: published granted-core count plus the controller
    /// (driven by worker 0; the mutex is uncontended).
    elastic: Option<ElasticCtl>,
    /// Credit gate (any scheduler kind).
    credits: Option<AdmissionCtl>,
    /// The live latency signal: per-tenant sojourn windows and the
    /// SLO-derived policy inputs (present when `cfg.slo` is set).
    slo: Option<SloSignal>,
    /// Control-tick gate shared by all of worker 0's controller duties
    /// (present when any controller is armed).
    ctl_tick: Option<SpinLock<Instant>>,
    /// Control-tick metrics registry: worker 0 publishes each tick's
    /// staffing and admission signals here as bounded time-series, and
    /// [`Server::metric_series`] snapshots them without consuming —
    /// the fix for the old read-once-and-lost control-tick gauges.
    telem: SpinLock<RuntimeTelem>,
}

/// The runtime's registry plus the handles worker 0 publishes through.
/// Series are registered at startup for the controllers actually armed;
/// the rest stay `None` and cost one untaken branch per tick.
struct RuntimeTelem {
    reg: Registry,
    start: Instant,
    s_ratio: Option<SeriesId>,
    s_active: Option<SeriesId>,
    s_credits: Option<SeriesId>,
    s_admitted: Option<SeriesId>,
    /// Admitted-counter snapshot at the previous tick (for the rate).
    last_admitted: u64,
}

/// Points kept per control-tick series (1ms ticks → ~8s of history; the
/// registry refuses, counts and never reallocates past the cap).
const RUNTIME_SERIES_CAP: usize = 8_192;

struct ElasticCtl {
    gate: ElasticGate,
    /// The allocation policy behind the trait: the same object family the
    /// simulator's control tick drives ([`SloController`] when tenant
    /// SLOs are configured, the PR-1 utilization rule otherwise).
    policy: SpinLock<Box<dyn AllocPolicy>>,
    /// Per-core nanoseconds spent doing work since the last controller
    /// read. A duty-cycle fraction, not a did-anything flag: under a
    /// steady trickle every worker does *something* each period, and a
    /// boolean would read as full utilization and never let the
    /// controller park anything.
    busy_ns: Vec<AtomicU64>,
}

struct AdmissionCtl {
    /// Lock-free: RX admits and completion releases are atomic ops, never
    /// a cross-core lock on the dispatch fast path.
    gate: CreditGate,
}

/// The measured per-tenant latency state (armed by `RuntimeConfig::slo`).
struct SloSignal {
    slos: TenantSlos,
    /// Per-core, per-class sojourn windows (nanoseconds). Per-core locks
    /// keep completion-path recording off any cross-core lock; worker 0
    /// drains and merges them each control tick.
    win: Vec<SpinLock<Vec<Vec<u64>>>>,
    /// Per-class credit-AIMD targets (µs), `CREDIT_HEADROOM × bound`.
    credit_targets_us: Vec<f64>,
    /// Per-class pool fractions for weighted fair shedding.
    admit_fractions: Vec<f64>,
    /// Samples carried across ticks for classes that have not yet reached
    /// [`MIN_WINDOW_SAMPLES`]: at live request rates a 1ms window can be
    /// thin, and a thin window must stretch (not judge) — only worker 0
    /// touches this, the lock is uncontended.
    carry: SpinLock<Vec<Vec<u64>>>,
    /// Bits of the last harvested worst p99-vs-bound ratio (`NaN` until
    /// the first trustworthy window) — the observability gauge
    /// [`Server::slo_ratio`] reads.
    ratio_gauge: AtomicU64,
}

impl SloSignal {
    fn new(slos: TenantSlos, cores: usize) -> Self {
        let classes = slos.classes().len();
        SloSignal {
            credit_targets_us: slos.aimd_targets_us(CREDIT_HEADROOM),
            admit_fractions: slos.admit_fractions(),
            slos,
            win: (0..cores)
                .map(|_| SpinLock::new((0..classes).map(|_| Vec::new()).collect()))
                .collect(),
            carry: SpinLock::new((0..classes).map(|_| Vec::new()).collect()),
            ratio_gauge: AtomicU64::new(f64::NAN.to_bits()),
        }
    }

    /// Records one completed request's sojourn on the executing core.
    /// The per-core window is capped near [`MAX_WINDOW_SAMPLES`] so a slow
    /// control tick cannot make the next harvest sort an unbounded vector;
    /// the trim runs only when the window doubles past the cap (amortized
    /// O(1) per record — a per-record drain would shift the whole buffer
    /// under the lock on every completion).
    fn record(&self, core: usize, conn: ConnId, sojourn_ns: u64) {
        use zygos_load::slo::MAX_WINDOW_SAMPLES;
        let class = self.slos.class_of(conn.0);
        let mut w = self.win[core].lock();
        w[class].push(sojourn_ns);
        if w[class].len() >= 2 * MAX_WINDOW_SAMPLES {
            zygos_load::slo::trim_window(&mut w[class]);
        }
    }

    /// The tenant class of `conn`.
    fn class_of(&self, conn: ConnId) -> usize {
        self.slos.class_of(conn.0)
    }

    /// The pool fraction of `conn`'s tenant class.
    fn fraction_of(&self, conn: ConnId) -> f64 {
        self.admit_fractions[self.slos.class_of(conn.0)]
    }

    /// Drains every core's windows into the per-class carry, computes the
    /// two control signals — worst p99-vs-SLO-bound ratio (allocation)
    /// and worst tail-vs-credit-target ratio (admission) — and clears
    /// each class that held enough samples to be judged. Classes still
    /// below [`MIN_WINDOW_SAMPLES`] keep accumulating: at live request
    /// rates a 1ms window may be thin, and a thin window must stretch
    /// rather than produce a max-of-three "tail". Publishes the measured
    /// ratio to the gauge (held, not cleared, across thin windows).
    fn harvest(&self) -> (Option<f64>, Option<f64>) {
        // No trim here: dropping the front of the *merged* vector would
        // discard whole cores' samples (concatenation order, not time
        // order) and bias the quantile. The per-core caps in `record`
        // already bound the merged length to cores × 2 × the cap.
        let mut merged = self.carry.lock();
        for core_win in &self.win {
            let mut w = core_win.lock();
            for (c, samples) in w.iter_mut().enumerate() {
                merged[c].append(samples);
            }
        }
        let ratio = self.slos.worst_ratio(&mut merged, MIN_WINDOW_SAMPLES);
        let credit_ratio =
            self.slos
                .worst_credit_ratio(&mut merged, &self.credit_targets_us, MIN_WINDOW_SAMPLES);
        for w in merged.iter_mut() {
            if w.len() >= MIN_WINDOW_SAMPLES {
                w.clear();
            }
        }
        if let Some(r) = ratio {
            self.ratio_gauge.store(r.to_bits(), Ordering::Relaxed);
        }
        (ratio, credit_ratio)
    }
}

/// Controller tick period for the live runtime (coarser than the
/// simulator's 25µs: wall-clock queue signals on a shared host are noisy).
const CTL_PERIOD: Duration = Duration::from_millis(1);

/// A running server instance.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// Builds the dispatch policy a scheduler kind runs. The live runtime has
/// no preemptive quantum (a Rust closure cannot be interrupted; the
/// cooperative `quantum_events` bound stands in), so the quantum is always
/// disabled here and the background rungs never appear.
fn dispatch_for(kind: SchedulerKind) -> BuiltinDispatch {
    match kind {
        SchedulerKind::Zygos { steal } | SchedulerKind::Elastic { steal, .. } => {
            // The idle sweep both steals and IPIs, so the paper's two
            // ablation knobs collapse to one here.
            BuiltinDispatch::Zygos(ZygosPolicy::new(
                steal,
                steal,
                QuantumPolicy::disabled(),
                BackgroundOrder::Fcfs,
            ))
        }
        SchedulerKind::Floating => BuiltinDispatch::Fcfs(FcfsPolicy),
    }
}

impl Server {
    /// Builds the connection table (via real RSS), spawns the workers, and
    /// returns the server plus the client port.
    pub fn start(cfg: RuntimeConfig, app: Arc<dyn RpcApp>) -> (Server, ClientPort) {
        assert!(cfg.cores > 0, "need at least one core");
        assert!(cfg.conns > 0, "need at least one connection");
        let rss = Rss::new(cfg.cores);
        let mut shuffle = ShuffleLayer::new(cfg.cores);
        let mut conn_home = Vec::with_capacity(cfg.conns as usize);
        for i in 0..cfg.conns {
            let home = rss.queue_for(&FiveTuple::synthetic(i)) as u16;
            let id = shuffle.register(home as usize);
            debug_assert_eq!(id.0, i);
            conn_home.push(home);
        }
        let (resp_tx, resp_rx) = unbounded();
        let elastic = match cfg.scheduler {
            SchedulerKind::Elastic { quantum_events, .. } => {
                assert!(quantum_events >= 1, "quantum_events must be positive");
                let alloc_cfg = AllocatorConfig::paper(cfg.cores);
                // With tenant SLOs configured the controller is the same
                // SLO-margin object the simulator drives; without them
                // there is no latency signal to staff on, and the PR-1
                // utilization rule (to which the SloController degrades
                // exactly) is used directly.
                let policy: Box<dyn AllocPolicy> = if cfg.slo.is_some() {
                    Box::new(SloController::new(alloc_cfg, SloTuning::default()))
                } else {
                    Box::new(UtilizationPolicy::new(CoreAllocator::new(alloc_cfg)))
                };
                Some(ElasticCtl {
                    gate: ElasticGate::new(alloc_cfg.min_cores, cfg.cores),
                    policy: SpinLock::new(policy),
                    busy_ns: (0..cfg.cores).map(|_| AtomicU64::new(0)).collect(),
                })
            }
            _ => None,
        };
        let classes = cfg.slo.as_ref().map_or(1, |t| t.classes().len());
        let credits = cfg.admission.map(|c| AdmissionCtl {
            gate: CreditGate::with_classes(c, classes),
        });
        let slo = cfg.slo.clone().map(|slos| SloSignal::new(slos, cfg.cores));
        let ctl_tick = (elastic.is_some() || credits.is_some() || slo.is_some())
            .then(|| SpinLock::new(Instant::now()));
        let telem = {
            let mut reg = Registry::new();
            let s_ratio = slo
                .is_some()
                .then(|| reg.register_series("slo_ratio", RUNTIME_SERIES_CAP));
            let s_active = elastic
                .is_some()
                .then(|| reg.register_series("active_cores", RUNTIME_SERIES_CAP));
            let s_credits = credits
                .is_some()
                .then(|| reg.register_series("credit_capacity", RUNTIME_SERIES_CAP));
            let s_admitted = credits
                .is_some()
                .then(|| reg.register_series("admitted_rate", RUNTIME_SERIES_CAP));
            SpinLock::new(RuntimeTelem {
                reg,
                start: Instant::now(),
                s_ratio,
                s_active,
                s_credits,
                s_admitted,
                last_admitted: 0,
            })
        };
        let shared = Arc::new(Shared {
            rings: (0..cfg.cores)
                .map(|_| MpscRing::with_capacity(cfg.ring_capacity))
                .collect(),
            remote_sys: (0..cfg.cores)
                .map(|_| RemoteSyscallChannel::with_capacity(cfg.ring_capacity))
                .collect(),
            doorbells: (0..cfg.cores).map(|_| Doorbell::new()).collect(),
            stats: (0..cfg.cores).map(|_| CoreStats::new()).collect(),
            floating_q: SpinLock::new(VecDeque::new()),
            resp_tx,
            stop: AtomicBool::new(false),
            conn_home,
            shuffle,
            dispatch: dispatch_for(cfg.scheduler),
            elastic,
            credits,
            slo,
            ctl_tick,
            telem,
            cfg: cfg.clone(),
        });
        let workers = (0..cfg.cores)
            .map(|core| {
                let shared = Arc::clone(&shared);
                let app = Arc::clone(&app);
                std::thread::Builder::new()
                    .name(format!("zygos-core-{core}"))
                    .spawn(move || worker_loop(core, shared, app))
                    .expect("spawn worker")
            })
            .collect();
        let port = ClientPort::new(Arc::clone(&shared), resp_rx);
        (Server { shared, workers }, port)
    }

    /// Aggregated scheduler statistics.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot::collect(self.shared.stats.iter())
    }

    /// Currently granted worker count (`None` unless running
    /// [`SchedulerKind::Elastic`]).
    pub fn active_cores(&self) -> Option<usize> {
        self.shared.elastic.as_ref().map(|e| e.gate.active())
    }

    /// Credit-gate counters `(admitted, rejected, capacity)`; `None` when
    /// admission is off.
    pub fn admission_stats(&self) -> Option<(u64, u64, u32)> {
        self.shared
            .credits
            .as_ref()
            .map(|c| (c.gate.admitted(), c.gate.rejected(), c.gate.capacity()))
    }

    /// The last harvested worst p99-vs-SLO-bound ratio — the measured
    /// signal the SLO-driven controllers act on. `None` unless
    /// [`RuntimeConfig::slo`](crate::RuntimeConfig::slo) is configured
    /// and at least one control window held enough completions to judge.
    pub fn slo_ratio(&self) -> Option<f64> {
        let bits = self
            .shared
            .slo
            .as_ref()?
            .ratio_gauge
            .load(Ordering::Relaxed);
        let r = f64::from_bits(bits);
        r.is_finite().then_some(r)
    }

    /// Snapshot of one named control-tick time-series (`"slo_ratio"`,
    /// `"active_cores"`, `"credit_capacity"`, `"admitted_rate"` — see
    /// `docs/OBSERVABILITY.md` for the naming scheme). `None` when the
    /// corresponding controller is not armed. Reading does not consume:
    /// unlike the old read-once gauges, the full trajectory stays
    /// available — e.g. the staffing signal's history across a load step.
    pub fn metric_series(&self, name: &str) -> Option<TimeSeries> {
        self.shared.telem.lock().reg.series(name).cloned()
    }

    /// Snapshot of every control-tick time-series (registration order).
    pub fn metric_series_all(&self) -> Vec<TimeSeries> {
        self.shared.telem.lock().reg.take_series()
    }

    /// The home core of a connection (RSS).
    pub fn home_of(&self, conn: ConnId) -> usize {
        self.shared.conn_home[conn.index()] as usize
    }

    /// Stops the workers and joins them.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::Release);
        for d in &self.shared.doorbells {
            d.ring(IpiReason::PendingPackets);
        }
        for w in self.workers.drain(..) {
            w.join().expect("worker panicked");
        }
    }
}

impl Shared {
    pub(crate) fn respond(&self, conn: ConnId, wire: Bytes) {
        // The receiver may already be gone during shutdown; that is fine.
        let _ = self.resp_tx.send((conn, wire));
    }
}

/// One worker's private state: the framers of the connections homed here.
struct HomeState {
    framers: Vec<Framer>,
}

fn worker_loop(core: usize, shared: Arc<Shared>, app: Arc<dyn RpcApp>) {
    shared.doorbells[core].register_target(std::thread::current());
    let mut home = HomeState {
        framers: (0..shared.cfg.conns).map(|_| Framer::new()).collect(),
    };
    let mut policy = IdlePolicy::new(core, shared.cfg.cores);
    // Cheap xorshift for victim-order randomization.
    let mut rng_state: u64 = 0x9E37_79B9 ^ (core as u64 + 1);
    let mut rand = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };
    let batch = match shared.cfg.scheduler {
        SchedulerKind::Elastic { quantum_events, .. } => shared.cfg.conn_batch.min(quantum_events),
        _ => shared.cfg.conn_batch,
    };

    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        // Worker 0 moonlights as the control plane.
        if core == 0 {
            control_tick(&shared);
        }
        let mut parked = false;
        let did_work = match &shared.elastic {
            Some(ctl) => {
                parked = !ctl.gate.is_active(core);
                let t0 = std::time::Instant::now();
                let did = dispatch_step(
                    core,
                    &shared,
                    &app,
                    &mut home,
                    &mut policy,
                    &mut rand,
                    !parked,
                    batch,
                );
                if did {
                    ctl.busy_ns[core].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
                did
            }
            None => dispatch_step(
                core,
                &shared,
                &app,
                &mut home,
                &mut policy,
                &mut rand,
                true,
                batch,
            ),
        };
        if !did_work {
            // Idle: park briefly; doorbells unpark us immediately. Parked
            // (revoked) elastic workers sleep an order of magnitude longer
            // — that, plus not stealing, is what frees their CPU.
            let nap = if parked {
                Duration::from_millis(1)
            } else {
                Duration::from_micros(100)
            };
            std::thread::park_timeout(nap);
        }
    }
}

/// Worker 0's control-plane duty: every [`CTL_PERIOD`], harvest the
/// sojourn windows (when the latency signal is armed) and drive both
/// policy loops — allocation ([`AllocPolicy::observe`], now fed the
/// *measured* `slo_ratio`) and admission (credit AIMD on per-class
/// tail-vs-target ratios, or on queue depth when no SLOs are configured).
/// One tick, one harvest: both loops see the same window, exactly like
/// the simulator's `Control` event.
fn control_tick(shared: &Shared) {
    let Some(tick) = &shared.ctl_tick else {
        return;
    };
    let elapsed = {
        let mut last = tick.lock();
        let elapsed = last.elapsed();
        if elapsed < CTL_PERIOD {
            return;
        }
        *last = Instant::now();
        elapsed
    };
    let (slo_ratio, credit_ratio) = match &shared.slo {
        Some(sig) => sig.harvest(),
        None => (None, None),
    };
    let backlog: usize = (0..shared.cfg.cores)
        .map(|c| shared.shuffle.queue_len(c) + shared.rings[c].len())
        .sum::<usize>()
        + shared.floating_q.lock().len();
    if let Some(ctl) = &shared.elastic {
        // Busy cores = summed duty cycle over the period.
        let busy_ns: u64 = ctl
            .busy_ns
            .iter()
            .map(|b| b.swap(0, Ordering::Relaxed))
            .sum();
        let busy = (busy_ns as f64 / elapsed.as_nanos().max(1) as f64).min(shared.cfg.cores as f64);
        let mut alloc = ctl.policy.lock();
        alloc.observe(&PolicySignal {
            busy_cores: busy,
            backlog,
            slo_ratio,
        });
        let target = alloc.active();
        drop(alloc);
        let before = ctl.gate.active();
        ctl.gate.set_active(target);
        // Re-granted workers may be deep in a long park: unpark them.
        if target > before {
            for d in &shared.doorbells[before..target] {
                d.ring(IpiReason::PendingPackets);
            }
        }
    }
    if let Some(gate) = &shared.credits {
        match &shared.slo {
            // SLO-driven: steer the worst per-class sojourn tail to its
            // SLO-derived target; a thin window (None) holds capacity.
            Some(_) => gate.gate.update_ratio(credit_ratio.unwrap_or(f64::NAN)),
            // No latency signal configured: AIMD on aggregate queue depth
            // (the PR-2 congestion proxy).
            None => gate.gate.update(backlog as f64),
        }
    }
    // Publish this tick's signals into the registry: the same decision
    // inputs the controllers just consumed, now re-readable as bounded
    // time-series instead of read-once gauges.
    let mut t = shared.telem.lock();
    let t_us = t.start.elapsed().as_micros() as f64;
    if let (Some(id), Some(r)) = (t.s_ratio, slo_ratio) {
        t.reg.push(id, t_us, r);
    }
    if let (Some(id), Some(ctl)) = (t.s_active, shared.elastic.as_ref()) {
        t.reg.push(id, t_us, ctl.gate.active() as f64);
    }
    if let Some(gate) = &shared.credits {
        if let Some(id) = t.s_credits {
            t.reg.push(id, t_us, gate.gate.capacity() as f64);
        }
        if let Some(id) = t.s_admitted {
            let total = gate.gate.admitted();
            let rate = (total - t.last_admitted) as f64 / elapsed.as_secs_f64().max(1e-9);
            t.reg.push(id, t_us, rate);
            t.last_admitted = total;
        }
    }
}

/// RX path: drain this core's ingress ring through the framers into the
/// shuffle layer (or the floating queue), stamping each framed request's
/// ingress time and shedding creditless requests at the edge (weighted by
/// tenant class: the loosest SLO class is capped at the smallest pool
/// share and sheds first). Home core only.
fn tcp_in(
    core: usize,
    shared: &Shared,
    home: &mut HomeState,
    floating: bool,
    max_pkts: usize,
) -> usize {
    let mut processed = 0;
    let ingress = Instant::now();
    while processed < max_pkts {
        let Some(pkt) = shared.rings[core].pop() else {
            break;
        };
        processed += 1;
        let conn = pkt.conn;
        debug_assert_eq!(shared.conn_home[conn.index()] as usize, core);
        let framer = &mut home.framers[conn.index()];
        if framer.feed(&pkt.payload).is_err() {
            continue; // Poisoned stream: drop (a real stack would RST).
        }
        loop {
            match framer.next_message() {
                Ok(Some(msg)) => {
                    if let Some(gate) = &shared.credits {
                        let class = shared.slo.as_ref().map_or(0, |s| s.class_of(conn));
                        let fraction = shared.slo.as_ref().map_or(1.0, |s| s.fraction_of(conn));
                        if !gate.gate.try_admit_weighted(class, fraction) {
                            // Shed: explicit reject, nothing queued. The
                            // reject must return at least the credit the
                            // sender spent on it: grants ride only on
                            // responses, so a 0-grant reject to a
                            // connection with nothing else in flight
                            // would strand its balance at zero forever.
                            // A flat balance (spend 1, get 1) paces a
                            // shed sender to one retry per round trip.
                            let reject =
                                RpcMessage::new(REJECT_OPCODE, msg.header.req_id, Bytes::new());
                            let reject = grant_min_one(shared, conn, reject);
                            shared.respond(conn, reject.to_bytes());
                            continue;
                        }
                    }
                    let stamped = Stamped { msg, ingress };
                    if floating {
                        shared.floating_q.lock().push_back((conn, stamped));
                    } else {
                        shared.shuffle.produce(conn, stamped);
                    }
                }
                Ok(None) => break,
                Err(_) => break,
            }
        }
    }
    processed
}

/// Piggybacks the credit gate's sender-side grant on a response header
/// (identity when client-side credits are off). The grant is judged
/// against `conn`'s class threshold, not the whole pool: a capped class
/// being shed must see its send window tighten, not grow.
fn grant_credits(shared: &Shared, conn: ConnId, resp: RpcMessage) -> RpcMessage {
    match &shared.credits {
        Some(gate) if shared.cfg.client_credits => {
            let class = shared.slo.as_ref().map_or(0, |s| s.class_of(conn));
            let fraction = shared.slo.as_ref().map_or(1.0, |s| s.fraction_of(conn));
            resp.with_credits(gate.gate.grant_for_response_weighted(class, fraction))
        }
        _ => resp,
    }
}

/// [`grant_credits`] with a floor of one credit: the reject path, where
/// the grant returns the spent credit (liveness; see the call site).
fn grant_min_one(shared: &Shared, conn: ConnId, resp: RpcMessage) -> RpcMessage {
    match &shared.credits {
        Some(gate) if shared.cfg.client_credits => {
            let class = shared.slo.as_ref().map_or(0, |s| s.class_of(conn));
            let fraction = shared.slo.as_ref().map_or(1.0, |s| s.fraction_of(conn));
            resp.with_credits(
                gate.gate
                    .grant_for_response_weighted(class, fraction)
                    .max(1),
            )
        }
        _ => resp,
    }
}

/// Returns an admitted request's credit (of `conn`'s tenant class) after
/// its response is produced.
fn release_credit(shared: &Shared, conn: ConnId) {
    if let Some(gate) = &shared.credits {
        let class = shared.slo.as_ref().map_or(0, |s| s.class_of(conn));
        gate.gate.release_class(class);
    }
}

/// Executes all taken events of a connection, following the paper's
/// home/remote syscall discipline, then finishes it.
fn exec_conn(
    core: usize,
    shared: &Shared,
    app: &Arc<dyn RpcApp>,
    conn: ConnId,
    stolen: bool,
    batch: usize,
) {
    let home_core = shared.conn_home[conn.index()] as usize;
    let events = shared.shuffle.take_events(conn, batch);
    let mut shipped = Vec::new();
    for ev in &events {
        let resp = app.handle(conn, &ev.msg);
        // Release before computing the grant: the completing request's own
        // credit must not read as occupancy, or at full pool (capacity
        // in-flight, the steady state under overload with a small pool)
        // every response would grant 0 and sender-side clients would
        // ratchet to zero balance and starve.
        release_credit(shared, conn);
        let wire = grant_credits(shared, conn, resp).to_bytes();
        // The sojourn sample: framed at ingress, response produced now.
        if let Some(sig) = &shared.slo {
            sig.record(core, conn, ev.ingress.elapsed().as_nanos() as u64);
        }
        if stolen {
            shipped.push(BatchedSyscall::SendMsg { conn, wire });
            shared.stats[core].count_stolen_event();
        } else {
            // Home execution transmits eagerly (§6.2).
            shared.respond(conn, wire);
            shared.stats[core].count_local_event();
        }
    }
    if stolen && !shipped.is_empty() {
        shared.remote_sys[home_core].ship(shipped);
        if shared.doorbells[home_core].ring(IpiReason::RemoteSyscalls) {
            shared.stats[core].count_ipi_sent();
        }
    }
    shared.shuffle.finish(conn);
}

/// One iteration of a worker's scheduling loop: walk the shared dispatch
/// ladder, binding each rung to its live mechanism, and take the first
/// that yields work. Returns `true` if any work was found.
#[allow(clippy::too_many_arguments)]
fn dispatch_step(
    core: usize,
    shared: &Shared,
    app: &Arc<dyn RpcApp>,
    home: &mut HomeState,
    policy: &mut IdlePolicy,
    rand: &mut impl FnMut() -> u64,
    core_active: bool,
    batch: usize,
) -> bool {
    // Doorbell (the "IPI handler") precedes the ladder: clear pending
    // reasons; the duties are performed by the rungs below.
    for _reason in shared.doorbells[core].take() {
        shared.stats[core].count_ipi_handled();
    }
    let floating = matches!(shared.cfg.scheduler, SchedulerKind::Floating);
    for &rung in shared.dispatch.ladder() {
        let took = match rung {
            Rung::RemoteSyscalls => rung_remote_syscalls(core, shared),
            Rung::LocalReady => {
                if floating {
                    rung_floating_claim(core, shared, app)
                } else {
                    rung_local_ready(core, shared, app, batch)
                }
            }
            Rung::LocalNet => tcp_in(core, shared, home, floating, 64) > 0,
            Rung::StealReady => {
                shared.dispatch.may_steal(core_active)
                    && rung_idle_sweep(core, shared, app, home, policy, rand, batch)
            }
            // The runtime's idle sweep performs the IPI scan (its doorbell
            // ring) as part of StealReady; a cooperative runtime has no
            // preempted-remainder queues for the background rungs.
            Rung::IpiScan
            | Rung::AgedBackground
            | Rung::LocalBackground
            | Rung::StealBackground => false,
        };
        if took {
            return true;
        }
    }
    false
}

/// Remote syscalls: transmit responses for stolen executions.
fn rung_remote_syscalls(core: usize, shared: &Shared) -> bool {
    let remote = shared.remote_sys[core].drain(64);
    if remote.is_empty() {
        return false;
    }
    for sc in remote {
        shared.stats[core].count_remote_syscall();
        match sc {
            BatchedSyscall::SendMsg { conn, wire } => shared.respond(conn, wire),
            BatchedSyscall::Close { .. } | BatchedSyscall::Nop { .. } => {}
        }
    }
    true
}

/// Own shuffle queue.
fn rung_local_ready(core: usize, shared: &Shared, app: &Arc<dyn RpcApp>, batch: usize) -> bool {
    let Some(conn) = shared.shuffle.dequeue_local(core) else {
        return false;
    };
    shared.stats[core].count_local_dequeue();
    exec_conn(core, shared, app, conn, false, batch);
    true
}

/// Floating mode: claim one ready event from the shared pool.
fn rung_floating_claim(core: usize, shared: &Shared, app: &Arc<dyn RpcApp>) -> bool {
    let claimed = shared.floating_q.lock().pop_front();
    let Some((conn, ev)) = claimed else {
        return false;
    };
    let resp = app.handle(conn, &ev.msg);
    release_credit(shared, conn);
    if let Some(sig) = &shared.slo {
        sig.record(core, conn, ev.ingress.elapsed().as_nanos() as u64);
    }
    shared.respond(conn, grant_credits(shared, conn, resp).to_bytes());
    shared.stats[core].count_local_event();
    true
}

/// The idle sweep: steal from remote shuffle queues, then check remote
/// rings and ring the home core's doorbell (the IPI).
fn rung_idle_sweep(
    core: usize,
    shared: &Shared,
    app: &Arc<dyn RpcApp>,
    home: &mut HomeState,
    policy: &mut IdlePolicy,
    rand: &mut impl FnMut() -> u64,
    batch: usize,
) -> bool {
    let sweep = policy.sweep(|victims| {
        // Fisher–Yates with the worker-local generator.
        for i in (1..victims.len()).rev() {
            let j = (rand() % (i as u64 + 1)) as usize;
            victims.swap(i, j);
        }
    });
    for target in sweep {
        match target {
            PollTarget::OwnHwRing => {
                // Re-check: a packet may have landed since the net rung.
                if tcp_in(core, shared, home, false, 64) > 0 {
                    return true;
                }
            }
            PollTarget::RemoteShuffle(v) => {
                if let Some(conn) = shared.shuffle.try_steal(v) {
                    shared.stats[core].count_steal();
                    exec_conn(core, shared, app, conn, true, batch);
                    return true;
                }
                shared.stats[core].count_failed_steal();
            }
            PollTarget::RemoteSwQueue(v) | PollTarget::RemoteHwRing(v) => {
                // Pending packets on a remote core's ring: only its home
                // core may run the stack — send the "IPI".
                if !shared.rings[v].is_empty()
                    && shared.doorbells[v].ring(IpiReason::PendingPackets)
                {
                    shared.stats[core].count_ipi_sent();
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::EchoApp;
    use bytes::Bytes;
    use std::collections::HashMap;
    use zygos_sched::CreditConfig;

    fn echo_server(cfg: RuntimeConfig) -> (Server, ClientPort) {
        Server::start(cfg, Arc::new(EchoApp))
    }

    #[test]
    fn single_request_roundtrip() {
        let (server, client) = echo_server(RuntimeConfig::zygos(2, 8));
        let conn = ConnId(3);
        client.send(conn, &RpcMessage::new(1, 42, Bytes::from_static(b"hi")));
        let (rconn, resp) = client
            .recv_timeout(Duration::from_secs(5))
            .expect("response");
        assert_eq!(rconn, conn);
        assert_eq!(resp.header.req_id, 42);
        assert_eq!(&resp.body[..], b"hi");
        server.shutdown();
    }

    #[test]
    fn thousands_of_requests_complete_exactly_once() {
        let (server, client) = echo_server(RuntimeConfig::zygos(4, 64));
        let n = 5_000u64;
        for id in 0..n {
            let conn = ConnId((id % 64) as u32);
            client.send(conn, &RpcMessage::new(1, id, Bytes::new()));
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n {
            let (_, resp) = client
                .recv_timeout(Duration::from_secs(10))
                .expect("response");
            assert!(seen.insert(resp.header.req_id), "duplicate response");
        }
        assert_eq!(seen.len(), n as usize);
        server.shutdown();
    }

    #[test]
    fn per_connection_order_is_preserved_under_zygos() {
        // The §4.3 guarantee: pipelined requests on one socket answer in
        // order even with stealing enabled.
        let (server, client) = echo_server(RuntimeConfig::zygos(4, 16));
        let depth = 200u64;
        for conn in 0..16u32 {
            for seq in 0..depth {
                client.send(
                    ConnId(conn),
                    &RpcMessage::new(1, (conn as u64) << 32 | seq, Bytes::new()),
                );
            }
        }
        let mut next: HashMap<u32, u64> = HashMap::new();
        for _ in 0..(16 * depth) {
            let (conn, resp) = client.recv_timeout(Duration::from_secs(10)).expect("resp");
            let seq = resp.header.req_id & 0xFFFF_FFFF;
            let expect = next.entry(conn.0).or_insert(0);
            assert_eq!(seq, *expect, "conn {} out of order", conn.0);
            *expect += 1;
        }
        server.shutdown();
    }

    #[test]
    fn partitioned_mode_never_steals() {
        let (server, client) = echo_server(RuntimeConfig::partitioned(4, 32));
        for id in 0..2_000u64 {
            client.send(
                ConnId((id % 32) as u32),
                &RpcMessage::new(1, id, Bytes::new()),
            );
        }
        for _ in 0..2_000 {
            client.recv_timeout(Duration::from_secs(10)).expect("resp");
        }
        let stats = server.stats();
        assert_eq!(stats.steals, 0);
        assert_eq!(stats.stolen_events, 0);
        assert_eq!(stats.local_events, 2_000);
        server.shutdown();
    }

    #[test]
    fn floating_mode_completes_everything() {
        let (server, client) = echo_server(RuntimeConfig::floating(4, 32));
        for id in 0..2_000u64 {
            client.send(
                ConnId((id % 32) as u32),
                &RpcMessage::new(1, id, Bytes::new()),
            );
        }
        let mut got = 0;
        for _ in 0..2_000 {
            client.recv_timeout(Duration::from_secs(10)).expect("resp");
            got += 1;
        }
        assert_eq!(got, 2_000);
        server.shutdown();
    }

    #[test]
    fn stealing_happens_when_one_core_is_loaded() {
        // All connections homed wherever RSS puts them; a burst on one
        // connection's core gives other cores steal opportunities when
        // handlers are slow. Use a handler with a real delay.
        let slow = |_c: ConnId, req: &RpcMessage| {
            std::thread::sleep(Duration::from_micros(200));
            RpcMessage::new(0, req.header.req_id, Bytes::new())
        };
        let (server, client) = Server::start(RuntimeConfig::zygos(4, 64), Arc::new(slow));
        for id in 0..400u64 {
            client.send(
                ConnId((id % 64) as u32),
                &RpcMessage::new(1, id, Bytes::new()),
            );
        }
        for _ in 0..400 {
            client.recv_timeout(Duration::from_secs(30)).expect("resp");
        }
        let stats = server.stats();
        assert!(
            stats.steals > 0,
            "expected steals under load imbalance: {stats:?}"
        );
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let (server, _client) = echo_server(RuntimeConfig::zygos(2, 4));
        server.shutdown();
    }

    #[test]
    fn elastic_mode_completes_everything_exactly_once() {
        let (server, client) = echo_server(RuntimeConfig::elastic(4, 32));
        assert_eq!(server.active_cores(), Some(4), "starts fully granted");
        let n = 3_000u64;
        for id in 0..n {
            client.send(
                ConnId((id % 32) as u32),
                &RpcMessage::new(1, id, Bytes::new()),
            );
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n {
            let (_, resp) = client.recv_timeout(Duration::from_secs(10)).expect("resp");
            assert!(seen.insert(resp.header.req_id), "duplicate response");
        }
        let granted = server.active_cores().expect("elastic gauge");
        assert!((1..=4).contains(&granted));
        server.shutdown();
    }

    #[test]
    fn elastic_mode_preserves_per_connection_order() {
        // The cooperative quantum (here: 1 event per dequeue, the most
        // yield-happy setting) must not break the §4.3 ordering guarantee.
        let cfg = RuntimeConfig {
            scheduler: SchedulerKind::Elastic {
                steal: true,
                quantum_events: 1,
            },
            ..RuntimeConfig::zygos(4, 8)
        };
        let (server, client) = echo_server(cfg);
        let depth = 200u64;
        for conn in 0..8u32 {
            for seq in 0..depth {
                client.send(
                    ConnId(conn),
                    &RpcMessage::new(1, (conn as u64) << 32 | seq, Bytes::new()),
                );
            }
        }
        let mut next: HashMap<u32, u64> = HashMap::new();
        for _ in 0..(8 * depth) {
            let (conn, resp) = client.recv_timeout(Duration::from_secs(10)).expect("resp");
            let seq = resp.header.req_id & 0xFFFF_FFFF;
            let expect = next.entry(conn.0).or_insert(0);
            assert_eq!(seq, *expect, "conn {} out of order", conn.0);
            *expect += 1;
        }
        server.shutdown();
    }

    #[test]
    fn non_elastic_modes_have_no_core_gauge() {
        let (server, _client) = echo_server(RuntimeConfig::zygos(2, 4));
        assert_eq!(server.active_cores(), None);
        assert_eq!(server.admission_stats(), None);
        server.shutdown();
    }

    #[test]
    fn slo_signal_measures_sojourns_and_publishes_a_ratio() {
        use zygos_load::slo::{Slo, TenantSlos};
        // A handler much slower than the 50µs bound: once enough sojourns
        // land in a window, the published ratio must be well above 1.
        let slow = |_c: ConnId, req: &RpcMessage| {
            std::thread::sleep(Duration::from_micros(500));
            RpcMessage::new(0, req.header.req_id, Bytes::new())
        };
        let cfg = RuntimeConfig::zygos(2, 8).with_slo(TenantSlos::uniform(Slo::p99(50.0)));
        let (server, client) = Server::start(cfg, Arc::new(slow));
        assert_eq!(server.slo_ratio(), None, "no window harvested yet");
        for id in 0..64u64 {
            client.send(
                ConnId((id % 8) as u32),
                &RpcMessage::new(1, id, Bytes::new()),
            );
        }
        for _ in 0..64 {
            client.recv_timeout(Duration::from_secs(10)).expect("resp");
        }
        // Worker 0 harvests on its next loop iterations; poll briefly.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let ratio = loop {
            if let Some(r) = server.slo_ratio() {
                break r;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "ratio never published"
            );
            std::thread::sleep(Duration::from_millis(5));
        };
        assert!(ratio > 1.0, "500µs sojourns against a 50µs bound: {ratio}");
        server.shutdown();
    }

    #[test]
    fn client_credits_gate_sending_and_replenish_from_grants() {
        use zygos_sched::CreditConfig;
        let cfg = RuntimeConfig::zygos(2, 4)
            .with_admission(CreditConfig {
                min_credits: 4,
                max_credits: 64,
                initial_credits: 8,
                additive: 1,
                md_factor: 0.3,
                target: 1000.0,
            })
            .with_client_credits();
        let (server, client) = echo_server(cfg);
        let conn = ConnId(1);
        let start = client.credit_balance(conn).expect("credit state armed");
        assert!(start >= 1, "every connection starts with a credit");
        // Spend the whole balance without receiving.
        for id in 0..start as u64 {
            assert!(client.try_send(conn, &RpcMessage::new(1, id, Bytes::new())));
        }
        assert_eq!(client.credit_balance(conn), Some(0));
        assert!(
            !client.try_send(conn, &RpcMessage::new(1, 999, Bytes::new())),
            "zero balance must refuse locally"
        );
        assert_eq!(client.local_sheds(), 1);
        // Responses carry grants (an idle pool grants 2): the balance
        // recovers and sending resumes.
        for _ in 0..start {
            client.recv_timeout(Duration::from_secs(10)).expect("resp");
        }
        let refilled = client.credit_balance(conn).expect("armed");
        assert!(refilled >= start, "grants must at least return the spend");
        assert!(client.try_send(conn, &RpcMessage::new(1, 1000, Bytes::new())));
        client.recv_timeout(Duration::from_secs(10)).expect("resp");
        server.shutdown();
    }

    #[test]
    fn weighted_shedding_rejects_the_loose_class_harder() {
        use zygos_load::slo::{Slo, SloClass, TenantSlos};
        // Two classes (even conns strict, odd conns loose by round-robin),
        // a fixed 8-credit pool, slow handlers, and a big synchronous
        // burst: the loose class (capped at half the pool) must shed more.
        let slow = |_c: ConnId, req: &RpcMessage| {
            std::thread::sleep(Duration::from_micros(100));
            RpcMessage::new(0, req.header.req_id, Bytes::new())
        };
        let slos = TenantSlos::new(vec![
            SloClass::new("interactive", Slo::p99(200.0)),
            SloClass::new("batch", Slo::p99(2000.0)),
        ]);
        let cfg = RuntimeConfig::zygos(2, 16)
            .with_admission(CreditConfig {
                min_credits: 8,
                max_credits: 8,
                initial_credits: 8,
                additive: 1,
                md_factor: 0.3,
                target: 1.0,
            })
            .with_slo(slos);
        let (server, client) = Server::start(cfg, Arc::new(slow));
        let n = 4_000u64;
        for id in 0..n {
            client.send(
                ConnId((id % 16) as u32),
                &RpcMessage::new(1, id, Bytes::new()),
            );
        }
        let mut shed = [0u64; 2];
        let mut served = [0u64; 2];
        for _ in 0..n {
            let (conn, resp) = client
                .recv_timeout(Duration::from_secs(30))
                .expect("every request answered");
            let class = (conn.0 % 2) as usize;
            if resp.header.opcode == REJECT_OPCODE {
                shed[class] += 1;
            } else {
                served[class] += 1;
            }
        }
        assert_eq!(shed[0] + shed[1] + served[0] + served[1], n);
        assert!(shed[1] > 0, "overload must shed the loose class");
        assert!(
            shed[1] > shed[0],
            "loose class must shed more: strict {} vs loose {}",
            shed[0],
            shed[1]
        );
        server.shutdown();
    }

    #[test]
    fn credit_gate_sheds_with_explicit_rejects_and_never_hangs() {
        // A tiny fixed pool (min == max == 8) against a 2000-request burst
        // of slow handlers: most requests must be shed with REJECT_OPCODE
        // replies, every admitted one must complete, and every request
        // must be answered one way or the other.
        let slow = |_c: ConnId, req: &RpcMessage| {
            std::thread::sleep(Duration::from_micros(50));
            RpcMessage::new(0, req.header.req_id, Bytes::new())
        };
        let cfg = RuntimeConfig::zygos(2, 16).with_admission(CreditConfig {
            min_credits: 8,
            max_credits: 8,
            initial_credits: 8,
            additive: 1,
            md_factor: 0.3,
            target: 1.0,
        });
        let (server, client) = Server::start(cfg, Arc::new(slow));
        let n = 2_000u64;
        for id in 0..n {
            client.send(
                ConnId((id % 16) as u32),
                &RpcMessage::new(1, id, Bytes::new()),
            );
        }
        let mut served = 0u64;
        let mut shed = 0u64;
        for _ in 0..n {
            let (_, resp) = client
                .recv_timeout(Duration::from_secs(30))
                .expect("every request gets an answer");
            if resp.header.opcode == REJECT_OPCODE {
                shed += 1;
            } else {
                served += 1;
            }
        }
        assert_eq!(served + shed, n);
        assert!(shed > 0, "an 8-credit pool must shed under a 2000 burst");
        assert!(served > 0, "the gate must keep admitting as credits return");
        let (admitted, rejected, capacity) = server.admission_stats().expect("gate on");
        assert_eq!(admitted, served);
        assert_eq!(rejected, shed);
        assert_eq!(capacity, 8);
        server.shutdown();
    }
}
