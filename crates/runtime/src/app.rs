//! The application interface (the paper's execution layer, §4.2).

use zygos_net::flow::ConnId;
use zygos_net::packet::RpcMessage;

/// An RPC application: one request in, one response out.
///
/// Handlers run on whichever core dequeued (or stole) the connection, so
/// they must be `Send + Sync`; the shuffle layer guarantees that at most
/// one core executes events of a given connection at a time, and in
/// arrival order (§4.3) — the handler needs no per-connection locking.
pub trait RpcApp: Send + Sync + 'static {
    /// Handles one request, returning the response.
    fn handle(&self, conn: ConnId, req: &RpcMessage) -> RpcMessage;
}

impl<F> RpcApp for F
where
    F: Fn(ConnId, &RpcMessage) -> RpcMessage + Send + Sync + 'static,
{
    fn handle(&self, conn: ConnId, req: &RpcMessage) -> RpcMessage {
        self(conn, req)
    }
}

/// An app that echoes the request body back (testing / latency floors).
pub struct EchoApp;

impl RpcApp for EchoApp {
    fn handle(&self, _conn: ConnId, req: &RpcMessage) -> RpcMessage {
        RpcMessage::new(req.header.opcode, req.header.req_id, req.body.clone())
    }
}

/// An app that spins for the number of nanoseconds given in the first 8
/// body bytes — the synthetic service-time benchmark of §3.1.
pub struct SpinApp;

impl RpcApp for SpinApp {
    fn handle(&self, _conn: ConnId, req: &RpcMessage) -> RpcMessage {
        let ns = req
            .body
            .get(..8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
            .unwrap_or(0);
        let start = std::time::Instant::now();
        while (start.elapsed().as_nanos() as u64) < ns {
            std::hint::spin_loop();
        }
        RpcMessage::new(req.header.opcode, req.header.req_id, bytes::Bytes::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn echo_round_trips() {
        let app = EchoApp;
        let req = RpcMessage::new(5, 7, Bytes::from_static(b"ping"));
        let resp = app.handle(ConnId(0), &req);
        assert_eq!(resp.header.req_id, 7);
        assert_eq!(&resp.body[..], b"ping");
    }

    #[test]
    fn closure_apps_work() {
        let app = |_c: ConnId, req: &RpcMessage| {
            RpcMessage::new(0, req.header.req_id, Bytes::from_static(b"ok"))
        };
        let resp = app.handle(ConnId(1), &RpcMessage::new(1, 2, Bytes::new()));
        assert_eq!(&resp.body[..], b"ok");
    }

    #[test]
    fn spin_app_spins_requested_time() {
        let app = SpinApp;
        let req = RpcMessage::new(
            0,
            1,
            Bytes::copy_from_slice(&200_000u64.to_le_bytes()), // 200µs.
        );
        let start = std::time::Instant::now();
        app.handle(ConnId(0), &req);
        assert!(start.elapsed().as_micros() >= 200);
    }
}
