//! Runtime configuration.

/// Which scheduling discipline the workers run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerKind {
    /// The ZygOS design. With `steal: false` every connection is served
    /// exclusively by its home core (partitioned run-to-completion — the
    /// IX shape, useful for live A/B comparisons).
    Zygos {
        /// Enable work stealing between cores.
        steal: bool,
    },
    /// A shared ready-queue with no connection ownership (Linux-floating).
    /// Per-connection ordering is **not** guaranteed — see crate docs.
    Floating,
}

/// Configuration of a [`crate::Server`].
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of worker threads ("cores").
    pub cores: usize,
    /// Number of pre-registered client connections.
    pub conns: u32,
    /// Scheduling discipline.
    pub scheduler: SchedulerKind,
    /// Capacity of each per-core ingress ring.
    pub ring_capacity: usize,
    /// Maximum events taken from one connection per dequeue (the implicit
    /// per-flow batch bound; `usize::MAX` = all pending, the paper's
    /// behaviour).
    pub conn_batch: usize,
}

impl RuntimeConfig {
    /// A sensible default: ZygOS scheduling with stealing enabled.
    pub fn zygos(cores: usize, conns: u32) -> Self {
        RuntimeConfig {
            cores,
            conns,
            scheduler: SchedulerKind::Zygos { steal: true },
            ring_capacity: 4096,
            conn_batch: usize::MAX,
        }
    }

    /// Partitioned run-to-completion (stealing disabled).
    pub fn partitioned(cores: usize, conns: u32) -> Self {
        RuntimeConfig {
            scheduler: SchedulerKind::Zygos { steal: false },
            ..RuntimeConfig::zygos(cores, conns)
        }
    }

    /// Linux-floating-style shared queue.
    pub fn floating(cores: usize, conns: u32) -> Self {
        RuntimeConfig {
            scheduler: SchedulerKind::Floating,
            ..RuntimeConfig::zygos(cores, conns)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let z = RuntimeConfig::zygos(4, 64);
        assert_eq!(z.scheduler, SchedulerKind::Zygos { steal: true });
        let p = RuntimeConfig::partitioned(4, 64);
        assert_eq!(p.scheduler, SchedulerKind::Zygos { steal: false });
        let f = RuntimeConfig::floating(2, 8);
        assert_eq!(f.scheduler, SchedulerKind::Floating);
        assert_eq!(f.cores, 2);
    }
}
