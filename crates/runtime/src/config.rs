//! Runtime configuration.

use zygos_load::slo::TenantSlos;
use zygos_sched::CreditConfig;

/// Which scheduling discipline the workers run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerKind {
    /// The ZygOS design. With `steal: false` every connection is served
    /// exclusively by its home core (partitioned run-to-completion — the
    /// IX shape, useful for live A/B comparisons).
    Zygos {
        /// Enable work stealing between cores.
        steal: bool,
    },
    /// A shared ready-queue with no connection ownership (Linux-floating).
    /// Per-connection ordering is **not** guaranteed — see crate docs.
    Floating,
    /// The ZygOS design under the `zygos-sched` elastic control plane —
    /// the live, best-effort analogue of the simulator's
    /// `SystemKind::Elastic` + preemption quantum:
    ///
    /// * **cooperative yield**: at most `quantum_events` events are taken
    ///   from one connection per dequeue, so a deep pipeline cannot hold
    ///   its core indefinitely (true preemption of a Rust closure is
    ///   impossible in user space; the simulator models that part);
    /// * **core gating**: a controller (piggybacked on worker 0) feeds
    ///   queue-depth signals to a `CoreAllocator`; workers above the
    ///   granted count stop stealing and park an order of magnitude longer
    ///   when idle, freeing CPU on an oversubscribed host. Parked workers
    ///   still drain their own ingress rings — RSS cannot be reprogrammed
    ///   on the loopback port, so home duties remain.
    Elastic {
        /// Enable work stealing between granted cores.
        steal: bool,
        /// Max events taken from one connection per dequeue (the
        /// cooperative quantum; must be ≥ 1).
        quantum_events: usize,
    },
}

/// Configuration of a [`crate::Server`].
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of worker threads ("cores").
    pub cores: usize,
    /// Number of pre-registered client connections.
    pub conns: u32,
    /// Scheduling discipline.
    pub scheduler: SchedulerKind,
    /// Capacity of each per-core ingress ring.
    pub ring_capacity: usize,
    /// Maximum events taken from one connection per dequeue (the implicit
    /// per-flow batch bound; `usize::MAX` = all pending, the paper's
    /// behaviour).
    pub conn_batch: usize,
    /// Credit-based admission control (Breakwater-style) at the RX edge:
    /// a framed request without a credit is answered immediately with a
    /// [`crate::server::REJECT_OPCODE`] reply instead of being queued.
    /// Worker 0 resizes the pool by AIMD — on measured per-tenant sojourn
    /// tails versus SLO-derived targets when [`RuntimeConfig::slo`] is
    /// set (the same loop the simulator drives), or on the aggregate
    /// queue depth otherwise ([`CreditConfig::target`] is then a
    /// queue-depth target). `None` admits everything.
    pub admission: Option<CreditConfig>,
    /// Per-tenant SLO classes (connection → class round-robin by id).
    /// Arms the runtime's latency signal: ingress-stamped requests feed
    /// per-class sojourn windows, the elastic controller becomes the
    /// SLO-margin `SloController` (fed the measured worst p99-vs-bound
    /// ratio), the credit AIMD steers to per-class targets, and shedding
    /// becomes weighted-fair (loosest class first). `None` leaves the
    /// PR-2 utilization-and-queue-depth behaviour.
    pub slo: Option<TenantSlos>,
    /// Distribute credits to the sender (Breakwater's client-side half):
    /// responses piggyback a credit grant in the wire header and
    /// [`crate::ClientPort::try_send`] refuses to send while the
    /// connection's local balance is zero — a shed request then costs no
    /// wire RTT at all. Only meaningful with
    /// [`RuntimeConfig::admission`] set.
    pub client_credits: bool,
    /// Demand-weighted sender-side credit shares (Breakwater's
    /// overcommitment): a connection that finds its own balance empty may
    /// borrow a credit from a connection with **zero demand** (one that
    /// has never attempted a send), so the even initial split does not
    /// strand credits on idle connections under a skewed per-connection
    /// load. Only meaningful with [`RuntimeConfig::client_credits`].
    pub credit_overcommit: bool,
}

impl RuntimeConfig {
    /// A sensible default: ZygOS scheduling with stealing enabled.
    pub fn zygos(cores: usize, conns: u32) -> Self {
        RuntimeConfig {
            cores,
            conns,
            scheduler: SchedulerKind::Zygos { steal: true },
            ring_capacity: 4096,
            conn_batch: usize::MAX,
            admission: None,
            slo: None,
            client_credits: false,
            credit_overcommit: false,
        }
    }

    /// Arms the credit gate on any base configuration.
    pub fn with_admission(mut self, credits: CreditConfig) -> Self {
        self.admission = Some(credits);
        self
    }

    /// Arms the per-tenant latency signal (and with it the SLO-driven
    /// allocation and admission loops) on any base configuration.
    pub fn with_slo(mut self, slo: TenantSlos) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Switches the credit gate to sender-side distribution: grants ride
    /// on response headers and the client stops sending at zero balance.
    pub fn with_client_credits(mut self) -> Self {
        self.client_credits = true;
        self
    }

    /// Arms demand-weighted sender-side shares on top of client credits:
    /// zero-demand connections lend their balance to active ones.
    pub fn with_credit_overcommit(mut self) -> Self {
        self.client_credits = true;
        self.credit_overcommit = true;
        self
    }

    /// Partitioned run-to-completion (stealing disabled).
    pub fn partitioned(cores: usize, conns: u32) -> Self {
        RuntimeConfig {
            scheduler: SchedulerKind::Zygos { steal: false },
            ..RuntimeConfig::zygos(cores, conns)
        }
    }

    /// Linux-floating-style shared queue.
    pub fn floating(cores: usize, conns: u32) -> Self {
        RuntimeConfig {
            scheduler: SchedulerKind::Floating,
            ..RuntimeConfig::zygos(cores, conns)
        }
    }

    /// Elastic ZygOS: stealing plus core gating with a 64-event
    /// cooperative quantum.
    pub fn elastic(cores: usize, conns: u32) -> Self {
        RuntimeConfig {
            scheduler: SchedulerKind::Elastic {
                steal: true,
                quantum_events: 64,
            },
            ..RuntimeConfig::zygos(cores, conns)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let z = RuntimeConfig::zygos(4, 64);
        assert_eq!(z.scheduler, SchedulerKind::Zygos { steal: true });
        let p = RuntimeConfig::partitioned(4, 64);
        assert_eq!(p.scheduler, SchedulerKind::Zygos { steal: false });
        let f = RuntimeConfig::floating(2, 8);
        assert_eq!(f.scheduler, SchedulerKind::Floating);
        assert_eq!(f.cores, 2);
        let e = RuntimeConfig::elastic(4, 64);
        assert_eq!(
            e.scheduler,
            SchedulerKind::Elastic {
                steal: true,
                quantum_events: 64
            }
        );
    }
}
