//! The loopback client port (stands in for the NIC + client cluster).
//!
//! With [`RuntimeConfig::client_credits`](crate::RuntimeConfig) armed, the
//! port also runs the sender side of the Breakwater credit scheme: each
//! connection holds a local credit balance, [`ClientPort::try_send`]
//! refuses to transmit at zero balance (the shed request never touches
//! the wire), and response headers replenish the balance with the grants
//! the server piggybacks on them.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::Receiver;

use zygos_core::doorbell::IpiReason;
use zygos_net::flow::ConnId;
use zygos_net::packet::{Packet, RpcHeader, RpcMessage, RPC_HEADER_LEN};

use crate::server::Shared;

/// Sends request frames into the server's per-core ingress rings (applying
/// the connection's RSS home) and receives response frames.
pub struct ClientPort {
    shared: Arc<Shared>,
    resp_rx: Receiver<(ConnId, Bytes)>,
    /// Sender-side credit balances, one per connection (`None` unless
    /// client-side credits are armed).
    credits: Option<Vec<AtomicU32>>,
    /// Requests refused locally by [`ClientPort::try_send`]: sheds that
    /// cost zero wire RTT.
    local_sheds: AtomicU64,
}

impl ClientPort {
    pub(crate) fn new(shared: Arc<Shared>, resp_rx: Receiver<(ConnId, Bytes)>) -> Self {
        let credits = (shared.cfg.client_credits && shared.cfg.admission.is_some()).then(|| {
            // Split the initial pool across connections; every connection
            // starts with at least one credit so no sender deadlocks
            // before its first grant arrives.
            let initial = shared
                .cfg
                .admission
                .as_ref()
                .map_or(1, |c| c.initial_credits);
            let share = (initial / shared.cfg.conns.max(1)).max(1);
            (0..shared.cfg.conns)
                .map(|_| AtomicU32::new(share))
                .collect()
        });
        ClientPort {
            shared,
            resp_rx,
            credits,
            local_sheds: AtomicU64::new(0),
        }
    }

    /// Number of usable connections.
    pub fn conns(&self) -> u32 {
        self.shared.cfg.conns
    }

    /// `conn`'s current sender-side credit balance (`None` when
    /// client-side credits are off).
    pub fn credit_balance(&self, conn: ConnId) -> Option<u32> {
        self.credits
            .as_ref()
            .map(|c| c[conn.index()].load(Ordering::Relaxed))
    }

    /// Requests refused locally for lack of credits — sheds that burned
    /// no wire RTT (compare with the server gate's `rejected` counter,
    /// which prices a full round trip per reject).
    pub fn local_sheds(&self) -> u64 {
        self.local_sheds.load(Ordering::Relaxed)
    }

    /// Sends `msg` on `conn` if the connection holds a send credit,
    /// spending it; returns `false` (without touching the wire) when the
    /// balance is zero. Always sends when client-side credits are off —
    /// the caller can use this as its only send path.
    ///
    /// On `false`, the caller decides what the request's latency budget
    /// allows: drop it, back off and retry, or hedge — see
    /// `zygos_load::retry::RetryPolicy`.
    pub fn try_send(&self, conn: ConnId, msg: &RpcMessage) -> bool {
        if let Some(credits) = &self.credits {
            let balance = &credits[conn.index()];
            let mut cur = balance.load(Ordering::Relaxed);
            loop {
                if cur == 0 {
                    self.local_sheds.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
                match balance.compare_exchange_weak(
                    cur,
                    cur - 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
        self.send(conn, msg);
        true
    }

    /// Sends one request message on `conn`.
    ///
    /// # Panics
    ///
    /// Panics if `conn` is out of range.
    pub fn send(&self, conn: ConnId, msg: &RpcMessage) {
        self.send_bytes(conn, msg.to_bytes());
    }

    /// Sends raw stream bytes on `conn` (may be a partial frame or several
    /// frames — the server's framer reassembles, like TCP).
    pub fn send_bytes(&self, conn: ConnId, payload: Bytes) {
        let home = self.shared.conn_home[conn.index()] as usize;
        let mut pkt = Packet::new(conn, payload);
        loop {
            match self.shared.rings[home].push(pkt) {
                Ok(()) => break,
                Err(back) => {
                    pkt = back;
                    std::hint::spin_loop();
                }
            }
        }
        // Kick the home core if it is parked (the NIC's interrupt).
        self.shared.doorbells[home].ring(IpiReason::PendingPackets);
    }

    /// Receives the next response, decoding its frame and harvesting any
    /// piggybacked credit grant into the connection's send balance.
    ///
    /// Returns `None` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<(ConnId, RpcMessage)> {
        let (conn, wire) = self.resp_rx.recv_timeout(timeout).ok()?;
        debug_assert!(wire.len() >= RPC_HEADER_LEN, "short response frame");
        let mut buf = wire.clone();
        let header = RpcHeader::decode(&mut buf).expect("well-formed response");
        let body = buf.slice(..header.body_len as usize);
        if let Some(credits) = &self.credits {
            if header.credits > 0 {
                credits[conn.index()].fetch_add(header.credits, Ordering::Relaxed);
            }
        }
        Some((conn, RpcMessage { header, body }))
    }

    /// Number of responses currently queued.
    pub fn pending_responses(&self) -> usize {
        self.resp_rx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::EchoApp;
    use crate::config::RuntimeConfig;
    use crate::server::Server;

    #[test]
    fn partial_frames_reassemble_like_tcp() {
        let (server, client) = Server::start(RuntimeConfig::zygos(2, 4), Arc::new(EchoApp));
        let msg = RpcMessage::new(1, 9, Bytes::from_static(b"fragmented"));
        let wire = msg.to_bytes();
        // Send the frame in three segments.
        client.send_bytes(ConnId(1), wire.slice(..5));
        client.send_bytes(ConnId(1), wire.slice(5..12));
        client.send_bytes(ConnId(1), wire.slice(12..));
        let (_, resp) = client
            .recv_timeout(Duration::from_secs(5))
            .expect("reassembled response");
        assert_eq!(resp.header.req_id, 9);
        assert_eq!(&resp.body[..], b"fragmented");
        server.shutdown();
    }

    #[test]
    fn multiple_frames_in_one_packet() {
        let (server, client) = Server::start(RuntimeConfig::zygos(2, 4), Arc::new(EchoApp));
        let mut burst = Vec::new();
        for id in 0..4u64 {
            burst.extend_from_slice(&RpcMessage::new(1, id, Bytes::new()).to_bytes());
        }
        client.send_bytes(ConnId(2), Bytes::from(burst));
        let mut ids = Vec::new();
        for _ in 0..4 {
            let (_, resp) = client.recv_timeout(Duration::from_secs(5)).expect("resp");
            ids.push(resp.header.req_id);
        }
        // Same connection ⇒ strictly in order (§4.3).
        assert_eq!(ids, vec![0, 1, 2, 3]);
        server.shutdown();
    }

    #[test]
    fn conns_accessor() {
        let (server, client) = Server::start(RuntimeConfig::zygos(1, 7), Arc::new(EchoApp));
        assert_eq!(client.conns(), 7);
        server.shutdown();
    }
}
