//! The loopback client port (stands in for the NIC + client cluster).
//!
//! With [`RuntimeConfig::client_credits`](crate::RuntimeConfig) armed, the
//! port also runs the sender side of the Breakwater credit scheme: each
//! connection holds a local credit balance, [`ClientPort::try_send`]
//! refuses to transmit at zero balance (the shed request never touches
//! the wire), and response headers replenish the balance with the grants
//! the server piggybacks on them.
//!
//! With [`RuntimeConfig::credit_overcommit`](crate::RuntimeConfig) also
//! set, the shares are **demand-weighted** (Breakwater's overcommitment):
//! the initial pool is still split evenly, but a connection that finds
//! its balance empty may borrow a credit from a connection with zero
//! demand — one that has never attempted a send — instead of shedding
//! locally. Grants only ride on responses, so without lending the even
//! split permanently strands `pool/conns` credits on every idle
//! connection; under a skewed per-connection load that is most of the
//! pool.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::Receiver;

use zygos_core::doorbell::IpiReason;
use zygos_net::flow::ConnId;
use zygos_net::packet::{Packet, RpcHeader, RpcMessage, RPC_HEADER_LEN};

use crate::server::Shared;

/// Sends request frames into the server's per-core ingress rings (applying
/// the connection's RSS home) and receives response frames.
pub struct ClientPort {
    shared: Arc<Shared>,
    resp_rx: Receiver<(ConnId, Bytes)>,
    /// Sender-side credit balances, one per connection (`None` unless
    /// client-side credits are armed).
    credits: Option<Vec<AtomicU32>>,
    /// Per-connection send attempts — the demand signal for
    /// overcommitment: a connection with zero attempts has zero demand
    /// and may lend its balance.
    attempts: Vec<AtomicU64>,
    /// Rotating lender-scan cursor (spreads borrowing across idle
    /// connections).
    lend_cursor: AtomicUsize,
    /// Requests refused locally by [`ClientPort::try_send`]: sheds that
    /// cost zero wire RTT.
    local_sheds: AtomicU64,
    /// Credits borrowed from zero-demand connections (overcommitment).
    borrowed: AtomicU64,
}

impl ClientPort {
    pub(crate) fn new(shared: Arc<Shared>, resp_rx: Receiver<(ConnId, Bytes)>) -> Self {
        let credits = (shared.cfg.client_credits && shared.cfg.admission.is_some()).then(|| {
            // Split the initial pool across connections; every connection
            // starts with at least one credit so no sender deadlocks
            // before its first grant arrives.
            let initial = shared
                .cfg
                .admission
                .as_ref()
                .map_or(1, |c| c.initial_credits);
            let share = (initial / shared.cfg.conns.max(1)).max(1);
            (0..shared.cfg.conns)
                .map(|_| AtomicU32::new(share))
                .collect()
        });
        // Demand tracking exists only for overcommitment; without it the
        // credited send path stays a single CAS on the own balance.
        let attempts = if credits.is_some() && shared.cfg.credit_overcommit {
            (0..shared.cfg.conns as usize)
                .map(|_| AtomicU64::new(0))
                .collect()
        } else {
            Vec::new()
        };
        ClientPort {
            shared,
            resp_rx,
            credits,
            attempts,
            lend_cursor: AtomicUsize::new(0),
            local_sheds: AtomicU64::new(0),
            borrowed: AtomicU64::new(0),
        }
    }

    /// Number of usable connections.
    pub fn conns(&self) -> u32 {
        self.shared.cfg.conns
    }

    /// `conn`'s current sender-side credit balance (`None` when
    /// client-side credits are off).
    pub fn credit_balance(&self, conn: ConnId) -> Option<u32> {
        self.credits
            .as_ref()
            .map(|c| c[conn.index()].load(Ordering::Relaxed))
    }

    /// Requests refused locally for lack of credits — sheds that burned
    /// no wire RTT (compare with the server gate's `rejected` counter,
    /// which prices a full round trip per reject).
    pub fn local_sheds(&self) -> u64 {
        self.local_sheds.load(Ordering::Relaxed)
    }

    /// Credits borrowed from zero-demand connections — sends that
    /// overcommitment rescued from a local shed. Always 0 unless
    /// [`RuntimeConfig::credit_overcommit`](crate::RuntimeConfig) is set.
    pub fn borrowed_credits(&self) -> u64 {
        self.borrowed.load(Ordering::Relaxed)
    }

    /// Tries to borrow one credit from a connection with zero demand
    /// (never attempted a send). Returns `true` on success — the borrowed
    /// credit is spent directly on the caller's send.
    fn borrow_credit(&self, credits: &[AtomicU32]) -> bool {
        let n = credits.len();
        let start = self.lend_cursor.fetch_add(1, Ordering::Relaxed);
        for i in 0..n {
            let lender = (start + i) % n;
            if self.attempts[lender].load(Ordering::Relaxed) != 0 {
                continue; // Active (or once-active): not a lender.
            }
            let balance = &credits[lender];
            let mut cur = balance.load(Ordering::Relaxed);
            loop {
                if cur == 0 {
                    break; // Already lent out; try the next candidate.
                }
                match balance.compare_exchange_weak(
                    cur,
                    cur - 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        self.borrowed.fetch_add(1, Ordering::Relaxed);
                        return true;
                    }
                    Err(seen) => cur = seen,
                }
            }
        }
        false
    }

    /// Sends `msg` on `conn` if the connection holds a send credit,
    /// spending it; returns `false` (without touching the wire) when the
    /// balance is zero. Always sends when client-side credits are off —
    /// the caller can use this as its only send path.
    ///
    /// On `false`, the caller decides what the request's latency budget
    /// allows: drop it, back off and retry, or hedge — see
    /// `zygos_load::retry::RetryPolicy`.
    pub fn try_send(&self, conn: ConnId, msg: &RpcMessage) -> bool {
        if let Some(credits) = &self.credits {
            if self.shared.cfg.credit_overcommit {
                // Registering demand first also disqualifies this
                // connection as a lender before any borrowing below.
                self.attempts[conn.index()].fetch_add(1, Ordering::Relaxed);
            }
            let balance = &credits[conn.index()];
            let mut cur = balance.load(Ordering::Relaxed);
            loop {
                if cur == 0 {
                    // Demand-weighted shares: spend an idle connection's
                    // stranded credit instead of shedding.
                    if self.shared.cfg.credit_overcommit && self.borrow_credit(credits) {
                        break;
                    }
                    self.local_sheds.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
                match balance.compare_exchange_weak(
                    cur,
                    cur - 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
        self.send(conn, msg);
        true
    }

    /// Sends one request message on `conn`.
    ///
    /// # Panics
    ///
    /// Panics if `conn` is out of range.
    pub fn send(&self, conn: ConnId, msg: &RpcMessage) {
        self.send_bytes(conn, msg.to_bytes());
    }

    /// Sends raw stream bytes on `conn` (may be a partial frame or several
    /// frames — the server's framer reassembles, like TCP).
    pub fn send_bytes(&self, conn: ConnId, payload: Bytes) {
        let home = self.shared.conn_home[conn.index()] as usize;
        let mut pkt = Packet::new(conn, payload);
        loop {
            match self.shared.rings[home].push(pkt) {
                Ok(()) => break,
                Err(back) => {
                    pkt = back;
                    std::hint::spin_loop();
                }
            }
        }
        // Kick the home core if it is parked (the NIC's interrupt).
        self.shared.doorbells[home].ring(IpiReason::PendingPackets);
    }

    /// Receives the next response, decoding its frame and harvesting any
    /// piggybacked credit grant into the connection's send balance.
    ///
    /// Returns `None` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<(ConnId, RpcMessage)> {
        let (conn, wire) = self.resp_rx.recv_timeout(timeout).ok()?;
        debug_assert!(wire.len() >= RPC_HEADER_LEN, "short response frame");
        let mut buf = wire.clone();
        let header = RpcHeader::decode(&mut buf).expect("well-formed response");
        let body = buf.slice(..header.body_len as usize);
        if let Some(credits) = &self.credits {
            if header.credits > 0 {
                credits[conn.index()].fetch_add(header.credits, Ordering::Relaxed);
            }
        }
        Some((conn, RpcMessage { header, body }))
    }

    /// Number of responses currently queued.
    pub fn pending_responses(&self) -> usize {
        self.resp_rx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::EchoApp;
    use crate::config::RuntimeConfig;
    use crate::server::Server;

    #[test]
    fn partial_frames_reassemble_like_tcp() {
        let (server, client) = Server::start(RuntimeConfig::zygos(2, 4), Arc::new(EchoApp));
        let msg = RpcMessage::new(1, 9, Bytes::from_static(b"fragmented"));
        let wire = msg.to_bytes();
        // Send the frame in three segments.
        client.send_bytes(ConnId(1), wire.slice(..5));
        client.send_bytes(ConnId(1), wire.slice(5..12));
        client.send_bytes(ConnId(1), wire.slice(12..));
        let (_, resp) = client
            .recv_timeout(Duration::from_secs(5))
            .expect("reassembled response");
        assert_eq!(resp.header.req_id, 9);
        assert_eq!(&resp.body[..], b"fragmented");
        server.shutdown();
    }

    #[test]
    fn multiple_frames_in_one_packet() {
        let (server, client) = Server::start(RuntimeConfig::zygos(2, 4), Arc::new(EchoApp));
        let mut burst = Vec::new();
        for id in 0..4u64 {
            burst.extend_from_slice(&RpcMessage::new(1, id, Bytes::new()).to_bytes());
        }
        client.send_bytes(ConnId(2), Bytes::from(burst));
        let mut ids = Vec::new();
        for _ in 0..4 {
            let (_, resp) = client.recv_timeout(Duration::from_secs(5)).expect("resp");
            ids.push(resp.header.req_id);
        }
        // Same connection ⇒ strictly in order (§4.3).
        assert_eq!(ids, vec![0, 1, 2, 3]);
        server.shutdown();
    }

    #[test]
    fn conns_accessor() {
        let (server, client) = Server::start(RuntimeConfig::zygos(1, 7), Arc::new(EchoApp));
        assert_eq!(client.conns(), 7);
        server.shutdown();
    }

    #[test]
    fn overcommitment_cuts_local_sheds_under_skewed_load() {
        use zygos_sched::CreditConfig;
        // A fixed 16-credit pool over 16 connections (share = 1 each), a
        // 32-request burst on just two of them, and no response draining
        // (grants ride on responses, so balances only shrink here).
        let base = RuntimeConfig::zygos(2, 16)
            .with_admission(CreditConfig {
                min_credits: 16,
                max_credits: 16,
                initial_credits: 16,
                additive: 1,
                md_factor: 0.3,
                target: 1_000.0,
            })
            .with_client_credits();
        let run = |cfg: RuntimeConfig| {
            let (server, client) = Server::start(cfg, Arc::new(EchoApp));
            for id in 0..32u64 {
                client.try_send(
                    ConnId((id % 2) as u32),
                    &RpcMessage::new(1, id, Bytes::new()),
                );
            }
            let out = (client.local_sheds(), client.borrowed_credits());
            server.shutdown();
            out
        };
        let (sheds_even, borrowed_even) = run(base.clone());
        let (sheds_over, borrowed_over) = run(base.with_credit_overcommit());
        // Even split: the two active connections hold 1 credit each — 2
        // sends, 30 local sheds, 14 credits stranded on idle connections.
        assert_eq!(sheds_even, 30);
        assert_eq!(borrowed_even, 0);
        // Demand-weighted: the stranded shares are borrowed before any
        // shed — 16 sends (the whole pool), 16 sheds.
        assert_eq!(borrowed_over, 14);
        assert_eq!(sheds_over, 16);
        assert!(
            sheds_over < sheds_even,
            "overcommitment must cut local sheds ({sheds_over} vs {sheds_even})"
        );
    }
}
