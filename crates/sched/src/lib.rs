//! Elastic core allocation and preemptive-quantum scheduling (`zygos-sched`).
//!
//! ZygOS (SOSP'17) is statically provisioned: 16 cores busy-poll whether
//! the offered load needs them or not, and a long request holds its core
//! until completion — the head-of-line blocking its §6/Figure 6 ablation
//! quantifies for dispersive service-time distributions. This crate adds
//! the two control-plane policies the post-ZygOS literature converged on:
//!
//! * [`alloc`] — a **core allocator** in the spirit of Shenango's core
//!   controller: a periodic observer of queue backlog and busy-core counts
//!   that grants and revokes cores with hysteresis (consecutive-signal
//!   thresholds plus a post-change cooldown), and a [`alloc::CoreSecondsMeter`]
//!   that makes parked-core count and core-seconds-used first-class
//!   outputs.
//! * [`quantum`] — a **preemptive time-slice policy** in the spirit of
//!   Shinjuku's microsecond preemption: a configurable quantum after which
//!   an in-flight application chunk is interrupted and its remainder
//!   requeued, bounding how long one dispersive request can block a core.
//! * [`gate`] — a lock-free **active-core gate** for the live runtime,
//!   where cores are threads that can only be throttled cooperatively.
//!
//! The policies are pure (no clocks, no threads): the system simulator
//! (`zygos-sysim`, `SystemKind::Elastic` + `preemption_quantum_us`) drives
//! them from virtual time, and the live runtime (`zygos-runtime`,
//! `SchedulerKind::Elastic`) drives them from wall-clock ticks. Keeping
//! them host-agnostic is what lets the property tests in
//! `tests/proptest_sched.rs` model-check hysteresis and conservation
//! without either host.

pub mod alloc;
pub mod gate;
pub mod quantum;

pub use alloc::{
    AllocatorConfig, AllocatorTuning, CoreAllocator, CoreSecondsMeter, Decision, LoadSignal,
};
pub use gate::ElasticGate;
pub use quantum::QuantumPolicy;
