//! The scheduling policy plane (`zygos-sched`).
//!
//! ZygOS (SOSP'17) argues that tail latency is decided by the dispatch
//! discipline. This crate is where every dispatch and allocation decision
//! in the workspace lives — written **once**, driven by two hosts: the
//! discrete-event system simulator (`zygos-sysim`) from virtual time, and
//! the live multithreaded runtime (`zygos-runtime`) from wall-clock ticks.
//! The policies are pure (no clocks, no threads, no I/O), which is what
//! lets `tests/proptest_policy.rs` model-check them without either host.
//!
//! # Architecture: who owns which decision
//!
//! ```text
//!                      ┌────────────────────────────────────────────┐
//!                      │            zygos-sched (policy)            │
//!                      │                                            │
//!   what runs next?    │  DispatchPolicy ── ladder of Rungs,        │
//!                      │    ├ FcfsPolicy      steal / preempt /     │
//!                      │    ├ RtcPolicy       background order      │
//!                      │    └ ZygosPolicy ──── QuantumPolicy        │
//!                      │                                            │
//!   how many cores?    │  AllocPolicy ── PolicySignal → Decision    │
//!                      │    ├ UtilizationPolicy ── CoreAllocator    │
//!                      │    └ SloController  (p99-vs-SLO margin)    │
//!                      │                                            │
//!   admit or shed?     │  CreditPool ── AIMD credits (Breakwater)   │
//!                      └───────▲──────────────────────────▲─────────┘
//!                              │                          │
//!                  ┌───────────┴─────────┐   ┌────────────┴──────────┐
//!                  │ zygos-sysim         │   │ zygos-runtime         │
//!                  │ (mechanisms: rings, │   │ (mechanisms: MPSC     │
//!                  │  shuffle queues,    │   │  rings, shuffle layer,│
//!                  │  virtual IPIs)      │   │  doorbells, threads)  │
//!                  └─────────────────────┘   └───────────────────────┘
//! ```
//!
//! * [`policy`] — the **dispatch plane**. [`DispatchPolicy`] expresses a
//!   core's scheduling loop as an ordered ladder of [`policy::Rung`]s over
//!   an abstract per-core queue view; hosts own the queue *mechanisms* and
//!   consult the policy for the *order*, the steal decisions, the
//!   preemption (`slice`) decision and the background-queue discipline
//!   ([`policy::BackgroundOrder::Fcfs`] or SRPT). `FcfsPolicy` (Linux
//!   baselines / floating), `RtcPolicy` (IX) and `ZygosPolicy` (the
//!   paper's priority loop, with the elastic/preemptive extensions) cover
//!   every system model in the workspace.
//! * [`policy::AllocPolicy`] — the **allocation plane**. One
//!   [`PolicySignal`] per control tick (time-averaged busy cores, queue
//!   backlog, and the measured tail-latency-to-SLO ratio), one
//!   [`Decision`] out. [`UtilizationPolicy`] is the PR-1 `util + β·√util`
//!   rule; [`SloController`] (the default for elastic hosts) staffs from
//!   the p99-vs-SLO margin and degrades to the utilization rule when no
//!   SLO signal exists.
//! * [`credit`] — the **admission plane**. [`CreditPool`] bounds admitted
//!   in-flight requests with AIMD-resized Breakwater-style credits so that
//!   under sustained overload (`util > 1`) admitted requests keep a
//!   bounded tail while the surplus is shed with explicit, client-visible
//!   rejects (`fig13` sweeps this).
//! * [`alloc`] — the hysteretic [`CoreAllocator`] (demand estimation,
//!   square-root staffing, consecutive-signal thresholds, cooldown) and
//!   the [`CoreSecondsMeter`]; the building block both allocation policies
//!   share.
//! * [`quantum`] — the preemptive time-slice policy ([`QuantumPolicy`]),
//!   Shinjuku-style microsecond preemption.
//! * [`gate`] — the lock-free [`ElasticGate`] the live runtime uses to
//!   park worker threads cooperatively.

pub mod alloc;
pub mod credit;
pub mod gate;
pub mod policy;
pub mod quantum;
pub mod slo_ctl;

pub use alloc::{
    AllocatorConfig, AllocatorTuning, CoreAllocator, CoreSecondsMeter, Decision, LoadSignal,
};
pub use credit::{CreditConfig, CreditGate, CreditPool};
pub use gate::ElasticGate;
pub use policy::{
    AllocPolicy, BackgroundOrder, BuiltinDispatch, DispatchPolicy, FcfsPolicy, PolicySignal,
    RtcPolicy, Rung, UtilizationPolicy, ZygosPolicy,
};
pub use quantum::QuantumPolicy;
pub use slo_ctl::{SloController, SloTuning};
