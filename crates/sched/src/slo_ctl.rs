//! SLO-driven core allocation.
//!
//! The PR-1 allocator staffs on utilization (`util + β·√util`), which is
//! blind to what the operator actually promised: a tail-latency bound.
//! [`SloController`] closes that loop. It consumes the measured
//! tail-latency-to-SLO ratio ([`crate::PolicySignal::slo_ratio`], the worst
//! `p99 / bound` across tenant SLO classes over the last control window)
//! and staffs from the margin:
//!
//! * **sustained breach** (`ratio > breach_ratio` for `grant_after` ticks)
//!   grants cores proportional to the overshoot, overriding whatever the
//!   utilization rule thinks — a violated SLO is demand by definition;
//! * **thin margin** (`ratio > relax_ratio`) vetoes the utilization rule's
//!   revokes: parking cores while the tail sits near the bound converts a
//!   met SLO into a violated one a window later;
//! * **wide margin** falls through to the embedded [`CoreAllocator`], so
//!   with no SLO signal at all the controller behaves exactly like the
//!   PR-1 utilization rule (which keeps it a safe default).
//!
//! Stability comes from the same ingredients as the utilization rule:
//! EWMA smoothing of the ratio, consecutive-tick thresholds, and a shared
//! cooldown after any change (the controller and its embedded allocator
//! are never both in a post-change cooldown independently — a forced grant
//! resets the inner allocator's counters too). The settling test in
//! `tests/proptest_policy.rs` model-checks convergence on step load
//! changes against a monotone plant.

use crate::alloc::{AllocatorConfig, CoreAllocator, Decision};
use crate::policy::{AllocPolicy, PolicySignal};

/// Decision-rule knobs of the [`SloController`].
#[derive(Clone, Copy, Debug)]
pub struct SloTuning {
    /// EWMA coefficient for the smoothed SLO ratio.
    pub ratio_alpha: f64,
    /// Grant when the smoothed ratio exceeds this (below 1.0 = act before
    /// the SLO is formally violated).
    pub breach_ratio: f64,
    /// Permit revokes only when the smoothed ratio is below this.
    pub relax_ratio: f64,
    /// Consecutive breach ticks required before a grant.
    pub grant_after: u32,
}

impl Default for SloTuning {
    /// Act at 90% of the bound, revoke only below 50%, grant after 2
    /// breach ticks. The post-change cooldown is not a knob here: the
    /// controller inherits [`crate::AllocatorTuning::cooldown`] so its
    /// cooldown windows stay in lockstep with the embedded utilization
    /// rule's (out-of-step cooldowns would make the wrapper override
    /// decisions the inner rule is entitled to, breaking the
    /// no-SLO-signal equivalence).
    fn default() -> Self {
        SloTuning {
            ratio_alpha: 0.25,
            breach_ratio: 0.9,
            relax_ratio: 0.5,
            grant_after: 2,
        }
    }
}

impl SloTuning {
    fn validate(&self) {
        assert!(self.ratio_alpha > 0.0 && self.ratio_alpha <= 1.0);
        assert!(self.breach_ratio > 0.0);
        assert!(
            self.relax_ratio < self.breach_ratio,
            "relax must sit below breach or the controller ping-pongs"
        );
        assert!(self.grant_after >= 1);
    }
}

/// The SLO-margin core allocator (see module docs for the decision rule).
#[derive(Clone, Debug)]
pub struct SloController {
    inner: CoreAllocator,
    tuning: SloTuning,
    /// Post-change cooldown length, inherited from the allocator tuning
    /// so both layers' cooldown windows open and close together.
    cooldown: u32,
    /// Smoothed worst tail-latency-to-SLO ratio.
    ratio_ewma: f64,
    /// Consecutive breach ticks observed.
    breach: u32,
    /// Remaining cooldown ticks after the controller's own changes.
    cooldown_left: u32,
    slo_grants: u64,
    vetoed_revokes: u64,
}

impl SloController {
    /// Creates a controller over the utilization rule configured by `cfg`,
    /// with [`SloTuning`] `tuning`.
    pub fn new(cfg: AllocatorConfig, tuning: SloTuning) -> Self {
        tuning.validate();
        SloController {
            cooldown: cfg.tuning.cooldown,
            inner: CoreAllocator::new(cfg),
            tuning,
            ratio_ewma: 0.0,
            breach: 0,
            cooldown_left: 0,
            slo_grants: 0,
            vetoed_revokes: 0,
        }
    }

    /// The smoothed SLO ratio estimate.
    pub fn ratio_ewma(&self) -> f64 {
        self.ratio_ewma
    }

    /// Grants forced by SLO breaches (excluding the utilization rule's).
    pub fn slo_grants(&self) -> u64 {
        self.slo_grants
    }

    /// Utilization-rule revokes vetoed by a thin SLO margin.
    pub fn vetoed_revokes(&self) -> u64 {
        self.vetoed_revokes
    }

    /// The embedded utilization allocator.
    pub fn allocator(&self) -> &CoreAllocator {
        &self.inner
    }
}

impl AllocPolicy for SloController {
    fn observe(&mut self, sig: &PolicySignal) -> Decision {
        let a = self.tuning.ratio_alpha;
        if let Some(r) = sig.slo_ratio {
            self.ratio_ewma += a * (r - self.ratio_ewma);
        }
        // A window with no measurable ratio (no SLO, or nothing completed)
        // holds the previous estimate: absence of completions under load is
        // not evidence the tail got better.

        let max = self.inner.config().max_cores;
        let breached = self.ratio_ewma > self.tuning.breach_ratio && self.inner.active() < max;
        self.breach = if breached { self.breach + 1 } else { 0 };

        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            // Keep the inner EWMAs warm during our cooldown. The cooldowns
            // are armed in lockstep (same length, same tick), so the inner
            // rule holds through ours; the undo is a defensive guard.
            let before = self.inner.active();
            if self.inner.observe(sig.load()) != Decision::Hold {
                self.inner.force_active(before);
            }
            return Decision::Hold;
        }

        if self.breach >= self.tuning.grant_after {
            // Grant proportional to the overshoot: 2× the bound doubles the
            // grant step. A violated SLO is demand the utilization signal
            // may not show (cores pinned busy by long requests look like
            // exactly-full utilization, never overload).
            let over = self.ratio_ewma / self.tuning.breach_ratio - 1.0;
            let step = ((over * self.inner.active() as f64).ceil() as usize).max(1);
            let before = self.inner.active();
            let target = (before + step).min(max);
            if target > before {
                self.inner.force_active(target);
                self.breach = 0;
                self.cooldown_left = self.cooldown;
                self.slo_grants += 1;
                return Decision::Grant(target - before);
            }
        }

        let before = self.inner.active();
        let d = self.inner.observe(sig.load());
        match d {
            Decision::Revoke(_) if self.ratio_ewma > self.tuning.relax_ratio => {
                // Thin margin: veto the utilization rule's parking.
                self.inner.force_active(before);
                self.cooldown_left = self.cooldown;
                self.vetoed_revokes += 1;
                Decision::Hold
            }
            Decision::Hold => Decision::Hold,
            other => {
                self.cooldown_left = self.cooldown;
                other
            }
        }
    }

    fn active(&self) -> usize {
        self.inner.active()
    }

    fn describe(&self) -> String {
        format!(
            "slo~{:.2} util~{:.2} press~{:.2}",
            self.ratio_ewma,
            self.inner.util_ewma(),
            self.inner.press_ewma()
        )
    }

    fn clone_box(&self) -> Box<dyn AllocPolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl(max: usize) -> SloController {
        SloController::new(AllocatorConfig::paper(max), SloTuning::default())
    }

    fn sig(busy: f64, backlog: usize, ratio: Option<f64>) -> PolicySignal {
        PolicySignal {
            busy_cores: busy,
            backlog,
            slo_ratio: ratio,
        }
    }

    #[test]
    fn no_slo_signal_matches_utilization_rule() {
        // With slo_ratio always None the controller must reproduce the
        // CoreAllocator's decisions exactly, tick for tick.
        let mut slo = ctl(16);
        let mut util = CoreAllocator::new(AllocatorConfig::paper(16));
        let mut x = 3u64;
        for _ in 0..2_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
            let busy = ((x >> 33) % 17) as f64;
            let backlog = (x >> 13) as usize % 48;
            let ds = slo.observe(&sig(busy, backlog, None));
            let du = util.observe(sig(busy, backlog, None).load());
            assert_eq!(ds, du, "diverged at busy={busy} backlog={backlog}");
            assert_eq!(slo.active(), util.active());
        }
    }

    #[test]
    fn sustained_breach_grants_even_at_full_utilization() {
        let mut c = ctl(16);
        // Shrink to the floor first.
        for _ in 0..200 {
            c.observe(&sig(0.5, 0, Some(0.2)));
        }
        let floor = c.active();
        assert!(floor < 16);
        // Cores pinned busy (util == active, no backlog): the utilization
        // rule sees "exactly full" and holds; the SLO breach must grant.
        for _ in 0..40 {
            let busy = c.active() as f64;
            c.observe(&sig(busy, 0, Some(2.0)));
        }
        assert!(c.active() > floor, "breach must staff up");
        assert!(c.slo_grants() > 0);
    }

    #[test]
    fn thin_margin_vetoes_revokes() {
        let mut c = ctl(16);
        // Low utilization but the tail sits at 80% of the bound: the
        // utilization rule wants to park, the margin veto must hold.
        for _ in 0..300 {
            c.observe(&sig(1.0, 0, Some(0.8)));
        }
        assert_eq!(c.active(), 16, "no parking on a thin margin");
        assert!(c.vetoed_revokes() > 0);
        // Once the margin widens, parking resumes.
        for _ in 0..300 {
            c.observe(&sig(1.0, 0, Some(0.1)));
        }
        assert!(c.active() < 16, "wide margin must allow parking");
    }

    #[test]
    fn breach_grant_is_proportional_to_overshoot() {
        let mut mild = ctl(32);
        let mut severe = ctl(32);
        for _ in 0..200 {
            mild.observe(&sig(1.0, 0, Some(0.2)));
            severe.observe(&sig(1.0, 0, Some(0.2)));
        }
        let start = mild.active();
        assert_eq!(severe.active(), start);
        for _ in 0..8 {
            let b = mild.active() as f64;
            mild.observe(&sig(b, 0, Some(1.1)));
            let b = severe.active() as f64;
            severe.observe(&sig(b, 0, Some(6.0)));
        }
        assert!(
            severe.active() > mild.active(),
            "severe overshoot {} must out-staff mild {}",
            severe.active(),
            mild.active()
        );
    }

    #[test]
    fn missing_windows_hold_the_estimate() {
        let mut c = ctl(16);
        for _ in 0..200 {
            c.observe(&sig(0.5, 0, Some(0.2)));
        }
        let parked_at = c.active();
        // Breach, then signal loss: the held estimate keeps staffing up
        // (or at least never parks back down) until a real sample lands.
        for _ in 0..4 {
            let b = c.active() as f64;
            c.observe(&sig(b, 0, Some(3.0)));
        }
        let staffed = c.active();
        assert!(staffed > parked_at);
        for _ in 0..50 {
            let b = c.active() as f64;
            c.observe(&sig(b, 0, None));
        }
        assert!(
            c.active() >= staffed,
            "signal loss must not trigger parking"
        );
    }
}
