//! Credit-based admission control (Breakwater-style overload protection).
//!
//! In sustained overload (`util > 1`) every dispatch policy's p99 diverges:
//! the queue grows without bound and so does every admitted request's
//! sojourn. The only fix is to stop admitting. [`CreditPool`] implements
//! the server side of a Breakwater-style credit scheme:
//!
//! * the server holds a pool of **credits** bounding the requests admitted
//!   and not yet completed (in-flight = executing + queued);
//! * an arriving request **spends** a credit ([`CreditPool::try_admit`]);
//!   none available → the request is shed at the network edge, before it
//!   costs any application work (the client gets an explicit reject, which
//!   is client-visible backpressure rather than a silent timeout);
//! * a completion **returns** its credit ([`CreditPool::release`]);
//! * a periodic controller resizes the pool by **AIMD** on a congestion
//!   signal ([`CreditPool::update`]): additive increase while the measured
//!   delay sits below target, multiplicative decrease proportional to the
//!   overshoot when it doesn't — Breakwater's `C = C + a` /
//!   `C·(1 − β·overshoot)` rule with the sender-side credit laundering
//!   elided (our clients are simulated/loopback).
//!
//! Invariants, model-checked in `tests/proptest_policy.rs`:
//!
//! * in-flight never exceeds capacity (no over-admission);
//! * capacity never drops below [`CreditConfig::min_credits`] ≥ 1, so the
//!   pool cannot deadlock at zero credits: after every admitted request
//!   completes, at least one credit is always grantable.
//!
//! # Per-tenant extensions
//!
//! Two host-driven extensions ride on the same pool:
//!
//! * **Weighted fair shedding** ([`CreditPool::try_admit_weighted`]):
//!   each tenant class is admitted against a *cap fraction* of the pool
//!   (derived from `zygos_load::slo::TenantSlos::admit_fractions` — the
//!   loosest SLO class gets the smallest cap). The pool tracks
//!   **per-class in-flight occupancy** and admits a class-`c` request iff
//!   `class_in_flight[c] < cap_c && total < capacity`: under overload the
//!   class with the most latency headroom hits its own cap — and sheds —
//!   first, while a capped class that is *not* the one causing the
//!   pressure keeps a guaranteed floor of the pool (the pre-PR-4 rule
//!   compared global occupancy against the class threshold, so sustained
//!   strict traffic could starve a loose class outright even when the
//!   loose class had nothing in flight).
//! * **SLO-normalized AIMD** ([`CreditPool::update_ratio`]): hosts that
//!   measure *per-class* tails against per-class targets feed the worst
//!   `measured/target` ratio (1.0 = at target) instead of a raw latency,
//!   which lets one AIMD rule serve tenants with µs-scale and ms-scale
//!   bounds simultaneously.

/// Configuration of a [`CreditPool`].
#[derive(Clone, Copy, Debug)]
pub struct CreditConfig {
    /// Floor on pool capacity (≥ 1 — the no-deadlock guarantee).
    pub min_credits: u32,
    /// Ceiling on pool capacity.
    pub max_credits: u32,
    /// Starting capacity.
    pub initial_credits: u32,
    /// Additive increase per underloaded control tick.
    pub additive: u32,
    /// Multiplicative-decrease aggressiveness `β`: on an overshoot the
    /// capacity shrinks by `β · min(1, overshoot)` of itself.
    pub md_factor: f64,
    /// Congestion target the AIMD loop steers the measured delay signal
    /// to, in the host's unit (the simulator feeds window tail latency in
    /// µs; the live runtime feeds queue depth).
    pub target: f64,
}

impl CreditConfig {
    /// A pool for a `cores`-wide data plane steering tail latency to
    /// `target`: capacity starts at 8 credits per core (enough to keep
    /// every core busy with head-room for queueing), floor of one credit
    /// per core, generous ceiling for underload.
    pub fn for_cores(cores: usize, target: f64) -> Self {
        let cores = cores.max(1) as u32;
        CreditConfig {
            min_credits: cores,
            max_credits: cores * 64,
            initial_credits: cores * 8,
            additive: cores.div_ceil(4),
            md_factor: 0.3,
            target,
        }
    }

    /// An even split of this pool's capacity across `n` peers: the
    /// fleet-wide admission topology, where one fleet-sized AIMD budget
    /// is divided over the live shards instead of each shard running
    /// [`CreditConfig::for_cores`] on its own slice. Every capacity knob
    /// divides (ceiling division, floored at one credit so no peer
    /// deadlocks); `md_factor` and `target` are rates, not budgets, and
    /// pass through. `split(1)` is the identity.
    ///
    /// The observable difference from per-shard pools: `for_cores` is not
    /// linear in `cores` (per-core floors, `div_ceil` on the additive
    /// step), so a split fleet pool starts tighter and probes more gently
    /// than the same cores provisioned shard-locally.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0.
    pub fn split(&self, n: usize) -> Self {
        assert!(n >= 1, "cannot split a pool zero ways");
        if n == 1 {
            return *self;
        }
        let n = n as u32;
        CreditConfig {
            min_credits: self.min_credits.div_ceil(n).max(1),
            max_credits: self.max_credits.div_ceil(n).max(1),
            initial_credits: self.initial_credits.div_ceil(n).max(1),
            additive: self.additive.div_ceil(n).max(1),
            md_factor: self.md_factor,
            target: self.target,
        }
    }

    fn validate(&self) {
        assert!(self.min_credits >= 1, "zero-credit pools deadlock");
        assert!(self.min_credits <= self.max_credits);
        assert!((0.0..1.0).contains(&self.md_factor));
        assert!(self.target > 0.0);
    }

    fn clamp(&self, capacity: u32) -> u32 {
        capacity.clamp(self.min_credits, self.max_credits)
    }

    /// One AIMD step: the capacity that follows `current` after observing
    /// `measured` (same unit as [`CreditConfig::target`]). Non-finite
    /// `measured` (no signal this window) holds the capacity. The single
    /// AIMD rule shared by [`CreditPool`] and [`CreditGate`].
    pub fn next_capacity(&self, current: u32, measured: f64) -> u32 {
        if !measured.is_finite() {
            return current;
        }
        if measured <= self.target {
            self.clamp(current.saturating_add(self.additive))
        } else {
            let overshoot = ((measured - self.target) / self.target).min(1.0);
            let kept = current as f64 * (1.0 - self.md_factor * overshoot);
            self.clamp(kept.floor() as u32)
        }
    }

    /// The occupancy cap for a tenant class admitted at `fraction` of a
    /// pool of `capacity` credits: the number of in-flight requests *of
    /// that class* the pool tolerates. A fraction of 1.0 (the strictest
    /// class) is the whole pool. The `max(1)` floor guarantees every
    /// class can always admit from an empty pool, even after the AIMD
    /// shrinks capacity to its minimum.
    fn class_cap(&self, capacity: u32, fraction: f64) -> u32 {
        if fraction >= 1.0 {
            capacity
        } else {
            (((capacity as f64) * fraction.max(0.0)).floor() as u32).max(1)
        }
    }
}

/// The server-side credit pool (see module docs).
#[derive(Clone, Debug)]
pub struct CreditPool {
    cfg: CreditConfig,
    capacity: u32,
    in_flight: u32,
    /// Per-tenant-class in-flight occupancy (one slot per class; a single
    /// slot when the host has no tenant classes).
    class_in_flight: Vec<u32>,
    admitted: u64,
    rejected: u64,
}

impl CreditPool {
    /// Creates a single-class pool at [`CreditConfig::initial_credits`].
    pub fn new(cfg: CreditConfig) -> Self {
        CreditPool::with_classes(cfg, 1)
    }

    /// Creates a pool tracking `classes` tenant classes' occupancy.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0` or the config is invalid.
    pub fn with_classes(cfg: CreditConfig, classes: usize) -> Self {
        cfg.validate();
        assert!(classes >= 1, "need at least one tenant class");
        CreditPool {
            capacity: cfg.clamp(cfg.initial_credits),
            cfg,
            in_flight: 0,
            class_in_flight: vec![0; classes],
            admitted: 0,
            rejected: 0,
        }
    }

    /// Spends a credit for an arriving request of the sole (or first)
    /// class. `false` sheds the request (no credit held; do not call
    /// [`CreditPool::release`] for it).
    pub fn try_admit(&mut self) -> bool {
        self.try_admit_weighted(0, 1.0)
    }

    /// Spends a credit for a request of tenant `class`, capped at
    /// `fraction` of the pool (weighted fair shedding; see module docs).
    /// The admit rule is `class_in_flight[class] < cap_c && total <
    /// capacity`: the class cap bounds each class's own occupancy, and
    /// the total bound keeps the pool's no-over-admission invariant.
    /// `try_admit_weighted(0, 1.0)` is exactly [`CreditPool::try_admit`].
    pub fn try_admit_weighted(&mut self, class: usize, fraction: f64) -> bool {
        if self.class_in_flight[class] < self.cfg.class_cap(self.capacity, fraction)
            && self.in_flight < self.capacity
        {
            self.in_flight += 1;
            self.class_in_flight[class] += 1;
            self.admitted += 1;
            true
        } else {
            self.rejected += 1;
            false
        }
    }

    /// Returns the credit of a completed (admitted) request of the sole
    /// (or first) class.
    pub fn release(&mut self) {
        self.release_class(0);
    }

    /// Returns the credit of a completed (admitted) request of `class`.
    pub fn release_class(&mut self, class: usize) {
        debug_assert!(self.in_flight > 0, "release without matching admit");
        debug_assert!(self.class_in_flight[class] > 0, "class release mismatch");
        self.in_flight = self.in_flight.saturating_sub(1);
        self.class_in_flight[class] = self.class_in_flight[class].saturating_sub(1);
    }

    /// One AIMD control tick: `measured` is the congestion signal in the
    /// same unit as [`CreditConfig::target`]. `NaN` (no signal this
    /// window) holds the capacity.
    pub fn update(&mut self, measured: f64) {
        self.capacity = self.cfg.next_capacity(self.capacity, measured);
    }

    /// One AIMD control tick on a **normalized** congestion ratio: 1.0 is
    /// "exactly at target" (hosts derive per-tenant-class targets from
    /// their SLO bounds and feed the worst `measured/target`). `NaN`
    /// holds the capacity. Same AIMD rule as [`CreditPool::update`].
    pub fn update_ratio(&mut self, ratio: f64) {
        self.update(ratio * self.cfg.target);
    }

    /// Current capacity (total credits).
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Credits currently held by in-flight requests.
    pub fn in_flight(&self) -> u32 {
        self.in_flight
    }

    /// Credits currently held by in-flight requests of `class`.
    pub fn class_in_flight(&self, class: usize) -> u32 {
        self.class_in_flight[class]
    }

    /// Total requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Total requests shed so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Zeroes the admitted/rejected counters while keeping the converged
    /// control state (capacity, in-flight occupancy). Warm-started runs
    /// splice a fresh measurement window onto a converged pool; the
    /// counters are window statistics, the capacity is world state.
    pub fn reset_stats(&mut self) {
        self.admitted = 0;
        self.rejected = 0;
    }

    /// The configuration in force.
    pub fn config(&self) -> &CreditConfig {
        &self.cfg
    }
}

/// The lock-free sibling of [`CreditPool`] for multithreaded hosts: the
/// admit/release fast path is a CAS on one cache line, so the live
/// runtime's RX and completion paths never serialize on a lock for
/// admission. The AIMD `update` expects a **single writer** (the
/// controller core); `try_admit`/`release` may race it freely.
///
/// Semantics match [`CreditPool`] (same [`CreditConfig::next_capacity`]
/// rule, same invariants); the split exists because the discrete-event
/// simulator wants a plain `&mut` state machine and the runtime wants
/// shared atomics — not two admission policies.
#[derive(Debug)]
pub struct CreditGate {
    cfg: CreditConfig,
    capacity: std::sync::atomic::AtomicU32,
    in_flight: std::sync::atomic::AtomicU32,
    /// Per-tenant-class occupancy. The pool-wide no-over-admission
    /// invariant is exact (CAS on `in_flight`); the class counters are
    /// checked-then-incremented, so a race can transiently overshoot a
    /// class cap by the number of racing cores — fairness is advisory,
    /// admission is not.
    class_in_flight: Vec<std::sync::atomic::AtomicU32>,
    admitted: std::sync::atomic::AtomicU64,
    rejected: std::sync::atomic::AtomicU64,
}

impl CreditGate {
    /// Creates a single-class gate at [`CreditConfig::initial_credits`].
    pub fn new(cfg: CreditConfig) -> Self {
        CreditGate::with_classes(cfg, 1)
    }

    /// Creates a gate tracking `classes` tenant classes' occupancy.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0` or the config is invalid.
    pub fn with_classes(cfg: CreditConfig, classes: usize) -> Self {
        use std::sync::atomic::{AtomicU32, AtomicU64};
        cfg.validate();
        assert!(classes >= 1, "need at least one tenant class");
        CreditGate {
            capacity: AtomicU32::new(cfg.clamp(cfg.initial_credits)),
            cfg,
            in_flight: AtomicU32::new(0),
            class_in_flight: (0..classes).map(|_| AtomicU32::new(0)).collect(),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Spends a credit for an arriving request of the sole (or first)
    /// class (lock-free). `false` sheds the request (no credit held; do
    /// not call [`CreditGate::release`]).
    pub fn try_admit(&self) -> bool {
        self.try_admit_weighted(0, 1.0)
    }

    /// Spends a credit for a request of tenant `class`, capped at
    /// `fraction` of the pool (lock-free weighted fair shedding; the
    /// sibling of [`CreditPool::try_admit_weighted`], same
    /// `class_in_flight < cap_c && total < capacity` rule).
    pub fn try_admit_weighted(&self, class: usize, fraction: f64) -> bool {
        use std::sync::atomic::Ordering::{Acquire, Relaxed};
        let capacity = self.capacity.load(Acquire);
        if self.class_in_flight[class].load(Relaxed) >= self.cfg.class_cap(capacity, fraction) {
            self.rejected.fetch_add(1, Relaxed);
            return false;
        }
        let mut cur = self.in_flight.load(Relaxed);
        loop {
            if cur >= capacity {
                self.rejected.fetch_add(1, Relaxed);
                return false;
            }
            match self
                .in_flight
                .compare_exchange_weak(cur, cur + 1, Relaxed, Relaxed)
            {
                Ok(_) => {
                    self.class_in_flight[class].fetch_add(1, Relaxed);
                    self.admitted.fetch_add(1, Relaxed);
                    return true;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Returns the credit of a completed (admitted) request of the sole
    /// (or first) class.
    pub fn release(&self) {
        self.release_class(0);
    }

    /// Returns the credit of a completed (admitted) request of `class`.
    pub fn release_class(&self, class: usize) {
        use std::sync::atomic::Ordering::Relaxed;
        let prev = self.in_flight.fetch_sub(1, Relaxed);
        debug_assert!(prev > 0, "release without matching admit");
        let prev_c = self.class_in_flight[class].fetch_sub(1, Relaxed);
        debug_assert!(prev_c > 0, "class release mismatch");
    }

    /// One AIMD control tick (single writer — the controller core).
    pub fn update(&self, measured: f64) {
        use std::sync::atomic::Ordering::{Acquire, Release};
        let next = self
            .cfg
            .next_capacity(self.capacity.load(Acquire), measured);
        self.capacity.store(next, Release);
    }

    /// One AIMD control tick on a normalized congestion ratio (1.0 = at
    /// target); the lock-free sibling of [`CreditPool::update_ratio`].
    pub fn update_ratio(&self, ratio: f64) {
        self.update(ratio * self.cfg.target);
    }

    /// The credit grant a response to this client should carry
    /// (Breakwater's sender-side credit distribution, piggybacked on the
    /// reply): 2 while the pool has ample headroom (grows the client's
    /// send window), 1 at moderate occupancy (holds it — one credit spent,
    /// one returned), 0 when the pool is full (shrinks it). A client that
    /// only sends while its local balance is positive then converges to
    /// its share of the pool without a dedicated control channel.
    ///
    /// Equivalent to [`CreditGate::grant_for_response_weighted`] for the
    /// sole (or first) class at fraction 1.0.
    pub fn grant_for_response(&self) -> u32 {
        self.grant_for_response_weighted(0, 1.0)
    }

    /// The grant for a response to tenant `class` admitted at `fraction`
    /// of the pool: headroom is judged against **both** admit conditions
    /// (the class's own occupancy vs its cap, and the total vs capacity —
    /// the same pair [`CreditGate::try_admit_weighted`] sheds on), and
    /// the tighter of the two decides. Judging only the whole pool would
    /// let a capped class being shed at moderate global occupancy keep
    /// receiving growth grants, so its send window would never tighten.
    ///
    /// Grants only ride on responses, so a reject must still return the
    /// credit the sender spent on it (grant ≥ 1 at the caller): a
    /// 0-grant reject to a connection with no other requests in flight
    /// would strand its balance at zero forever, with no path to ever
    /// receive another grant. The resulting steady state for a shed
    /// sender is a flat balance — one slow retry per round trip, bounded
    /// backpressure rather than either starvation or unbounded retry.
    pub fn grant_for_response_weighted(&self, class: usize, fraction: f64) -> u32 {
        use std::sync::atomic::Ordering::{Acquire, Relaxed};
        let capacity = self.capacity.load(Acquire);
        let cap_c = self.cfg.class_cap(capacity, fraction);
        let inf_c = self.class_in_flight[class].load(Relaxed);
        let inf = self.in_flight.load(Relaxed);
        let headroom = |used: u32, cap: u32| {
            if used.saturating_mul(2) < cap {
                2
            } else if used < cap {
                1
            } else {
                0
            }
        };
        headroom(inf_c, cap_c).min(headroom(inf, capacity))
    }

    /// Current capacity (total credits).
    pub fn capacity(&self) -> u32 {
        self.capacity.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Credits currently held by in-flight requests.
    pub fn in_flight(&self) -> u32 {
        self.in_flight.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Credits currently held by in-flight requests of `class`.
    pub fn class_in_flight(&self, class: usize) -> u32 {
        self.class_in_flight[class].load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Total requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Total requests shed so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(capacity: u32) -> CreditPool {
        CreditPool::new(CreditConfig {
            min_credits: 1,
            max_credits: 1024,
            initial_credits: capacity,
            additive: 2,
            md_factor: 0.3,
            target: 100.0,
        })
    }

    #[test]
    fn admits_up_to_capacity_then_sheds() {
        let mut p = pool(3);
        assert!(p.try_admit());
        assert!(p.try_admit());
        assert!(p.try_admit());
        assert!(!p.try_admit(), "no credit left");
        assert_eq!(p.in_flight(), 3);
        assert_eq!(p.admitted(), 3);
        assert_eq!(p.rejected(), 1);
        p.release();
        assert!(p.try_admit(), "released credit is grantable again");
    }

    #[test]
    fn aimd_grows_below_target_and_shrinks_above() {
        let mut p = pool(100);
        p.update(50.0);
        assert_eq!(p.capacity(), 102, "additive increase");
        p.update(200.0); // overshoot (200-100)/100 = 1.0 → shrink by 30%.
        assert_eq!(p.capacity(), 71);
        p.update(150.0); // overshoot 0.5 → shrink by 15%.
        assert_eq!(p.capacity(), 60);
        p.update(f64::NAN);
        assert_eq!(p.capacity(), 60, "no signal holds capacity");
    }

    #[test]
    fn capacity_never_leaves_bounds() {
        let mut p = pool(4);
        for _ in 0..200 {
            p.update(1e12);
        }
        assert_eq!(p.capacity(), 1, "md floor");
        assert!(p.try_admit(), "floor keeps the pool live");
        for _ in 0..2_000 {
            p.update(0.0);
        }
        assert_eq!(p.capacity(), 1024, "ai ceiling");
    }

    #[test]
    fn gate_matches_pool_semantics() {
        // The atomic gate and the plain pool share the AIMD rule and the
        // admit/release invariants: drive both through the same script.
        let cfg = credit_cfg_for_parity();
        let mut pool = CreditPool::new(cfg);
        let gate = CreditGate::new(cfg);
        let script: &[(u8, f64)] = &[
            (0, 0.0),
            (0, 0.0),
            (0, 0.0),
            (0, 0.0),
            (2, 250.0),
            (0, 0.0),
            (1, 0.0),
            (0, 0.0),
            (2, 40.0),
            (0, 0.0),
            (2, 1e9),
            (1, 0.0),
            (1, 0.0),
            (0, 0.0),
        ];
        for &(op, arg) in script {
            match op {
                0 => assert_eq!(pool.try_admit(), gate.try_admit()),
                1 => {
                    if pool.in_flight() > 0 {
                        pool.release();
                        gate.release();
                    }
                }
                _ => {
                    pool.update(arg);
                    gate.update(arg);
                }
            }
            assert_eq!(pool.capacity(), gate.capacity());
            assert_eq!(pool.in_flight(), gate.in_flight());
            assert_eq!(pool.admitted(), gate.admitted());
            assert_eq!(pool.rejected(), gate.rejected());
        }
    }

    fn credit_cfg_for_parity() -> CreditConfig {
        CreditConfig {
            min_credits: 1,
            max_credits: 16,
            initial_credits: 3,
            additive: 1,
            md_factor: 0.3,
            target: 100.0,
        }
    }

    #[test]
    fn gate_admits_concurrently_within_capacity() {
        let gate = std::sync::Arc::new(CreditGate::new(CreditConfig {
            min_credits: 1,
            max_credits: 64,
            initial_credits: 64,
            additive: 1,
            md_factor: 0.3,
            target: 100.0,
        }));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let g = std::sync::Arc::clone(&gate);
                std::thread::spawn(move || {
                    let mut mine = 0u32;
                    for _ in 0..1_000 {
                        if g.try_admit() {
                            mine += 1;
                            if mine.is_multiple_of(2) {
                                g.release();
                            }
                        }
                    }
                    // Release what we still hold.
                    for _ in 0..mine.div_ceil(2) {
                        g.release();
                    }
                    mine
                })
            })
            .collect();
        let total: u32 = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(gate.in_flight(), 0);
        assert_eq!(gate.admitted(), total as u64);
        assert!(gate.admitted() + gate.rejected() == 4_000);
    }

    #[test]
    fn weighted_admission_caps_loose_classes_first() {
        // Pool of 10, two classes (0 strict at 1.0, 1 loose at 0.5): the
        // loose class sheds once *its own* occupancy reaches 5, while the
        // strict class keeps admitting to the pool bound.
        let mut p = CreditPool::with_classes(pool(10).cfg, 2);
        for _ in 0..5 {
            assert!(p.try_admit_weighted(1, 0.5));
        }
        assert!(!p.try_admit_weighted(1, 0.5), "loose class at its cap");
        for _ in 0..5 {
            assert!(p.try_admit_weighted(0, 1.0), "strict class unaffected");
        }
        assert!(!p.try_admit_weighted(0, 1.0), "pool exhausted");
        assert_eq!(p.class_in_flight(0), 5);
        assert_eq!(p.class_in_flight(1), 5);
        // The cap floor of 1: a capped class can admit from an empty pool
        // even after the AIMD shrinks capacity to the minimum.
        for _ in 0..5 {
            p.release_class(0);
            p.release_class(1);
        }
        for _ in 0..50 {
            p.update(1e9);
        }
        assert_eq!(p.capacity(), 1);
        assert!(
            p.try_admit_weighted(1, 0.1),
            "empty pool admits any class at the floor"
        );
    }

    #[test]
    fn strict_saturation_leaves_the_loose_class_a_floor() {
        // The PR-4 occupancy rule: a strict tenant pinning the pool at
        // high occupancy no longer starves an idle loose class. Strict
        // fills 8 of 10 credits; the old global-occupancy rule shed every
        // loose request past occupancy 5, the per-class rule admits them
        // (loose occupancy 0 < 5) until the *pool* is full.
        let mut p = CreditPool::with_classes(pool(10).cfg, 2);
        for _ in 0..8 {
            assert!(p.try_admit_weighted(0, 1.0));
        }
        assert!(
            p.try_admit_weighted(1, 0.5),
            "loose class keeps its floor under strict pressure"
        );
        assert!(p.try_admit_weighted(1, 0.5), "up to the pool bound");
        assert!(!p.try_admit_weighted(1, 0.5), "pool full");
        assert!(!p.try_admit_weighted(0, 1.0), "strict sheds at full too");
        assert_eq!(p.class_in_flight(1), 2);
        // Strict completions free slots the loose class can take, up to
        // its own cap of 5.
        for _ in 0..4 {
            p.release_class(0);
        }
        for _ in 0..3 {
            assert!(p.try_admit_weighted(1, 0.5));
        }
        assert!(!p.try_admit_weighted(1, 0.5), "loose cap (5) binds now");
    }

    #[test]
    fn gate_weighted_admission_matches_pool() {
        let cfg = credit_cfg_for_parity();
        let mut pool = CreditPool::with_classes(cfg, 2);
        let gate = CreditGate::with_classes(cfg, 2);
        for &(c, f) in &[
            (0, 1.0),
            (1, 0.5),
            (1, 0.5),
            (1, 0.34),
            (0, 1.0),
            (1, 0.5),
            (1, 0.1),
            (0, 1.0),
        ] {
            assert_eq!(pool.try_admit_weighted(c, f), gate.try_admit_weighted(c, f));
            assert_eq!(pool.in_flight(), gate.in_flight());
            assert_eq!(pool.class_in_flight(c), gate.class_in_flight(c));
            assert_eq!(pool.rejected(), gate.rejected());
        }
    }

    #[test]
    fn ratio_update_matches_normalized_raw_update() {
        // update_ratio(r) must equal update(r × target) for any target.
        let mut a = pool(100);
        let mut b = pool(100);
        for &r in &[0.5, 2.0, 1.0, 0.1, 3.5, f64::NAN, 0.9] {
            a.update_ratio(r);
            b.update(r * b.config().target);
            assert_eq!(a.capacity(), b.capacity());
        }
        let gate = CreditGate::new(*a.config());
        gate.update_ratio(2.0);
        let mut c = pool(100);
        c.update_ratio(2.0);
        assert_eq!(gate.capacity(), c.capacity());
    }

    #[test]
    fn response_grant_tracks_pool_headroom() {
        let gate = CreditGate::new(CreditConfig {
            min_credits: 1,
            max_credits: 64,
            initial_credits: 8,
            additive: 1,
            md_factor: 0.3,
            target: 100.0,
        });
        assert_eq!(gate.grant_for_response(), 2, "empty pool grows clients");
        for _ in 0..4 {
            assert!(gate.try_admit());
        }
        assert_eq!(gate.grant_for_response(), 1, "half-full holds");
        for _ in 0..4 {
            assert!(gate.try_admit());
        }
        assert_eq!(gate.grant_for_response(), 0, "full pool revokes");
    }

    #[test]
    fn shrink_below_in_flight_stops_admission_until_drain() {
        let mut p = pool(10);
        for _ in 0..10 {
            assert!(p.try_admit());
        }
        for _ in 0..20 {
            p.update(1e9);
        }
        assert_eq!(p.capacity(), 1);
        assert!(!p.try_admit(), "over-committed pool admits nothing");
        for _ in 0..10 {
            p.release();
        }
        assert!(p.try_admit(), "drained pool admits again");
    }
}
