//! The preemptive-quantum policy.
//!
//! ZygOS's shuffle layer removes head-of-line blocking *between*
//! connections on the same core, but a single long request still owns its
//! core run-to-completion: under the paper's bimodal-2 distribution
//! (0.1% × 500·S̄) a handful of requests can occupy most cores at once and
//! every short request queued meanwhile eats the full residual service
//! time. A preemptive quantum (Shinjuku's insight, at microsecond scale)
//! bounds that residual: after `quantum` of application execution the core
//! takes a timer interrupt, requeues the remainder of the request, and
//! returns to the scheduling loop where short requests win.
//!
//! This module is the pure policy: given a chunk of work, decide whether
//! and where to slice it. The simulator charges the interrupt cost from its
//! calibrated cost model; the live runtime applies the cooperative
//! analogue (bounded per-connection event batches) since user-space Rust
//! cannot interrupt a handler.

/// A time-slice policy over nanosecond work chunks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuantumPolicy {
    /// Slice length in nanoseconds; `0` disables preemption.
    quantum_ns: u64,
}

/// How much of a chunk to run now, and what remains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slice {
    /// Nanoseconds to execute before the preemption point.
    pub run_ns: u64,
    /// Nanoseconds requeued for a later slice (always > 0).
    pub remaining_ns: u64,
}

impl QuantumPolicy {
    /// Run-to-completion (no preemption).
    pub const fn disabled() -> Self {
        QuantumPolicy { quantum_ns: 0 }
    }

    /// A quantum of `us` microseconds; non-positive disables preemption.
    pub fn from_us(us: f64) -> Self {
        if !us.is_finite() || us <= 0.0 {
            return QuantumPolicy::disabled();
        }
        QuantumPolicy {
            quantum_ns: (us * 1_000.0).round() as u64,
        }
    }

    /// True when preemption is in force.
    pub fn is_enabled(&self) -> bool {
        self.quantum_ns > 0
    }

    /// The quantum in nanoseconds (0 when disabled).
    pub fn quantum_ns(&self) -> u64 {
        self.quantum_ns
    }

    /// Decides whether to slice a `chunk_ns` chunk of application work.
    ///
    /// Returns `None` to run to completion. A chunk is only sliced when it
    /// overshoots the quantum by more than 25%: preempting to reclaim a few
    /// nanoseconds costs a full interrupt + re-dispatch, so near-quantum
    /// chunks run through (the same guard a real timer tick's granularity
    /// imposes).
    pub fn slice(&self, chunk_ns: u64) -> Option<Slice> {
        if self.quantum_ns == 0 || chunk_ns <= self.quantum_ns + self.quantum_ns / 4 {
            return None;
        }
        Some(Slice {
            run_ns: self.quantum_ns,
            remaining_ns: chunk_ns - self.quantum_ns,
        })
    }
}

impl Default for QuantumPolicy {
    fn default() -> Self {
        QuantumPolicy::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_slices() {
        let q = QuantumPolicy::disabled();
        assert!(!q.is_enabled());
        assert_eq!(q.slice(u64::MAX), None);
        assert_eq!(QuantumPolicy::from_us(0.0), QuantumPolicy::disabled());
        assert_eq!(QuantumPolicy::from_us(-1.0), QuantumPolicy::disabled());
    }

    #[test]
    fn short_chunks_run_through() {
        let q = QuantumPolicy::from_us(5.0);
        assert_eq!(q.slice(4_000), None);
        assert_eq!(q.slice(5_000), None);
        // Within the 25% slack: not worth an interrupt.
        assert_eq!(q.slice(6_000), None);
    }

    #[test]
    fn long_chunks_are_sliced_at_the_quantum() {
        let q = QuantumPolicy::from_us(5.0);
        let s = q.slice(500_000).expect("slice");
        assert_eq!(s.run_ns, 5_000);
        assert_eq!(s.remaining_ns, 495_000);
        assert_eq!(s.run_ns + s.remaining_ns, 500_000);
    }

    #[test]
    fn repeated_slicing_terminates() {
        let q = QuantumPolicy::from_us(5.0);
        let mut remaining = 500_000u64;
        let mut slices = 0;
        while let Some(s) = q.slice(remaining) {
            remaining = s.remaining_ns;
            slices += 1;
            assert!(slices <= 100, "runaway slicing");
        }
        assert!(remaining > 0 && remaining <= 6_250);
        assert_eq!(slices, 99);
    }
}
