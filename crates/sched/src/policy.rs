//! The unified policy plane: dispatch and allocation as traits.
//!
//! Before this module existed, dispatch/allocation decisions were written
//! three times — once per `zygos-sysim` system model, once in the live
//! runtime's worker loop, and once in this crate's allocator — so every
//! policy change had to be implemented in triplicate. The two traits here
//! are the single home of those decisions:
//!
//! * [`DispatchPolicy`] — *which queue does a core serve next?* Expressed
//!   as an ordered **ladder** of [`Rung`]s over an abstract per-core queue
//!   view (remote syscalls, background/preempted work, local ready
//!   connections, the NIC ring, steal targets, IPI scans), plus the
//!   preemption (`slice`) and background-ordering decisions. Hosts own the
//!   *mechanisms* (rings, shuffle queues, doorbells); the policy owns the
//!   *order* and the steal/preempt choices.
//! * [`AllocPolicy`] — *how many cores should be granted?* One
//!   [`PolicySignal`] per control tick in, one [`Decision`] out. The
//!   utilization rule ([`UtilizationPolicy`], wrapping [`CoreAllocator`])
//!   and the SLO-margin rule ([`crate::SloController`]) are both
//!   implementations, so the simulator's `Control` event and the live
//!   runtime's worker-0 controller drive exactly the same objects.
//!
//! The concrete dispatch policies:
//!
//! * [`FcfsPolicy`] — single-queue FCFS (the Linux baselines and the
//!   runtime's floating mode): the ladder is just "serve the ready queue"
//!   (preceded by network ingress where the host has one).
//! * [`RtcPolicy`] — shared-nothing run-to-completion (IX): serve the own
//!   NIC ring, never steal.
//! * [`ZygosPolicy`] — the paper's priority loop, parameterized by the
//!   steal/IPI ablation knobs, the preemptive quantum and the background
//!   queue order ([`BackgroundOrder`]).

use crate::alloc::{CoreAllocator, Decision, LoadSignal};
use crate::quantum::{QuantumPolicy, Slice};

/// One rung of a dispatch ladder: a class of work a core can serve.
///
/// Hosts map each rung onto their concrete mechanism and try the rungs in
/// ladder order, taking the first that yields work. A host without the
/// mechanism for a rung (e.g. the live runtime has no preempted-remainder
/// queue) simply skips it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rung {
    /// Pending remote syscalls (responses of stolen executions) — they
    /// hold finished work, so they outrank everything.
    RemoteSyscalls,
    /// Background (preempted) entries past the aging bound: overdue work
    /// promoted ahead of fresh work (starvation avoidance).
    AgedBackground,
    /// The core's own ready queue (shuffle queue / FCFS queue).
    LocalReady,
    /// The core's own NIC ring: run the network stack over a batch.
    LocalNet,
    /// Steal a ready connection from another core.
    StealReady,
    /// The core's own background (preempted) queue.
    LocalBackground,
    /// Steal a background entry from another core.
    StealBackground,
    /// Scan remote NIC rings and IPI home cores stuck in application code.
    IpiScan,
}

/// Ordering discipline of the background (preempted) queue.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackgroundOrder {
    /// First-come-first-served (arrival order of the preemptions).
    #[default]
    Fcfs,
    /// Shortest-remaining-processing-time: the remainder with the least
    /// service time left runs first. Preempted requests carry their
    /// remaining-time stamps, so SRPT is free to compute and optimal for
    /// mean sojourn of the known-long class.
    Srpt,
}

/// The dispatch-policy trait: the decision half of a core's scheduling
/// loop, shared verbatim by the simulator and the live runtime.
pub trait DispatchPolicy: Send + Sync {
    /// The priority ladder, highest first. Hosts try each rung in order.
    fn ladder(&self) -> &[Rung];

    /// Whether this core may execute the steal rungs right now.
    /// `core_active` is the host's grant state (always `true` for
    /// statically provisioned hosts).
    fn may_steal(&self, core_active: bool) -> bool;

    /// Whether steal sweeps visit victims in randomized order.
    fn randomize_victims(&self) -> bool {
        true
    }

    /// Preempt-victim decision: whether (and where) to slice an
    /// application chunk of `chunk_ns`. `None` runs it to completion.
    fn slice(&self, chunk_ns: u64) -> Option<Slice> {
        let _ = chunk_ns;
        None
    }

    /// Ordering of the background (preempted) queue.
    fn background_order(&self) -> BackgroundOrder {
        BackgroundOrder::Fcfs
    }

    /// Age (ns) after which a background entry outranks fresh work.
    /// `u64::MAX` disables aging.
    fn background_aging_ns(&self) -> u64 {
        u64::MAX
    }
}

/// Single-queue FCFS dispatch (Linux baselines; floating runtime mode).
///
/// The ladder serves network ingress first (where the host separates it)
/// and then the ready queue; there is no stealing — rebalancing, if any,
/// comes from the queue being shared.
#[derive(Clone, Copy, Debug, Default)]
pub struct FcfsPolicy;

const FCFS_LADDER: [Rung; 2] = [Rung::LocalNet, Rung::LocalReady];

impl DispatchPolicy for FcfsPolicy {
    fn ladder(&self) -> &[Rung] {
        &FCFS_LADDER
    }

    fn may_steal(&self, _core_active: bool) -> bool {
        false
    }
}

/// Shared-nothing run-to-completion dispatch (IX).
#[derive(Clone, Copy, Debug, Default)]
pub struct RtcPolicy;

const RTC_LADDER: [Rung; 1] = [Rung::LocalNet];

impl DispatchPolicy for RtcPolicy {
    fn ladder(&self) -> &[Rung] {
        &RTC_LADDER
    }

    fn may_steal(&self, _core_active: bool) -> bool {
        false
    }
}

/// The ZygOS priority loop as a policy: remote syscalls, then (aged
/// background), own shuffle queue, own NIC ring, steal, (background),
/// IPI scan — §4–§5 of the paper plus the PR-1 elastic extensions.
#[derive(Clone, Debug)]
pub struct ZygosPolicy {
    ladder: Vec<Rung>,
    steal: bool,
    randomize: bool,
    quantum: QuantumPolicy,
    bg_order: BackgroundOrder,
    aging_ns: u64,
}

impl ZygosPolicy {
    /// Background-queue aging bound, in preemption quanta: a preempted
    /// connection waits at most this many quanta before it outranks fresh
    /// work (multilevel-feedback starvation avoidance).
    pub const BG_AGING_QUANTA: u64 = 20;

    /// Builds the policy. `steal` gates the steal rungs, `ipis` the IPI
    /// scan (the paper's two ablation knobs); a nonzero `quantum` arms
    /// preemption and with it the background rungs, ordered by `bg_order`.
    pub fn new(steal: bool, ipis: bool, quantum: QuantumPolicy, bg_order: BackgroundOrder) -> Self {
        let preempt = quantum.is_enabled();
        let mut ladder = vec![Rung::RemoteSyscalls];
        if preempt {
            ladder.push(Rung::AgedBackground);
        }
        ladder.push(Rung::LocalReady);
        ladder.push(Rung::LocalNet);
        if steal {
            ladder.push(Rung::StealReady);
        }
        if preempt {
            ladder.push(Rung::LocalBackground);
            if steal {
                ladder.push(Rung::StealBackground);
            }
        }
        if ipis {
            ladder.push(Rung::IpiScan);
        }
        let aging_ns = if preempt {
            quantum.quantum_ns().saturating_mul(Self::BG_AGING_QUANTA)
        } else {
            u64::MAX
        };
        ZygosPolicy {
            ladder,
            steal,
            randomize: true,
            quantum,
            bg_order,
            aging_ns,
        }
    }

    /// Disables victim-order randomization (the `ablation_steal_ipi`
    /// knob: scan victims in core order instead).
    pub fn with_randomized_victims(mut self, randomize: bool) -> Self {
        self.randomize = randomize;
        self
    }

    /// The quantum policy in force.
    pub fn quantum(&self) -> QuantumPolicy {
        self.quantum
    }
}

impl DispatchPolicy for ZygosPolicy {
    fn ladder(&self) -> &[Rung] {
        &self.ladder
    }

    fn may_steal(&self, core_active: bool) -> bool {
        self.steal && core_active
    }

    fn randomize_victims(&self) -> bool {
        self.randomize
    }

    fn slice(&self, chunk_ns: u64) -> Option<Slice> {
        self.quantum.slice(chunk_ns)
    }

    fn background_order(&self) -> BackgroundOrder {
        self.bg_order
    }

    fn background_aging_ns(&self) -> u64 {
        self.aging_ns
    }
}

/// The three built-in dispatch policies as one enum: hosts that pick a
/// policy at configuration time hold this instead of a
/// `Box<dyn DispatchPolicy>`, so the per-dispatch ladder walk is a match
/// over three inlinable arms rather than a virtual call per decision.
/// (The trait stays — custom policies still box; the built-ins no longer
/// pay for that generality on the hot path.)
#[derive(Clone, Debug)]
pub enum BuiltinDispatch {
    /// The ZygOS priority loop ([`ZygosPolicy`]).
    Zygos(ZygosPolicy),
    /// Shared-nothing run-to-completion ([`RtcPolicy`]).
    Rtc(RtcPolicy),
    /// Single-queue FCFS ([`FcfsPolicy`]).
    Fcfs(FcfsPolicy),
}

impl DispatchPolicy for BuiltinDispatch {
    fn ladder(&self) -> &[Rung] {
        match self {
            BuiltinDispatch::Zygos(p) => p.ladder(),
            BuiltinDispatch::Rtc(p) => p.ladder(),
            BuiltinDispatch::Fcfs(p) => p.ladder(),
        }
    }

    fn may_steal(&self, core_active: bool) -> bool {
        match self {
            BuiltinDispatch::Zygos(p) => p.may_steal(core_active),
            BuiltinDispatch::Rtc(p) => p.may_steal(core_active),
            BuiltinDispatch::Fcfs(p) => p.may_steal(core_active),
        }
    }

    fn randomize_victims(&self) -> bool {
        match self {
            BuiltinDispatch::Zygos(p) => p.randomize_victims(),
            BuiltinDispatch::Rtc(p) => p.randomize_victims(),
            BuiltinDispatch::Fcfs(p) => p.randomize_victims(),
        }
    }

    fn slice(&self, chunk_ns: u64) -> Option<Slice> {
        match self {
            BuiltinDispatch::Zygos(p) => p.slice(chunk_ns),
            BuiltinDispatch::Rtc(p) => p.slice(chunk_ns),
            BuiltinDispatch::Fcfs(p) => p.slice(chunk_ns),
        }
    }

    fn background_order(&self) -> BackgroundOrder {
        match self {
            BuiltinDispatch::Zygos(p) => p.background_order(),
            BuiltinDispatch::Rtc(p) => p.background_order(),
            BuiltinDispatch::Fcfs(p) => p.background_order(),
        }
    }

    fn background_aging_ns(&self) -> u64 {
        match self {
            BuiltinDispatch::Zygos(p) => p.background_aging_ns(),
            BuiltinDispatch::Rtc(p) => p.background_aging_ns(),
            BuiltinDispatch::Fcfs(p) => p.background_aging_ns(),
        }
    }
}

/// One control tick's observation of the data plane, as consumed by an
/// [`AllocPolicy`]. Extends the utilization-rule [`LoadSignal`] with the
/// measured tail-latency margin the SLO-driven policy staffs on.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PolicySignal {
    /// Cores executing foreground work, time-averaged since the previous
    /// tick.
    pub busy_cores: f64,
    /// Items queued and not yet in execution at tick time.
    pub backlog: usize,
    /// Worst tail-latency-to-SLO ratio over the last window: the maximum
    /// across tenant SLO classes of `quantile(percentile) / bound`.
    /// `> 1` means the SLO is violated; `None` when no SLO is configured
    /// or the window had too few completions to measure.
    pub slo_ratio: Option<f64>,
}

impl PolicySignal {
    /// The utilization-rule view of this signal.
    pub fn load(&self) -> LoadSignal {
        LoadSignal {
            busy_cores: self.busy_cores,
            backlog: self.backlog,
        }
    }
}

/// The allocation-policy trait: one observation per control tick in, one
/// staffing decision out. Implementations keep their own `active` count;
/// hosts apply the returned [`Decision`] to the data plane.
pub trait AllocPolicy: Send {
    /// Feeds one control-tick observation; the decision has already been
    /// applied to [`AllocPolicy::active`].
    fn observe(&mut self, sig: &PolicySignal) -> Decision;

    /// Currently granted cores.
    fn active(&self) -> usize;

    /// One-line state description for trace output.
    fn describe(&self) -> String;

    /// Snapshots the policy, including its learned state (EWMAs,
    /// hysteresis counters, granted count). Part of the deterministic-
    /// checkpoint contract: the clone must make the identical decisions
    /// its original would, given the identical observation stream.
    fn clone_box(&self) -> Box<dyn AllocPolicy>;
}

impl Clone for Box<dyn AllocPolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The PR-1 utilization rule (`util + β·√util` square-root staffing with
/// hysteresis) as an [`AllocPolicy`]: a thin wrapper over
/// [`CoreAllocator`] that ignores the SLO signal.
#[derive(Clone, Debug)]
pub struct UtilizationPolicy {
    inner: CoreAllocator,
}

impl UtilizationPolicy {
    /// Wraps an allocator.
    pub fn new(inner: CoreAllocator) -> Self {
        UtilizationPolicy { inner }
    }

    /// The wrapped allocator.
    pub fn allocator(&self) -> &CoreAllocator {
        &self.inner
    }
}

impl AllocPolicy for UtilizationPolicy {
    fn observe(&mut self, sig: &PolicySignal) -> Decision {
        self.inner.observe(sig.load())
    }

    fn active(&self) -> usize {
        self.inner.active()
    }

    fn describe(&self) -> String {
        format!(
            "util~{:.2} press~{:.2}",
            self.inner.util_ewma(),
            self.inner.press_ewma()
        )
    }

    fn clone_box(&self) -> Box<dyn AllocPolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::AllocatorConfig;

    #[test]
    fn fcfs_and_rtc_never_steal() {
        assert!(!FcfsPolicy.may_steal(true));
        assert!(!RtcPolicy.may_steal(true));
        assert_eq!(FcfsPolicy.ladder(), &[Rung::LocalNet, Rung::LocalReady]);
        assert_eq!(RtcPolicy.ladder(), &[Rung::LocalNet]);
        assert_eq!(FcfsPolicy.slice(u64::MAX), None);
        assert_eq!(FcfsPolicy.background_aging_ns(), u64::MAX);
    }

    #[test]
    fn zygos_ladder_reflects_knobs() {
        let full = ZygosPolicy::new(
            true,
            true,
            QuantumPolicy::from_us(25.0),
            BackgroundOrder::Fcfs,
        );
        assert_eq!(
            full.ladder(),
            &[
                Rung::RemoteSyscalls,
                Rung::AgedBackground,
                Rung::LocalReady,
                Rung::LocalNet,
                Rung::StealReady,
                Rung::LocalBackground,
                Rung::StealBackground,
                Rung::IpiScan,
            ]
        );
        assert!(full.may_steal(true));
        assert!(!full.may_steal(false), "parked cores must not steal");
        assert!(full.slice(500_000).is_some());
        assert_eq!(full.background_aging_ns(), 25_000 * 20);

        let coop = ZygosPolicy::new(
            true,
            false,
            QuantumPolicy::disabled(),
            BackgroundOrder::Fcfs,
        );
        assert_eq!(
            coop.ladder(),
            &[
                Rung::RemoteSyscalls,
                Rung::LocalReady,
                Rung::LocalNet,
                Rung::StealReady,
            ]
        );
        assert_eq!(coop.slice(u64::MAX), None);

        let partitioned = ZygosPolicy::new(
            false,
            false,
            QuantumPolicy::disabled(),
            BackgroundOrder::Fcfs,
        );
        assert!(!partitioned.may_steal(true));
        assert!(!partitioned.ladder().contains(&Rung::StealReady));
    }

    #[test]
    fn utilization_policy_delegates() {
        let mut p = UtilizationPolicy::new(CoreAllocator::new(AllocatorConfig::paper(16)));
        assert_eq!(p.active(), 16);
        for _ in 0..200 {
            p.observe(&PolicySignal {
                busy_cores: 0.0,
                backlog: 0,
                slo_ratio: None,
            });
        }
        assert_eq!(p.active(), 2, "idle shrinks to the floor");
        assert!(p.describe().contains("util"));
    }
}
