//! The active-core gate for the live runtime.
//!
//! The simulator can park a virtual core outright; a runtime worker thread
//! can only be throttled cooperatively. [`ElasticGate`] publishes the
//! allocator's granted-core count through one atomic: workers with index
//! `>= active()` are *parked* — they keep serving their home duties (their
//! ingress ring must drain somewhere, since RSS cannot be reprogrammed on
//! the loopback port) but stop stealing and sleep for much longer when
//! idle, which is what frees the CPU on an oversubscribed host.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Lock-free published core allocation for worker threads.
#[derive(Debug)]
pub struct ElasticGate {
    active: AtomicUsize,
    min: usize,
    max: usize,
}

impl ElasticGate {
    /// Creates a gate over `max` workers with a floor of `min`, starting
    /// fully granted.
    ///
    /// # Panics
    ///
    /// Panics if `min` is zero or exceeds `max`.
    pub fn new(min: usize, max: usize) -> Self {
        assert!(min >= 1 && min <= max, "bad gate bounds {min}..{max}");
        ElasticGate {
            active: AtomicUsize::new(max),
            min,
            max,
        }
    }

    /// Currently granted workers.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Publishes a new allocation, clamped to `[min, max]`.
    pub fn set_active(&self, n: usize) {
        self.active
            .store(n.clamp(self.min, self.max), Ordering::Release);
    }

    /// True when worker `core` is granted.
    pub fn is_active(&self, core: usize) -> bool {
        core < self.active()
    }

    /// The gate's bounds.
    pub fn bounds(&self) -> (usize, usize) {
        (self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_clamps_and_publishes() {
        let g = ElasticGate::new(2, 8);
        assert_eq!(g.active(), 8);
        g.set_active(0);
        assert_eq!(g.active(), 2, "clamped to the floor");
        g.set_active(100);
        assert_eq!(g.active(), 8, "clamped to the ceiling");
        g.set_active(5);
        assert!(g.is_active(4));
        assert!(!g.is_active(5));
        assert_eq!(g.bounds(), (2, 8));
    }
}
