//! The elastic core allocator.
//!
//! A periodic controller observes one [`LoadSignal`] per control tick and
//! decides whether to grant cores to, or revoke cores from, the data plane.
//! The decision rule is deliberately simple — demand estimation plus
//! hysteresis — because the hard part of core reallocation is *stability*:
//! a controller that flaps between core counts pays the reconfiguration
//! cost (queue migration, cache refill, RSS reprogramming) on every
//! oscillation of a bursty arrival process.
//!
//! Demand is estimated as `busy_cores + backlog`: every queued item wants a
//! core-slot in addition to the ones currently occupied. Three knobs damp
//! the response:
//!
//! * [`AllocatorTuning::grant_after`] consecutive overloaded ticks are
//!   required before granting (absorbs one-tick bursts);
//! * [`AllocatorTuning::revoke_after`] consecutive underloaded ticks are
//!   required before revoking (parking is much cheaper to delay than
//!   queueing is to suffer, so the revoke side is slower by default);
//! * after any change, [`AllocatorTuning::cooldown`] ticks must pass before
//!   the counters accumulate again.
//!
//! Together these give the bound checked by the property tests: the number
//! of allocation changes over `T` ticks is at most
//! `T / (cooldown + min(grant_after, revoke_after)) + 1`.

/// Decision-rule knobs shared by every host of the allocator (the
/// simulator's `ElasticKnobs` and the live runtime embed this whole,
/// rather than re-declaring the fields).
#[derive(Clone, Copy, Debug)]
pub struct AllocatorTuning {
    /// Consecutive overloaded ticks required before a grant.
    pub grant_after: u32,
    /// Consecutive underloaded ticks required before a revoke.
    pub revoke_after: u32,
    /// Ticks after any change during which no further change is considered.
    pub cooldown: u32,
    /// Utilization floor: a tick is "underloaded" when the *smoothed*
    /// utilization is below `revoke_util × active`.
    pub revoke_util: f64,
    /// Square-root staffing coefficient for the revoke target:
    /// `ceil(util + staffing_beta·√util)` cores are kept when shrinking
    /// (Erlang-C's rule of thumb). Linear headroom (`util × k`) is the
    /// obvious alternative and was tried first: it drives the plane to
    /// ~80% utilization where µs-scale p99 explodes, backlog spikes, and
    /// the controller oscillates between grant and revoke.
    pub staffing_beta: f64,
    /// EWMA coefficient for the smoothed signals
    /// (`ewma ← α·sample + (1−α)·ewma`). Granting reacts to queue
    /// pressure quickly — queueing hurts immediately — while revoking
    /// consults smoothed utilization so one quiet tick amid bursts cannot
    /// start shedding cores, and one busy tick cannot keep resetting the
    /// relief counter.
    pub demand_alpha: f64,
}

impl Default for AllocatorTuning {
    /// Grant fast (2 ticks), revoke slow (10 ticks), 5-tick cooldown,
    /// √-staffing β = 2.
    fn default() -> Self {
        AllocatorTuning {
            grant_after: 2,
            revoke_after: 10,
            cooldown: 5,
            revoke_util: 0.6,
            staffing_beta: 2.0,
            demand_alpha: 0.25,
        }
    }
}

/// Full configuration of the [`CoreAllocator`]: the core-count bounds plus
/// the shared [`AllocatorTuning`].
#[derive(Clone, Copy, Debug)]
pub struct AllocatorConfig {
    /// Lower bound on granted cores (never park below this).
    pub min_cores: usize,
    /// Upper bound on granted cores (the machine size).
    pub max_cores: usize,
    /// Decision-rule knobs.
    pub tuning: AllocatorTuning,
}

impl AllocatorConfig {
    /// Defaults matching the paper testbed: `max_cores` granted, a floor
    /// of 2, [`AllocatorTuning::default`].
    pub fn paper(max_cores: usize) -> Self {
        AllocatorConfig {
            min_cores: 2.min(max_cores),
            max_cores,
            tuning: AllocatorTuning::default(),
        }
    }

    fn validate(&self) {
        assert!(self.min_cores >= 1, "need at least one core");
        assert!(self.min_cores <= self.max_cores, "min_cores > max_cores");
        let t = &self.tuning;
        assert!(t.revoke_util > 0.0 && t.revoke_util < 1.0);
        assert!(t.staffing_beta >= 0.0);
        assert!(t.demand_alpha > 0.0 && t.demand_alpha <= 1.0);
    }
}

/// One control tick's observation of the data plane.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LoadSignal {
    /// Cores executing work, time-averaged since the previous tick (an
    /// instantaneous count also works, at the cost of a noisier estimate).
    pub busy_cores: f64,
    /// Items queued and not yet in execution (NIC rings + shuffle queues)
    /// at tick time.
    pub backlog: usize,
}

/// The allocator's verdict for one tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Grant this many additional cores.
    Grant(usize),
    /// Revoke (park) this many cores.
    Revoke(usize),
    /// No change.
    Hold,
}

/// The elastic core allocator (see module docs for the decision rule).
#[derive(Clone, Debug)]
pub struct CoreAllocator {
    cfg: AllocatorConfig,
    active: usize,
    /// Consecutive overloaded ticks observed.
    pressure: u32,
    /// Consecutive underloaded ticks observed.
    relief: u32,
    /// Remaining cooldown ticks after the last change.
    cooldown_left: u32,
    /// Smoothed utilization (busy cores).
    util_ewma: f64,
    /// Smoothed queue pressure (backlog items).
    press_ewma: f64,
    grants: u64,
    revokes: u64,
}

impl CoreAllocator {
    /// Creates an allocator with all `max_cores` granted (the static
    /// provisioning it relaxes from).
    pub fn new(cfg: AllocatorConfig) -> Self {
        cfg.validate();
        CoreAllocator {
            active: cfg.max_cores,
            util_ewma: cfg.max_cores as f64,
            press_ewma: 0.0,
            cfg,
            pressure: 0,
            relief: 0,
            cooldown_left: 0,
            grants: 0,
            revokes: 0,
        }
    }

    /// The smoothed utilization estimate (busy cores).
    pub fn util_ewma(&self) -> f64 {
        self.util_ewma
    }

    /// The smoothed queue-pressure estimate (backlog items).
    pub fn press_ewma(&self) -> f64 {
        self.press_ewma
    }

    /// Currently granted cores.
    pub fn active(&self) -> usize {
        self.active
    }

    /// Currently parked cores.
    pub fn parked(&self) -> usize {
        self.cfg.max_cores - self.active
    }

    /// Total grant decisions so far.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Total revoke decisions so far.
    pub fn revokes(&self) -> u64 {
        self.revokes
    }

    /// The configuration in force.
    pub fn config(&self) -> &AllocatorConfig {
        &self.cfg
    }

    /// Feeds one control-tick observation and returns the decision, which
    /// has already been applied to [`CoreAllocator::active`].
    ///
    /// A tick is **overloaded** when the smoothed backlog exceeds the
    /// granted core count, or utilization saturates the grant with queued
    /// work behind it; it is **underloaded** when smoothed utilization sits
    /// below the `revoke_util` floor and the backlog is modest. Grants add
    /// cores proportional to queue pressure (one step reaches `max_cores`
    /// under a saturating backlog); revokes shrink to utilization times
    /// `staffing_beta` (square-root staffing).
    pub fn observe(&mut self, sig: LoadSignal) -> Decision {
        let a = self.cfg.tuning.demand_alpha;
        self.util_ewma += a * (sig.busy_cores - self.util_ewma);
        self.press_ewma += a * (sig.backlog as f64 - self.press_ewma);
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            return Decision::Hold;
        }
        let active_f = self.active as f64;
        let overloaded = self.active < self.cfg.max_cores
            && (self.press_ewma > active_f
                || (self.util_ewma >= 0.95 * active_f && self.press_ewma >= 1.0));
        let underloaded = self.active > self.cfg.min_cores
            && self.util_ewma < self.cfg.tuning.revoke_util * active_f
            && self.press_ewma <= active_f;

        self.pressure = if overloaded { self.pressure + 1 } else { 0 };
        self.relief = if underloaded { self.relief + 1 } else { 0 };

        if self.pressure >= self.cfg.tuning.grant_after {
            let step = (self.press_ewma / active_f).ceil() as usize;
            let target = (self.active + step.max(1)).min(self.cfg.max_cores);
            let k = target - self.active;
            self.active = target;
            self.changed();
            self.grants += 1;
            return Decision::Grant(k);
        }
        if self.relief >= self.cfg.tuning.revoke_after {
            let wanted = (self.util_ewma + self.cfg.tuning.staffing_beta * self.util_ewma.sqrt())
                .ceil() as usize;
            let target = wanted.clamp(self.cfg.min_cores, self.active);
            if target < self.active {
                let k = self.active - target;
                self.active = target;
                self.changed();
                self.revokes += 1;
                return Decision::Revoke(k);
            }
            self.relief = 0;
        }
        Decision::Hold
    }

    /// Forces the grant to `target` (clamped to the configured bounds),
    /// resetting the hysteresis counters and arming the cooldown exactly as
    /// an organic decision would. This is the hook a wrapping policy (e.g.
    /// the SLO controller) uses to override or undo a decision while
    /// keeping the combined controller inside the reallocation-frequency
    /// bound.
    pub fn force_active(&mut self, target: usize) {
        self.active = target.clamp(self.cfg.min_cores, self.cfg.max_cores);
        self.changed();
    }

    fn changed(&mut self) {
        self.pressure = 0;
        self.relief = 0;
        self.cooldown_left = self.cfg.tuning.cooldown;
    }
}

/// Integrates granted-core count over time, making core-seconds-used a
/// first-class experiment output.
#[derive(Clone, Copy, Debug)]
pub struct CoreSecondsMeter {
    last_ns: u64,
    active: usize,
    integral_core_ns: u128,
}

impl CoreSecondsMeter {
    /// Starts metering at `now_ns` with `active` granted cores.
    pub fn new(now_ns: u64, active: usize) -> Self {
        CoreSecondsMeter {
            last_ns: now_ns,
            active,
            integral_core_ns: 0,
        }
    }

    /// Records an allocation change at `now_ns`.
    pub fn set_active(&mut self, now_ns: u64, active: usize) {
        self.accumulate(now_ns);
        self.active = active;
    }

    /// Total core-nanoseconds granted up to `now_ns`.
    pub fn core_ns(&self, now_ns: u64) -> u128 {
        self.integral_core_ns + self.pending(now_ns)
    }

    /// Time-averaged granted cores from the start of metering to `now_ns`.
    pub fn avg_cores(&self, now_ns: u64, start_ns: u64) -> f64 {
        let span = now_ns.saturating_sub(start_ns);
        if span == 0 {
            return self.active as f64;
        }
        self.core_ns(now_ns) as f64 / span as f64
    }

    fn accumulate(&mut self, now_ns: u64) {
        self.integral_core_ns += self.pending(now_ns);
        self.last_ns = now_ns.max(self.last_ns);
    }

    fn pending(&self, now_ns: u64) -> u128 {
        now_ns.saturating_sub(self.last_ns) as u128 * self.active as u128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc() -> CoreAllocator {
        CoreAllocator::new(AllocatorConfig::paper(16))
    }

    fn tick(a: &mut CoreAllocator, busy: f64, backlog: usize) -> Decision {
        a.observe(LoadSignal {
            busy_cores: busy,
            backlog,
        })
    }

    #[test]
    fn starts_fully_granted() {
        let a = alloc();
        assert_eq!(a.active(), 16);
        assert_eq!(a.parked(), 0);
    }

    #[test]
    fn sustained_idle_revokes_down_to_floor() {
        let mut a = alloc();
        for _ in 0..200 {
            tick(&mut a, 0.0, 0);
        }
        assert_eq!(a.active(), a.config().min_cores);
        assert!(a.revokes() >= 1);
    }

    #[test]
    fn trickle_load_keeps_sqrt_staffing_headroom() {
        // One busy core of sustained load settles at util + β·√util ≈ 3,
        // not the bare floor: tails need slack even when the mean is tiny.
        let mut a = alloc();
        for _ in 0..200 {
            tick(&mut a, 1.0, 0);
        }
        assert!(
            (a.config().min_cores..=4).contains(&a.active()),
            "settled at {}",
            a.active()
        );
    }

    #[test]
    fn small_transient_burst_does_not_grant() {
        let mut a = alloc();
        for _ in 0..200 {
            tick(&mut a, 1.0, 0);
        }
        let before = a.active();
        // One mildly busy tick, then idle again: hysteresis holds.
        assert_eq!(tick(&mut a, before as f64, 1), Decision::Hold);
        for _ in 0..10 {
            assert_eq!(tick(&mut a, 1.0, 0), Decision::Hold);
        }
        assert_eq!(a.active(), before);
    }

    #[test]
    fn sustained_overload_grants() {
        let mut a = alloc();
        for _ in 0..200 {
            tick(&mut a, 1.0, 0); // shrink to the floor first
        }
        let mut granted = 0;
        for _ in 0..20 {
            let busy = a.active() as f64;
            if let Decision::Grant(k) = tick(&mut a, busy, 40) {
                granted += k;
            }
        }
        assert!(granted > 0, "overload must grant");
        assert!(a.active() > a.config().min_cores);
        assert!(a.active() <= 16);
    }

    #[test]
    fn saturating_backlog_reaches_max_quickly() {
        let mut a = alloc();
        for _ in 0..200 {
            tick(&mut a, 1.0, 0);
        }
        for _ in 0..40 {
            let busy = a.active() as f64;
            tick(&mut a, busy, 4_000);
        }
        assert_eq!(a.active(), 16, "saturation must regrant everything");
    }

    #[test]
    fn active_always_within_bounds() {
        let mut a = alloc();
        let mut x = 7u64;
        for _ in 0..5_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let busy = ((x >> 33) % 17) as f64;
            let backlog = (x >> 12) as usize % 64;
            tick(&mut a, busy, backlog);
            assert!((a.config().min_cores..=16).contains(&a.active()));
        }
    }

    #[test]
    fn cooldown_spaces_changes() {
        let cfg = AllocatorConfig::paper(16);
        let mut a = CoreAllocator::new(cfg);
        let mut changes_at = Vec::new();
        for t in 0..1_000u32 {
            // Alternate starvation and saturation every tick: worst case.
            let d = if t % 2 == 0 {
                tick(&mut a, 16.0, 100)
            } else {
                tick(&mut a, 0.0, 0)
            };
            if d != Decision::Hold {
                changes_at.push(t);
            }
        }
        let min_gap = cfg.tuning.cooldown + cfg.tuning.grant_after.min(cfg.tuning.revoke_after);
        for w in changes_at.windows(2) {
            assert!(
                w[1] - w[0] >= min_gap,
                "changes at {} and {} closer than {min_gap}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn meter_integrates_core_time() {
        let mut m = CoreSecondsMeter::new(0, 16);
        m.set_active(1_000, 4); // 16 cores for 1µs
        m.set_active(3_000, 8); // 4 cores for 2µs
                                // 8 cores for 1µs
        assert_eq!(m.core_ns(4_000), 16_000 + 8_000 + 8_000);
        let avg = m.avg_cores(4_000, 0);
        assert!((avg - 8.0).abs() < 1e-9, "avg = {avg}");
    }
}
