//! L4 connection routing for the fleet host: pluggable policies mapping
//! client connections onto server shards.
//!
//! The fleet plane models an L4 balancer the way real ones work: it pins
//! *flows* (connections), not individual requests, to backends. Routing a
//! connection is therefore a one-time decision plus a re-decision when a
//! shard is lost — between decisions the shards are fully independent,
//! which is what lets the fleet harness run each shard as an unmodified
//! `sysim` world (Poisson thinning makes each shard's arrival substream
//! exactly Poisson at its connection share of the fleet rate).
//!
//! Four policies:
//!
//! * [`RoutePolicy::PassThrough`] — everything to shard 0. Degenerate by
//!   design: with one shard it wires the fleet layer to the underlying
//!   host as a bit-identical differential oracle.
//! * [`RoutePolicy::ConsistentHash`] — classic ring with
//!   [`VNODES`] virtual nodes per shard. Connection-key affinity across
//!   shard loss: only the keys owned by the lost shard move (the
//!   *consistency* property, tested exactly), and the lost shard owns at
//!   most `ceil(K/N) + remap_slack(K, N)` keys (the *balance* envelope of
//!   the vnode count).
//! * [`RoutePolicy::LeastLoaded`] — greedy: each connection goes to the
//!   live shard with the smallest capacity-weighted backlog.
//! * [`RoutePolicy::PowerOfTwoChoices`] — two candidates sampled by hash,
//!   the less (capacity-weighted) backlogged one wins. The classic
//!   load/knowledge trade-off; never picks a shard strictly more
//!   backlogged than both candidates at decision time.
//!
//! Capacity weights make the load-aware policies degradation-aware: a
//! shard serving at `f ×` its healthy cost has capacity `1/f`, so
//! `least-loaded` and `po2c` steer connections away from it in proportion
//! — the mechanism behind the `fleet_tail` scenario's recovery claim.
//! Everything here is hash-driven and deterministic: no RNG, no clocks.

/// Virtual nodes per shard on the consistent-hash ring. 128 keeps the
/// worst observed shard share within ~1.5× of the mean across the tested
/// fleet sizes (2–16 shards) — see [`remap_slack`].
pub const VNODES: usize = 128;

/// A connection-routing policy for the fleet's L4 balancer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Every connection to shard 0 (differential-testing wire).
    PassThrough,
    /// Hash ring with [`VNODES`] virtual nodes per shard.
    ConsistentHash,
    /// Greedy: the live shard with the least capacity-weighted backlog.
    LeastLoaded,
    /// Two hashed candidates, the less backlogged one wins.
    PowerOfTwoChoices,
}

impl RoutePolicy {
    /// Stable identifier used by the scenario TOML and reports.
    pub fn id(&self) -> &'static str {
        match self {
            RoutePolicy::PassThrough => "pass-through",
            RoutePolicy::ConsistentHash => "consistent-hash",
            RoutePolicy::LeastLoaded => "least-loaded",
            RoutePolicy::PowerOfTwoChoices => "po2c",
        }
    }

    /// Parses the identifiers accepted by [`RoutePolicy::id`] (plus the
    /// spelled-out `power-of-two-choices` alias).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "pass-through" => Ok(RoutePolicy::PassThrough),
            "consistent-hash" => Ok(RoutePolicy::ConsistentHash),
            "least-loaded" => Ok(RoutePolicy::LeastLoaded),
            "po2c" | "power-of-two-choices" => Ok(RoutePolicy::PowerOfTwoChoices),
            other => Err(format!(
                "unknown routing policy {other:?} (expected pass-through, \
                 consistent-hash, least-loaded or po2c)"
            )),
        }
    }
}

/// SplitMix64: the avalanche mixer behind every hash decision here.
/// Deterministic, seedable, and good enough that ring balance is a
/// function of [`VNODES`] rather than of input structure.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Slack on the consistent-hash remap bound: with [`VNODES`] virtual
/// nodes the lost shard owns at most `ceil(K/N) + remap_slack(K, N)`
/// of `K` connection keys — the mean share plus the ring's balance
/// envelope (≤ ~1.5× mean plus a small-K constant).
pub fn remap_slack(conns: usize, shards: usize) -> usize {
    conns / shards.max(1) / 2 + 16
}

/// One routing decision, with enough context to audit it.
#[derive(Clone, Copy, Debug)]
pub struct Decision {
    /// The shard the connection was routed to.
    pub shard: usize,
    /// The two candidates po2c sampled (`None` for other policies).
    pub candidates: Option<(usize, usize)>,
}

/// The L4 balancer: routes connection keys onto live shards and tracks
/// the capacity-weighted backlog each decision feeds on.
///
/// Backlog here is *assigned connections / capacity* — the balancer's
/// a-priori load signal. It deliberately does not observe the shards'
/// queues: a real L4 tier routes on what it assigned, not on server
/// internals it cannot see at line rate.
#[derive(Clone, Debug)]
pub struct Balancer {
    policy: RoutePolicy,
    seed: u64,
    /// Relative serving capacity per shard (1.0 = healthy; a shard
    /// degraded to `f ×` service cost has capacity `1/f`).
    capacity: Vec<f64>,
    live: Vec<bool>,
    /// Connections currently assigned per shard.
    assigned: Vec<u32>,
    /// Consistent-hash ring: (vnode hash, shard), sorted by hash.
    ring: Vec<(u64, u16)>,
}

impl Balancer {
    /// A balancer over `shards` healthy shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0 or exceeds `u16::MAX` ring labels.
    pub fn new(policy: RoutePolicy, shards: usize, seed: u64) -> Self {
        assert!(shards >= 1, "a fleet needs at least one shard");
        assert!(shards <= u16::MAX as usize, "ring labels are u16");
        let mut ring = Vec::with_capacity(shards * VNODES);
        for s in 0..shards {
            for v in 0..VNODES {
                ring.push((mix(seed ^ mix((s as u64) << 32 | v as u64)), s as u16));
            }
        }
        ring.sort_unstable();
        Balancer {
            policy,
            seed,
            capacity: vec![1.0; shards],
            live: vec![true; shards],
            assigned: vec![0; shards],
            ring,
        }
    }

    /// Number of shards (live or not).
    pub fn shards(&self) -> usize {
        self.live.len()
    }

    /// Declares a shard's relative capacity (degradation signal).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range shard or non-positive capacity.
    pub fn set_capacity(&mut self, shard: usize, capacity: f64) {
        assert!(shard < self.shards(), "shard out of range");
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive"
        );
        self.capacity[shard] = capacity;
    }

    /// The capacity-weighted backlog the next decision would observe for
    /// `shard` (assigned connections / capacity).
    pub fn backlog(&self, shard: usize) -> f64 {
        self.assigned[shard] as f64 / self.capacity[shard]
    }

    /// Connections currently assigned to `shard`.
    pub fn assigned(&self, shard: usize) -> u32 {
        self.assigned[shard]
    }

    /// Routes one connection key, recording the assignment.
    ///
    /// # Panics
    ///
    /// Panics if no shard is live.
    pub fn route(&mut self, key: u64) -> Decision {
        let d = self.pick(key);
        self.assigned[d.shard] += 1;
        d
    }

    /// Routes connections `0..conns` (key = hashed index) in index order,
    /// returning the connection→shard map.
    pub fn assign(&mut self, conns: usize) -> Vec<u16> {
        (0..conns)
            .map(|c| self.route(conn_key(self.seed, c)).shard as u16)
            .collect()
    }

    /// Marks `shard` dead and re-routes its connections in `map`
    /// (produced by [`Balancer::assign`]) onto the survivors, in
    /// connection order. Returns how many connections moved. Connections
    /// on other shards are untouched — consistent hashing's defining
    /// property, and an invariant the fleet proptests pin for every
    /// policy.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range, already dead, or the last live
    /// shard.
    pub fn lose_shard(&mut self, shard: usize, map: &mut [u16]) -> usize {
        assert!(shard < self.shards(), "shard out of range");
        assert!(self.live[shard], "shard already lost");
        self.live[shard] = false;
        assert!(
            self.live.iter().any(|&l| l),
            "cannot lose the last live shard"
        );
        let mut moved = 0;
        for (c, slot) in map.iter_mut().enumerate() {
            if *slot as usize != shard {
                continue;
            }
            self.assigned[shard] -= 1;
            let d = self.route(conn_key(self.seed, c));
            *slot = d.shard as u16;
            moved += 1;
        }
        moved
    }

    /// Routes one connection key onto `m` *distinct* live shards — the
    /// scatter-gather replica set. A fanned-out request completes at the
    /// max over its replicas, so the fleet plane pins each connection to
    /// a stable set of `m` shards the same way [`Balancer::route`] pins
    /// it to one. Per policy:
    ///
    /// * `pass-through` — the `m` lowest-indexed live shards.
    /// * `consistent-hash` — the first `m` distinct live shards walking
    ///   the ring clockwise from the key's position (classic replica
    ///   placement: losing an unrelated shard leaves the set intact).
    /// * `least-loaded` — the `m` least capacity-weighted-backlogged.
    /// * `po2c` — each replica slot samples two candidates among the
    ///   not-yet-chosen live shards and keeps the less backlogged.
    ///
    /// All `m` assignments are recorded, so backlog-aware policies see
    /// fan-out as the real load multiplier it is. `m == 1` is exactly
    /// [`Balancer::route`].
    ///
    /// # Panics
    ///
    /// Panics if `m` is 0 or exceeds the live shard count.
    pub fn route_multi(&mut self, key: u64, m: usize) -> Vec<usize> {
        assert!(m >= 1, "fan-out must be at least 1");
        if m == 1 {
            return vec![self.route(key).shard];
        }
        let alive: Vec<usize> = (0..self.shards()).filter(|&s| self.live[s]).collect();
        assert!(
            m <= alive.len(),
            "fan-out {m} exceeds {} live shards",
            alive.len()
        );
        let chosen: Vec<usize> = match self.policy {
            RoutePolicy::PassThrough => alive[..m].to_vec(),
            RoutePolicy::ConsistentHash => {
                let h = mix(key);
                let start = self.ring.partition_point(|&(vh, _)| vh < h);
                let n = self.ring.len();
                let mut set = Vec::with_capacity(m);
                for i in 0..n {
                    let (_, s) = self.ring[(start + i) % n];
                    let s = s as usize;
                    if self.live[s] && !set.contains(&s) {
                        set.push(s);
                        if set.len() == m {
                            break;
                        }
                    }
                }
                set
            }
            RoutePolicy::LeastLoaded => {
                let mut by_backlog = alive.clone();
                by_backlog.sort_by(|&a, &b| {
                    self.backlog(a)
                        .partial_cmp(&self.backlog(b))
                        .expect("backlogs are finite")
                        .then(a.cmp(&b))
                });
                by_backlog[..m].to_vec()
            }
            RoutePolicy::PowerOfTwoChoices => {
                let mut set: Vec<usize> = Vec::with_capacity(m);
                for r in 0..m as u64 {
                    let pool: Vec<usize> =
                        alive.iter().copied().filter(|s| !set.contains(s)).collect();
                    let a = pool[(mix(key ^ mix(2 * r)) % pool.len() as u64) as usize];
                    let b = pool[(mix(key ^ 0xA5A5_A5A5_5A5A_5A5A ^ mix(2 * r + 1))
                        % pool.len() as u64) as usize];
                    let win = if self.backlog(b) < self.backlog(a) {
                        b
                    } else if self.backlog(a) < self.backlog(b) {
                        a
                    } else {
                        a.min(b)
                    };
                    set.push(win);
                }
                set
            }
        };
        debug_assert_eq!(chosen.len(), m);
        for &s in &chosen {
            self.assigned[s] += 1;
        }
        chosen
    }

    /// The decision [`Balancer::route`] would make for `key`, without
    /// recording it.
    pub fn pick(&self, key: u64) -> Decision {
        assert!(self.live.iter().any(|&l| l), "no live shard to route to");
        match self.policy {
            RoutePolicy::PassThrough => {
                // The degenerate wire: shard 0 while it lives, else the
                // lowest live shard (keeps the policy total).
                let shard = (0..self.shards()).find(|&s| self.live[s]).unwrap();
                Decision {
                    shard,
                    candidates: None,
                }
            }
            RoutePolicy::ConsistentHash => Decision {
                shard: self.ring_lookup(mix(key)),
                candidates: None,
            },
            RoutePolicy::LeastLoaded => {
                let shard = (0..self.shards())
                    .filter(|&s| self.live[s])
                    .min_by(|&a, &b| {
                        self.backlog(a)
                            .partial_cmp(&self.backlog(b))
                            .expect("backlogs are finite")
                            .then(a.cmp(&b))
                    })
                    .unwrap();
                Decision {
                    shard,
                    candidates: None,
                }
            }
            RoutePolicy::PowerOfTwoChoices => {
                let alive: Vec<usize> = (0..self.shards()).filter(|&s| self.live[s]).collect();
                let a = alive[(mix(key) % alive.len() as u64) as usize];
                let b = alive[(mix(key ^ 0xA5A5_A5A5_5A5A_5A5A) % alive.len() as u64) as usize];
                // The less-backlogged candidate wins; ties go low-index.
                let shard = if self.backlog(b) < self.backlog(a) {
                    b
                } else if self.backlog(a) < self.backlog(b) {
                    a
                } else {
                    a.min(b)
                };
                Decision {
                    shard,
                    candidates: Some((a, b)),
                }
            }
        }
    }

    /// First live vnode clockwise from `h` on the ring.
    fn ring_lookup(&self, h: u64) -> usize {
        let start = self.ring.partition_point(|&(vh, _)| vh < h);
        let n = self.ring.len();
        for i in 0..n {
            let (_, s) = self.ring[(start + i) % n];
            if self.live[s as usize] {
                return s as usize;
            }
        }
        unreachable!("at least one live shard");
    }
}

/// The hash key for connection index `c` under balancer seed `seed`.
pub fn conn_key(seed: u64, c: usize) -> u64 {
    mix(seed ^ mix(c as u64 ^ 0x5EED_C0DE_F1EE_7000))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_through_routes_everything_to_shard_zero() {
        let mut b = Balancer::new(RoutePolicy::PassThrough, 1, 7);
        let map = b.assign(64);
        assert!(map.iter().all(|&s| s == 0));
        assert_eq!(b.assigned(0), 64);
    }

    #[test]
    fn consistent_hash_only_moves_lost_shards_keys() {
        for seed in 0..20u64 {
            let mut b = Balancer::new(RoutePolicy::ConsistentHash, 5, seed);
            let mut map = b.assign(200);
            let before = map.clone();
            let owned = before.iter().filter(|&&s| s == 2).count();
            let moved = b.lose_shard(2, &mut map);
            assert_eq!(moved, owned, "exactly the lost shard's keys move");
            for (c, (&old, &new)) in before.iter().zip(map.iter()).enumerate() {
                if old != 2 {
                    assert_eq!(old, new, "conn {c} moved without losing its shard");
                }
                assert_ne!(new, 2, "conn {c} still routed to the dead shard");
            }
        }
    }

    #[test]
    fn consistent_hash_balance_within_slack() {
        for &(conns, shards) in &[(64usize, 2usize), (200, 5), (512, 8), (300, 10), (1000, 16)] {
            for seed in 0..30u64 {
                let mut b = Balancer::new(RoutePolicy::ConsistentHash, shards, seed);
                let map = b.assign(conns);
                let bound = conns.div_ceil(shards) + remap_slack(conns, shards);
                for s in 0..shards {
                    let owned = map.iter().filter(|&&m| m as usize == s).count();
                    assert!(
                        owned <= bound,
                        "shard {s} owns {owned} of {conns} conns over {shards} \
                         shards (bound {bound}, seed {seed})"
                    );
                }
            }
        }
    }

    #[test]
    fn least_loaded_respects_capacity_weights() {
        let mut b = Balancer::new(RoutePolicy::LeastLoaded, 4, 1);
        b.set_capacity(0, 1.0 / 3.0); // Shard 0 serves at 3× cost.
        let map = b.assign(100);
        let slow = map.iter().filter(|&&s| s == 0).count();
        let healthy = map.iter().filter(|&&s| s == 1).count();
        // Weighted balance: slow shard gets ~1/3 of a healthy shard's share.
        assert!(slow < healthy, "slow={slow} healthy={healthy}");
        assert!(slow >= 5, "slow shard is not starved: {slow}");
    }

    #[test]
    fn po2c_chosen_is_never_worse_than_both_candidates() {
        let mut b = Balancer::new(RoutePolicy::PowerOfTwoChoices, 6, 3);
        b.set_capacity(4, 0.5);
        for c in 0..500 {
            let key = conn_key(3, c);
            let d = b.pick(key);
            let (a, bb) = d.candidates.expect("po2c samples candidates");
            let chosen = b.backlog(d.shard);
            assert!(
                !(chosen > b.backlog(a) && chosen > b.backlog(bb)),
                "conn {c}: chose backlog {chosen} over candidates \
                 ({}, {})",
                b.backlog(a),
                b.backlog(bb)
            );
            assert!(d.shard == a || d.shard == bb);
            b.route(key);
        }
    }

    #[test]
    fn route_multi_yields_distinct_live_shards_for_every_policy() {
        for policy in [
            RoutePolicy::PassThrough,
            RoutePolicy::ConsistentHash,
            RoutePolicy::LeastLoaded,
            RoutePolicy::PowerOfTwoChoices,
        ] {
            let mut b = Balancer::new(policy, 6, 11);
            for c in 0..128usize {
                let set = b.route_multi(conn_key(11, c), 3);
                assert_eq!(set.len(), 3, "{policy:?}");
                let mut sorted = set.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), 3, "{policy:?}: replicas collide: {set:?}");
            }
            // All 3 × 128 assignments recorded.
            let total: u32 = (0..6).map(|s| b.assigned(s)).sum();
            assert_eq!(total, 384, "{policy:?}");
        }
    }

    #[test]
    fn route_multi_of_one_matches_route_exactly() {
        for policy in [
            RoutePolicy::PassThrough,
            RoutePolicy::ConsistentHash,
            RoutePolicy::LeastLoaded,
            RoutePolicy::PowerOfTwoChoices,
        ] {
            let mut a = Balancer::new(policy, 5, 23);
            let mut b = Balancer::new(policy, 5, 23);
            for c in 0..200usize {
                let key = conn_key(23, c);
                assert_eq!(a.route_multi(key, 1), vec![b.route(key).shard]);
            }
        }
    }

    #[test]
    fn consistent_hash_replica_sets_survive_unrelated_loss() {
        // Ring-walk replication: losing a shard outside a connection's
        // replica set leaves the set unchanged (modulo recording).
        let mut before = Balancer::new(RoutePolicy::ConsistentHash, 6, 41);
        let sets: Vec<Vec<usize>> = (0..100)
            .map(|c| before.route_multi(conn_key(41, c), 2))
            .collect();
        let mut after = Balancer::new(RoutePolicy::ConsistentHash, 6, 41);
        let mut dummy = after.assign(0);
        after.lose_shard(5, &mut dummy);
        for (c, set) in sets.iter().enumerate() {
            if !set.contains(&5) {
                let moved = after.route_multi(conn_key(41, c), 2);
                assert_eq!(*set, moved, "conn {c} replica set moved without cause");
            }
        }
    }

    #[test]
    fn lose_shard_rebalances_onto_survivors() {
        let mut b = Balancer::new(RoutePolicy::LeastLoaded, 3, 9);
        let mut map = b.assign(90);
        let moved = b.lose_shard(1, &mut map);
        assert!(moved > 0);
        assert!(map.iter().all(|&s| s != 1));
        let c0 = map.iter().filter(|&&s| s == 0).count();
        let c2 = map.iter().filter(|&&s| s == 2).count();
        assert_eq!(c0 + c2, 90);
        assert!((c0 as i64 - c2 as i64).abs() <= 1, "c0={c0} c2={c2}");
    }
}
