//! Arrival processes behind one trait: synthetic schedules and trace
//! replay.
//!
//! The paper's evaluation drives every experiment with a constant-rate
//! open-loop Poisson process. The scenario plane generalizes the *shape*
//! of the arrival process without touching the hosts: an [`ArrivalSpec`]
//! is plain data describing the process (so experiment configurations
//! stay `Clone + Debug` and serializable), and [`ArrivalSpec::source`]
//! instantiates the stateful generator — an [`ArrivalSource`] — that a
//! host consumes one inter-arrival gap at a time.
//!
//! Three processes are provided:
//!
//! * [`ArrivalSpec::Poisson`] — the paper's process: exponential gaps at
//!   the host's base rate (`λ = load · cores / S̄`).
//! * [`ArrivalSpec::Phased`] — piecewise Poisson: a cycle of phases, each
//!   scaling the base rate by a factor (a synthetic diurnal curve).
//! * [`ArrivalSpec::Trace`] — replay of a timestamped request log: the
//!   recorded gap *sequence* is preserved (bursts, troughs, ramps), while
//!   the mean rate is scaled to the host's base rate so the `load` knob
//!   keeps meaning "fraction of ideal saturation". The trace loops when
//!   exhausted.
//!
//! The contract every implementation obeys: `next_gap_us` returns a
//! strictly positive, finite gap, and the long-run mean of the returned
//! gaps is `1 / base_rate_per_us` — the *shape* varies, the offered load
//! does not. This is what lets one scenario sweep `load` identically
//! under any arrival process.
//!
//! ```
//! use zygos_load::source::ArrivalSpec;
//! use zygos_sim::rng::Xoshiro256;
//!
//! let mut rng = Xoshiro256::new(7);
//! let mut src = ArrivalSpec::Poisson.source(0.5); // 0.5 req/µs
//! let n = 100_000;
//! let total: f64 = (0..n).map(|_| src.next_gap_us(&mut rng)).sum();
//! let rate = n as f64 / total;
//! assert!((rate - 0.5).abs() < 0.01, "rate = {rate}");
//! ```

use std::sync::Arc;

use zygos_sim::rng::Xoshiro256;

/// One phase of a piecewise-Poisson ([`ArrivalSpec::Phased`]) cycle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Phase {
    /// Phase length in microseconds of generated (virtual) time.
    pub duration_us: f64,
    /// Rate multiplier applied to the base rate during this phase.
    pub rate_factor: f64,
}

/// A timestamped request log, normalized to its inter-arrival gaps.
///
/// The on-disk format is one arrival timestamp (microseconds, ascending,
/// integer or float) per line; blank lines and `#` comments are ignored.
/// An optional second whitespace-separated column (e.g. a connection or
/// object id) is accepted and ignored — arrival *timing* is what a trace
/// contributes; connection selection stays with the host.
#[derive(Debug, PartialEq)]
pub struct Trace {
    /// Inter-arrival gaps in nanoseconds (one fewer than timestamps).
    gaps_ns: Vec<u64>,
}

impl Trace {
    /// Builds a trace from ascending arrival timestamps in microseconds.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two timestamps or non-ascending input.
    pub fn from_timestamps_us(ts: &[f64]) -> Self {
        assert!(ts.len() >= 2, "a trace needs at least two arrivals");
        let gaps_ns = ts
            .windows(2)
            .map(|w| {
                let gap = w[1] - w[0];
                assert!(gap >= 0.0, "trace timestamps must ascend");
                // Zero-length gaps (same-µs arrivals) become 1ns: the
                // burst is preserved, the "strictly positive" contract
                // holds.
                ((gap * 1_000.0) as u64).max(1)
            })
            .collect();
        Trace { gaps_ns }
    }

    /// Parses the text format (see type docs).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut ts = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let field = line.split_whitespace().next().expect("non-empty line");
            let t: f64 = field
                .parse()
                .map_err(|e| format!("trace line {}: bad timestamp {field:?}: {e}", i + 1))?;
            if !t.is_finite() || t < 0.0 {
                return Err(format!("trace line {}: non-finite timestamp", i + 1));
            }
            if let Some(&prev) = ts.last() {
                if t < prev {
                    return Err(format!("trace line {}: timestamps must ascend", i + 1));
                }
            }
            ts.push(t);
        }
        if ts.len() < 2 {
            return Err("a trace needs at least two arrivals".to_string());
        }
        Ok(Trace::from_timestamps_us(&ts))
    }

    /// Number of replayable gaps.
    pub fn len(&self) -> usize {
        self.gaps_ns.len()
    }

    /// True if the trace holds no gaps (never after construction).
    pub fn is_empty(&self) -> bool {
        self.gaps_ns.is_empty()
    }

    /// Mean recorded arrival rate in requests per microsecond.
    pub fn mean_rate_per_us(&self) -> f64 {
        let total_ns: u128 = self.gaps_ns.iter().map(|&g| g as u128).sum();
        self.gaps_ns.len() as f64 / (total_ns as f64 / 1_000.0)
    }

    /// Generates a synthetic diurnal trace: `n` arrivals whose rate
    /// follows a full sinusoidal day (trough → peak → trough) around a
    /// unit mean rate, with Poisson micro-structure inside each step.
    /// Deterministic in `seed`; this is the generator behind the bundled
    /// `diurnal.trace` file (regenerate with `lab gen-trace`).
    pub fn synthetic_diurnal(n: usize, seed: u64) -> Self {
        assert!(n >= 2, "a trace needs at least two arrivals");
        let mut rng = Xoshiro256::new(seed);
        let mut ts = Vec::with_capacity(n);
        // At unit mean rate, n arrivals span ≈ n µs: that is the "day".
        // The instantaneous rate follows one sinusoidal cycle over that
        // span — factors 0.25–1.75, so the trough parks most of an
        // elastic fleet and the peak staffs it back. Modulating by
        // elapsed *time* (not arrival index) keeps the time-averaged
        // rate at 1.0, so the host's load knob stays calibrated.
        let span = n as f64;
        let mut t = 0.0f64;
        for _ in 0..n {
            let phase = (t / span).min(1.0) * std::f64::consts::TAU;
            let factor = 1.0 - 0.75 * phase.cos();
            t += rng.next_exp(1.0 / factor);
            ts.push(t);
        }
        Trace::from_timestamps_us(&ts)
    }

    /// Renders the trace back to the text format (arrival timestamps in
    /// microseconds), suitable for committing next to a scenario spec.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# arrival timestamps (us), one per line\n0\n");
        let mut t_ns = 0u128;
        for &g in &self.gaps_ns {
            t_ns += g as u128;
            out.push_str(&format!("{:.3}\n", t_ns as f64 / 1_000.0));
        }
        out
    }
}

/// A declarative description of an arrival process (plain data: clonable,
/// comparable by shape, cheap to embed in experiment configurations).
#[derive(Clone, Debug, Default)]
pub enum ArrivalSpec {
    /// Constant-rate Poisson at the host's base rate (the paper's
    /// process, and the default).
    #[default]
    Poisson,
    /// Piecewise Poisson: cycles through `phases`, scaling the base rate
    /// by each phase's factor for its duration.
    Phased(Vec<Phase>),
    /// Replay a recorded trace's gap sequence, scaled to the base rate.
    Trace(Arc<Trace>),
}

impl ArrivalSpec {
    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            ArrivalSpec::Poisson => "poisson".to_string(),
            ArrivalSpec::Phased(p) => format!("phased({})", p.len()),
            ArrivalSpec::Trace(t) => format!("trace({} arrivals)", t.len() + 1),
        }
    }

    /// Instantiates the stateful generator for a host whose base arrival
    /// rate is `base_rate_per_us` (requests per microsecond).
    ///
    /// # Panics
    ///
    /// Panics if `base_rate_per_us` is not positive, or the spec is
    /// structurally empty (no phases / empty trace).
    pub fn source(&self, base_rate_per_us: f64) -> Box<dyn ArrivalSource> {
        assert!(base_rate_per_us > 0.0, "base rate must be positive");
        match self {
            ArrivalSpec::Poisson => Box::new(PoissonArrivals {
                mean_gap_us: 1.0 / base_rate_per_us,
            }),
            ArrivalSpec::Phased(phases) => {
                assert!(!phases.is_empty(), "phased arrivals need phases");
                let mean_factor = phases
                    .iter()
                    .map(|p| {
                        assert!(p.duration_us > 0.0, "phase duration must be positive");
                        assert!(p.rate_factor > 0.0, "phase rate factor must be positive");
                        p.rate_factor * p.duration_us
                    })
                    .sum::<f64>()
                    / phases.iter().map(|p| p.duration_us).sum::<f64>();
                Box::new(PhasedArrivals {
                    phases: phases.clone(),
                    // Normalize so the long-run mean rate equals the base
                    // rate regardless of the factors chosen.
                    rate_scale: base_rate_per_us / mean_factor,
                    phase: 0,
                    left_us: phases[0].duration_us,
                })
            }
            ArrivalSpec::Trace(trace) => {
                assert!(!trace.is_empty(), "empty trace");
                Box::new(TraceArrivals {
                    // Scale recorded gaps so the replayed mean rate is the
                    // base rate: shape from the trace, level from `load`.
                    gap_scale: trace.mean_rate_per_us() / base_rate_per_us,
                    trace: Arc::clone(trace),
                    next: 0,
                })
            }
        }
    }
}

/// A stateful arrival-process generator: the host pulls one inter-arrival
/// gap at a time (open loop — the generator never observes completions).
///
/// Contract: every gap is strictly positive and finite, and the long-run
/// mean of the gaps is `1 / base_rate_per_us` for the rate the source was
/// built with.
pub trait ArrivalSource: Send {
    /// Time from the previous arrival to the next one, in microseconds.
    fn next_gap_us(&mut self, rng: &mut Xoshiro256) -> f64;

    /// Snapshots the generator, preserving its internal position (current
    /// phase, trace cursor). Part of the deterministic-checkpoint
    /// contract: a cloned source must emit the identical gap stream its
    /// original would, given the identical RNG stream.
    fn clone_box(&self) -> Box<dyn ArrivalSource>;
}

impl Clone for Box<dyn ArrivalSource> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[derive(Clone)]
struct PoissonArrivals {
    mean_gap_us: f64,
}

impl ArrivalSource for PoissonArrivals {
    fn next_gap_us(&mut self, rng: &mut Xoshiro256) -> f64 {
        rng.next_exp(self.mean_gap_us)
    }

    fn clone_box(&self) -> Box<dyn ArrivalSource> {
        Box::new(self.clone())
    }
}

#[derive(Clone)]
struct PhasedArrivals {
    phases: Vec<Phase>,
    rate_scale: f64,
    phase: usize,
    /// Virtual time left in the current phase (µs).
    left_us: f64,
}

impl ArrivalSource for PhasedArrivals {
    fn next_gap_us(&mut self, rng: &mut Xoshiro256) -> f64 {
        // Advance phases by the virtual time the gaps themselves consume.
        let mut gap = 0.0;
        loop {
            let rate = self.phases[self.phase].rate_factor * self.rate_scale;
            let g = rng.next_exp(1.0 / rate);
            if g <= self.left_us {
                self.left_us -= g;
                return gap + g;
            }
            // The sampled gap crosses a phase boundary: consume the rest
            // of this phase and resample in the next (memorylessness makes
            // this exact for exponential gaps).
            gap += self.left_us;
            self.phase = (self.phase + 1) % self.phases.len();
            self.left_us = self.phases[self.phase].duration_us;
        }
    }

    fn clone_box(&self) -> Box<dyn ArrivalSource> {
        Box::new(self.clone())
    }
}

#[derive(Clone)]
struct TraceArrivals {
    trace: Arc<Trace>,
    gap_scale: f64,
    next: usize,
}

impl ArrivalSource for TraceArrivals {
    fn next_gap_us(&mut self, rng: &mut Xoshiro256) -> f64 {
        let _ = rng; // Replay is deterministic.
        let gap_ns = self.trace.gaps_ns[self.next];
        self.next = (self.next + 1) % self.trace.gaps_ns.len();
        (gap_ns as f64 / 1_000.0 * self.gap_scale).max(1e-3)
    }

    fn clone_box(&self) -> Box<dyn ArrivalSource> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_rate(spec: &ArrivalSpec, base: f64, n: usize) -> f64 {
        let mut rng = Xoshiro256::new(99);
        let mut src = spec.source(base);
        let total: f64 = (0..n).map(|_| src.next_gap_us(&mut rng)).sum();
        n as f64 / total
    }

    #[test]
    fn poisson_matches_base_rate() {
        let r = mean_rate(&ArrivalSpec::Poisson, 0.8, 200_000);
        assert!((r - 0.8).abs() < 0.01, "rate = {r}");
    }

    #[test]
    fn phased_preserves_mean_rate_and_modulates() {
        let spec = ArrivalSpec::Phased(vec![
            Phase {
                duration_us: 1_000.0,
                rate_factor: 0.25,
            },
            Phase {
                duration_us: 1_000.0,
                rate_factor: 1.75,
            },
        ]);
        let r = mean_rate(&spec, 0.5, 200_000);
        assert!((r - 0.5).abs() < 0.02, "long-run rate = {r}");
        // The first phase really is slower: few arrivals fit in it.
        let mut rng = Xoshiro256::new(1);
        let mut src = spec.source(0.5);
        let mut t = 0.0;
        let mut in_first = 0;
        let mut in_second = 0;
        while t < 2_000.0 {
            t += src.next_gap_us(&mut rng);
            if t < 1_000.0 {
                in_first += 1;
            } else if t < 2_000.0 {
                in_second += 1;
            }
        }
        assert!(
            in_second > 2 * in_first,
            "peak phase must out-arrive the trough ({in_first} vs {in_second})"
        );
    }

    #[test]
    fn trace_replay_scales_to_base_rate_and_loops() {
        let trace = Arc::new(Trace::from_timestamps_us(&[0.0, 1.0, 3.0, 7.0]));
        // Recorded mean rate: 3 gaps over 7µs.
        assert!((trace.mean_rate_per_us() - 3.0 / 7.0).abs() < 1e-9);
        let spec = ArrivalSpec::Trace(Arc::clone(&trace));
        let r = mean_rate(&spec, 2.0, 3_000);
        assert!((r - 2.0).abs() < 0.01, "scaled rate = {r}");
        // The gap *pattern* (1:2:4) survives scaling and wraps around.
        let mut rng = Xoshiro256::new(0);
        let mut src = spec.source(2.0);
        let gaps: Vec<f64> = (0..6).map(|_| src.next_gap_us(&mut rng)).collect();
        assert!((gaps[1] / gaps[0] - 2.0).abs() < 1e-6);
        assert!((gaps[2] / gaps[0] - 4.0).abs() < 1e-6);
        assert!((gaps[3] - gaps[0]).abs() < 1e-9, "loops back to gap 0");
    }

    #[test]
    fn trace_text_round_trips() {
        let t = Trace::synthetic_diurnal(500, 42);
        let text = t.to_text();
        let back = Trace::parse(&text).expect("well-formed");
        assert_eq!(back.len(), t.len());
        // Gaps survive to the millisecond-of-a-µs precision of the format.
        for (a, b) in t.gaps_ns.iter().zip(&back.gaps_ns) {
            assert!((*a as i64 - *b as i64).abs() <= 1, "{a} vs {b}");
        }
    }

    #[test]
    fn trace_parser_rejects_garbage() {
        assert!(Trace::parse("").is_err(), "empty");
        assert!(Trace::parse("1.0\n0.5\n").is_err(), "descending");
        assert!(Trace::parse("1.0\nfish\n").is_err(), "non-numeric");
        let ok = Trace::parse("# header\n\n0\n1.5 conn7\n2\n").expect("comments and ids ok");
        assert_eq!(ok.len(), 2);
    }

    #[test]
    fn synthetic_diurnal_has_unit_mean_rate_and_shape() {
        let t = Trace::synthetic_diurnal(20_000, 7);
        let r = t.mean_rate_per_us();
        assert!((r - 1.0).abs() < 0.05, "mean rate = {r}");
        // The middle of the cycle (peak) is denser than the edges
        // (trough): compare arrivals in the middle vs the first quarter
        // of the spanned time.
        let q1 = t.gaps_ns[..t.len() / 4].iter().sum::<u64>();
        let mid = t.gaps_ns[t.len() * 3 / 8..t.len() * 5 / 8]
            .iter()
            .sum::<u64>();
        assert!(
            mid * 2 < q1,
            "peak quarter should span far less time than the trough ({mid} vs {q1})"
        );
    }
}
