//! Open-loop load generation and SLO measurement (mutilate-style, §3.1).
//!
//! * [`schedule`] — Poisson arrival schedules over a set of connections:
//!   the client-side discipline the paper uses ("incoming requests follow a
//!   Poisson inter-arrival time on randomly-selected connections").
//! * [`recorder`] — thread-safe latency recording for the live runtime
//!   (per-thread histograms merged on demand).
//! * [`slo`] — SLO specifications (`p99 ≤ k·S̄`) and evaluation.

pub mod recorder;
pub mod schedule;
pub mod slo;

pub use recorder::SharedRecorder;
pub use schedule::ArrivalSchedule;
pub use slo::Slo;
