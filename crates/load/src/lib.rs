//! Open-loop load generation and SLO measurement (mutilate-style, §3.1).
//!
//! * [`schedule`] — Poisson arrival schedules over a set of connections:
//!   the client-side discipline the paper uses ("incoming requests follow a
//!   Poisson inter-arrival time on randomly-selected connections").
//! * [`recorder`] — thread-safe latency recording for the live runtime
//!   (a shared log-bucketed histogram behind a mutex).
//! * [`slo`] — SLO specifications (`p99 ≤ k·S̄`), multi-tenant SLO classes
//!   ([`slo::TenantSlos`]: the source of the allocation ratio, the
//!   per-class credit-AIMD targets, and the weighted-fair shed order),
//!   and the exact small-window quantile both hosts' control ticks use.
//! * [`retry`] — reject-aware retry policies ([`retry::RetryPolicy`]:
//!   drop / exponential backoff / hedge-to-deadline) for clients facing a
//!   credit-gated server.
//! * [`route`] — L4 connection routing for the fleet host
//!   ([`route::Balancer`]): pluggable policies (pass-through,
//!   consistent-hash, least-loaded, power-of-two-choices) mapping client
//!   connections onto server shards, with capacity weights and
//!   shard-loss remap.
//! * [`source`] — arrival processes behind one trait
//!   ([`source::ArrivalSource`]): the paper's constant-rate Poisson,
//!   piecewise-Poisson phases, and trace replay from a timestamped
//!   request log ([`source::Trace`]) — the scenario plane's workload
//!   input.
//!
//! Everything here is host-agnostic: the live runtime, the discrete-event
//! simulator and the tests consume the same schedules, SLO arithmetic and
//! retry decisions.

pub mod recorder;
pub mod retry;
pub mod route;
pub mod schedule;
pub mod slo;
pub mod source;

pub use recorder::SharedRecorder;
pub use retry::{RetryDecision, RetryPolicy};
pub use route::{Balancer, RoutePolicy};
pub use schedule::ArrivalSchedule;
pub use slo::Slo;
pub use source::{ArrivalSource, ArrivalSpec, Trace};
