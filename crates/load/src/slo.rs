//! Service-level objectives.
//!
//! The paper's SLOs are all of the form "the 99th percentile of end-to-end
//! latency must not exceed a bound": `10·S̄` for the microbenchmarks
//! (Figures 3, 6, 7), 500µs for memcached (Figure 9), 1000µs for
//! Silo/TPC-C (Figure 10b, Table 1).
//!
//! Beyond the paper, [`TenantSlos`] models a multi-tenant deployment where
//! connections belong to named SLO classes with different bounds (e.g. an
//! interactive class at `10·S̄` next to a batch class at `100·S̄`). The
//! registry is the single source of truth for every per-tenant policy
//! decision in the workspace:
//!
//! * the SLO-driven allocation policy (`zygos_sched::SloController`)
//!   staffs on the **worst relative margin** across classes — the maximum
//!   of `p99 / bound` returned by [`TenantSlos::worst_ratio`] — so one
//!   violated tenant is enough to hold or grant cores;
//! * the credit-admission AIMD loop steers to **per-class latency
//!   targets** derived from the bounds ([`TenantSlos::aimd_targets_us`])
//!   instead of a fixed µs constant, and compares the measured per-class
//!   tails against them with [`TenantSlos::worst_credit_ratio`];
//! * under overload, **weighted fair shedding** caps each class at a
//!   fraction of the credit pool ([`TenantSlos::admit_fractions`]) such
//!   that the *loosest* class (the one with the most latency headroom) is
//!   shed first, rather than FIFO-blind rejection across all tenants.
//!
//! ```
//! use zygos_load::slo::{Slo, SloClass, TenantSlos};
//!
//! let slos = TenantSlos::new(vec![
//!     SloClass::new("interactive", Slo::p99(100.0)),
//!     SloClass::new("batch", Slo::p99(1000.0)),
//! ]);
//! // Connections map to classes round-robin by id.
//! assert_eq!(slos.class_of(0), 0);
//! assert_eq!(slos.class_of(1), 1);
//! // The AIMD loop targets 70% of each bound.
//! assert_eq!(slos.aimd_targets_us(0.7), vec![70.0, 700.0]);
//! // The batch class is capped at half the pool, so it sheds first.
//! assert_eq!(slos.admit_fractions(), vec![1.0, 0.5]);
//! ```

use zygos_sim::stats::{LatencyHistogram, WindowHistogram};

/// Headroom factor applied to each tenant class's SLO bound to obtain its
/// credit-AIMD latency target ([`TenantSlos::aimd_targets_us`]): the
/// admission loop steers the measured per-class window tail to
/// `CREDIT_HEADROOM × bound`, shedding *before* the bound is breached
/// (the window tail is a noisy estimator and the AIMD reaction lags a
/// control period). Defined here — next to the arithmetic that consumes
/// it — so the simulator and the live runtime cannot drift apart.
pub const CREDIT_HEADROOM: f64 = 0.7;

/// Minimum completions in a control window before its tail is trusted as
/// a policy signal: below this, the window p99 is the max of a handful
/// of samples — too noisy to staff or shed on. Shared by both hosts'
/// control ticks.
pub const MIN_WINDOW_SAMPLES: usize = 8;

/// Upper bound on a carried exact-quantile window (live runtime): a class
/// stuck below [`MIN_WINDOW_SAMPLES`] stretches its window across ticks,
/// and a class far *above* it has no use for more history — so windows
/// are trimmed to the most recent this-many samples, bounding both the
/// per-tick sort and the memory a slow tick can accumulate.
pub const MAX_WINDOW_SAMPLES: usize = 4096;

/// Trims an exact-quantile window to its most recent
/// [`MAX_WINDOW_SAMPLES`] entries (drops the oldest first).
pub fn trim_window(samples: &mut Vec<u64>) {
    if samples.len() > MAX_WINDOW_SAMPLES {
        let excess = samples.len() - MAX_WINDOW_SAMPLES;
        samples.drain(..excess);
    }
}

/// An SLO: `quantile(percentile) ≤ bound_us`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Slo {
    /// The percentile checked, in `(0, 1)` (paper: 0.99).
    pub percentile: f64,
    /// The latency bound in microseconds.
    pub bound_us: f64,
}

impl Slo {
    /// The paper's microbenchmark SLO: p99 ≤ `multiple`·S̄.
    pub fn multiple_of_mean(mean_service_us: f64, multiple: f64) -> Slo {
        Slo {
            percentile: 0.99,
            bound_us: multiple * mean_service_us,
        }
    }

    /// A fixed p99 bound (e.g. 500µs for memcached, 1000µs for Silo).
    pub fn p99(bound_us: f64) -> Slo {
        Slo {
            percentile: 0.99,
            bound_us,
        }
    }

    /// True if the recorded latencies meet the SLO.
    pub fn met_by(&self, hist: &LatencyHistogram) -> bool {
        hist.quantile_us(self.percentile) <= self.bound_us
    }

    /// The measured margin: `bound − quantile` (negative = violated), µs.
    pub fn margin_us(&self, hist: &LatencyHistogram) -> f64 {
        self.bound_us - hist.quantile_us(self.percentile)
    }
}

/// One named SLO class in a multi-tenant deployment.
#[derive(Clone, Debug, PartialEq)]
pub struct SloClass {
    /// Operator-facing class name (e.g. `"interactive"`, `"batch"`).
    pub name: String,
    /// The class's objective.
    pub slo: Slo,
}

impl SloClass {
    /// Creates a class.
    pub fn new(name: impl Into<String>, slo: Slo) -> Self {
        SloClass {
            name: name.into(),
            slo,
        }
    }
}

/// Per-tenant SLO classes: tenants (connections) are assigned to classes
/// round-robin by id, which spreads every class across all home cores —
/// the interesting regime, since a violated class then cannot be fixed by
/// repartitioning alone.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantSlos {
    classes: Vec<SloClass>,
}

impl TenantSlos {
    /// Builds a registry from at least one class.
    pub fn new(classes: Vec<SloClass>) -> Self {
        assert!(!classes.is_empty(), "need at least one SLO class");
        TenantSlos { classes }
    }

    /// A single uniform class covering every tenant.
    pub fn uniform(slo: Slo) -> Self {
        TenantSlos::new(vec![SloClass::new("default", slo)])
    }

    /// The classes, in assignment order.
    pub fn classes(&self) -> &[SloClass] {
        &self.classes
    }

    /// The class index a tenant id maps to (round-robin).
    pub fn class_of(&self, tenant: u32) -> usize {
        tenant as usize % self.classes.len()
    }

    /// The strictest (lowest-bound) objective across classes — what a
    /// single-histogram host must meet to satisfy every tenant.
    pub fn strictest(&self) -> Slo {
        self.classes
            .iter()
            .map(|c| c.slo)
            .min_by(|a, b| a.bound_us.total_cmp(&b.bound_us))
            .expect("non-empty")
    }

    /// The worst relative margin across classes:
    /// `max(quantile_i(percentile_i) / bound_i)` over classes whose
    /// latency window (nanosecond samples, one `Vec` per class, sorted in
    /// place) holds at least `min_samples` entries. `> 1.0` means some
    /// tenant's SLO is violated; `None` when no class has enough samples
    /// to judge. This is the signal `zygos_sched::SloController` staffs
    /// on — both hosts' control ticks call it per window (the simulator
    /// from virtual time, the live runtime from measured sojourns).
    pub fn worst_ratio(&self, per_class: &mut [Vec<u64>], min_samples: usize) -> Option<f64> {
        assert_eq!(per_class.len(), self.classes.len(), "one window per class");
        let mut worst: Option<f64> = None;
        for (c, samples) in self.classes.iter().zip(per_class) {
            if samples.len() >= min_samples.max(1) {
                let q = exact_quantile_us(samples, c.slo.percentile);
                let r = q / c.slo.bound_us;
                worst = Some(worst.map_or(r, |w: f64| w.max(r)));
            }
        }
        worst
    }

    /// [`TenantSlos::worst_ratio`] over constant-memory
    /// [`WindowHistogram`] windows instead of exact sample vectors — the
    /// simulator's control tick records every completion, and sorting
    /// those windows each tick was the dominant per-tick cost. Histogram
    /// quantiles carry the bucket's ~0.1% relative error, which is far
    /// below the noise floor of a window tail estimate.
    pub fn worst_ratio_hist(
        &self,
        per_class: &mut [WindowHistogram],
        min_samples: usize,
    ) -> Option<f64> {
        assert_eq!(per_class.len(), self.classes.len(), "one window per class");
        let mut worst: Option<f64> = None;
        for (c, win) in self.classes.iter().zip(per_class) {
            if win.count() >= min_samples.max(1) as u64 {
                let q = win.quantile_us(c.slo.percentile);
                let r = q / c.slo.bound_us;
                worst = Some(worst.map_or(r, |w: f64| w.max(r)));
            }
        }
        worst
    }

    /// [`TenantSlos::worst_credit_ratio`] over [`WindowHistogram`]
    /// windows (see [`TenantSlos::worst_ratio_hist`]).
    pub fn worst_credit_ratio_hist(
        &self,
        per_class: &mut [WindowHistogram],
        targets_us: &[f64],
        min_samples: usize,
    ) -> Option<f64> {
        assert_eq!(per_class.len(), self.classes.len(), "one window per class");
        assert_eq!(targets_us.len(), self.classes.len(), "one target per class");
        let mut worst: Option<f64> = None;
        for ((c, win), &target) in self.classes.iter().zip(per_class).zip(targets_us) {
            if win.count() >= min_samples.max(1) as u64 && target > 0.0 {
                let q = win.quantile_us(c.slo.percentile);
                let r = q / target;
                worst = Some(worst.map_or(r, |w: f64| w.max(r)));
            }
        }
        worst
    }

    /// Per-class latency targets (µs) for the credit-admission AIMD loop:
    /// `headroom × bound` for each class, in class order.
    ///
    /// The headroom sits below 1.0 by design — the admission controller
    /// must start shedding *before* the measured tail reaches the bound,
    /// because the window tail is a noisy small-sample estimator and the
    /// AIMD reaction lags by a control period.
    ///
    /// ```
    /// use zygos_load::slo::{Slo, TenantSlos};
    /// let t = TenantSlos::uniform(Slo::p99(100.0));
    /// assert_eq!(t.aimd_targets_us(0.7), vec![70.0]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics unless `headroom` is in `(0, 1]`.
    pub fn aimd_targets_us(&self, headroom: f64) -> Vec<f64> {
        assert!(
            headroom > 0.0 && headroom <= 1.0,
            "headroom must be in (0, 1]"
        );
        self.classes
            .iter()
            .map(|c| headroom * c.slo.bound_us)
            .collect()
    }

    /// The worst per-class congestion ratio for the credit AIMD loop:
    /// `max(quantile_i(percentile_i) / target_i)` over classes with at
    /// least `min_samples` window entries, where `targets_us` comes from
    /// [`TenantSlos::aimd_targets_us`]. A ratio of 1.0 means "exactly at
    /// target"; `None` means no class produced a trustworthy signal this
    /// window (the AIMD loop should hold).
    ///
    /// Same shape as [`TenantSlos::worst_ratio`], but normalized against
    /// the *admission* targets instead of the SLO bounds — the two loops
    /// deliberately act at different points (shed before you breach).
    pub fn worst_credit_ratio(
        &self,
        per_class: &mut [Vec<u64>],
        targets_us: &[f64],
        min_samples: usize,
    ) -> Option<f64> {
        assert_eq!(per_class.len(), self.classes.len(), "one window per class");
        assert_eq!(targets_us.len(), self.classes.len(), "one target per class");
        let mut worst: Option<f64> = None;
        for ((c, samples), &target) in self.classes.iter().zip(per_class).zip(targets_us) {
            if samples.len() >= min_samples.max(1) && target > 0.0 {
                let q = exact_quantile_us(samples, c.slo.percentile);
                let r = q / target;
                worst = Some(worst.map_or(r, |w: f64| w.max(r)));
            }
        }
        worst
    }

    /// Per-class admission fractions for weighted fair shedding: the share
    /// of the credit pool each class may occupy, in class order.
    ///
    /// Classes are ranked by bound: the **strictest** class may use the
    /// whole pool (fraction 1.0); each looser class is capped at a
    /// progressively smaller share, so as the pool fills under overload
    /// the loosest class hits its cap — and starts shedding — first. A
    /// class with the most latency headroom is the one whose users suffer
    /// least from a retry, which is exactly who should absorb the
    /// overload. Ties in the bound share a rank (equal bounds shed
    /// together).
    ///
    /// ```
    /// use zygos_load::slo::{Slo, SloClass, TenantSlos};
    /// let t = TenantSlos::new(vec![
    ///     SloClass::new("batch", Slo::p99(1000.0)),
    ///     SloClass::new("interactive", Slo::p99(100.0)),
    ///     SloClass::new("background", Slo::p99(10_000.0)),
    /// ]);
    /// // Strictest (interactive) gets the full pool; looser classes are
    /// // capped harder the more headroom their bound leaves them.
    /// assert_eq!(t.admit_fractions(), vec![2.0 / 3.0, 1.0, 1.0 / 3.0]);
    /// ```
    pub fn admit_fractions(&self) -> Vec<f64> {
        let k = self.classes.len();
        self.classes
            .iter()
            .map(|c| {
                // Rank = number of classes strictly stricter than this one.
                let rank = self
                    .classes
                    .iter()
                    .filter(|o| o.slo.bound_us < c.slo.bound_us)
                    .count();
                (k - rank) as f64 / k as f64
            })
            .collect()
    }
}

/// Exact quantile of an (unsorted) window of nanosecond latencies, in µs.
/// Sorts in place — meant for small control-tick windows, where the
/// histogram machinery would be allocation-heavy and its ~0.1% bucketing
/// pointless.
pub fn exact_quantile_us(samples: &mut [u64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "quantile of an empty window");
    samples.sort_unstable();
    let idx = ((samples.len() as f64 - 1.0) * q).ceil() as usize;
    samples[idx.min(samples.len() - 1)] as f64 / 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_with(values_us: &[f64]) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for &v in values_us {
            h.record_micros_f64(v);
        }
        h
    }

    #[test]
    fn slo_construction() {
        let s = Slo::multiple_of_mean(10.0, 10.0);
        assert_eq!(s.bound_us, 100.0);
        assert_eq!(s.percentile, 0.99);
        assert_eq!(Slo::p99(1000.0).bound_us, 1000.0);
    }

    #[test]
    fn met_and_violated() {
        let good = hist_with(&[10.0; 100]);
        let slo = Slo::p99(50.0);
        assert!(slo.met_by(&good));
        assert!(slo.margin_us(&good) > 0.0);

        let mut values = vec![10.0; 95];
        values.extend_from_slice(&[500.0; 5]);
        let bad = hist_with(&values);
        assert!(!slo.met_by(&bad));
        assert!(slo.margin_us(&bad) < 0.0);
    }

    #[test]
    fn tenant_classes_assign_and_rank() {
        let t = TenantSlos::new(vec![
            SloClass::new("interactive", Slo::p99(100.0)),
            SloClass::new("batch", Slo::p99(1000.0)),
        ]);
        assert_eq!(t.class_of(0), 0);
        assert_eq!(t.class_of(1), 1);
        assert_eq!(t.class_of(2), 0);
        assert_eq!(t.strictest().bound_us, 100.0);

        // interactive p99 ≈ 50 (ratio 0.5), batch p99 ≈ 900 (ratio 0.9):
        // the worst ratio is batch's even though its bound is looser.
        let mut windows = vec![vec![50_000u64; 100], vec![900_000u64; 100]];
        let r = t
            .worst_ratio(&mut windows, 10)
            .expect("both classes sampled");
        assert!((r - 0.9).abs() < 0.05, "ratio = {r}");

        // Too few samples in every class → no judgement.
        let mut empty: Vec<Vec<u64>> = vec![Vec::new(), Vec::new()];
        assert_eq!(t.worst_ratio(&mut empty, 1), None);
    }

    #[test]
    fn exact_quantile_on_small_windows() {
        let mut w: Vec<u64> = (1..=100).rev().map(|v| v * 1_000).collect();
        // Ceil indexing: the quantile never under-reports a small window
        // (p99 of 100 samples is the max, p90 is the 91st value).
        assert_eq!(exact_quantile_us(&mut w, 0.99), 100.0);
        assert_eq!(exact_quantile_us(&mut w, 0.9), 91.0);
        assert_eq!(exact_quantile_us(&mut w, 0.0), 1.0);
        assert_eq!(exact_quantile_us(&mut w, 1.0), 100.0);
        let mut one = vec![7_000u64];
        assert_eq!(exact_quantile_us(&mut one, 0.99), 7.0);
    }

    #[test]
    fn hist_ratios_agree_with_exact_windows() {
        let t = TenantSlos::new(vec![
            SloClass::new("interactive", Slo::p99(100.0)),
            SloClass::new("batch", Slo::p99(1000.0)),
        ]);
        let targets = t.aimd_targets_us(0.7);
        let mut exact = vec![vec![50_000u64; 100], vec![900_000u64; 100]];
        let mut hists: Vec<WindowHistogram> = (0..2).map(|_| WindowHistogram::new()).collect();
        for (c, w) in exact.iter().enumerate() {
            for &v in w {
                hists[c].record_nanos(v);
            }
        }
        let re = t.worst_ratio(&mut exact, 10).expect("sampled");
        let rh = t.worst_ratio_hist(&mut hists, 10).expect("sampled");
        assert!((re - rh).abs() / re < 0.003, "exact {re} vs hist {rh}");
        let ce = t
            .worst_credit_ratio(&mut exact, &targets, 10)
            .expect("sampled");
        let ch = t
            .worst_credit_ratio_hist(&mut hists, &targets, 10)
            .expect("sampled");
        assert!((ce - ch).abs() / ce < 0.003, "exact {ce} vs hist {ch}");
        // Thin windows give no signal on either path.
        let mut thin: Vec<WindowHistogram> = (0..2).map(|_| WindowHistogram::new()).collect();
        thin[0].record_nanos(1);
        assert_eq!(t.worst_ratio_hist(&mut thin, 10), None);
    }

    #[test]
    fn trim_window_keeps_the_most_recent_samples() {
        let mut w: Vec<u64> = (0..MAX_WINDOW_SAMPLES as u64 + 100).collect();
        trim_window(&mut w);
        assert_eq!(w.len(), MAX_WINDOW_SAMPLES);
        assert_eq!(w[0], 100, "oldest samples dropped first");
        let mut small = vec![1u64, 2, 3];
        trim_window(&mut small);
        assert_eq!(small, vec![1, 2, 3], "short windows untouched");
    }

    #[test]
    fn aimd_targets_scale_each_bound() {
        let t = TenantSlos::new(vec![
            SloClass::new("interactive", Slo::p99(100.0)),
            SloClass::new("batch", Slo::p99(1000.0)),
        ]);
        assert_eq!(t.aimd_targets_us(0.7), vec![70.0, 700.0]);
        assert_eq!(t.aimd_targets_us(1.0), vec![100.0, 1000.0]);
    }

    #[test]
    #[should_panic(expected = "headroom")]
    fn zero_headroom_rejected() {
        TenantSlos::uniform(Slo::p99(100.0)).aimd_targets_us(0.0);
    }

    #[test]
    fn credit_ratio_normalizes_against_targets() {
        let t = TenantSlos::new(vec![
            SloClass::new("interactive", Slo::p99(100.0)),
            SloClass::new("batch", Slo::p99(1000.0)),
        ]);
        let targets = t.aimd_targets_us(0.7);
        // Interactive tail at 140µs = 2× its 70µs target; batch at 350µs =
        // 0.5× its 700µs target. The worst (interactive) drives the loop,
        // even though *neither* SLO bound judges batch the worse class.
        let mut windows = vec![vec![140_000u64; 100], vec![350_000u64; 100]];
        let r = t
            .worst_credit_ratio(&mut windows, &targets, 10)
            .expect("both classes sampled");
        assert!((r - 2.0).abs() < 0.01, "ratio = {r}");
        // Thin windows give no signal.
        let mut thin = vec![vec![1u64; 2], vec![]];
        assert_eq!(t.worst_credit_ratio(&mut thin, &targets, 10), None);
    }

    #[test]
    fn admit_fractions_shed_loosest_first() {
        let t = TenantSlos::new(vec![
            SloClass::new("interactive", Slo::p99(100.0)),
            SloClass::new("batch", Slo::p99(1000.0)),
        ]);
        assert_eq!(t.admit_fractions(), vec![1.0, 0.5]);
        // A single class is never capped.
        assert_eq!(
            TenantSlos::uniform(Slo::p99(500.0)).admit_fractions(),
            vec![1.0]
        );
        // Equal bounds share a rank: nobody is singled out.
        let even = TenantSlos::new(vec![
            SloClass::new("a", Slo::p99(100.0)),
            SloClass::new("b", Slo::p99(100.0)),
        ]);
        assert_eq!(even.admit_fractions(), vec![1.0, 1.0]);
    }

    #[test]
    fn uniform_registry_is_single_class() {
        let t = TenantSlos::uniform(Slo::p99(500.0));
        assert_eq!(t.classes().len(), 1);
        assert_eq!(t.class_of(1234), 0);
        assert_eq!(t.strictest(), Slo::p99(500.0));
    }

    #[test]
    fn percentile_is_respected() {
        // 2% slow requests violate a p99 SLO but meet a p95 SLO.
        let mut values = vec![1.0; 98];
        values.extend_from_slice(&[1_000.0, 1_000.0]);
        let h = hist_with(&values);
        assert!(!Slo::p99(100.0).met_by(&h));
        let p95 = Slo {
            percentile: 0.95,
            bound_us: 100.0,
        };
        assert!(p95.met_by(&h));
    }
}
