//! Service-level objectives.
//!
//! The paper's SLOs are all of the form "the 99th percentile of end-to-end
//! latency must not exceed a bound": `10·S̄` for the microbenchmarks
//! (Figures 3, 6, 7), 500µs for memcached (Figure 9), 1000µs for
//! Silo/TPC-C (Figure 10b, Table 1).

use zygos_sim::stats::LatencyHistogram;

/// An SLO: `quantile(percentile) ≤ bound_us`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Slo {
    /// The percentile checked, in `(0, 1)` (paper: 0.99).
    pub percentile: f64,
    /// The latency bound in microseconds.
    pub bound_us: f64,
}

impl Slo {
    /// The paper's microbenchmark SLO: p99 ≤ `multiple`·S̄.
    pub fn multiple_of_mean(mean_service_us: f64, multiple: f64) -> Slo {
        Slo {
            percentile: 0.99,
            bound_us: multiple * mean_service_us,
        }
    }

    /// A fixed p99 bound (e.g. 500µs for memcached, 1000µs for Silo).
    pub fn p99(bound_us: f64) -> Slo {
        Slo {
            percentile: 0.99,
            bound_us,
        }
    }

    /// True if the recorded latencies meet the SLO.
    pub fn met_by(&self, hist: &LatencyHistogram) -> bool {
        hist.quantile_us(self.percentile) <= self.bound_us
    }

    /// The measured margin: `bound − quantile` (negative = violated), µs.
    pub fn margin_us(&self, hist: &LatencyHistogram) -> f64 {
        self.bound_us - hist.quantile_us(self.percentile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_with(values_us: &[f64]) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for &v in values_us {
            h.record_micros_f64(v);
        }
        h
    }

    #[test]
    fn slo_construction() {
        let s = Slo::multiple_of_mean(10.0, 10.0);
        assert_eq!(s.bound_us, 100.0);
        assert_eq!(s.percentile, 0.99);
        assert_eq!(Slo::p99(1000.0).bound_us, 1000.0);
    }

    #[test]
    fn met_and_violated() {
        let good = hist_with(&[10.0; 100]);
        let slo = Slo::p99(50.0);
        assert!(slo.met_by(&good));
        assert!(slo.margin_us(&good) > 0.0);

        let mut values = vec![10.0; 95];
        values.extend_from_slice(&[500.0; 5]);
        let bad = hist_with(&values);
        assert!(!slo.met_by(&bad));
        assert!(slo.margin_us(&bad) < 0.0);
    }

    #[test]
    fn percentile_is_respected() {
        // 2% slow requests violate a p99 SLO but meet a p95 SLO.
        let mut values = vec![1.0; 98];
        values.extend_from_slice(&[1_000.0, 1_000.0]);
        let h = hist_with(&values);
        assert!(!Slo::p99(100.0).met_by(&h));
        let p95 = Slo {
            percentile: 0.95,
            bound_us: 100.0,
        };
        assert!(p95.met_by(&h));
    }
}
