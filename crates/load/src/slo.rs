//! Service-level objectives.
//!
//! The paper's SLOs are all of the form "the 99th percentile of end-to-end
//! latency must not exceed a bound": `10·S̄` for the microbenchmarks
//! (Figures 3, 6, 7), 500µs for memcached (Figure 9), 1000µs for
//! Silo/TPC-C (Figure 10b, Table 1).
//!
//! Beyond the paper, [`TenantSlos`] models a multi-tenant deployment where
//! connections belong to named SLO classes with different bounds (e.g. an
//! interactive class at `10·S̄` next to a batch class at `100·S̄`). The
//! SLO-driven allocation policy (`zygos_sched::SloController`) staffs on
//! the **worst relative margin** across classes — the maximum of
//! `p99 / bound` — so one violated tenant is enough to hold or grant
//! cores.

use zygos_sim::stats::LatencyHistogram;

/// An SLO: `quantile(percentile) ≤ bound_us`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Slo {
    /// The percentile checked, in `(0, 1)` (paper: 0.99).
    pub percentile: f64,
    /// The latency bound in microseconds.
    pub bound_us: f64,
}

impl Slo {
    /// The paper's microbenchmark SLO: p99 ≤ `multiple`·S̄.
    pub fn multiple_of_mean(mean_service_us: f64, multiple: f64) -> Slo {
        Slo {
            percentile: 0.99,
            bound_us: multiple * mean_service_us,
        }
    }

    /// A fixed p99 bound (e.g. 500µs for memcached, 1000µs for Silo).
    pub fn p99(bound_us: f64) -> Slo {
        Slo {
            percentile: 0.99,
            bound_us,
        }
    }

    /// True if the recorded latencies meet the SLO.
    pub fn met_by(&self, hist: &LatencyHistogram) -> bool {
        hist.quantile_us(self.percentile) <= self.bound_us
    }

    /// The measured margin: `bound − quantile` (negative = violated), µs.
    pub fn margin_us(&self, hist: &LatencyHistogram) -> f64 {
        self.bound_us - hist.quantile_us(self.percentile)
    }
}

/// One named SLO class in a multi-tenant deployment.
#[derive(Clone, Debug, PartialEq)]
pub struct SloClass {
    /// Operator-facing class name (e.g. `"interactive"`, `"batch"`).
    pub name: String,
    /// The class's objective.
    pub slo: Slo,
}

impl SloClass {
    /// Creates a class.
    pub fn new(name: impl Into<String>, slo: Slo) -> Self {
        SloClass {
            name: name.into(),
            slo,
        }
    }
}

/// Per-tenant SLO classes: tenants (connections) are assigned to classes
/// round-robin by id, which spreads every class across all home cores —
/// the interesting regime, since a violated class then cannot be fixed by
/// repartitioning alone.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantSlos {
    classes: Vec<SloClass>,
}

impl TenantSlos {
    /// Builds a registry from at least one class.
    pub fn new(classes: Vec<SloClass>) -> Self {
        assert!(!classes.is_empty(), "need at least one SLO class");
        TenantSlos { classes }
    }

    /// A single uniform class covering every tenant.
    pub fn uniform(slo: Slo) -> Self {
        TenantSlos::new(vec![SloClass::new("default", slo)])
    }

    /// The classes, in assignment order.
    pub fn classes(&self) -> &[SloClass] {
        &self.classes
    }

    /// The class index a tenant id maps to (round-robin).
    pub fn class_of(&self, tenant: u32) -> usize {
        tenant as usize % self.classes.len()
    }

    /// The strictest (lowest-bound) objective across classes — what a
    /// single-histogram host must meet to satisfy every tenant.
    pub fn strictest(&self) -> Slo {
        self.classes
            .iter()
            .map(|c| c.slo)
            .min_by(|a, b| a.bound_us.total_cmp(&b.bound_us))
            .expect("non-empty")
    }

    /// The worst relative margin across classes:
    /// `max(quantile_i(percentile_i) / bound_i)` over classes whose
    /// latency window (nanosecond samples, one `Vec` per class, sorted in
    /// place) holds at least `min_samples` entries. `> 1.0` means some
    /// tenant's SLO is violated; `None` when no class has enough samples
    /// to judge. This is the signal `zygos_sched::SloController` staffs
    /// on — the simulator's control tick calls it per window.
    pub fn worst_ratio(&self, per_class: &mut [Vec<u64>], min_samples: usize) -> Option<f64> {
        assert_eq!(per_class.len(), self.classes.len(), "one window per class");
        let mut worst: Option<f64> = None;
        for (c, samples) in self.classes.iter().zip(per_class) {
            if samples.len() >= min_samples.max(1) {
                let q = exact_quantile_us(samples, c.slo.percentile);
                let r = q / c.slo.bound_us;
                worst = Some(worst.map_or(r, |w: f64| w.max(r)));
            }
        }
        worst
    }
}

/// Exact quantile of an (unsorted) window of nanosecond latencies, in µs.
/// Sorts in place — meant for small control-tick windows, where the
/// histogram machinery would be allocation-heavy and its ~0.1% bucketing
/// pointless.
pub fn exact_quantile_us(samples: &mut [u64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "quantile of an empty window");
    samples.sort_unstable();
    let idx = ((samples.len() as f64 - 1.0) * q).ceil() as usize;
    samples[idx.min(samples.len() - 1)] as f64 / 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_with(values_us: &[f64]) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for &v in values_us {
            h.record_micros_f64(v);
        }
        h
    }

    #[test]
    fn slo_construction() {
        let s = Slo::multiple_of_mean(10.0, 10.0);
        assert_eq!(s.bound_us, 100.0);
        assert_eq!(s.percentile, 0.99);
        assert_eq!(Slo::p99(1000.0).bound_us, 1000.0);
    }

    #[test]
    fn met_and_violated() {
        let good = hist_with(&[10.0; 100]);
        let slo = Slo::p99(50.0);
        assert!(slo.met_by(&good));
        assert!(slo.margin_us(&good) > 0.0);

        let mut values = vec![10.0; 95];
        values.extend_from_slice(&[500.0; 5]);
        let bad = hist_with(&values);
        assert!(!slo.met_by(&bad));
        assert!(slo.margin_us(&bad) < 0.0);
    }

    #[test]
    fn tenant_classes_assign_and_rank() {
        let t = TenantSlos::new(vec![
            SloClass::new("interactive", Slo::p99(100.0)),
            SloClass::new("batch", Slo::p99(1000.0)),
        ]);
        assert_eq!(t.class_of(0), 0);
        assert_eq!(t.class_of(1), 1);
        assert_eq!(t.class_of(2), 0);
        assert_eq!(t.strictest().bound_us, 100.0);

        // interactive p99 ≈ 50 (ratio 0.5), batch p99 ≈ 900 (ratio 0.9):
        // the worst ratio is batch's even though its bound is looser.
        let mut windows = vec![vec![50_000u64; 100], vec![900_000u64; 100]];
        let r = t
            .worst_ratio(&mut windows, 10)
            .expect("both classes sampled");
        assert!((r - 0.9).abs() < 0.05, "ratio = {r}");

        // Too few samples in every class → no judgement.
        let mut empty: Vec<Vec<u64>> = vec![Vec::new(), Vec::new()];
        assert_eq!(t.worst_ratio(&mut empty, 1), None);
    }

    #[test]
    fn exact_quantile_on_small_windows() {
        let mut w: Vec<u64> = (1..=100).rev().map(|v| v * 1_000).collect();
        // Ceil indexing: the quantile never under-reports a small window
        // (p99 of 100 samples is the max, p90 is the 91st value).
        assert_eq!(exact_quantile_us(&mut w, 0.99), 100.0);
        assert_eq!(exact_quantile_us(&mut w, 0.9), 91.0);
        assert_eq!(exact_quantile_us(&mut w, 0.0), 1.0);
        assert_eq!(exact_quantile_us(&mut w, 1.0), 100.0);
        let mut one = vec![7_000u64];
        assert_eq!(exact_quantile_us(&mut one, 0.99), 7.0);
    }

    #[test]
    fn uniform_registry_is_single_class() {
        let t = TenantSlos::uniform(Slo::p99(500.0));
        assert_eq!(t.classes().len(), 1);
        assert_eq!(t.class_of(1234), 0);
        assert_eq!(t.strictest(), Slo::p99(500.0));
    }

    #[test]
    fn percentile_is_respected() {
        // 2% slow requests violate a p99 SLO but meet a p95 SLO.
        let mut values = vec![1.0; 98];
        values.extend_from_slice(&[1_000.0, 1_000.0]);
        let h = hist_with(&values);
        assert!(!Slo::p99(100.0).met_by(&h));
        let p95 = Slo {
            percentile: 0.95,
            bound_us: 100.0,
        };
        assert!(p95.met_by(&h));
    }
}
