//! Thread-safe latency recording for the live runtime.
//!
//! [`SharedRecorder`] is the measurement end of a live experiment: client
//! threads record end-to-end latencies into one log-bucketed histogram,
//! and SLO verdicts are taken on snapshots. A small-sample audit (see the
//! tests) guarantees the histogram's p99 is conservative below 100
//! samples — it reports the max, so an "SLO met" verdict can never rest
//! on a rank that excluded the worst observation.
//!
//! ```
//! use std::time::Duration;
//! use zygos_load::{SharedRecorder, Slo};
//!
//! let r = SharedRecorder::new();
//! for us in [10, 12, 15, 40] {
//!     r.record_std(Duration::from_micros(us));
//! }
//! let hist = r.snapshot();
//! assert_eq!(hist.count(), 4);
//! assert!(Slo::p99(100.0).met_by(&hist));
//! assert!(!Slo::p99(20.0).met_by(&hist)); // conservative small-n p99 = max
//! ```

use std::sync::Mutex;

use zygos_sim::stats::LatencyHistogram;
use zygos_sim::time::SimDuration;

/// A latency recorder shareable across client threads.
///
/// Internally a mutex over the log-bucketed histogram; recording is a few
/// nanoseconds of bucket arithmetic, so contention is negligible at the
/// request rates the live (single-machine) harness reaches.
#[derive(Default)]
pub struct SharedRecorder {
    hist: Mutex<LatencyHistogram>,
}

impl SharedRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        SharedRecorder::default()
    }

    /// Records one latency.
    pub fn record(&self, d: SimDuration) {
        self.hist.lock().expect("recorder poisoned").record(d);
    }

    /// Records a latency from a `std::time::Duration`.
    pub fn record_std(&self, d: std::time::Duration) {
        self.record(SimDuration::from_nanos(d.as_nanos() as u64));
    }

    /// Takes a snapshot of the histogram.
    pub fn snapshot(&self) -> LatencyHistogram {
        self.hist.lock().expect("recorder poisoned").clone()
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.hist.lock().expect("recorder poisoned").count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn records_and_snapshots() {
        let r = SharedRecorder::new();
        r.record(SimDuration::from_micros(10));
        r.record_std(std::time::Duration::from_micros(20));
        let h = r.snapshot();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max_nanos(), 20_000);
    }

    #[test]
    fn small_sample_p99_is_conservative() {
        // The SLO tooling reads p99 from snapshots that may hold very few
        // samples (short phases, per-connection recorders). Audit result:
        // below 100 samples the histogram reports the max — an SLO
        // "met" verdict can then never rest on a rank that excluded the
        // worst observation.
        let r = SharedRecorder::new();
        for us in [10u64, 20, 30, 500] {
            r.record(SimDuration::from_micros(us));
        }
        let h = r.snapshot();
        assert_eq!(h.count(), 4);
        assert!(
            (h.p99_us() - 500.0).abs() / 500.0 < 0.002,
            "p99 = {}",
            h.p99_us()
        );
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let r = Arc::new(SharedRecorder::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        r.record(SimDuration::from_nanos(i + 1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.count(), 40_000);
    }
}
