//! Reject-aware retry policies for open-loop clients.
//!
//! A client running against a credit-gated server sees two new events a
//! plain open-loop generator never had to handle: a **local shed** (the
//! sender-side credit balance is zero, the request was never transmitted)
//! and an **explicit reject** (the server shed it at the edge). What to do
//! next is a per-request *policy* decision, driven by how much latency
//! budget the request has left:
//!
//! * [`RetryPolicy::Drop`] — count it and move on. Right for open-loop
//!   measurement (a retried request is a different sample) and for
//!   requests whose value expires immediately.
//! * [`RetryPolicy::Backoff`] — retry after an exponentially growing
//!   delay, up to an attempt cap. Right for fire-and-forget work that
//!   must eventually land; the growing delay is what keeps a rejecting
//!   server from being hammered by its own backpressure signal.
//! * [`RetryPolicy::HedgeToDeadline`] — retry immediately as long as the
//!   request can still meet its deadline, then give up. Right for
//!   latency-budgeted interactive work: every microsecond spent backing
//!   off is budget not spent queueing.
//!
//! The policy is pure — given the attempt number and the elapsed time it
//! returns a [`RetryDecision`] — so hosts (the live load generator, tests,
//! the simulator's clients) share one implementation and the decision
//! table is trivially testable:
//!
//! ```
//! use zygos_load::retry::{RetryDecision, RetryPolicy};
//!
//! // Exponential backoff: 100µs, 200µs, 400µs, then give up.
//! let p = RetryPolicy::Backoff { base_us: 100, factor: 2.0, max_attempts: 3 };
//! assert_eq!(p.on_shed(0, 0), RetryDecision::RetryAfterUs(100));
//! assert_eq!(p.on_shed(1, 150), RetryDecision::RetryAfterUs(200));
//! assert_eq!(p.on_shed(2, 400), RetryDecision::RetryAfterUs(400));
//! assert_eq!(p.on_shed(3, 900), RetryDecision::GiveUp);
//!
//! // Hedging: retry at once while the 1ms deadline is alive.
//! let h = RetryPolicy::HedgeToDeadline { deadline_us: 1_000 };
//! assert_eq!(h.on_shed(0, 400), RetryDecision::RetryNow);
//! assert_eq!(h.on_shed(1, 1_200), RetryDecision::GiveUp);
//!
//! // Drop never retries.
//! assert_eq!(RetryPolicy::Drop.on_shed(0, 0), RetryDecision::GiveUp);
//! ```

/// What a client should do with a shed (locally refused or explicitly
/// rejected) request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetryDecision {
    /// Abandon the request (count it as shed).
    GiveUp,
    /// Retry after waiting this many microseconds.
    RetryAfterUs(u64),
    /// Retry immediately (the latency budget is still alive).
    RetryNow,
}

/// A reject-aware retry policy (see module docs for when to use which).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RetryPolicy {
    /// Never retry: every shed is final.
    Drop,
    /// Exponential backoff: attempt `n` (0-based) waits
    /// `base_us × factor^n` microseconds; after `max_attempts` retries the
    /// request is abandoned.
    Backoff {
        /// Delay before the first retry, µs.
        base_us: u64,
        /// Multiplier applied per subsequent attempt (≥ 1.0).
        factor: f64,
        /// Retries attempted before giving up.
        max_attempts: u32,
    },
    /// Immediate retries while the request can still meet its end-to-end
    /// deadline; abandoned the moment the elapsed time crosses it.
    HedgeToDeadline {
        /// The request's end-to-end latency budget, µs.
        deadline_us: u64,
    },
}

impl RetryPolicy {
    /// The decision for a request shed on its `attempt`-th try (0-based)
    /// after `elapsed_us` microseconds since it was first issued.
    pub fn on_shed(&self, attempt: u32, elapsed_us: u64) -> RetryDecision {
        match *self {
            RetryPolicy::Drop => RetryDecision::GiveUp,
            RetryPolicy::Backoff {
                base_us,
                factor,
                max_attempts,
            } => {
                if attempt >= max_attempts {
                    RetryDecision::GiveUp
                } else {
                    let delay = base_us as f64 * factor.max(1.0).powi(attempt as i32);
                    RetryDecision::RetryAfterUs(delay.min(u64::MAX as f64) as u64)
                }
            }
            RetryPolicy::HedgeToDeadline { deadline_us } => {
                if elapsed_us < deadline_us {
                    RetryDecision::RetryNow
                } else {
                    RetryDecision::GiveUp
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_is_final() {
        for attempt in 0..4 {
            assert_eq!(RetryPolicy::Drop.on_shed(attempt, 0), RetryDecision::GiveUp);
        }
    }

    #[test]
    fn backoff_grows_exponentially_then_caps() {
        let p = RetryPolicy::Backoff {
            base_us: 50,
            factor: 2.0,
            max_attempts: 4,
        };
        assert_eq!(p.on_shed(0, 0), RetryDecision::RetryAfterUs(50));
        assert_eq!(p.on_shed(1, 0), RetryDecision::RetryAfterUs(100));
        assert_eq!(p.on_shed(2, 0), RetryDecision::RetryAfterUs(200));
        assert_eq!(p.on_shed(3, 0), RetryDecision::RetryAfterUs(400));
        assert_eq!(p.on_shed(4, 0), RetryDecision::GiveUp);
    }

    #[test]
    fn backoff_factor_below_one_is_clamped_constant() {
        let p = RetryPolicy::Backoff {
            base_us: 10,
            factor: 0.5,
            max_attempts: 2,
        };
        assert_eq!(p.on_shed(0, 0), RetryDecision::RetryAfterUs(10));
        assert_eq!(p.on_shed(1, 0), RetryDecision::RetryAfterUs(10));
    }

    #[test]
    fn hedge_respects_the_deadline_exactly() {
        let h = RetryPolicy::HedgeToDeadline { deadline_us: 500 };
        assert_eq!(h.on_shed(0, 499), RetryDecision::RetryNow);
        assert_eq!(h.on_shed(0, 500), RetryDecision::GiveUp);
        assert_eq!(
            h.on_shed(9, 0),
            RetryDecision::RetryNow,
            "attempts unbounded"
        );
    }
}
