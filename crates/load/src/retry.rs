//! Reject-aware retry policies for open-loop clients.
//!
//! A client running against a credit-gated server sees two new events a
//! plain open-loop generator never had to handle: a **local shed** (the
//! sender-side credit balance is zero, the request was never transmitted)
//! and an **explicit reject** (the server shed it at the edge). What to do
//! next is a per-request *policy* decision, driven by how much latency
//! budget the request has left:
//!
//! * [`RetryPolicy::Drop`] — count it and move on. Right for open-loop
//!   measurement (a retried request is a different sample) and for
//!   requests whose value expires immediately.
//! * [`RetryPolicy::Backoff`] — retry after an exponentially growing
//!   delay, up to an attempt cap. Right for fire-and-forget work that
//!   must eventually land; the growing delay is what keeps a rejecting
//!   server from being hammered by its own backpressure signal.
//! * [`RetryPolicy::HedgeToDeadline`] — retry immediately as long as the
//!   request can still meet its deadline, then give up. Right for
//!   latency-budgeted interactive work: every microsecond spent backing
//!   off is budget not spent queueing.
//!
//! The policy is pure — given the attempt number and the elapsed time it
//! returns a [`RetryDecision`] — so hosts (the live load generator, tests,
//! the simulator's clients) share one implementation and the decision
//! table is trivially testable:
//!
//! ```
//! use zygos_load::retry::{RetryDecision, RetryPolicy};
//!
//! // Exponential backoff: 100µs, 200µs, 400µs, then give up.
//! let p = RetryPolicy::Backoff { base_us: 100, factor: 2.0, max_attempts: 3 };
//! assert_eq!(p.on_shed(0, 0), RetryDecision::RetryAfterUs(100));
//! assert_eq!(p.on_shed(1, 150), RetryDecision::RetryAfterUs(200));
//! assert_eq!(p.on_shed(2, 400), RetryDecision::RetryAfterUs(400));
//! assert_eq!(p.on_shed(3, 900), RetryDecision::GiveUp);
//!
//! // Hedging: retry at once while the 1ms deadline is alive.
//! let h = RetryPolicy::HedgeToDeadline { deadline_us: 1_000 };
//! assert_eq!(h.on_shed(0, 400), RetryDecision::RetryNow);
//! assert_eq!(h.on_shed(1, 1_200), RetryDecision::GiveUp);
//!
//! // Drop never retries.
//! assert_eq!(RetryPolicy::Drop.on_shed(0, 0), RetryDecision::GiveUp);
//! ```
//!
//! # Jitter
//!
//! A fleet of clients sharing one backoff schedule retries in lockstep:
//! every request shed by the same burst comes back `base_us` later as the
//! *same* burst, and the gate sheds it again — synchronized retry waves
//! defeat backoff by construction. [`RetryPolicy::on_shed_jittered`]
//! spreads each connection's retries across the backoff window with a
//! delay derived deterministically from a per-connection key, so runs
//! stay reproducible while the waves decohere.

/// What a client should do with a shed (locally refused or explicitly
/// rejected) request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetryDecision {
    /// Abandon the request (count it as shed).
    GiveUp,
    /// Retry after waiting this many microseconds.
    RetryAfterUs(u64),
    /// Retry immediately (the latency budget is still alive).
    RetryNow,
}

/// A reject-aware retry policy (see module docs for when to use which).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RetryPolicy {
    /// Never retry: every shed is final.
    Drop,
    /// Exponential backoff: attempt `n` (0-based) waits
    /// `base_us × factor^n` microseconds; after `max_attempts` retries the
    /// request is abandoned.
    Backoff {
        /// Delay before the first retry, µs.
        base_us: u64,
        /// Multiplier applied per subsequent attempt (≥ 1.0).
        factor: f64,
        /// Retries attempted before giving up.
        max_attempts: u32,
    },
    /// Immediate retries while the request can still meet its end-to-end
    /// deadline; abandoned the moment the elapsed time crosses it, or
    /// after [`MAX_HEDGES`] attempts, whichever comes first.
    HedgeToDeadline {
        /// The request's end-to-end latency budget, µs.
        deadline_us: u64,
    },
}

/// Hard cap on hedged attempts. A hedge decision fires *immediately*, so
/// bounding it only by the deadline lets a zero-elapsed loop (a local
/// shed that costs no simulated or wall time) issue unbounded retries
/// inside one instant. Eight attempts is past the point where any
/// realistic hedge still pays: each one re-enters the same gate that
/// just shed its predecessor.
pub const MAX_HEDGES: u32 = 8;

/// SplitMix64 finalizer — the avalanche step shared with the routing
/// plane, duplicated here so the retry table stays dependency-free.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// The decision for a request shed on its `attempt`-th try (0-based)
    /// after `elapsed_us` microseconds since it was first issued.
    pub fn on_shed(&self, attempt: u32, elapsed_us: u64) -> RetryDecision {
        match *self {
            RetryPolicy::Drop => RetryDecision::GiveUp,
            RetryPolicy::Backoff {
                base_us,
                factor,
                max_attempts,
            } => {
                if attempt >= max_attempts {
                    RetryDecision::GiveUp
                } else {
                    let delay = base_us as f64 * factor.max(1.0).powi(attempt as i32);
                    RetryDecision::RetryAfterUs(delay.min(u64::MAX as f64) as u64)
                }
            }
            RetryPolicy::HedgeToDeadline { deadline_us } => {
                if attempt < MAX_HEDGES && elapsed_us < deadline_us {
                    RetryDecision::RetryNow
                } else {
                    RetryDecision::GiveUp
                }
            }
        }
    }

    /// [`Self::on_shed`] with deterministic equal-jitter applied to
    /// [`RetryPolicy::Backoff`] delays: attempt `n` waits somewhere in
    /// `[d/2, d)` where `d = base_us × factor^n`, the exact offset a pure
    /// function of `(key, attempt)`. Use a stable per-connection key (the
    /// routing plane's `conn_key` is a good choice) so each connection
    /// lands at its own reproducible phase and retry waves decohere.
    /// `Drop` and `HedgeToDeadline` are unchanged — neither schedules a
    /// delay to jitter.
    pub fn on_shed_jittered(&self, attempt: u32, elapsed_us: u64, key: u64) -> RetryDecision {
        match self.on_shed(attempt, elapsed_us) {
            RetryDecision::RetryAfterUs(d) if matches!(self, RetryPolicy::Backoff { .. }) => {
                // 53-bit mantissa fraction in [0, 1), avalanche-mixed so
                // consecutive attempts of one connection and equal
                // attempts of different connections are uncorrelated.
                let frac = (mix(key ^ mix(attempt as u64)) >> 11) as f64 / (1u64 << 53) as f64;
                let jittered = d / 2 + ((d as f64 / 2.0) * frac) as u64;
                RetryDecision::RetryAfterUs(jittered.max(1))
            }
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_is_final() {
        for attempt in 0..4 {
            assert_eq!(RetryPolicy::Drop.on_shed(attempt, 0), RetryDecision::GiveUp);
        }
    }

    #[test]
    fn backoff_grows_exponentially_then_caps() {
        let p = RetryPolicy::Backoff {
            base_us: 50,
            factor: 2.0,
            max_attempts: 4,
        };
        assert_eq!(p.on_shed(0, 0), RetryDecision::RetryAfterUs(50));
        assert_eq!(p.on_shed(1, 0), RetryDecision::RetryAfterUs(100));
        assert_eq!(p.on_shed(2, 0), RetryDecision::RetryAfterUs(200));
        assert_eq!(p.on_shed(3, 0), RetryDecision::RetryAfterUs(400));
        assert_eq!(p.on_shed(4, 0), RetryDecision::GiveUp);
    }

    #[test]
    fn backoff_factor_below_one_is_clamped_constant() {
        let p = RetryPolicy::Backoff {
            base_us: 10,
            factor: 0.5,
            max_attempts: 2,
        };
        assert_eq!(p.on_shed(0, 0), RetryDecision::RetryAfterUs(10));
        assert_eq!(p.on_shed(1, 0), RetryDecision::RetryAfterUs(10));
    }

    #[test]
    fn hedge_respects_the_deadline_exactly() {
        let h = RetryPolicy::HedgeToDeadline { deadline_us: 500 };
        assert_eq!(h.on_shed(0, 499), RetryDecision::RetryNow);
        assert_eq!(h.on_shed(0, 500), RetryDecision::GiveUp);
    }

    #[test]
    fn runaway_hedge_is_bounded_by_attempts_inside_a_live_deadline() {
        // A local shed costs no elapsed time, so elapsed_us stays 0 and
        // the deadline alone would never stop the loop. The attempt cap
        // must.
        let h = RetryPolicy::HedgeToDeadline { deadline_us: 500 };
        for attempt in 0..MAX_HEDGES {
            assert_eq!(h.on_shed(attempt, 0), RetryDecision::RetryNow);
        }
        assert_eq!(h.on_shed(MAX_HEDGES, 0), RetryDecision::GiveUp);
        assert_eq!(h.on_shed(MAX_HEDGES + 1, 0), RetryDecision::GiveUp);
    }

    #[test]
    fn jittered_backoff_is_reproducible_and_stays_in_the_half_open_window() {
        let p = RetryPolicy::Backoff {
            base_us: 100,
            factor: 2.0,
            max_attempts: 3,
        };
        for attempt in 0..3u32 {
            let d = match p.on_shed(attempt, 0) {
                RetryDecision::RetryAfterUs(d) => d,
                other => panic!("expected a delay, got {other:?}"),
            };
            for key in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
                let a = p.on_shed_jittered(attempt, 0, key);
                let b = p.on_shed_jittered(attempt, 0, key);
                assert_eq!(a, b, "same (key, attempt) must give the same delay");
                match a {
                    RetryDecision::RetryAfterUs(j) => {
                        assert!(j >= d / 2 && j < d, "jitter {j} outside [{}, {d})", d / 2)
                    }
                    other => panic!("expected a delay, got {other:?}"),
                }
            }
        }
        // Past the attempt cap jitter has nothing to perturb.
        assert_eq!(p.on_shed_jittered(3, 0, 7), RetryDecision::GiveUp);
    }

    #[test]
    fn jitter_desynchronizes_connections_sharing_one_schedule() {
        // 64 connections shed by the same burst: unjittered they all come
        // back 100µs later as the same wave. Jittered, their first-retry
        // delays must spread across the window instead of colliding.
        let p = RetryPolicy::Backoff {
            base_us: 100,
            factor: 2.0,
            max_attempts: 3,
        };
        let delays: Vec<u64> = (0..64u64)
            .map(|conn| match p.on_shed_jittered(0, 0, conn) {
                RetryDecision::RetryAfterUs(d) => d,
                other => panic!("expected a delay, got {other:?}"),
            })
            .collect();
        let mut distinct = delays.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(
            distinct.len() >= 16,
            "64 connections collapsed onto {} retry instants",
            distinct.len()
        );

        // Drop and Hedge pass through untouched.
        assert_eq!(
            RetryPolicy::Drop.on_shed_jittered(0, 0, 42),
            RetryDecision::GiveUp
        );
        assert_eq!(
            RetryPolicy::HedgeToDeadline { deadline_us: 500 }.on_shed_jittered(0, 100, 42),
            RetryDecision::RetryNow
        );
    }
}
