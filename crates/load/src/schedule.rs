//! Poisson arrival schedules.
//!
//! An [`ArrivalSchedule`] is pre-generated rather than sampled on the
//! fly: the open-loop property the paper's methodology depends on
//! (§3.1, citing Schroeder et al.) is exactly that the client never
//! slows down when the server does, and a generator that samples
//! inter-arrival gaps while also waiting on responses silently turns
//! closed-loop under overload.
//!
//! ```
//! use zygos_load::ArrivalSchedule;
//!
//! // 0.5 requests/µs over 16 connections, reproducible by seed.
//! let s = ArrivalSchedule::generate(0.5, 10_000, 16, 42);
//! assert_eq!(s.len(), 10_000);
//! assert!((s.rate_per_us() - 0.5).abs() < 0.05);
//! // Arrivals come pre-sorted in time.
//! assert!(s.arrivals().windows(2).all(|w| w[0].at <= w[1].at));
//! ```

use zygos_sim::rng::Xoshiro256;
use zygos_sim::time::{SimDuration, SimTime};

/// One scheduled request: when to send it and on which connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Send time relative to the start of the run.
    pub at: SimTime,
    /// Connection index in `[0, conns)`.
    pub conn: u32,
}

/// A pre-generated open-loop arrival schedule.
///
/// Pre-generating (rather than sampling on the fly) keeps the live runtime
/// honest: the generator never slows down under load, which is the defining
/// property of an open-loop client (Schroeder et al., NSDI'06, cited §3.1).
#[derive(Clone, Debug)]
pub struct ArrivalSchedule {
    arrivals: Vec<Arrival>,
}

impl ArrivalSchedule {
    /// Generates `n` arrivals at `rate_per_us` requests/µs over `conns`
    /// uniformly random connections.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_us` is not positive or `conns == 0`.
    pub fn generate(rate_per_us: f64, n: usize, conns: u32, seed: u64) -> Self {
        assert!(rate_per_us > 0.0, "rate must be positive");
        assert!(conns > 0, "need at least one connection");
        let mut rng = Xoshiro256::new(seed);
        let mean_gap = 1.0 / rate_per_us;
        let mut t = SimTime::ZERO;
        let arrivals = (0..n)
            .map(|_| {
                t += SimDuration::from_micros_f64(rng.next_exp(mean_gap));
                Arrival {
                    at: t,
                    conn: rng.next_bounded(conns as u64) as u32,
                }
            })
            .collect();
        ArrivalSchedule { arrivals }
    }

    /// The arrivals, in time order.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Total span of the schedule.
    pub fn span(&self) -> SimDuration {
        match self.arrivals.last() {
            Some(last) => last.at.duration_since(SimTime::ZERO),
            None => SimDuration::ZERO,
        }
    }

    /// Achieved offered rate in requests/µs.
    pub fn rate_per_us(&self) -> f64 {
        let span = self.span().as_micros_f64();
        if span == 0.0 {
            0.0
        } else {
            self.arrivals.len() as f64 / span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_time_ordered() {
        let s = ArrivalSchedule::generate(1.0, 10_000, 16, 1);
        assert_eq!(s.len(), 10_000);
        for w in s.arrivals().windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn rate_matches_request() {
        let s = ArrivalSchedule::generate(0.5, 100_000, 8, 2);
        let rate = s.rate_per_us();
        assert!((rate - 0.5).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn connections_are_covered() {
        let s = ArrivalSchedule::generate(1.0, 10_000, 4, 3);
        let mut seen = [false; 4];
        for a in s.arrivals() {
            seen[a.conn as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn gaps_look_exponential() {
        // Coefficient of variation of exponential gaps is 1.
        let s = ArrivalSchedule::generate(1.0, 200_000, 16, 4);
        let gaps: Vec<f64> = s
            .arrivals()
            .windows(2)
            .map(|w| w[1].at.duration_since(w[0].at).as_micros_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "cv = {cv}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        ArrivalSchedule::generate(0.0, 1, 1, 0);
    }
}
