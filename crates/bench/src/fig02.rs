//! Figure 2: p99 tail latency vs load for the four idealized queueing
//! models × four service-time distributions (n = 16, S̄ = 1).

use zygos_sim::dist::ServiceDist;
use zygos_sim::queueing::{simulate, Policy, QueueConfig};

use crate::Scale;

/// One plotted curve.
pub struct Curve {
    /// Distribution panel (a–d).
    pub dist: &'static str,
    /// Model label (Kendall notation).
    pub model: String,
    /// `(load, p99 in units of S̄)` points.
    pub points: Vec<(f64, f64)>,
}

/// The four paper distributions at unit mean.
pub fn distributions() -> Vec<(&'static str, ServiceDist)> {
    vec![
        ("deterministic", ServiceDist::deterministic_us(1.0)),
        ("exponential", ServiceDist::exponential_us(1.0)),
        ("bimodal-1", ServiceDist::bimodal1_us(1.0)),
        ("bimodal-2", ServiceDist::bimodal2_us(1.0)),
    ]
}

/// Runs the full figure.
pub fn run(scale: &Scale) -> Vec<Curve> {
    let mut curves = Vec::new();
    for (dist_label, dist) in distributions() {
        for policy in Policy::ALL {
            let points = scale
                .loads
                .iter()
                .map(|&load| {
                    let out = simulate(&QueueConfig {
                        servers: 16,
                        load,
                        service: dist.clone(),
                        policy,
                        requests: scale.requests,
                        seed: 2,
                        warmup: scale.warmup,
                    });
                    (load, out.p99_us())
                })
                .collect();
            curves.push(Curve {
                dist: dist_label,
                model: policy.label(16),
                points,
            });
        }
    }
    curves
}

/// Prints the figure in series layout.
pub fn print(curves: &[Curve]) {
    crate::print_header(
        "fig02",
        "99th-percentile latency vs load, 4 queueing models x 4 distributions (S=1)",
    );
    for c in curves {
        crate::print_series("fig02", c.dist, &c.model, &c.points);
    }
}
