//! Figure 2: p99 tail latency vs load for the four idealized queueing
//! models × four service-time distributions (n = 16, S̄ = 1).
//!
//! Expressed as one scenario per distribution panel, each with a
//! queueing-model case per policy — the zero-overhead models are just
//! another host of the scenario plane.

use zygos_lab::Case;
use zygos_sim::dist::ServiceDist;
use zygos_sim::queueing::Policy;

use crate::Scale;

/// One plotted curve.
pub struct Curve {
    /// Distribution panel (a–d).
    pub dist: &'static str,
    /// Model label (Kendall notation).
    pub model: String,
    /// `(load, p99 in units of S̄)` points.
    pub points: Vec<(f64, f64)>,
}

/// The four paper distributions at unit mean.
pub fn distributions() -> Vec<(&'static str, ServiceDist)> {
    vec![
        ("deterministic", ServiceDist::deterministic_us(1.0)),
        ("exponential", ServiceDist::exponential_us(1.0)),
        ("bimodal-1", ServiceDist::bimodal1_us(1.0)),
        ("bimodal-2", ServiceDist::bimodal2_us(1.0)),
    ]
}

/// Runs the full figure.
pub fn run(scale: &Scale) -> Vec<Curve> {
    let mut curves = Vec::new();
    for (dist_label, dist) in distributions() {
        let mut builder = crate::scenario("fig02", scale)
            .service(dist)
            .cores(16)
            .conns(16)
            .loads(scale.loads.iter().copied().filter(|&l| l < 1.0).collect())
            .seed(2);
        for policy in Policy::ALL {
            builder = builder.case(Case::model(policy.label(16), policy));
        }
        let sc = builder.build().expect("fig02 scenario");
        for series in crate::run(&sc).series {
            curves.push(Curve {
                dist: dist_label,
                model: series.label.clone(),
                points: zygos_lab::xy(&series.points, |p| p.load, |p| p.p99_us),
            });
        }
    }
    curves
}

/// Prints the figure in series layout.
pub fn print(curves: &[Curve]) {
    crate::print_header(
        "fig02",
        "99th-percentile latency vs load, 4 queueing models x 4 distributions (S=1)",
    );
    for c in curves {
        crate::print_series("fig02", c.dist, &c.model, &c.points);
    }
}
