//! Figure 11: the impact of the SLO choice — IX (B=1 and B=64) vs ZygOS
//! for 10µs deterministic tasks under a 100µs and a 1000µs SLO.

use zygos_lab::{Case, SimHost};
use zygos_sim::dist::ServiceDist;

use crate::Scale;

/// One curve (shared by both panels — the panels differ only in the SLO
/// line and Y range).
pub struct Curve {
    /// System label.
    pub system: String,
    /// `(throughput MRPS, p99 µs)`.
    pub points: Vec<(f64, f64)>,
    /// Max throughput meeting the 100µs SLO (MRPS).
    pub max_mrps_slo_100: f64,
    /// Max throughput meeting the 1000µs SLO (MRPS).
    pub max_mrps_slo_1000: f64,
}

/// Runs the figure.
pub fn run(scale: &Scale) -> Vec<Curve> {
    let sc = crate::scenario("fig11", scale)
        .service(ServiceDist::deterministic_us(10.0))
        .loads(scale.loads.clone())
        .case(Case::sim("IX B=64", SimHost::Ix).rx_batch(64))
        .case(Case::sim("IX B=1", SimHost::Ix).rx_batch(1))
        .case(Case::sim("ZygOS", SimHost::Zygos).rx_batch(64))
        .build()
        .expect("fig11 scenario");
    crate::run(&sc)
        .series
        .into_iter()
        .map(|series| {
            let max_under = |slo: f64| {
                series
                    .points
                    .iter()
                    .filter(|p| p.p99_us <= slo)
                    .map(|p| p.mrps)
                    .fold(0.0, f64::max)
            };
            Curve {
                max_mrps_slo_100: max_under(100.0),
                max_mrps_slo_1000: max_under(1_000.0),
                points: zygos_lab::xy(&series.points, |p| p.mrps, |p| p.p99_us),
                system: series.label,
            }
        })
        .collect()
}

/// Prints the figure and the two SLO verdicts.
pub fn print(curves: &[Curve]) {
    crate::print_header(
        "fig11",
        "SLO tradeoff: IX B=1/B=64 vs ZygOS, 10us deterministic, SLO 100us vs 1000us",
    );
    for c in curves {
        crate::print_series("fig11", "det-10us", &c.system, &c.points);
    }
    println!("# max throughput meeting each SLO:");
    for c in curves {
        println!(
            "# {:<8} @SLO=100us: {:.2} MRPS   @SLO=1000us: {:.2} MRPS",
            c.system, c.max_mrps_slo_100, c.max_mrps_slo_1000
        );
    }
}
