//! Figure 11: the impact of the SLO choice — IX (B=1 and B=64) vs ZygOS
//! for 10µs deterministic tasks under a 100µs and a 1000µs SLO.

use zygos_sim::dist::ServiceDist;
use zygos_sysim::{latency_throughput_sweep, SysConfig, SystemKind};

use crate::Scale;

/// One curve (shared by both panels — the panels differ only in the SLO
/// line and Y range).
pub struct Curve {
    /// System label.
    pub system: String,
    /// `(throughput MRPS, p99 µs)`.
    pub points: Vec<(f64, f64)>,
    /// Max throughput meeting the 100µs SLO (MRPS).
    pub max_mrps_slo_100: f64,
    /// Max throughput meeting the 1000µs SLO (MRPS).
    pub max_mrps_slo_1000: f64,
}

/// Runs the figure.
pub fn run(scale: &Scale) -> Vec<Curve> {
    let service = ServiceDist::deterministic_us(10.0);
    let configs = [
        (SystemKind::Ix, 64u64, "IX B=64"),
        (SystemKind::Ix, 1, "IX B=1"),
        (SystemKind::Zygos, 64, "ZygOS"),
    ];
    configs
        .into_iter()
        .map(|(system, batch, label)| {
            let mut cfg = SysConfig::paper(system, service.clone(), 0.5);
            cfg.rx_batch = batch;
            cfg.requests = scale.requests;
            cfg.warmup = scale.warmup;
            let pts = latency_throughput_sweep(&cfg, &scale.loads);
            let max_under = |slo: f64| {
                pts.iter()
                    .filter(|p| p.p99_us <= slo)
                    .map(|p| p.mrps)
                    .fold(0.0, f64::max)
            };
            Curve {
                system: label.to_string(),
                points: pts.iter().map(|p| (p.mrps, p.p99_us)).collect(),
                max_mrps_slo_100: max_under(100.0),
                max_mrps_slo_1000: max_under(1_000.0),
            }
        })
        .collect()
}

/// Prints the figure and the two SLO verdicts.
pub fn print(curves: &[Curve]) {
    crate::print_header(
        "fig11",
        "SLO tradeoff: IX B=1/B=64 vs ZygOS, 10us deterministic, SLO 100us vs 1000us",
    );
    for c in curves {
        crate::print_series("fig11", "det-10us", &c.system, &c.points);
    }
    println!("# max throughput meeting each SLO:");
    for c in curves {
        println!(
            "# {:<8} @SLO=100us: {:.2} MRPS   @SLO=1000us: {:.2} MRPS",
            c.system, c.max_mrps_slo_100, c.max_mrps_slo_1000
        );
    }
}
