//! Figure 7: maximum load @ SLO (p99 ≤ 10·S̄) vs service time with ZygOS
//! included; the X axis stops at 50µs (efficiency is stable beyond).

use zygos_lab::SimHost;

use crate::fig03::{run_panel, Curve};
use crate::Scale;

/// The full figure.
pub fn run(scale: &Scale) -> Vec<Curve> {
    let grid = [2.0, 5.0, 10.0, 15.0, 20.0, 30.0, 40.0, 50.0];
    let systems = [
        SimHost::LinuxPartitioned,
        SimHost::LinuxFloating,
        SimHost::Ix,
        SimHost::ZygosNoInterrupts,
        SimHost::Zygos,
    ];
    let mut curves = Vec::new();
    for dist in ["deterministic", "exponential", "bimodal-1"] {
        curves.extend(run_panel(scale, dist, &grid, &systems, true));
    }
    curves
}

/// Prints the figure.
pub fn print(curves: &[Curve]) {
    crate::print_header(
        "fig07",
        "max load @ SLO (p99 <= 10*S) vs service time incl. ZygOS + bounds",
    );
    for c in curves {
        crate::print_series("fig07", c.dist, &c.system, &c.points);
    }
}
