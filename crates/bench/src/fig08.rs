//! Figure 8: normalized steal rate vs throughput for the exponential
//! distribution with S̄ = 25µs, ZygOS with and without interrupts.

use zygos_sim::dist::ServiceDist;
use zygos_sysim::{latency_throughput_sweep, SysConfig, SystemKind};

use crate::Scale;

/// One curve: `(throughput MRPS, steals per event %)`.
pub struct Curve {
    /// System label.
    pub system: String,
    /// Points.
    pub points: Vec<(f64, f64)>,
}

/// Runs both curves.
pub fn run(scale: &Scale) -> Vec<Curve> {
    [SystemKind::Zygos, SystemKind::ZygosNoInterrupts]
        .into_iter()
        .map(|system| {
            let mut cfg = SysConfig::paper(system, ServiceDist::exponential_us(25.0), 0.5);
            cfg.requests = scale.requests;
            cfg.warmup = scale.warmup;
            let pts = latency_throughput_sweep(&cfg, &scale.loads);
            Curve {
                system: system.label().to_string(),
                points: pts
                    .iter()
                    .map(|p| (p.mrps, 100.0 * p.steal_fraction))
                    .collect(),
            }
        })
        .collect()
}

/// Prints the figure.
pub fn print(curves: &[Curve]) {
    crate::print_header(
        "fig08",
        "steals per event (%) vs throughput, exponential S=25us",
    );
    for c in curves {
        crate::print_series("fig08", "exp-25us", &c.system, &c.points);
    }
}
