//! Figure 8: normalized steal rate vs throughput for the exponential
//! distribution with S̄ = 25µs, ZygOS with and without interrupts.

use zygos_lab::{Case, SimHost};
use zygos_sim::dist::ServiceDist;

use crate::fig03::label_of;
use crate::Scale;

/// One curve: `(throughput MRPS, steals per event %)`.
pub struct Curve {
    /// System label.
    pub system: String,
    /// Points.
    pub points: Vec<(f64, f64)>,
}

/// Runs both curves.
pub fn run(scale: &Scale) -> Vec<Curve> {
    let mut builder = crate::scenario("fig08", scale)
        .service(ServiceDist::exponential_us(25.0))
        .loads(scale.loads.clone());
    for host in [SimHost::Zygos, SimHost::ZygosNoInterrupts] {
        builder = builder.case(Case::sim(label_of(host), host));
    }
    let sc = builder.build().expect("fig08 scenario");
    crate::run(&sc)
        .series
        .into_iter()
        .map(|series| Curve {
            system: series.label.clone(),
            points: zygos_lab::xy(&series.points, |p| p.mrps, |p| 100.0 * p.steal_fraction),
        })
        .collect()
}

/// Prints the figure.
pub fn print(curves: &[Curve]) {
    crate::print_header(
        "fig08",
        "steals per event (%) vs throughput, exponential S=25us",
    );
    for c in curves {
        crate::print_series("fig08", "exp-25us", &c.system, &c.points);
    }
}
