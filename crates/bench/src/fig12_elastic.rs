//! Figure 12 (extension, not in the paper): elastic core allocation and
//! preemptive-quantum scheduling vs. the statically provisioned systems.
//!
//! Two panels sweep offered load:
//!
//! * **exponential/10µs** — the paper's headline distribution, where the
//!   elastic win is core-seconds at low load;
//! * **bimodal-99.5/0.5** (99.5% × 0.5µs, 0.5% × 500µs) — a dispersive
//!   mix beyond the paper's bimodal-2, where the preemptive quantum bounds
//!   head-of-line blocking that connection-granularity stealing alone
//!   cannot (the §6/Figure 6 weakness).
//!
//! Each curve reports p99 **and** time-averaged granted cores, making the
//! latency/core-seconds trade-off the figure's subject.
//!
//! The elastic system runs under both background-queue orders
//! (`BackgroundOrder::{Fcfs, Srpt}`). Measured outcome on this mix:
//! **FCFS-with-aging wins at p99** (e.g. 40µs vs 94µs at load 0.7).
//! With a two-point distribution every preempted remainder starts from
//! the same 500µs class, so SRPT's only effect is to run nearly-finished
//! remainders first — which keeps *older, longer* remainders in the queue
//! until they cross the aging bound and promote ahead of fresh short
//! requests, exactly the head-of-line blocking the background queue
//! exists to avoid. SRPT would need a service mix where remainders
//! genuinely differ at preemption time (e.g. heavy-tailed, not
//! two-point) to pay off; the knob stays for that regime.

use zygos_sched::BackgroundOrder;
use zygos_sim::dist::ServiceDist;
use zygos_sysim::{latency_throughput_sweep, SweepPoint, SysConfig, SystemKind};

use crate::Scale;

/// Preemption quantum used by the elastic curves (µs). Small enough to
/// bound a 500µs outlier to 5% of its run time, large enough that the
/// per-slice interrupt cost (~1µs) stays a few percent of the slice.
pub const QUANTUM_US: f64 = 25.0;

/// One system's curve in one panel.
pub struct Curve {
    /// Panel id, e.g. `"bimodal-99.5-0.5"`.
    pub panel: String,
    /// System label.
    pub system: String,
    /// Per-load measurements.
    pub points: Vec<SweepPoint>,
}

/// The dispersive service-time mix of the second panel.
pub fn bimodal_99_5() -> ServiceDist {
    ServiceDist::TwoPoint {
        fast_us: 0.5,
        slow_us: 500.0,
        p_fast: 0.995,
    }
}

fn sweep(
    scale: &Scale,
    system: SystemKind,
    service: ServiceDist,
    quantum_us: f64,
    bg_order: BackgroundOrder,
) -> Vec<SweepPoint> {
    let mut cfg = SysConfig::paper(system, service, 0.5);
    cfg.requests = scale.requests;
    cfg.warmup = scale.warmup;
    cfg.preemption_quantum_us = quantum_us;
    cfg.background_order = bg_order;
    latency_throughput_sweep(&cfg, &scale.loads)
}

/// Runs one panel: static ZygOS, static IX, and elastic ZygOS with the
/// preemptive quantum — the latter under both background-queue orders
/// (FCFS-with-aging vs SRPT on the remaining-time stamps), which is the
/// satellite comparison this figure carries.
pub fn run_panel(scale: &Scale, panel: &str, service: ServiceDist) -> Vec<Curve> {
    let mut curves = Vec::new();
    const ELASTIC: SystemKind = SystemKind::Elastic { min_cores: 2 };
    for (system, quantum, bg, label) in [
        (
            SystemKind::Zygos,
            0.0,
            BackgroundOrder::Fcfs,
            "ZygOS (static)".to_string(),
        ),
        (
            SystemKind::Ix,
            0.0,
            BackgroundOrder::Fcfs,
            "IX (static)".to_string(),
        ),
        (
            ELASTIC,
            QUANTUM_US,
            BackgroundOrder::Fcfs,
            format!("ZygOS (elastic, q={QUANTUM_US}us)"),
        ),
        (
            ELASTIC,
            QUANTUM_US,
            BackgroundOrder::Srpt,
            format!("ZygOS (elastic, q={QUANTUM_US}us, srpt)"),
        ),
    ] {
        curves.push(Curve {
            panel: panel.to_string(),
            system: label,
            points: sweep(scale, system, service.clone(), quantum, bg),
        });
    }
    curves
}

/// Both panels.
pub fn run(scale: &Scale) -> Vec<Curve> {
    let mut curves = run_panel(scale, "exponential/10us", ServiceDist::exponential_us(10.0));
    curves.extend(run_panel(scale, "bimodal-99.5-0.5", bimodal_99_5()));
    curves
}

/// Prints the figure: a `p99` series and a `cores` series per system.
pub fn print(curves: &[Curve]) {
    crate::print_header(
        "fig12",
        "elastic cores + preemptive quantum: p99 and granted cores vs load, 2 panels",
    );
    for c in curves {
        let p99: Vec<(f64, f64)> = c.points.iter().map(|p| (p.load, p.p99_us)).collect();
        let cores: Vec<(f64, f64)> = c
            .points
            .iter()
            .map(|p| (p.load, p.avg_active_cores))
            .collect();
        crate::print_series("fig12", &c.panel, &format!("{}/p99", c.system), &p99);
        crate::print_series("fig12", &c.panel, &format!("{}/cores", c.system), &cores);
    }
    headline(curves);
}

/// Prints the acceptance summary: the elastic system's p99 vs static ZygOS
/// at high load and its core-seconds saving at low load, on the bimodal
/// panel.
pub fn headline(curves: &[Curve]) {
    let find = |sys_prefix: &str| {
        curves
            .iter()
            .find(|c| c.panel == "bimodal-99.5-0.5" && c.system.starts_with(sys_prefix))
    };
    let (Some(stat), Some(elastic)) = (find("ZygOS (static)"), find("ZygOS (elastic")) else {
        return;
    };
    // The SRPT-vs-FCFS background-order comparison on the dispersive mix.
    if let Some(srpt) = curves
        .iter()
        .find(|c| c.panel == "bimodal-99.5-0.5" && c.system.contains("srpt"))
    {
        for (f, s) in elastic.points.iter().zip(&srpt.points) {
            if f.load >= 0.69 {
                println!(
                    "# fig12 headline: load {:.2}: bg-queue SRPT p99 {:.0}us vs FCFS-with-aging {:.0}us ({})",
                    f.load,
                    s.p99_us,
                    f.p99_us,
                    if s.p99_us <= f.p99_us { "srpt wins" } else { "fcfs wins" }
                );
            }
        }
    }
    for (s, e) in stat.points.iter().zip(&elastic.points) {
        if s.load >= 0.69 {
            println!(
                "# fig12 headline: load {:.2}: elastic p99 {:.0}us vs static {:.0}us ({})",
                s.load,
                e.p99_us,
                s.p99_us,
                if e.p99_us < s.p99_us {
                    "elastic wins"
                } else {
                    "static wins"
                }
            );
        }
        if s.load <= 0.31 {
            println!(
                "# fig12 headline: load {:.2}: elastic uses {:.2} cores vs static 16 ({:.0}% core-seconds saved)",
                s.load,
                e.avg_active_cores,
                100.0 * (1.0 - e.avg_active_cores / 16.0)
            );
        }
    }
}
