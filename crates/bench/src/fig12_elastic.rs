//! Figure 12 (extension, not in the paper): elastic core allocation and
//! preemptive-quantum scheduling vs. the statically provisioned systems.
//!
//! Three panels:
//!
//! * **exponential/10µs** — the paper's headline distribution, where the
//!   elastic win is core-seconds at low load;
//! * **bimodal-99.5/0.5** (99.5% × 0.5µs, 0.5% × 500µs) — a dispersive
//!   mix beyond the paper's bimodal-2, where the preemptive quantum bounds
//!   head-of-line blocking that connection-granularity stealing alone
//!   cannot (the §6/Figure 6 weakness);
//! * **diurnal-trace** — the same systems driven by the **bundled diurnal
//!   request trace** (`zygos_lab::traces::diurnal`) through the
//!   `ArrivalSource` replay path, replacing the hand-written phase list
//!   this figure used to carry: the trace's trough/peak shape is what the
//!   elastic controller tracks, and the panel reports the cores it
//!   granted doing so.
//!
//! Each curve reports p99 **and** time-averaged granted cores, making the
//! latency/core-seconds trade-off the figure's subject.
//!
//! The elastic system runs under both background-queue orders
//! (`BackgroundOrder::{Fcfs, Srpt}`). Measured outcome on this mix:
//! **FCFS-with-aging wins at p99** (e.g. 40µs vs 94µs at load 0.7).
//! With a two-point distribution every preempted remainder starts from
//! the same 500µs class, so SRPT's only effect is to run nearly-finished
//! remainders first — which keeps *older, longer* remainders in the queue
//! until they cross the aging bound and promote ahead of fresh short
//! requests, exactly the head-of-line blocking the background queue
//! exists to avoid. SRPT would need a service mix where remainders
//! genuinely differ at preemption time (e.g. heavy-tailed, not
//! two-point) to pay off; the knob stays for that regime.

use zygos_lab::{Case, PointMetrics, Scenario, SimHost};
use zygos_load::source::ArrivalSpec;
use zygos_sched::BackgroundOrder;
use zygos_sim::dist::ServiceDist;

use crate::Scale;

/// Preemption quantum used by the elastic curves (µs). Small enough to
/// bound a 500µs outlier to 5% of its run time, large enough that the
/// per-slice interrupt cost (~1µs) stays a few percent of the slice.
pub const QUANTUM_US: f64 = 25.0;

/// One system's curve in one panel.
pub struct Curve {
    /// Panel id, e.g. `"bimodal-99.5-0.5"`.
    pub panel: String,
    /// System label.
    pub system: String,
    /// Per-load measurements (unified scenario-plane schema).
    pub points: Vec<PointMetrics>,
}

/// The dispersive service-time mix of the second panel.
pub fn bimodal_99_5() -> ServiceDist {
    ServiceDist::TwoPoint {
        fast_us: 0.5,
        slow_us: 500.0,
        p_fast: 0.995,
    }
}

/// The four cases of every panel: static ZygOS, static IX, and elastic
/// ZygOS with the preemptive quantum under both background-queue orders.
fn panel_scenario(
    scale: &Scale,
    service: ServiceDist,
    arrivals: ArrivalSpec,
    loads: Vec<f64>,
) -> Scenario {
    crate::scenario("fig12", scale)
        .service(service)
        .arrivals(arrivals)
        .loads(loads)
        .case(Case::sim("ZygOS (static)", SimHost::Zygos))
        .case(Case::sim("IX (static)", SimHost::Ix))
        .case(
            Case::sim(
                format!("ZygOS (elastic, q={QUANTUM_US}us)"),
                SimHost::Elastic,
            )
            .min_cores(2)
            .quantum_us(QUANTUM_US)
            .background_order(BackgroundOrder::Fcfs),
        )
        .case(
            Case::sim(
                format!("ZygOS (elastic, q={QUANTUM_US}us, srpt)"),
                SimHost::Elastic,
            )
            .min_cores(2)
            .quantum_us(QUANTUM_US)
            .background_order(BackgroundOrder::Srpt),
        )
        .build()
        .expect("fig12 scenario")
}

/// Runs one panel.
pub fn run_panel(scale: &Scale, panel: &str, service: ServiceDist) -> Vec<Curve> {
    run_panel_with(
        scale,
        panel,
        service,
        ArrivalSpec::Poisson,
        scale.loads.clone(),
    )
}

/// Runs one panel under an explicit arrival process and load grid.
pub fn run_panel_with(
    scale: &Scale,
    panel: &str,
    service: ServiceDist,
    arrivals: ArrivalSpec,
    loads: Vec<f64>,
) -> Vec<Curve> {
    let sc = panel_scenario(scale, service, arrivals, loads);
    crate::run(&sc)
        .series
        .into_iter()
        .map(|series| Curve {
            panel: panel.to_string(),
            system: series.label,
            points: series.points,
        })
        .collect()
}

/// All three panels: the two Poisson panels plus the trace-driven one.
pub fn run(scale: &Scale) -> Vec<Curve> {
    let mut curves = run_panel(scale, "exponential/10us", ServiceDist::exponential_us(10.0));
    curves.extend(run_panel(scale, "bimodal-99.5-0.5", bimodal_99_5()));
    curves.extend(run_diurnal(scale));
    curves
}

/// The workload-replay panel: the bundled diurnal trace modulates the
/// instantaneous arrival rate (trough 0.25× … peak 1.75× the mean), so a
/// single "load" value sweeps the whole day shape past the controller.
pub fn run_diurnal(scale: &Scale) -> Vec<Curve> {
    run_panel_with(
        scale,
        "diurnal-trace",
        ServiceDist::exponential_us(10.0),
        ArrivalSpec::Trace(zygos_lab::traces::diurnal()),
        // The trace itself sweeps 0.25×–1.75× around each mean load, so
        // a short grid covers the interesting regimes.
        vec![0.25, 0.5],
    )
}

/// Prints the figure: a `p99` series and a `cores` series per system.
pub fn print(curves: &[Curve]) {
    crate::print_header(
        "fig12",
        "elastic cores + preemptive quantum: p99 and granted cores vs load, 3 panels \
         (incl. diurnal trace replay)",
    );
    for c in curves {
        let p99 = zygos_lab::xy(&c.points, |p| p.load, |p| p.p99_us);
        let cores = zygos_lab::xy(&c.points, |p| p.load, |p| p.avg_cores);
        crate::print_series("fig12", &c.panel, &format!("{}/p99", c.system), &p99);
        crate::print_series("fig12", &c.panel, &format!("{}/cores", c.system), &cores);
    }
    headline(curves);
}

/// Prints the acceptance summary: the elastic system's p99 vs static ZygOS
/// at high load and its core-seconds saving at low load, on the bimodal
/// panel; plus the trace panel's core savings.
pub fn headline(curves: &[Curve]) {
    let find = |sys_prefix: &str| {
        curves
            .iter()
            .find(|c| c.panel == "bimodal-99.5-0.5" && c.system.starts_with(sys_prefix))
    };
    let (Some(stat), Some(elastic)) = (find("ZygOS (static)"), find("ZygOS (elastic")) else {
        return;
    };
    // The SRPT-vs-FCFS background-order comparison on the dispersive mix.
    if let Some(srpt) = curves
        .iter()
        .find(|c| c.panel == "bimodal-99.5-0.5" && c.system.contains("srpt"))
    {
        for (f, s) in elastic.points.iter().zip(&srpt.points) {
            if f.load >= 0.69 {
                println!(
                    "# fig12 headline: load {:.2}: bg-queue SRPT p99 {:.0}us vs FCFS-with-aging {:.0}us ({})",
                    f.load,
                    s.p99_us,
                    f.p99_us,
                    if s.p99_us <= f.p99_us { "srpt wins" } else { "fcfs wins" }
                );
            }
        }
    }
    for (s, e) in stat.points.iter().zip(&elastic.points) {
        if s.load >= 0.69 {
            println!(
                "# fig12 headline: load {:.2}: elastic p99 {:.0}us vs static {:.0}us ({})",
                s.load,
                e.p99_us,
                s.p99_us,
                if e.p99_us < s.p99_us {
                    "elastic wins"
                } else {
                    "static wins"
                }
            );
        }
        if s.load <= 0.31 {
            println!(
                "# fig12 headline: load {:.2}: elastic uses {:.2} cores vs static 16 ({:.0}% core-seconds saved)",
                s.load,
                e.avg_cores,
                100.0 * (1.0 - e.avg_cores / 16.0)
            );
        }
    }
    // Trace replay: the elastic fleet tracks the diurnal shape.
    let tfind = |sys_prefix: &str| {
        curves
            .iter()
            .find(|c| c.panel == "diurnal-trace" && c.system.starts_with(sys_prefix))
    };
    if let (Some(stat), Some(elastic)) = (tfind("ZygOS (static)"), tfind("ZygOS (elastic")) {
        for (s, e) in stat.points.iter().zip(&elastic.points) {
            println!(
                "# fig12 headline: diurnal trace at load {:.2}: elastic {:.2} cores \
                 ({:.0}% core-seconds saved), p99 {:.0}us vs static {:.0}us",
                s.load,
                e.avg_cores,
                100.0 * (1.0 - e.core_seconds / s.core_seconds.max(1e-12)),
                e.p99_us,
                s.p99_us
            );
        }
    }
}
