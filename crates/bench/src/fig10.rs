//! Figure 10 and Table 1: Silo running TPC-C.
//!
//! * **Figure 10a** — the CCDF of per-transaction *service* time, measured
//!   by running our Silo port closed-loop (no networking, GC disabled),
//!   exactly like the paper's local-driver measurement.
//! * **Figure 10b** — p99 *end-to-end* latency vs throughput for Linux, IX
//!   and ZygOS serving the TPC-C mix. The measured service-time samples
//!   from (a) become an empirical distribution for the system simulator.
//! * **Table 1** — max load under the 1000µs p99 SLO, speedups vs Linux,
//!   and tail latency at 50/75/90% of each system's own max load.

use std::time::Instant;

use zygos_lab::{Case, Scenario, SimHost};
use zygos_silo::tpcc::{Tpcc, TpccConfig, TpccRng, TxnType};
use zygos_sim::dist::ServiceDist;
use zygos_sim::stats::LatencyHistogram;

use crate::Scale;

/// Measured Silo service-time data (Figure 10a).
pub struct SiloMeasurement {
    /// Per-transaction-type service-time histograms.
    pub per_type: Vec<(&'static str, LatencyHistogram)>,
    /// Histogram of the full mix.
    pub mix: LatencyHistogram,
    /// Raw mix samples in µs (feed for the empirical distribution).
    pub mix_samples: Vec<f64>,
    /// Closed-loop throughput achieved while measuring, in KTPS.
    pub closed_loop_ktps: f64,
}

/// Runs the closed-loop service-time measurement (Figure 10a).
pub fn measure_service_times(scale: &Scale) -> SiloMeasurement {
    let tpcc = Tpcc::load(TpccConfig::spec(scale.warehouses));
    let mut rng = TpccRng::new(7);
    let mut per_type: Vec<(&'static str, LatencyHistogram)> = TxnType::ALL
        .iter()
        .map(|t| (t.label(), LatencyHistogram::new()))
        .collect();
    let mut mix = LatencyHistogram::new();
    let mut mix_samples = Vec::with_capacity(scale.silo_txns);
    // Warm the caches before timing.
    for _ in 0..(scale.silo_txns / 10).max(50) {
        let kind = TxnType::sample(&mut rng);
        tpcc.run(kind, &mut rng);
    }
    let wall = Instant::now();
    for _ in 0..scale.silo_txns {
        let kind = TxnType::sample(&mut rng);
        let start = Instant::now();
        tpcc.run(kind, &mut rng);
        let us = start.elapsed().as_nanos() as f64 / 1_000.0;
        let idx = TxnType::ALL.iter().position(|t| t == &kind).expect("type");
        per_type[idx].1.record_micros_f64(us);
        mix.record_micros_f64(us);
        mix_samples.push(us);
    }
    let closed_loop_ktps = scale.silo_txns as f64 / wall.elapsed().as_secs_f64() / 1_000.0;
    SiloMeasurement {
        per_type,
        mix,
        mix_samples,
        closed_loop_ktps,
    }
}

/// Prints Figure 10a (CCDF per transaction type + mix).
pub fn print_fig10a(m: &SiloMeasurement) {
    crate::print_header(
        "fig10a",
        "CCDF of TPC-C service time per transaction type (Silo local, GC off)",
    );
    println!(
        "# mix: mean={:.1}us p50={:.1}us p99={:.1}us, closed-loop {:.0} KTPS",
        m.mix.mean_us(),
        m.mix.p50_us(),
        m.mix.p99_us(),
        m.closed_loop_ktps
    );
    for (label, hist) in &m.per_type {
        // Thin the CCDF to ≤64 points per curve for readability.
        let ccdf = hist.ccdf_us();
        let step = (ccdf.len() / 64).max(1);
        let pts: Vec<(f64, f64)> = ccdf.iter().step_by(step).map(|&(x, y)| (x, y)).collect();
        crate::print_series("fig10a", "service-time", label, &pts);
    }
    let ccdf = m.mix.ccdf_us();
    let step = (ccdf.len() / 64).max(1);
    let pts: Vec<(f64, f64)> = ccdf.iter().step_by(step).map(|&(x, y)| (x, y)).collect();
    crate::print_series("fig10a", "service-time", "Mix", &pts);
}

/// The three systems of Figure 10b / Table 1, paper legend order.
pub const SYSTEMS: [(SimHost, &str); 3] = [
    (SimHost::LinuxFloating, "Linux"),
    (SimHost::Ix, "IX"),
    (SimHost::Zygos, "ZygOS"),
];

/// The three-case TPC-C scenario behind Figure 10b and Table 1.
fn silo_scenario(scale: &Scale, service: &ServiceDist, loads: Vec<f64>) -> Scenario {
    let mut builder = crate::scenario("fig10b", scale)
        .service(service.clone())
        .loads(loads);
    for (host, label) in SYSTEMS {
        builder = builder.case(Case::sim(label, host));
    }
    builder.build().expect("fig10 scenario")
}

/// One Figure-10b curve.
pub struct Curve {
    /// System label.
    pub system: &'static str,
    /// `(throughput KRPS, p99 µs)` points.
    pub points: Vec<(f64, f64)>,
}

/// Runs Figure 10b from measured service samples.
pub fn run_fig10b(scale: &Scale, mix_samples: Vec<f64>) -> Vec<Curve> {
    let service = ServiceDist::empirical_us(mix_samples);
    let sc = silo_scenario(scale, &service, scale.loads.clone());
    crate::run(&sc)
        .series
        .iter()
        .zip(SYSTEMS)
        .map(|(series, (_, label))| Curve {
            system: label,
            points: zygos_lab::xy(&series.points, |p| p.mrps * 1_000.0, |p| p.p99_us),
        })
        .collect()
}

/// Prints Figure 10b.
pub fn print_fig10b(curves: &[Curve]) {
    crate::print_header(
        "fig10b",
        "TPC-C: p99 end-to-end latency (us) vs throughput (KRPS); SLO 1000us",
    );
    for c in curves {
        crate::print_series("fig10b", "tpcc", c.system, &c.points);
    }
}

/// One Table-1 row.
pub struct Table1Row {
    /// System label.
    pub system: &'static str,
    /// Max throughput under the SLO, KTPS.
    pub max_ktps: f64,
    /// Speedup over Linux.
    pub speedup: f64,
    /// `(p99 µs, ratio to service p99, KTPS)` at 50/75/90% of max load.
    pub at_fractions: [(f64, f64, f64); 3],
}

/// Computes Table 1.
pub fn run_table1(scale: &Scale, mix_samples: Vec<f64>, service_p99_us: f64) -> Vec<Table1Row> {
    let service = ServiceDist::empirical_us(mix_samples);
    let slo_us = 1_000.0;
    let mut rows = Vec::new();
    let mut linux_ktps = None;
    let sc = silo_scenario(scale, &service, vec![0.5]);
    for (host, label) in SYSTEMS {
        let max_load = zygos_lab::max_load_at_slo(&sc, label, slo_us, scale.resolution, false)
            .expect("sim host");
        let saturation_ktps = 16.0 / service.mean_us() * 1_000.0;
        let max_ktps = max_load * saturation_ktps;
        if host == SimHost::LinuxFloating {
            linux_ktps = Some(max_ktps);
        }
        let case = sc.case(label).expect("case present");
        let mut at_fractions = [(0.0, 0.0, 0.0); 3];
        for (i, frac) in [0.5, 0.75, 0.9].iter().enumerate() {
            let load = (max_load * frac).max(0.01);
            let p = zygos_lab::run_point(&sc, case, load, false).expect("runs");
            at_fractions[i] = (p.p99_us, p.p99_us / service_p99_us, load * saturation_ktps);
        }
        rows.push(Table1Row {
            system: label,
            max_ktps,
            speedup: 0.0, // Filled below once Linux is known.
            at_fractions,
        });
    }
    let base = linux_ktps.expect("Linux row present").max(1e-9);
    for r in &mut rows {
        r.speedup = r.max_ktps / base;
    }
    rows
}

/// Prints Table 1 in the paper's layout.
pub fn print_table1(rows: &[Table1Row], service_p99_us: f64) {
    println!("# Table 1: max throughput under SLO (p99 <= 1000us) and tail latency");
    println!("# service-time p99 (local Silo): {service_p99_us:.0}us");
    println!(
        "{:<8} {:>12} {:>8}  {:>26} {:>26} {:>26}",
        "System", "MaxLoad@SLO", "Speedup", "TailLat@50%", "TailLat@75%", "TailLat@90%"
    );
    for r in rows {
        let cell =
            |(p99, ratio, ktps): (f64, f64, f64)| format!("{p99:.0}us ({ratio:.1}x) @{ktps:.0}K");
        println!(
            "{:<8} {:>9.0} KTPS {:>7.2}x  {:>26} {:>26} {:>26}",
            r.system,
            r.max_ktps,
            r.speedup,
            cell(r.at_fractions[0]),
            cell(r.at_fractions[1]),
            cell(r.at_fractions[2]),
        );
    }
}
