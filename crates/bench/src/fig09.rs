//! Figure 9: memcached (USR and ETC) p99 latency vs throughput for Linux,
//! IX B=1, IX B=64 and ZygOS; SLO 500µs.
//!
//! The memcached substitute is `zygos-kv`; its USR/ETC workload models
//! produce an empirical service-time distribution (<2µs mean) that feeds
//! a four-case scenario per panel (the RX batch bound is the only knob
//! that differs between cases).

use zygos_kv::workload::{KvWorkload, WorkloadKind};
use zygos_lab::{Case, SimHost};

use crate::Scale;

/// One curve of one panel.
pub struct Curve {
    /// Panel: `"USR"` or `"ETC"`.
    pub panel: &'static str,
    /// System label (IX annotated with its batch bound).
    pub system: String,
    /// `(throughput MRPS, p99 µs)` points.
    pub points: Vec<(f64, f64)>,
}

/// Runs one panel.
pub fn run_panel(scale: &Scale, kind: WorkloadKind) -> Vec<Curve> {
    let service = KvWorkload::new(kind).service_dist(50_000, 9);
    // Linux saturates at a small fraction of the dataplanes' ideal load
    // (≈11µs kernel cost per ~1µs task), so extend the grid downward.
    let mut loads: Vec<f64> = vec![0.01, 0.02, 0.03, 0.045, 0.06, 0.08];
    loads.extend_from_slice(&scale.loads);
    let sc = crate::scenario("fig09", scale)
        .service(service)
        .loads(loads)
        .case(Case::sim("Linux", SimHost::LinuxFloating).rx_batch(1))
        .case(Case::sim("IX B=1", SimHost::Ix).rx_batch(1))
        .case(Case::sim("IX B=64", SimHost::Ix).rx_batch(64))
        .case(Case::sim("ZygOS", SimHost::Zygos).rx_batch(64))
        .build()
        .expect("fig09 scenario");
    crate::run(&sc)
        .series
        .into_iter()
        .map(|series| Curve {
            panel: kind.label(),
            system: series.label.clone(),
            points: zygos_lab::xy(&series.points, |p| p.mrps, |p| p.p99_us),
        })
        .collect()
}

/// Both panels.
pub fn run(scale: &Scale) -> Vec<Curve> {
    let mut curves = run_panel(scale, WorkloadKind::Etc);
    curves.extend(run_panel(scale, WorkloadKind::Usr));
    curves
}

/// Prints the figure.
pub fn print(curves: &[Curve]) {
    crate::print_header(
        "fig09",
        "memcached USR/ETC: p99 vs throughput for Linux, IX B=1, IX B=64, ZygOS (SLO 500us)",
    );
    for c in curves {
        crate::print_series("fig09", c.panel, &c.system, &c.points);
    }
}
