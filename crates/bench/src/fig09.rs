//! Figure 9: memcached (USR and ETC) p99 latency vs throughput for Linux,
//! IX B=1, IX B=64 and ZygOS; SLO 500µs.
//!
//! The memcached substitute is `zygos-kv`; its USR/ETC workload models
//! produce an empirical service-time distribution (<2µs mean) that drives
//! the system simulator.

use zygos_kv::workload::{KvWorkload, WorkloadKind};
use zygos_sysim::{latency_throughput_sweep, SysConfig, SystemKind};

use crate::Scale;

/// One curve of one panel.
pub struct Curve {
    /// Panel: `"USR"` or `"ETC"`.
    pub panel: &'static str,
    /// System label (IX annotated with its batch bound).
    pub system: String,
    /// `(throughput MRPS, p99 µs)` points.
    pub points: Vec<(f64, f64)>,
}

/// Runs one panel.
pub fn run_panel(scale: &Scale, kind: WorkloadKind) -> Vec<Curve> {
    let service = KvWorkload::new(kind).service_dist(50_000, 9);
    let mut curves = Vec::new();
    let configs = [
        (SystemKind::LinuxFloating, 1u64, "Linux".to_string()),
        (SystemKind::Ix, 1, "IX B=1".to_string()),
        (SystemKind::Ix, 64, "IX B=64".to_string()),
        (SystemKind::Zygos, 64, "ZygOS".to_string()),
    ];
    // Linux saturates at a small fraction of the dataplanes' ideal load
    // (≈11µs kernel cost per ~1µs task), so extend the grid downward.
    let mut loads: Vec<f64> = vec![0.01, 0.02, 0.03, 0.045, 0.06, 0.08];
    loads.extend_from_slice(&scale.loads);
    for (system, batch, label) in configs {
        let mut cfg = SysConfig::paper(system, service.clone(), 0.5);
        cfg.rx_batch = batch;
        cfg.requests = scale.requests;
        cfg.warmup = scale.warmup;
        let pts = latency_throughput_sweep(&cfg, &loads);
        curves.push(Curve {
            panel: kind.label(),
            system: label,
            points: pts.iter().map(|p| (p.mrps, p.p99_us)).collect(),
        });
    }
    curves
}

/// Both panels.
pub fn run(scale: &Scale) -> Vec<Curve> {
    let mut curves = run_panel(scale, WorkloadKind::Etc);
    curves.extend(run_panel(scale, WorkloadKind::Usr));
    curves
}

/// Prints the figure.
pub fn print(curves: &[Curve]) {
    crate::print_header(
        "fig09",
        "memcached USR/ETC: p99 vs throughput for Linux, IX B=1, IX B=64, ZygOS (SLO 500us)",
    );
    for c in curves {
        crate::print_series("fig09", c.panel, &c.system, &c.points);
    }
}
