//! Ablation studies of ZygOS's design choices plus the
//! bimodal-2 experiment the paper's system evaluation omits.
//!
//! 1. **Victim-order randomization** — §5 randomizes the order in which an
//!    idle core polls victims. Sequential order biases stealing toward
//!    low-numbered cores.
//! 2. **IPI delivery latency** — the exit-less IPIs of §5 land in ~1µs;
//!    how much of ZygOS's tail advantage survives slower delivery?
//! 3. **Steal cost** — the remote cacheline transfers of a steal; at what
//!    cost does work conservation stop paying for itself?
//! 4. **Bimodal-2 at the system level** — §3.4 drops bimodal-2 because
//!    partitioned FCFS is pathological; the work-conserving ZygOS is not.
//!
//! Every variant is a one-case scenario (the ablation knobs are ordinary
//! [`zygos_lab::Case`] policy fields), evaluated at 70% load and through
//! the max-load@SLO search.

use zygos_lab::{Case, Scenario, SimHost};
use zygos_sim::dist::ServiceDist;

use crate::Scale;

/// One ablation result row.
pub struct Row {
    /// Ablation group.
    pub group: &'static str,
    /// Variant label.
    pub variant: String,
    /// Max load meeting the 10·S̄ SLO (exp, 10µs unless stated).
    pub max_load: f64,
    /// p99 at 70% load (µs).
    pub p99_at_70: f64,
}

/// Builds the one-case scenario of a variant (exp/10µs unless the case
/// overrides the service via `service`).
fn variant_scenario(scale: &Scale, service: ServiceDist, case: Case) -> Scenario {
    crate::scenario("ablation", scale)
        .service(service)
        .loads(vec![0.7])
        .case(case)
        .build()
        .expect("ablation scenario")
}

fn evaluate(scale: &Scale, group: &'static str, variant: String, sc: &Scenario) -> Row {
    let label = sc.cases[0].label.clone();
    let p99_at_70 = zygos_lab::run_point(sc, &sc.cases[0], 0.7, false)
        .expect("runs")
        .p99_us;
    let max_load =
        zygos_lab::max_load_at_slo(sc, &label, 100.0, scale.resolution, false).expect("sim host");
    Row {
        group,
        variant,
        max_load,
        p99_at_70,
    }
}

/// Runs all ablations.
pub fn run(scale: &Scale) -> Vec<Row> {
    let exp10 = || ServiceDist::exponential_us(10.0);
    let mut rows = Vec::new();

    // 1. Victim-order randomization.
    for randomize in [true, false] {
        let mut case = Case::sim("zygos", SimHost::Zygos);
        if !randomize {
            case = case.sequential_steal();
        }
        let sc = variant_scenario(scale, exp10(), case);
        rows.push(evaluate(
            scale,
            "steal-order",
            if randomize {
                "randomized"
            } else {
                "sequential"
            }
            .into(),
            &sc,
        ));
    }

    // 2. IPI delivery latency.
    for delivery_ns in [300u64, 1_200, 5_000, 20_000] {
        let sc = variant_scenario(
            scale,
            exp10(),
            Case::sim("zygos", SimHost::Zygos).ipi_delivery_ns(delivery_ns),
        );
        rows.push(evaluate(
            scale,
            "ipi-delivery",
            format!("{:.1}us", delivery_ns as f64 / 1_000.0),
            &sc,
        ));
    }

    // 3. Steal cost.
    for steal_ns in [0u64, 350, 2_000, 8_000] {
        let sc = variant_scenario(
            scale,
            exp10(),
            Case::sim("zygos", SimHost::Zygos).steal_extra_ns(steal_ns),
        );
        rows.push(evaluate(scale, "steal-cost", format!("{steal_ns}ns"), &sc));
    }

    // 4. Bimodal-2 at the system level (SLO 10·S̄ = 100µs; note the
    // zero-load p99 of bimodal-2 is only 0.5·S̄, so the SLO is loose for
    // the fast mode but catastrophic under head-of-line blocking). Each
    // host brings its own calibrated cost model.
    for host in [SimHost::Ix, SimHost::Zygos, SimHost::LinuxFloating] {
        let sc = variant_scenario(
            scale,
            ServiceDist::bimodal2_us(10.0),
            Case::sim(crate::fig03::label_of(host), host),
        );
        rows.push(evaluate(
            scale,
            "bimodal-2",
            crate::fig03::label_of(host).into(),
            &sc,
        ));
    }

    rows
}

/// Prints the ablation table.
pub fn print(rows: &[Row]) {
    println!("# ablations: ZygOS design choices (exp 10us unless noted; SLO p99<=100us)");
    println!(
        "{:<14} {:<28} {:>12} {:>12}",
        "group", "variant", "load@SLO", "p99@70%"
    );
    for r in rows {
        println!(
            "{:<14} {:<28} {:>12.2} {:>10.1}us",
            r.group, r.variant, r.max_load, r.p99_at_70
        );
    }
}
