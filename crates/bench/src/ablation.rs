//! Ablation studies of ZygOS's design choices plus the
//! bimodal-2 experiment the paper's system evaluation omits.
//!
//! 1. **Victim-order randomization** — §5 randomizes the order in which an
//!    idle core polls victims. Sequential order biases stealing toward
//!    low-numbered cores.
//! 2. **IPI delivery latency** — the exit-less IPIs of §5 land in ~1µs;
//!    how much of ZygOS's tail advantage survives slower delivery?
//! 3. **Steal cost** — the remote cacheline transfers of a steal; at what
//!    cost does work conservation stop paying for itself?
//! 4. **Bimodal-2 at the system level** — §3.4 drops bimodal-2 because
//!    partitioned FCFS is pathological; the work-conserving ZygOS is not.

use zygos_sim::dist::ServiceDist;
use zygos_sysim::{max_load_at_slo, run_system, SysConfig, SystemKind};

use crate::Scale;

/// One ablation result row.
pub struct Row {
    /// Ablation group.
    pub group: &'static str,
    /// Variant label.
    pub variant: String,
    /// Max load meeting the 10·S̄ SLO (exp, 10µs unless stated).
    pub max_load: f64,
    /// p99 at 70% load (µs).
    pub p99_at_70: f64,
}

fn base_cfg(scale: &Scale) -> SysConfig {
    let mut cfg = SysConfig::paper(SystemKind::Zygos, ServiceDist::exponential_us(10.0), 0.7);
    cfg.requests = scale.requests;
    cfg.warmup = scale.warmup;
    cfg
}

fn evaluate(scale: &Scale, group: &'static str, variant: String, cfg: SysConfig) -> Row {
    let p99_at_70 = run_system(&SysConfig {
        load: 0.7,
        ..cfg.clone()
    })
    .p99_us();
    let max_load = max_load_at_slo(&cfg, 100.0, scale.resolution);
    Row {
        group,
        variant,
        max_load,
        p99_at_70,
    }
}

/// Runs all ablations.
pub fn run(scale: &Scale) -> Vec<Row> {
    let mut rows = Vec::new();

    // 1. Victim-order randomization.
    for randomize in [true, false] {
        let mut cfg = base_cfg(scale);
        cfg.randomize_steal_order = randomize;
        rows.push(evaluate(
            scale,
            "steal-order",
            if randomize {
                "randomized"
            } else {
                "sequential"
            }
            .into(),
            cfg,
        ));
    }

    // 2. IPI delivery latency.
    for delivery_ns in [300u64, 1_200, 5_000, 20_000] {
        let mut cfg = base_cfg(scale);
        cfg.cost.ipi_delivery_ns = delivery_ns;
        rows.push(evaluate(
            scale,
            "ipi-delivery",
            format!("{:.1}us", delivery_ns as f64 / 1_000.0),
            cfg,
        ));
    }

    // 3. Steal cost.
    for steal_ns in [0u64, 350, 2_000, 8_000] {
        let mut cfg = base_cfg(scale);
        cfg.cost.steal_extra_ns = steal_ns;
        rows.push(evaluate(scale, "steal-cost", format!("{steal_ns}ns"), cfg));
    }

    // 4. Bimodal-2 at the system level (SLO 10·S̄ = 100µs; note the
    // zero-load p99 of bimodal-2 is only 0.5·S̄, so the SLO is loose for
    // the fast mode but catastrophic under head-of-line blocking).
    for system in [SystemKind::Ix, SystemKind::Zygos, SystemKind::LinuxFloating] {
        let mut cfg = base_cfg(scale);
        cfg.system = system;
        cfg.service = ServiceDist::bimodal2_us(10.0);
        if system == SystemKind::Ix {
            cfg.cost = zygos_net::cost::CostModel::ix();
        } else if system == SystemKind::LinuxFloating {
            cfg.cost = zygos_net::cost::CostModel::linux();
        }
        rows.push(evaluate(scale, "bimodal-2", system.label().into(), cfg));
    }

    rows
}

/// Prints the ablation table.
pub fn print(rows: &[Row]) {
    println!("# ablations: ZygOS design choices (exp 10us unless noted; SLO p99<=100us)");
    println!(
        "{:<14} {:<28} {:>12} {:>12}",
        "group", "variant", "load@SLO", "p99@70%"
    );
    for r in rows {
        println!(
            "{:<14} {:<28} {:>12.2} {:>10.1}us",
            r.group, r.variant, r.max_load, r.p99_at_70
        );
    }
}
