//! Figure 13 (extension, not in the paper): overload behavior with and
//! without credit-based admission control.
//!
//! Sweeps offered load **through and past saturation** (up to 1.5× the
//! ideal capacity) on the paper's headline exponential/10µs workload:
//!
//! * **ZygOS (static)** and **ZygOS (elastic, q=25µs)** — the PR-1
//!   policies: with no admission control, sustained `util > 1` grows the
//!   queue without bound and every dispatch discipline's p99 diverges
//!   together (the window keeps most of the divergence off-screen; it
//!   grows with measurement length).
//! * **ZygOS (credits)** — the same dispatch plane behind a
//!   Breakwater-style [`zygos_sched::CreditPool`]: admitted in-flight
//!   requests are bounded by AIMD-resized credits steering the window
//!   tail to [`CREDIT_TARGET_US`], and the surplus is shed at the server
//!   edge with explicit rejects.
//!
//! The claim the `--check` mode (and `tests/overload.rs`) enforces: at
//! offered load ≥ 1.2, the credit system's **admitted-request p99 stays
//! within 2× the SLO** while the uncontrolled policies blow through it.
//! Each curve also reports goodput (admitted MRPS) and shed fraction —
//! the price of the bounded tail, paid in explicit rejects rather than
//! unbounded queueing.

use zygos_sched::CreditConfig;
use zygos_sim::dist::ServiceDist;
use zygos_sysim::{latency_throughput_sweep, SweepPoint, SysConfig, SystemKind};

use crate::fig12_elastic::QUANTUM_US;
use crate::Scale;

/// The SLO this figure is judged against: the paper's microbenchmark
/// `10·S̄` at p99 for the exponential/10µs workload.
pub const SLO_US: f64 = 100.0;

/// The AIMD loop's window-tail target. Below the SLO by design: the
/// controller must start shedding *before* the tail reaches the bound,
/// and the window p99 is a noisy (small-sample) estimator.
pub const CREDIT_TARGET_US: f64 = 70.0;

/// Admitted-tail acceptance bound: within 2× the SLO at overload.
pub const BOUND_US: f64 = 2.0 * SLO_US;

/// The overload-focused load grid (fractions of ideal saturation).
pub fn loads(fast: bool) -> Vec<f64> {
    if fast {
        vec![0.8, 1.2, 1.4]
    } else {
        vec![0.6, 0.8, 0.9, 1.0, 1.1, 1.2, 1.35, 1.5]
    }
}

/// The credit-gate configuration the figure (and the acceptance tests)
/// use for a `cores`-wide plane.
pub fn credit_config(cores: usize) -> CreditConfig {
    CreditConfig::for_cores(cores, CREDIT_TARGET_US)
}

/// One system's overload curve.
pub struct Curve {
    /// System label.
    pub system: String,
    /// Per-load measurements.
    pub points: Vec<SweepPoint>,
}

fn base(scale: &Scale) -> SysConfig {
    let mut cfg = SysConfig::paper(SystemKind::Zygos, ServiceDist::exponential_us(10.0), 0.5);
    cfg.requests = scale.requests;
    cfg.warmup = scale.warmup;
    cfg
}

/// Runs the three curves over the overload grid.
pub fn run(scale: &Scale, fast: bool) -> Vec<Curve> {
    let grid = loads(fast);
    let mut curves = Vec::new();

    let stat = base(scale);
    curves.push(Curve {
        system: "ZygOS (static)".to_string(),
        points: latency_throughput_sweep(&stat, &grid),
    });

    let mut elastic = base(scale);
    elastic.system = SystemKind::Elastic { min_cores: 2 };
    elastic.preemption_quantum_us = QUANTUM_US;
    curves.push(Curve {
        system: format!("ZygOS (elastic, q={QUANTUM_US}us)"),
        points: latency_throughput_sweep(&elastic, &grid),
    });

    let mut credits = base(scale);
    credits.admission = Some(credit_config(credits.cores));
    curves.push(Curve {
        system: "ZygOS (credits)".to_string(),
        points: latency_throughput_sweep(&credits, &grid),
    });

    curves
}

/// Prints the figure: `p99`, `goodput` and `shed` series per system.
pub fn print(curves: &[Curve]) {
    crate::print_header(
        "fig13",
        "overload: admitted p99, goodput and shed fraction vs offered load (SLO 100us)",
    );
    for c in curves {
        let p99: Vec<(f64, f64)> = c.points.iter().map(|p| (p.load, p.p99_us)).collect();
        let goodput: Vec<(f64, f64)> = c.points.iter().map(|p| (p.load, p.mrps)).collect();
        let shed: Vec<(f64, f64)> = c.points.iter().map(|p| (p.load, p.shed_fraction)).collect();
        crate::print_series("fig13", "exp-10us", &format!("{}/p99", c.system), &p99);
        crate::print_series(
            "fig13",
            "exp-10us",
            &format!("{}/goodput", c.system),
            &goodput,
        );
        crate::print_series("fig13", "exp-10us", &format!("{}/shed", c.system), &shed);
    }
    headline(curves);
}

fn find<'a>(curves: &'a [Curve], prefix: &str) -> Option<&'a Curve> {
    curves.iter().find(|c| c.system.starts_with(prefix))
}

/// Prints the acceptance summary at overload points.
pub fn headline(curves: &[Curve]) {
    let (Some(stat), Some(credits)) = (
        find(curves, "ZygOS (static)"),
        find(curves, "ZygOS (credits)"),
    ) else {
        return;
    };
    for (s, c) in stat.points.iter().zip(&credits.points) {
        if s.load >= 1.19 {
            println!(
                "# fig13 headline: load {:.2}: credits p99 {:.0}us (shed {:.0}%) vs static {:.0}us — bound 2xSLO = {:.0}us ({})",
                s.load,
                c.p99_us,
                100.0 * c.shed_fraction,
                s.p99_us,
                BOUND_US,
                if c.p99_us <= BOUND_US { "bounded" } else { "VIOLATED" }
            );
        }
    }
}

/// CI gate: at every offered load ≥ 1.2 the credit system's admitted p99
/// must sit within 2× the SLO while the uncontrolled PR-1 policies
/// diverge past it. Returns a description of the first violation.
pub fn check(curves: &[Curve]) -> Result<(), String> {
    let stat = find(curves, "ZygOS (static)").ok_or("missing static curve")?;
    let elastic = find(curves, "ZygOS (elastic").ok_or("missing elastic curve")?;
    let credits = find(curves, "ZygOS (credits)").ok_or("missing credits curve")?;
    let mut checked = 0;
    for ((s, e), c) in stat.points.iter().zip(&elastic.points).zip(&credits.points) {
        if s.load < 1.19 {
            continue;
        }
        checked += 1;
        if c.p99_us > BOUND_US {
            return Err(format!(
                "load {:.2}: credits p99 {:.0}us exceeds the 2xSLO bound {:.0}us",
                c.load, c.p99_us, BOUND_US
            ));
        }
        if c.shed_fraction <= 0.0 {
            return Err(format!(
                "load {:.2}: overload must shed, got shed fraction {}",
                c.load, c.shed_fraction
            ));
        }
        if s.p99_us <= BOUND_US {
            return Err(format!(
                "load {:.2}: static p99 {:.0}us should diverge past {:.0}us — overload too weak?",
                s.load, s.p99_us, BOUND_US
            ));
        }
        if e.p99_us <= BOUND_US {
            return Err(format!(
                "load {:.2}: elastic p99 {:.0}us should diverge past {:.0}us — overload too weak?",
                e.load, e.p99_us, BOUND_US
            ));
        }
    }
    if checked == 0 {
        return Err("no overload points (load >= 1.2) in the grid".to_string());
    }
    Ok(())
}
