//! Figure 13 (extension, not in the paper): overload behavior with and
//! without credit-based admission control.
//!
//! Sweeps offered load **through and past saturation** (up to 1.5× the
//! ideal capacity) on the paper's headline exponential/10µs workload:
//!
//! * **ZygOS (static)** and **ZygOS (elastic, q=25µs)** — the PR-1
//!   policies: with no admission control, sustained `util > 1` grows the
//!   queue without bound and every dispatch discipline's p99 diverges
//!   together (the window keeps most of the divergence off-screen; it
//!   grows with measurement length).
//! * **ZygOS (credits)** — the same dispatch plane behind a
//!   Breakwater-style [`zygos_sched::CreditPool`] shedding at the
//!   **server edge**: admitted in-flight requests are bounded by
//!   AIMD-resized credits steering the window tail to
//!   [`CREDIT_TARGET_US`], and the surplus is shed with explicit rejects
//!   — each of which has already burned a full wire RTT (request there,
//!   reject back).
//! * **ZygOS (client credits)** — the same pool consulted at the
//!   **sender** ([`AdmissionMode::ClientSide`]): a creditless request is
//!   never sent, so every shed costs zero wire time. Identical admitted
//!   tail, identical goodput — the wasted-wire column is the entire
//!   difference, and it is what Breakwater's credit distribution buys.
//!
//! A second panel sweeps a **two-tenant** configuration (interactive
//! p99 ≤ 100µs next to batch p99 ≤ 1000µs) through the same overload:
//! with [`SysConfig::slo`] set, the AIMD target is derived per class from
//! the bounds and shedding is weighted-fair — the batch class, capped at
//! half the pool, absorbs the overload first
//! ([`run_tenant_shed`] / [`check_tenants`]).
//!
//! The claims the `--check` mode (and `tests/overload.rs`) enforce at
//! offered load ≥ 1.2:
//!
//! 1. both credit systems' **admitted p99 stays within 2× the SLO** while
//!    the uncontrolled policies blow through it;
//! 2. client-side credits **strictly reduce wasted wire RTT** versus
//!    server-edge shedding (which burns one RTT per reject);
//! 3. the **loosest tenant class sheds first** under weighted fair
//!    shedding.

use zygos_load::slo::{Slo, SloClass, TenantSlos};
use zygos_sched::CreditConfig;
use zygos_sim::dist::ServiceDist;
use zygos_sysim::{
    latency_throughput_sweep, run_system, AdmissionMode, SweepPoint, SysConfig, SystemKind,
    CREDIT_HEADROOM,
};

use crate::fig12_elastic::QUANTUM_US;
use crate::Scale;

/// The SLO this figure is judged against: the paper's microbenchmark
/// `10·S̄` at p99 for the exponential/10µs workload.
pub const SLO_US: f64 = 100.0;

/// The AIMD loop's window-tail target. Below the SLO by design: the
/// controller must start shedding *before* the tail reaches the bound,
/// and the window p99 is a noisy (small-sample) estimator. Equals
/// `CREDIT_HEADROOM × SLO_US` — the single-tenant special case of the
/// per-class targets `TenantSlos::aimd_targets_us` derives.
pub const CREDIT_TARGET_US: f64 = CREDIT_HEADROOM * SLO_US;

/// Admitted-tail acceptance bound: within 2× the SLO at overload.
pub const BOUND_US: f64 = 2.0 * SLO_US;

/// The overload-focused load grid (fractions of ideal saturation).
pub fn loads(fast: bool) -> Vec<f64> {
    if fast {
        vec![0.8, 1.2, 1.4]
    } else {
        vec![0.6, 0.8, 0.9, 1.0, 1.1, 1.2, 1.35, 1.5]
    }
}

/// The credit-gate configuration the figure (and the acceptance tests)
/// use for a `cores`-wide plane.
pub fn credit_config(cores: usize) -> CreditConfig {
    CreditConfig::for_cores(cores, CREDIT_TARGET_US)
}

/// The two-tenant registry of the weighted-fair-shedding panel:
/// interactive (p99 ≤ [`SLO_US`]) next to batch (p99 ≤ 10×[`SLO_US`]).
/// Round-robin assignment puts even connections in interactive, odd in
/// batch.
pub fn tenant_slos() -> TenantSlos {
    TenantSlos::new(vec![
        SloClass::new("interactive", Slo::p99(SLO_US)),
        SloClass::new("batch", Slo::p99(10.0 * SLO_US)),
    ])
}

/// One system's overload curve.
pub struct Curve {
    /// System label.
    pub system: String,
    /// Per-load measurements.
    pub points: Vec<SweepPoint>,
}

/// One load point of the two-tenant weighted-fair-shedding sweep.
pub struct TenantShedPoint {
    /// Offered load (fraction of ideal saturation).
    pub load: f64,
    /// Overall shed fraction.
    pub shed_fraction: f64,
    /// Share of all sheds falling on the strict (interactive) class.
    pub strict_shed_share: f64,
    /// Share of all sheds falling on the loose (batch) class.
    pub loose_shed_share: f64,
    /// Admitted p99 (µs).
    pub p99_us: f64,
}

fn base(scale: &Scale) -> SysConfig {
    let mut cfg = SysConfig::paper(SystemKind::Zygos, ServiceDist::exponential_us(10.0), 0.5);
    cfg.requests = scale.requests;
    cfg.warmup = scale.warmup;
    cfg
}

/// Runs the four curves over the overload grid.
pub fn run(scale: &Scale, fast: bool) -> Vec<Curve> {
    let grid = loads(fast);
    let mut curves = Vec::new();

    let stat = base(scale);
    curves.push(Curve {
        system: "ZygOS (static)".to_string(),
        points: latency_throughput_sweep(&stat, &grid),
    });

    let mut elastic = base(scale);
    elastic.system = SystemKind::Elastic { min_cores: 2 };
    elastic.preemption_quantum_us = QUANTUM_US;
    curves.push(Curve {
        system: format!("ZygOS (elastic, q={QUANTUM_US}us)"),
        points: latency_throughput_sweep(&elastic, &grid),
    });

    let mut credits = base(scale);
    credits.admission = Some(credit_config(credits.cores));
    curves.push(Curve {
        system: "ZygOS (credits)".to_string(),
        points: latency_throughput_sweep(&credits, &grid),
    });

    let mut client = base(scale);
    client.admission = Some(credit_config(client.cores));
    client.admission_mode = AdmissionMode::ClientSide;
    curves.push(Curve {
        system: "ZygOS (client credits)".to_string(),
        points: latency_throughput_sweep(&client, &grid),
    });

    curves
}

/// Runs the two-tenant weighted-fair-shedding sweep at the overload
/// points of the grid.
pub fn run_tenant_shed(scale: &Scale, fast: bool) -> Vec<TenantShedPoint> {
    loads(fast)
        .into_iter()
        .filter(|&l| l >= 1.19)
        .map(|load| {
            let mut cfg = base(scale);
            cfg.load = load;
            cfg.admission = Some(credit_config(cfg.cores));
            cfg.slo = Some(tenant_slos());
            let out = run_system(&cfg);
            TenantShedPoint {
                load,
                shed_fraction: out.shed_fraction(),
                strict_shed_share: out.shed_share_of_class(0),
                loose_shed_share: out.shed_share_of_class(1),
                p99_us: out.p99_us(),
            }
        })
        .collect()
}

/// Prints the figure: `p99`, `goodput`, `shed` and `wire-waste` series
/// per system, plus the two-tenant shed-share panel.
pub fn print(curves: &[Curve], tenants: &[TenantShedPoint]) {
    crate::print_header(
        "fig13",
        "overload: admitted p99, goodput, shed fraction and wasted wire vs offered load (SLO 100us)",
    );
    for c in curves {
        let p99: Vec<(f64, f64)> = c.points.iter().map(|p| (p.load, p.p99_us)).collect();
        let goodput: Vec<(f64, f64)> = c.points.iter().map(|p| (p.load, p.mrps)).collect();
        let shed: Vec<(f64, f64)> = c.points.iter().map(|p| (p.load, p.shed_fraction)).collect();
        let waste: Vec<(f64, f64)> = c
            .points
            .iter()
            .map(|p| (p.load, p.wasted_wire_us))
            .collect();
        crate::print_series("fig13", "exp-10us", &format!("{}/p99", c.system), &p99);
        crate::print_series(
            "fig13",
            "exp-10us",
            &format!("{}/goodput", c.system),
            &goodput,
        );
        crate::print_series("fig13", "exp-10us", &format!("{}/shed", c.system), &shed);
        crate::print_series(
            "fig13",
            "exp-10us",
            &format!("{}/wire-waste-us", c.system),
            &waste,
        );
    }
    for t in tenants {
        println!(
            "# fig13 tenants: load {:.2}: shed {:.0}% (interactive share {:.0}%, batch share {:.0}%), admitted p99 {:.0}us",
            t.load,
            100.0 * t.shed_fraction,
            100.0 * t.strict_shed_share,
            100.0 * t.loose_shed_share,
            t.p99_us
        );
    }
    headline(curves);
}

fn find<'a>(curves: &'a [Curve], prefix: &str) -> Option<&'a Curve> {
    curves.iter().find(|c| c.system.starts_with(prefix))
}

/// Prints the acceptance summary at overload points.
pub fn headline(curves: &[Curve]) {
    let (Some(stat), Some(credits), Some(client)) = (
        find(curves, "ZygOS (static)"),
        find(curves, "ZygOS (credits)"),
        find(curves, "ZygOS (client credits)"),
    ) else {
        return;
    };
    for ((s, c), k) in stat.points.iter().zip(&credits.points).zip(&client.points) {
        if s.load >= 1.19 {
            println!(
                "# fig13 headline: load {:.2}: credits p99 {:.0}us (shed {:.0}%, wire waste {:.0}us) vs client-side waste {:.0}us vs static p99 {:.0}us — bound 2xSLO = {:.0}us ({})",
                s.load,
                c.p99_us,
                100.0 * c.shed_fraction,
                c.wasted_wire_us,
                k.wasted_wire_us,
                s.p99_us,
                BOUND_US,
                if c.p99_us <= BOUND_US && k.p99_us <= BOUND_US {
                    "bounded"
                } else {
                    "VIOLATED"
                }
            );
        }
    }
}

/// CI gate over the four curves: at every offered load ≥ 1.2 both credit
/// systems' admitted p99 must sit within 2× the SLO while the
/// uncontrolled PR-1 policies diverge past it, and client-side credits
/// must strictly reduce wasted wire time versus server-edge shedding.
/// Returns a description of the first violation.
pub fn check(curves: &[Curve]) -> Result<(), String> {
    let stat = find(curves, "ZygOS (static)").ok_or("missing static curve")?;
    let elastic = find(curves, "ZygOS (elastic").ok_or("missing elastic curve")?;
    let credits = find(curves, "ZygOS (credits)").ok_or("missing credits curve")?;
    let client = find(curves, "ZygOS (client credits)").ok_or("missing client-credits curve")?;
    let mut checked = 0;
    for (((s, e), c), k) in stat
        .points
        .iter()
        .zip(&elastic.points)
        .zip(&credits.points)
        .zip(&client.points)
    {
        if s.load < 1.19 {
            continue;
        }
        checked += 1;
        for (label, pt) in [("credits", c), ("client credits", k)] {
            if pt.p99_us > BOUND_US {
                return Err(format!(
                    "load {:.2}: {label} p99 {:.0}us exceeds the 2xSLO bound {:.0}us",
                    pt.load, pt.p99_us, BOUND_US
                ));
            }
            if pt.shed_fraction <= 0.0 {
                return Err(format!(
                    "load {:.2}: {label} must shed at overload, got {}",
                    pt.load, pt.shed_fraction
                ));
            }
        }
        if s.p99_us <= BOUND_US {
            return Err(format!(
                "load {:.2}: static p99 {:.0}us should diverge past {:.0}us — overload too weak?",
                s.load, s.p99_us, BOUND_US
            ));
        }
        if e.p99_us <= BOUND_US {
            return Err(format!(
                "load {:.2}: elastic p99 {:.0}us should diverge past {:.0}us — overload too weak?",
                e.load, e.p99_us, BOUND_US
            ));
        }
        if c.wasted_wire_us <= 0.0 {
            return Err(format!(
                "load {:.2}: server-edge shedding must burn wire RTT, got {}us",
                c.load, c.wasted_wire_us
            ));
        }
        if k.wasted_wire_us >= c.wasted_wire_us {
            return Err(format!(
                "load {:.2}: client-side waste {:.0}us must be strictly below server-edge {:.0}us",
                k.load, k.wasted_wire_us, c.wasted_wire_us
            ));
        }
    }
    if checked == 0 {
        return Err("no overload points (load >= 1.2) in the grid".to_string());
    }
    Ok(())
}

/// CI gate over the two-tenant sweep: at every overload point the loose
/// (batch) class must carry strictly more of the sheds than the strict
/// (interactive) class, and the admitted tail must stay bounded
/// (≤ [`BOUND_US`], judged against the strict class's SLO — the batch
/// class's own bound is 10× looser).
pub fn check_tenants(points: &[TenantShedPoint]) -> Result<(), String> {
    if points.is_empty() {
        return Err("no tenant overload points".to_string());
    }
    for t in points {
        if t.shed_fraction <= 0.0 {
            return Err(format!("load {:.2}: tenants must shed at overload", t.load));
        }
        if t.loose_shed_share <= t.strict_shed_share {
            return Err(format!(
                "load {:.2}: loose class must shed first (loose {:.2} vs strict {:.2})",
                t.load, t.loose_shed_share, t.strict_shed_share
            ));
        }
        if t.p99_us > BOUND_US {
            return Err(format!(
                "load {:.2}: multi-tenant admitted p99 {:.0}us exceeds the 2xSLO bound {:.0}us",
                t.load, t.p99_us, BOUND_US
            ));
        }
    }
    Ok(())
}
