//! Figure 13 (extension, not in the paper): overload behavior with and
//! without credit-based admission control.
//!
//! Sweeps offered load **through and past saturation** (up to 1.5× the
//! ideal capacity) on the paper's headline exponential/10µs workload:
//!
//! * **ZygOS (static)** and **ZygOS (elastic, q=25µs)** — the PR-1
//!   policies: with no admission control, sustained `util > 1` grows the
//!   queue without bound and every dispatch discipline's p99 diverges
//!   together (the window keeps most of the divergence off-screen; it
//!   grows with measurement length).
//! * **ZygOS (credits)** — the same dispatch plane behind a
//!   Breakwater-style [`zygos_sched::CreditPool`] shedding at the
//!   **server edge**: admitted in-flight requests are bounded by
//!   AIMD-resized credits steering the window tail to
//!   [`CREDIT_TARGET_US`], and the surplus is shed with explicit rejects
//!   — each of which has already burned a full wire RTT (request there,
//!   reject back).
//! * **ZygOS (client credits)** — the same pool consulted at the
//!   **sender**: a creditless request is never sent, so every shed costs
//!   zero wire time. Identical admitted tail, identical goodput — the
//!   wasted-wire column is the entire difference, and it is what
//!   Breakwater's credit distribution buys.
//! * **ZygOS (credits, tenants)** — a **two-tenant** configuration
//!   (interactive p99 ≤ 100µs next to batch p99 ≤ 1000µs): the AIMD
//!   target derives per class from the bounds and shedding is
//!   weighted-fair with per-class occupancy caps — the batch class hits
//!   its own cap (and sheds) first, while keeping a guaranteed floor of
//!   admissions.
//!
//! The experiment matrix is one [`Scenario`] ([`scenario`]) — the same
//! description committed as `scenarios/fig13_overload.toml`, whose
//! claims CI enforces through `lab run --smoke --check`. The claims the
//! local `--check` mode (and `tests/overload.rs`) pin at offered load
//! ≥ 1.2:
//!
//! 1. all credit systems' **admitted p99 stays within 2× the SLO** while
//!    the uncontrolled policies blow through it;
//! 2. client-side credits **strictly reduce wasted wire RTT** versus
//!    server-edge shedding (which burns one RTT per reject);
//! 3. the **loosest tenant class sheds first** under weighted fair
//!    shedding — and, with per-class occupancy tracking, retains a
//!    floor of admissions instead of starving.

use zygos_lab::{Case, Claims, PointMetrics, Scenario, SimHost};
use zygos_load::slo::{Slo, SloClass, TenantSlos};
use zygos_sched::CreditConfig;
use zygos_sim::dist::ServiceDist;
use zygos_sysim::{AdmissionMode, CREDIT_HEADROOM};

use crate::fig12_elastic::QUANTUM_US;
use crate::Scale;

/// The SLO this figure is judged against: the paper's microbenchmark
/// `10·S̄` at p99 for the exponential/10µs workload.
pub const SLO_US: f64 = 100.0;

/// The AIMD loop's window-tail target. Below the SLO by design: the
/// controller must start shedding *before* the tail reaches the bound,
/// and the window p99 is a noisy (small-sample) estimator. Equals
/// `CREDIT_HEADROOM × SLO_US` — the single-tenant special case of the
/// per-class targets `TenantSlos::aimd_targets_us` derives.
pub const CREDIT_TARGET_US: f64 = CREDIT_HEADROOM * SLO_US;

/// Admitted-tail acceptance bound: within 2× the SLO at overload.
pub const BOUND_US: f64 = 2.0 * SLO_US;

/// The overload-focused load grid (fractions of ideal saturation).
pub fn loads(fast: bool) -> Vec<f64> {
    if fast {
        vec![0.8, 1.2, 1.4]
    } else {
        vec![0.6, 0.8, 0.9, 1.0, 1.1, 1.2, 1.35, 1.5]
    }
}

/// The credit-gate configuration the figure (and the acceptance tests)
/// use for a `cores`-wide plane.
pub fn credit_config(cores: usize) -> CreditConfig {
    CreditConfig::for_cores(cores, CREDIT_TARGET_US)
}

/// The two-tenant registry of the weighted-fair-shedding panel:
/// interactive (p99 ≤ [`SLO_US`]) next to batch (p99 ≤ 10×[`SLO_US`]).
/// Round-robin assignment puts even connections in interactive, odd in
/// batch.
pub fn tenant_slos() -> TenantSlos {
    TenantSlos::new(vec![
        SloClass::new("interactive", Slo::p99(SLO_US)),
        SloClass::new("batch", Slo::p99(10.0 * SLO_US)),
    ])
}

/// The five-case overload scenario — the programmatic twin of
/// `scenarios/fig13_overload.toml`.
pub fn scenario(scale: &Scale, fast: bool) -> Scenario {
    let claims = Claims {
        admitted_p99_bound_us: Some(BOUND_US),
        uncontrolled_diverge_past_us: Some(BOUND_US),
        client_waste_below_server: true,
        loose_sheds_first: true,
        loose_floor_max_shed_rate: Some(0.95),
        ..Claims::default()
    };
    crate::scenario("fig13-overload", scale)
        .service(ServiceDist::exponential_us(10.0))
        .loads(loads(fast))
        .case(Case::sim("ZygOS (static)", SimHost::Zygos))
        .case(
            Case::sim(
                format!("ZygOS (elastic, q={QUANTUM_US}us)"),
                SimHost::Elastic,
            )
            .min_cores(2)
            .quantum_us(QUANTUM_US),
        )
        .case(
            Case::sim("ZygOS (credits)", SimHost::Zygos)
                .admission(AdmissionMode::ServerEdge)
                .credit_target_us(CREDIT_TARGET_US),
        )
        .case(
            Case::sim("ZygOS (client credits)", SimHost::Zygos)
                .admission(AdmissionMode::ClientSide)
                .credit_target_us(CREDIT_TARGET_US),
        )
        .case(
            Case::sim("ZygOS (credits, tenants)", SimHost::Zygos)
                .admission(AdmissionMode::ServerEdge)
                .credit_target_us(CREDIT_TARGET_US)
                .slo(tenant_slos()),
        )
        .claims(claims)
        .build()
        .expect("fig13 scenario")
}

/// One system's overload curve.
pub struct Curve {
    /// System label.
    pub system: String,
    /// Per-load measurements.
    pub points: Vec<PointMetrics>,
}

/// One load point of the two-tenant weighted-fair-shedding panel.
pub struct TenantShedPoint {
    /// Offered load (fraction of ideal saturation).
    pub load: f64,
    /// Overall shed fraction.
    pub shed_fraction: f64,
    /// Share of all sheds falling on the strict (interactive) class.
    pub strict_shed_share: f64,
    /// Share of all sheds falling on the loose (batch) class.
    pub loose_shed_share: f64,
    /// The loose class's own shed rate (its floor guarantee: < 1).
    pub loose_shed_rate: f64,
    /// Admitted p99 (µs).
    pub p99_us: f64,
}

/// Runs the scenario; returns the four single-tenant curves and the
/// tenant panel.
pub fn run(scale: &Scale, fast: bool) -> (Vec<Curve>, Vec<TenantShedPoint>) {
    let sc = scenario(scale, fast);
    let report = crate::run(&sc);
    let mut curves = Vec::new();
    let mut tenants = Vec::new();
    for series in report.series {
        if series.label == "ZygOS (credits, tenants)" {
            tenants = series
                .points
                .iter()
                .filter(|p| p.load >= 1.19)
                .map(|p| TenantShedPoint {
                    load: p.load,
                    shed_fraction: p.shed_fraction,
                    strict_shed_share: p.shed_share_by_class.first().copied().unwrap_or(0.0),
                    loose_shed_share: p.shed_share_by_class.get(1).copied().unwrap_or(0.0),
                    loose_shed_rate: p.shed_rate_by_class.get(1).copied().unwrap_or(0.0),
                    p99_us: p.p99_us,
                })
                .collect();
        } else {
            curves.push(Curve {
                system: series.label,
                points: series.points,
            });
        }
    }
    (curves, tenants)
}

/// Prints the figure: `p99`, `goodput`, `shed` and `wire-waste` series
/// per system, plus the two-tenant shed-share panel.
pub fn print(curves: &[Curve], tenants: &[TenantShedPoint]) {
    crate::print_header(
        "fig13",
        "overload: admitted p99, goodput, shed fraction and wasted wire vs offered load (SLO 100us)",
    );
    for c in curves {
        let xy = |f: fn(&PointMetrics) -> f64| zygos_lab::xy(&c.points, |p| p.load, f);
        crate::print_series(
            "fig13",
            "exp-10us",
            &format!("{}/p99", c.system),
            &xy(|p| p.p99_us),
        );
        crate::print_series(
            "fig13",
            "exp-10us",
            &format!("{}/goodput", c.system),
            &xy(|p| p.mrps),
        );
        crate::print_series(
            "fig13",
            "exp-10us",
            &format!("{}/shed", c.system),
            &xy(|p| p.shed_fraction),
        );
        crate::print_series(
            "fig13",
            "exp-10us",
            &format!("{}/wire-waste-us", c.system),
            &xy(|p| p.wasted_wire_us),
        );
    }
    for t in tenants {
        println!(
            "# fig13 tenants: load {:.2}: shed {:.0}% (interactive share {:.0}%, batch share {:.0}%, batch own rate {:.0}%), admitted p99 {:.0}us",
            t.load,
            100.0 * t.shed_fraction,
            100.0 * t.strict_shed_share,
            100.0 * t.loose_shed_share,
            100.0 * t.loose_shed_rate,
            t.p99_us
        );
    }
    headline(curves);
}

fn find<'a>(curves: &'a [Curve], prefix: &str) -> Option<&'a Curve> {
    curves.iter().find(|c| c.system.starts_with(prefix))
}

/// Prints the acceptance summary at overload points.
pub fn headline(curves: &[Curve]) {
    let (Some(stat), Some(credits), Some(client)) = (
        find(curves, "ZygOS (static)"),
        find(curves, "ZygOS (credits)"),
        find(curves, "ZygOS (client credits)"),
    ) else {
        return;
    };
    for ((s, c), k) in stat.points.iter().zip(&credits.points).zip(&client.points) {
        if s.load >= 1.19 {
            println!(
                "# fig13 headline: load {:.2}: credits p99 {:.0}us (shed {:.0}%, wire waste {:.0}us) vs client-side waste {:.0}us vs static p99 {:.0}us — bound 2xSLO = {:.0}us ({})",
                s.load,
                c.p99_us,
                100.0 * c.shed_fraction,
                c.wasted_wire_us,
                k.wasted_wire_us,
                s.p99_us,
                BOUND_US,
                if c.p99_us <= BOUND_US && k.p99_us <= BOUND_US {
                    "bounded"
                } else {
                    "VIOLATED"
                }
            );
        }
    }
}

/// CI gate over the four curves: at every offered load ≥ 1.2 both credit
/// systems' admitted p99 must sit within 2× the SLO while the
/// uncontrolled PR-1 policies diverge past it, and client-side credits
/// must strictly reduce wasted wire time versus server-edge shedding.
/// Returns a description of the first violation.
pub fn check(curves: &[Curve]) -> Result<(), String> {
    let stat = find(curves, "ZygOS (static)").ok_or("missing static curve")?;
    let elastic = find(curves, "ZygOS (elastic").ok_or("missing elastic curve")?;
    let credits = find(curves, "ZygOS (credits)").ok_or("missing credits curve")?;
    let client = find(curves, "ZygOS (client credits)").ok_or("missing client-credits curve")?;
    let mut checked = 0;
    for (((s, e), c), k) in stat
        .points
        .iter()
        .zip(&elastic.points)
        .zip(&credits.points)
        .zip(&client.points)
    {
        if s.load < 1.19 {
            continue;
        }
        checked += 1;
        for (label, pt) in [("credits", c), ("client credits", k)] {
            if pt.p99_us > BOUND_US {
                return Err(format!(
                    "load {:.2}: {label} p99 {:.0}us exceeds the 2xSLO bound {:.0}us",
                    pt.load, pt.p99_us, BOUND_US
                ));
            }
            if pt.shed_fraction <= 0.0 {
                return Err(format!(
                    "load {:.2}: {label} must shed at overload, got {}",
                    pt.load, pt.shed_fraction
                ));
            }
        }
        if s.p99_us <= BOUND_US {
            return Err(format!(
                "load {:.2}: static p99 {:.0}us should diverge past {:.0}us — overload too weak?",
                s.load, s.p99_us, BOUND_US
            ));
        }
        if e.p99_us <= BOUND_US {
            return Err(format!(
                "load {:.2}: elastic p99 {:.0}us should diverge past {:.0}us — overload too weak?",
                e.load, e.p99_us, BOUND_US
            ));
        }
        if c.wasted_wire_us <= 0.0 {
            return Err(format!(
                "load {:.2}: server-edge shedding must burn wire RTT, got {}us",
                c.load, c.wasted_wire_us
            ));
        }
        if k.wasted_wire_us >= c.wasted_wire_us {
            return Err(format!(
                "load {:.2}: client-side waste {:.0}us must be strictly below server-edge {:.0}us",
                k.load, k.wasted_wire_us, c.wasted_wire_us
            ));
        }
    }
    if checked == 0 {
        return Err("no overload points (load >= 1.2) in the grid".to_string());
    }
    Ok(())
}

/// CI gate over the two-tenant sweep: at every overload point the loose
/// (batch) class must carry strictly more of the sheds than the strict
/// (interactive) class **while retaining an admission floor** (its own
/// shed rate stays below 95%), and the admitted tail must stay bounded
/// (≤ [`BOUND_US`], judged against the strict class's SLO — the batch
/// class's own bound is 10× looser).
pub fn check_tenants(points: &[TenantShedPoint]) -> Result<(), String> {
    if points.is_empty() {
        return Err("no tenant overload points".to_string());
    }
    for t in points {
        if t.shed_fraction <= 0.0 {
            return Err(format!("load {:.2}: tenants must shed at overload", t.load));
        }
        if t.loose_shed_share <= t.strict_shed_share {
            return Err(format!(
                "load {:.2}: loose class must shed first (loose {:.2} vs strict {:.2})",
                t.load, t.loose_shed_share, t.strict_shed_share
            ));
        }
        if t.loose_shed_rate >= 0.95 {
            return Err(format!(
                "load {:.2}: loose class lost its floor (own shed rate {:.2})",
                t.load, t.loose_shed_rate
            ));
        }
        if t.p99_us > BOUND_US {
            return Err(format!(
                "load {:.2}: multi-tenant admitted p99 {:.0}us exceeds the 2xSLO bound {:.0}us",
                t.load, t.p99_us, BOUND_US
            ));
        }
    }
    Ok(())
}
