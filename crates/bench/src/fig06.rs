//! Figure 6: p99 latency vs throughput for {deterministic, exponential,
//! bimodal-1} × {10µs, 25µs}, comparing Linux-floating, IX, ZygOS,
//! ZygOS-no-interrupts, and the zero-overhead M/G/16/FCFS model.
//!
//! One scenario per panel: four simulator cases sweep the load grid; the
//! theory line is computed separately (it carries the wire RTT the
//! models do not know about).

use zygos_lab::{Case, SimHost};
use zygos_sysim::theory_central_p99_us;

use crate::fig03::{dist_for, label_of};
use crate::Scale;

/// One curve of one panel.
pub struct Curve {
    /// Panel id, e.g. `"exponential/10us"`.
    pub panel: String,
    /// System label.
    pub system: String,
    /// `(throughput MRPS, p99 µs)` points.
    pub points: Vec<(f64, f64)>,
}

/// The systems plotted, in legend order.
pub const SYSTEMS: [SimHost; 4] = [
    SimHost::LinuxFloating,
    SimHost::Ix,
    SimHost::ZygosNoInterrupts,
    SimHost::Zygos,
];

/// Runs one panel.
pub fn run_panel(scale: &Scale, dist_label: &'static str, mean_us: f64) -> Vec<Curve> {
    let panel = format!("{dist_label}/{mean_us}us");
    let mut builder = crate::scenario("fig06", scale)
        .service(dist_for(dist_label, mean_us))
        .loads(scale.loads.clone());
    for host in SYSTEMS {
        builder = builder.case(Case::sim(label_of(host), host));
    }
    let sc = builder.build().expect("fig06 scenario");
    let mut curves: Vec<Curve> = crate::run(&sc)
        .series
        .into_iter()
        .map(|series| Curve {
            panel: panel.clone(),
            system: series.label.clone(),
            points: zygos_lab::xy(&series.points, |p| p.mrps, |p| p.p99_us),
        })
        .collect();
    // Zero-overhead centralized bound (the "Theoretical M/G/16/FCFS" line).
    let service = dist_for(dist_label, mean_us);
    let theory: Vec<(f64, f64)> = scale
        .loads
        .iter()
        .filter(|&&load| load < 1.0)
        .map(|&load| {
            let mrps = load * 16.0 / mean_us;
            let p99 = theory_central_p99_us(&service, 16, load, 4.0, scale.theory_requests, 5);
            (mrps, p99)
        })
        .collect();
    curves.push(Curve {
        panel,
        system: "Theoretical M/G/16/FCFS".to_string(),
        points: theory,
    });
    curves
}

/// All six panels.
pub fn run(scale: &Scale) -> Vec<Curve> {
    let mut curves = Vec::new();
    for dist in ["deterministic", "exponential", "bimodal-1"] {
        for mean in [10.0, 25.0] {
            curves.extend(run_panel(scale, dist, mean));
        }
    }
    curves
}

/// Prints the figure.
pub fn print(curves: &[Curve]) {
    crate::print_header(
        "fig06",
        "p99 latency vs throughput, 3 distributions x {10us,25us}, 4 systems + bound",
    );
    for c in curves {
        crate::print_series("fig06", &c.panel, &c.system, &c.points);
    }
}
