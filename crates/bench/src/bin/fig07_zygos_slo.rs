//! Regenerates Figure 7 (max load @ SLO vs service time, with ZygOS).
fn main() {
    let scale = zygos_bench::Scale::from_env();
    let curves = zygos_bench::fig07::run(&scale);
    zygos_bench::fig07::print(&curves);
}
