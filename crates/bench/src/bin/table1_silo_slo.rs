//! Regenerates Table 1 (Silo/TPC-C max load @ SLO and tail latencies).
fn main() {
    let scale = zygos_bench::Scale::from_env();
    let m = zygos_bench::fig10::measure_service_times(&scale);
    let p99 = m.mix.p99_us();
    let rows = zygos_bench::fig10::run_table1(&scale, m.mix_samples, p99);
    zygos_bench::fig10::print_table1(&rows, p99);
}
