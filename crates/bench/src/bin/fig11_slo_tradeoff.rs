//! Regenerates Figure 11 (SLO choice: IX batching vs ZygOS).
fn main() {
    let scale = zygos_bench::Scale::from_env();
    let curves = zygos_bench::fig11::run(&scale);
    zygos_bench::fig11::print(&curves);
}
