//! Regenerates Figure 13 (extension): overload behavior with and without
//! credit-based admission control — server-edge vs client-side credits,
//! plus the two-tenant weighted-fair-shedding panel.
//!
//! The whole experiment is one `zygos_lab` scenario
//! (`zygos_bench::fig13::scenario`, committed as
//! `scenarios/fig13_overload.toml`); this binary is a thin wrapper that
//! runs it and renders the paper-style series.
//!
//! Flags:
//!
//! * `--smoke` — reduced duration/arrival count and a 3-point load grid
//!   (CI runs the equivalent through `lab run scenarios/fig13_overload.toml
//!   --smoke --check`);
//! * `--check` — exit nonzero unless the acceptance claims hold: admitted
//!   p99 within 2× the SLO at offered load ≥ 1.2 while the uncontrolled
//!   policies diverge, client-side credits strictly below server-edge
//!   wasted wire time, and the loosest tenant class shedding first while
//!   keeping its admission floor.
//!
//! `ZYGOS_FAST=1` also selects the reduced grid at the standard fast
//! scale. See `docs/FIGURES.md` for expected headline numbers and what a
//! regression here means.

use zygos_bench::{fig13, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let (scale, fast) = if smoke {
        // Small enough for CI, large enough for the AIMD loop to settle
        // (~50 control windows inside the warmup alone).
        let scale = Scale {
            requests: 8_000,
            warmup: 2_000,
            ..Scale::smoke()
        };
        (scale, true)
    } else {
        let fast = std::env::var("ZYGOS_FAST").is_ok_and(|v| v == "1");
        (Scale::from_env(), fast)
    };
    let (curves, tenants) = fig13::run(&scale, fast);
    fig13::print(&curves, &tenants);
    if check {
        let result = fig13::check(&curves).and_then(|()| fig13::check_tenants(&tenants));
        match result {
            Ok(()) => println!("# fig13 check OK"),
            Err(e) => {
                eprintln!("fig13 check FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
}
