//! Regenerates Figure 13 (extension): overload behavior with and without
//! credit-based admission control.
//!
//! Flags:
//!
//! * `--smoke` — reduced duration/arrival count and a 3-point load grid
//!   (what CI runs);
//! * `--check` — exit nonzero unless the acceptance claim holds: admitted
//!   p99 within 2× the SLO at offered load ≥ 1.2 while the uncontrolled
//!   policies diverge.
//!
//! `ZYGOS_FAST=1` also selects the reduced grid at the standard fast
//! scale.

use zygos_bench::{fig13, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let (scale, fast) = if smoke {
        // Small enough for CI, large enough for the AIMD loop to settle
        // (~50 control windows inside the warmup alone).
        let scale = Scale {
            requests: 8_000,
            warmup: 2_000,
            ..Scale::smoke()
        };
        (scale, true)
    } else {
        let fast = std::env::var("ZYGOS_FAST").is_ok_and(|v| v == "1");
        (Scale::from_env(), fast)
    };
    let curves = fig13::run(&scale, fast);
    fig13::print(&curves);
    if check {
        match fig13::check(&curves) {
            Ok(()) => println!("# fig13 check OK"),
            Err(e) => {
                eprintln!("fig13 check FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
}
