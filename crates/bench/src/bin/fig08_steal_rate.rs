//! Regenerates Figure 8 (steal rate vs throughput).
fn main() {
    let scale = zygos_bench::Scale::from_env();
    let curves = zygos_bench::fig08::run(&scale);
    zygos_bench::fig08::print(&curves);
}
