//! Regenerates Figure 10b (Silo/TPC-C p99 latency vs throughput).
fn main() {
    let scale = zygos_bench::Scale::from_env();
    let m = zygos_bench::fig10::measure_service_times(&scale);
    println!(
        "# measured service times: mean={:.1}us p99={:.1}us (paper: 33us / 203us)",
        m.mix.mean_us(),
        m.mix.p99_us()
    );
    let curves = zygos_bench::fig10::run_fig10b(&scale, m.mix_samples);
    zygos_bench::fig10::print_fig10b(&curves);
}
