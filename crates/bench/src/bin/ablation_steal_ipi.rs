//! Ablation studies: steal-order randomization, IPI delivery latency,
//! steal cost, and the bimodal-2 system experiment.
fn main() {
    let scale = zygos_bench::Scale::from_env();
    let rows = zygos_bench::ablation::run(&scale);
    zygos_bench::ablation::print(&rows);
}
