//! Regenerates Figure 12 (extension): elastic cores + preemptive quantum.
fn main() {
    let scale = zygos_bench::Scale::from_env();
    let curves = zygos_bench::fig12_elastic::run(&scale);
    zygos_bench::fig12_elastic::print(&curves);
}
