//! Regenerates Figure 6 (p99 latency vs throughput, six panels).
fn main() {
    let scale = zygos_bench::Scale::from_env();
    let curves = zygos_bench::fig06::run(&scale);
    zygos_bench::fig06::print(&curves);
}
