//! Regenerates Figure 10a (TPC-C service-time CCDF, Silo local).
fn main() {
    let scale = zygos_bench::Scale::from_env();
    let m = zygos_bench::fig10::measure_service_times(&scale);
    zygos_bench::fig10::print_fig10a(&m);
}
