//! Regenerates Figure 2 (queueing-model tail latencies).
fn main() {
    let scale = zygos_bench::Scale::from_env();
    let curves = zygos_bench::fig02::run(&scale);
    zygos_bench::fig02::print(&curves);
}
