//! Regenerates Figure 9 (memcached USR/ETC latency vs throughput).
fn main() {
    let scale = zygos_bench::Scale::from_env();
    let curves = zygos_bench::fig09::run(&scale);
    zygos_bench::fig09::print(&curves);
}
