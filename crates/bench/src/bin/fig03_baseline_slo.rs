//! Regenerates Figure 3 (baseline max load @ SLO vs service time).
fn main() {
    let scale = zygos_bench::Scale::from_env();
    let curves = zygos_bench::fig03::run(&scale);
    zygos_bench::fig03::print(&curves);
}
