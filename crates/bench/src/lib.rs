//! Experiment drivers shared by the figure binaries and the Criterion
//! smoke benchmarks.
//!
//! Every paper table/figure has a module here exposing `run(&Scale)` (the
//! computation, returning structured rows) and `print(..)` (the binary's
//! stdout rendering, shaped like the paper's series). The binaries run at
//! [`Scale::from_env`] (set `ZYGOS_FAST=1` for a quick pass); `cargo bench`
//! exercises each experiment at [`Scale::smoke`].
//!
//! Since PR 4 every module is a **thin wrapper over the scenario plane**
//! (`zygos_lab`): a fig module *describes* its experiment matrix as a
//! [`zygos_lab::Scenario`] (workload + cases + claims) and lets the lab
//! runner execute it — no module constructs a `SysConfig` or
//! `RuntimeConfig` by hand anymore, so the same matrices are available
//! as TOML specs under `scenarios/` and the figure binaries and the
//! `lab` CLI cannot drift apart. [`scenario`] is the shared preamble
//! binding a [`Scale`] to a builder.

pub mod ablation;
pub mod fig02;
pub mod fig03;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12_elastic;
pub mod fig13;

/// Experiment sizing knobs.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Completions measured per simulation point.
    pub requests: u64,
    /// Warmup completions discarded per point.
    pub warmup: u64,
    /// Load grid for latency-throughput sweeps.
    pub loads: Vec<f64>,
    /// Grid resolution for max-load@SLO searches (steps of 1/resolution).
    pub resolution: usize,
    /// Completions per point for zero-overhead theory curves.
    pub theory_requests: u64,
    /// TPC-C transactions measured for the Silo experiments.
    pub silo_txns: usize,
    /// TPC-C warehouses loaded.
    pub warehouses: u16,
}

impl Scale {
    /// Full figure-quality scale.
    pub fn full() -> Scale {
        Scale {
            requests: 50_000,
            warmup: 10_000,
            loads: (1..=19).map(|i| i as f64 * 0.05).collect(),
            resolution: 40,
            theory_requests: 80_000,
            silo_txns: 20_000,
            warehouses: 2,
        }
    }

    /// Reduced scale for quick verification runs.
    pub fn fast() -> Scale {
        Scale {
            requests: 12_000,
            warmup: 3_000,
            loads: (1..=9).map(|i| i as f64 * 0.1).collect(),
            resolution: 20,
            theory_requests: 30_000,
            silo_txns: 4_000,
            warehouses: 1,
        }
    }

    /// Tiny scale used by the Criterion smoke benchmarks.
    pub fn smoke() -> Scale {
        Scale {
            requests: 2_000,
            warmup: 500,
            loads: vec![0.3, 0.6, 0.9],
            resolution: 8,
            theory_requests: 5_000,
            silo_txns: 300,
            warehouses: 1,
        }
    }

    /// [`Scale::full`] unless `ZYGOS_FAST=1` is set in the environment.
    pub fn from_env() -> Scale {
        if std::env::var("ZYGOS_FAST").is_ok_and(|v| v == "1") {
            Scale::fast()
        } else {
            Scale::full()
        }
    }
}

/// Starts a scenario builder sized by a [`Scale`] — the shared preamble
/// of every fig module. The figure's own load grid still comes from the
/// module (panels differ); measurement windows and the seed are uniform.
pub fn scenario(name: &str, scale: &Scale) -> zygos_lab::ScenarioBuilder {
    zygos_lab::Scenario::builder(name)
        .requests(scale.requests, scale.warmup)
        .smoke(scale.requests, scale.warmup)
}

/// Runs a scenario that a fig module assembled, panicking on the spec
/// errors a module must not produce (they are construction bugs, not
/// runtime conditions).
pub fn run(sc: &zygos_lab::Scenario) -> zygos_lab::Report {
    zygos_lab::run_scenario(sc, false).expect("fig scenario runs")
}

/// Prints one labelled `(x, y)` series in a grep-friendly layout:
/// `<figure>\t<panel>\t<series>\t<x>\t<y>`.
pub fn print_series(figure: &str, panel: &str, series: &str, points: &[(f64, f64)]) {
    for (x, y) in points {
        println!("{figure}\t{panel}\t{series}\t{x:.4}\t{y:.3}");
    }
}

/// Prints a figure header with the paper reference.
pub fn print_header(figure: &str, description: &str) {
    println!("# {figure}: {description}");
    println!("# columns: figure\tpanel\tseries\tx\ty");
}
