//! Figure 3: maximum load meeting the SLO (p99 ≤ 10·S̄) as a function of
//! mean service time, for the three baseline systems plus the two
//! zero-overhead theory bounds.

use zygos_sim::dist::ServiceDist;
use zygos_sim::queueing::Policy;
use zygos_sysim::{max_load_at_slo, theory_max_load_at_slo, SysConfig, SystemKind};

use crate::Scale;

/// Distribution constructors used by Figures 3 and 7.
pub fn dist_for(label: &str, mean_us: f64) -> ServiceDist {
    match label {
        "deterministic" => ServiceDist::deterministic_us(mean_us),
        "exponential" => ServiceDist::exponential_us(mean_us),
        "bimodal-1" => ServiceDist::bimodal1_us(mean_us),
        other => panic!("unknown distribution {other}"),
    }
}

/// One curve of the figure.
pub struct Curve {
    /// Distribution panel.
    pub dist: &'static str,
    /// System (or bound) label.
    pub system: String,
    /// `(mean service time µs, max load at SLO)` points.
    pub points: Vec<(f64, f64)>,
}

/// Runs one panel's curves over the given service-time grid.
pub fn run_panel(
    scale: &Scale,
    dist_label: &'static str,
    service_grid: &[f64],
    systems: &[SystemKind],
    include_bounds: bool,
) -> Vec<Curve> {
    let mut curves = Vec::new();
    for &system in systems {
        let points = service_grid
            .iter()
            .map(|&mean| {
                let mut cfg = SysConfig::paper(system, dist_for(dist_label, mean), 0.5);
                cfg.requests = scale.requests;
                cfg.warmup = scale.warmup;
                let load = max_load_at_slo(&cfg, 10.0 * mean, scale.resolution);
                (mean, load)
            })
            .collect();
        curves.push(Curve {
            dist: dist_label,
            system: system.label().to_string(),
            points,
        });
    }
    if include_bounds {
        for (policy, label) in [
            (Policy::CentralFcfs, "M/G/16/FCFS"),
            (Policy::PartitionedFcfs, "16xM/G/1/FCFS"),
        ] {
            // The bound is scale-free in S̄: compute once at unit mean.
            let bound = theory_max_load_at_slo(
                &dist_for(dist_label, 1.0),
                16,
                policy,
                10.0,
                scale.theory_requests,
                scale.resolution,
            );
            curves.push(Curve {
                dist: dist_label,
                system: label.to_string(),
                points: service_grid.iter().map(|&m| (m, bound)).collect(),
            });
        }
    }
    curves
}

/// The full figure: three distributions, the Figure-3 service grid.
pub fn run(scale: &Scale) -> Vec<Curve> {
    let grid = [2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 90.0, 120.0, 160.0, 200.0];
    let systems = [
        SystemKind::LinuxPartitioned,
        SystemKind::LinuxFloating,
        SystemKind::Ix,
    ];
    let mut curves = Vec::new();
    for dist in ["deterministic", "exponential", "bimodal-1"] {
        curves.extend(run_panel(scale, dist, &grid, &systems, true));
    }
    curves
}

/// Prints the figure.
pub fn print(curves: &[Curve]) {
    crate::print_header(
        "fig03",
        "max load @ SLO (p99 <= 10*S) vs mean service time, baselines + bounds",
    );
    for c in curves {
        crate::print_series("fig03", c.dist, &c.system, &c.points);
    }
}
