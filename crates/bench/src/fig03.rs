//! Figure 3: maximum load meeting the SLO (p99 ≤ 10·S̄) as a function of
//! mean service time, for the three baseline systems plus the two
//! zero-overhead theory bounds.
//!
//! Each `(system, service time)` cell is a one-case scenario whose
//! max-load@SLO search runs through the lab runner; the theory bounds
//! are model-host scenarios over the same machinery.

use zygos_lab::{Case, SimHost};
use zygos_sim::dist::ServiceDist;
use zygos_sim::queueing::Policy;

use crate::Scale;

/// Distribution constructors used by Figures 3 and 7.
pub fn dist_for(label: &str, mean_us: f64) -> ServiceDist {
    match label {
        "deterministic" => ServiceDist::deterministic_us(mean_us),
        "exponential" => ServiceDist::exponential_us(mean_us),
        "bimodal-1" => ServiceDist::bimodal1_us(mean_us),
        other => panic!("unknown distribution {other}"),
    }
}

/// One curve of the figure.
pub struct Curve {
    /// Distribution panel.
    pub dist: &'static str,
    /// System (or bound) label.
    pub system: String,
    /// `(mean service time µs, max load at SLO)` points.
    pub points: Vec<(f64, f64)>,
}

/// Max load at `slo_us` for one simulator host on one service dist —
/// a one-case scenario driven through the lab's search. The search grid
/// spans (0, 1): these figures measure *below*-saturation capacity.
fn max_load(scale: &Scale, host: SimHost, service: ServiceDist, slo_us: f64) -> f64 {
    let sc = crate::scenario("fig03", scale)
        .service(service)
        // The search probes its own loads; the grid here only sizes the
        // spec (validated non-empty).
        .loads(vec![0.5])
        .case(Case::sim("probe", host))
        .build()
        .expect("fig03 scenario");
    zygos_lab::max_load_at_slo(&sc, "probe", slo_us, scale.resolution, false)
        .expect("deterministic host")
}

/// Max load at the SLO for a zero-overhead queueing bound, scale-free in
/// S̄ (computed at unit mean).
fn theory_bound(scale: &Scale, dist_label: &str, policy: Policy, label: &str) -> f64 {
    let sc = zygos_lab::Scenario::builder("fig03-bound")
        .service(dist_for(dist_label, 1.0))
        .cores(16)
        .conns(16)
        .loads(vec![0.5])
        .requests(scale.theory_requests, scale.theory_requests / 5)
        .smoke(scale.theory_requests, scale.theory_requests / 5)
        .seed(7)
        .case(Case::model(label, policy))
        .build()
        .expect("bound scenario");
    zygos_lab::max_load_at_slo(&sc, label, 10.0, scale.resolution, false).expect("model host")
}

/// Runs one panel's curves over the given service-time grid.
pub fn run_panel(
    scale: &Scale,
    dist_label: &'static str,
    service_grid: &[f64],
    systems: &[SimHost],
    include_bounds: bool,
) -> Vec<Curve> {
    let mut curves = Vec::new();
    for &host in systems {
        let points = service_grid
            .iter()
            .map(|&mean| {
                let load = max_load(scale, host, dist_for(dist_label, mean), 10.0 * mean);
                (mean, load)
            })
            .collect();
        curves.push(Curve {
            dist: dist_label,
            system: label_of(host).to_string(),
            points,
        });
    }
    if include_bounds {
        for (policy, label) in [
            (Policy::CentralFcfs, "M/G/16/FCFS"),
            (Policy::PartitionedFcfs, "16xM/G/1/FCFS"),
        ] {
            let bound = theory_bound(scale, dist_label, policy, label);
            curves.push(Curve {
                dist: dist_label,
                system: label.to_string(),
                points: service_grid.iter().map(|&m| (m, bound)).collect(),
            });
        }
    }
    curves
}

/// Display label matching the paper's figure legends.
pub fn label_of(host: SimHost) -> &'static str {
    match host {
        SimHost::Zygos => "ZygOS",
        SimHost::ZygosNoInterrupts => "ZygOS (no interrupts)",
        SimHost::Elastic => "ZygOS (elastic)",
        SimHost::Ix => "IX",
        SimHost::LinuxPartitioned => "Linux (partitioned connections)",
        SimHost::LinuxFloating => "Linux (floating connections)",
        SimHost::Staged => "ZygOS (staged pipeline)",
    }
}

/// The full figure: three distributions, the Figure-3 service grid.
pub fn run(scale: &Scale) -> Vec<Curve> {
    let grid = [2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 90.0, 120.0, 160.0, 200.0];
    let systems = [
        SimHost::LinuxPartitioned,
        SimHost::LinuxFloating,
        SimHost::Ix,
    ];
    let mut curves = Vec::new();
    for dist in ["deterministic", "exponential", "bimodal-1"] {
        curves.extend(run_panel(scale, dist, &grid, &systems, true));
    }
    curves
}

/// Prints the figure.
pub fn print(curves: &[Curve]) {
    crate::print_header(
        "fig03",
        "max load @ SLO (p99 <= 10*S) vs mean service time, baselines + bounds",
    );
    for c in curves {
        crate::print_series("fig03", c.dist, &c.system, &c.points);
    }
}
