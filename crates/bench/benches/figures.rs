//! Smoke benchmarks covering **every paper table and figure**: each runs
//! the real experiment driver at [`zygos_bench::Scale::smoke`] so that
//! `cargo bench --workspace` exercises the complete reproduction pipeline.
//!
//! Full-resolution regeneration is done by the `fig*` binaries
//! (`cargo run --release -p zygos-bench --bin fig06_latency_throughput`).

use criterion::{criterion_group, criterion_main, Criterion};

use zygos_bench::{fig02, fig03, fig06, fig08, fig09, fig10, fig11, Scale};

fn bench_figures(c: &mut Criterion) {
    let scale = Scale::smoke();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig02_queueing_models", |b| {
        b.iter(|| fig02::run(&scale));
    });
    g.bench_function("fig03_baseline_slo_panel", |b| {
        b.iter(|| {
            fig03::run_panel(
                &scale,
                "exponential",
                &[10.0, 25.0],
                &[zygos_lab::SimHost::Ix, zygos_lab::SimHost::LinuxFloating],
                true,
            )
        });
    });
    g.bench_function("fig06_latency_throughput_panel", |b| {
        b.iter(|| fig06::run_panel(&scale, "exponential", 10.0));
    });
    g.bench_function("fig07_zygos_slo_panel", |b| {
        b.iter(|| {
            fig03::run_panel(
                &scale,
                "exponential",
                &[10.0, 25.0],
                &[zygos_lab::SimHost::Zygos],
                false,
            )
        });
    });
    g.bench_function("fig08_steal_rate", |b| {
        b.iter(|| fig08::run(&scale));
    });
    g.bench_function("fig09_memcached_usr", |b| {
        b.iter(|| fig09::run_panel(&scale, zygos_kv::workload::WorkloadKind::Usr));
    });
    g.bench_function("fig11_slo_tradeoff", |b| {
        b.iter(|| fig11::run(&scale));
    });
    g.finish();

    // The Silo experiments share one loaded database (loading dominates,
    // so it happens once here, not inside the timed iterations).
    let mut g = c.benchmark_group("figures_silo");
    g.sample_size(10);
    let m = fig10::measure_service_times(&scale);
    g.bench_function("fig10a_mix_transaction", |b| {
        use zygos_silo::tpcc::{Tpcc, TpccConfig, TpccRng, TxnType};
        let tpcc = Tpcc::load(TpccConfig {
            warehouses: 1,
            districts: 10,
            customers_per_district: 300,
            items: 2_000,
            initial_orders: 300,
            seed: 4,
        });
        let mut rng = TpccRng::new(6);
        b.iter(|| {
            let kind = TxnType::sample(&mut rng);
            tpcc.run(kind, &mut rng)
        });
    });
    g.bench_function("fig10b_latency_sweep", |b| {
        b.iter(|| fig10::run_fig10b(&scale, m.mix_samples.clone()));
    });
    g.bench_function("table1_slo_table", |b| {
        b.iter(|| fig10::run_table1(&scale, m.mix_samples.clone(), m.mix.p99_us()));
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
