//! Micro-benchmarks of the core data structures: the operations whose
//! costs the paper's design trades against each other (shuffle-queue ops,
//! steals, spinlocks, RSS hashing, framing, histogram recording).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use bytes::Bytes;
use zygos_core::shuffle::ShuffleLayer;
use zygos_core::spinlock::SpinLock;
use zygos_net::flow::FiveTuple;
use zygos_net::packet::RpcMessage;
use zygos_net::ring::SpscRing;
use zygos_net::rss::Rss;
use zygos_net::wire::Framer;
use zygos_sim::stats::LatencyHistogram;
use zygos_sim::time::SimDuration;

fn bench_shuffle(c: &mut Criterion) {
    let mut g = c.benchmark_group("shuffle");
    g.bench_function("produce_dequeue_finish", |b| {
        let mut layer = ShuffleLayer::new(2);
        let conn = layer.register(0);
        b.iter(|| {
            layer.produce(conn, black_box(1u64));
            let got = layer.dequeue_local(0).expect("ready");
            let _ = layer.take_events(got, usize::MAX);
            layer.finish(got);
        });
    });
    g.bench_function("steal_path", |b| {
        let mut layer = ShuffleLayer::new(2);
        let conn = layer.register(0);
        b.iter(|| {
            layer.produce(conn, black_box(1u64));
            let got = layer.try_steal(0).expect("stealable");
            let _ = layer.take_events(got, usize::MAX);
            layer.finish(got);
        });
    });
    g.finish();
}

fn bench_spinlock(c: &mut Criterion) {
    let mut g = c.benchmark_group("spinlock");
    let lock = SpinLock::new(0u64);
    g.bench_function("uncontended_lock", |b| {
        b.iter(|| {
            *lock.lock() += 1;
        });
    });
    g.bench_function("try_lock", |b| {
        b.iter(|| {
            if let Some(mut v) = lock.try_lock() {
                *v += 1;
            }
        });
    });
    g.finish();
}

fn bench_rss(c: &mut Criterion) {
    let rss = Rss::new(16);
    let tuple = FiveTuple::synthetic(1234);
    c.bench_function("rss_toeplitz_queue_for", |b| {
        b.iter(|| rss.queue_for(black_box(&tuple)));
    });
}

fn bench_ring(c: &mut Criterion) {
    let ring = SpscRing::with_capacity(1024);
    c.bench_function("spsc_push_pop", |b| {
        b.iter(|| {
            ring.push(black_box(7u64)).expect("space");
            ring.pop().expect("element");
        });
    });
}

fn bench_framer(c: &mut Criterion) {
    let wire = RpcMessage::new(1, 7, Bytes::from_static(&[0u8; 64])).to_bytes();
    c.bench_function("framer_feed_decode_80b", |b| {
        let mut f = Framer::new();
        b.iter(|| {
            f.feed(black_box(&wire)).expect("clean stream");
            f.next_message().expect("ok").expect("complete")
        });
    });
}

fn bench_histogram(c: &mut Criterion) {
    let mut h = LatencyHistogram::new();
    c.bench_function("histogram_record", |b| {
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(SimDuration::from_nanos(black_box(v % 10_000_000)));
        });
    });
}

criterion_group!(
    benches,
    bench_shuffle,
    bench_spinlock,
    bench_rss,
    bench_ring,
    bench_framer,
    bench_histogram
);
criterion_main!(benches);
