//! Micro-benchmarks of the discrete-event engine's queues: the timing
//! wheel against the `BinaryHeap` oracle, over the event-time profiles a
//! simulation actually produces (near-horizon service completions,
//! same-instant wake bursts, far-future control events), plus the
//! end-to-end engine loop on a self-rescheduling model.
//!
//! These pin the *relative* claim behind the wheel (push/pop beats the
//! heap's O(log n) on sim-shaped schedules); `lab bench` owns the
//! absolute events/sec trajectory.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use zygos_sim::engine::{Engine, EventQueue, HeapQueue, Model, Scheduler, WheelQueue};
use zygos_sim::time::{SimDuration, SimTime};

/// A deterministic sim-shaped time profile: overwhelmingly short horizons
/// (dispatch costs, service times, RTTs, control ticks), a thin tail of
/// long ones (slow requests, trace troughs). This matches what the system
/// models actually schedule; a *sparse* queue spread over seconds favors
/// the heap instead — one reason `HeapQueue` stays a first-class citizen
/// behind the `heap-engine` feature rather than test-only scaffolding.
fn profile(i: u64) -> u64 {
    let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    // Calibrated against the paper workloads (exp(10µs) services, 4µs
    // RTT, 25µs control ticks): ~70% of horizons sit under 20µs, a
    // quarter within a few pages, and ~10% in the slow-request tail.
    // exp(10µs) puts e^-100 of mass past 1ms, so multi-ms horizons are
    // trace-trough rarities, not a steady fraction.
    match h % 10 {
        0..=6 => h % 20_000, // dispatch/service/RTT/control scale
        7..=8 => h % 60_000, // slow services, in or near the page
        _ => h % 400_000,    // the p99.9 tail
    }
}

fn queue_churn<Q: EventQueue<u64>>(n: u64) -> u64 {
    let mut q = Q::default();
    let mut seq = 0u64;
    let mut acc = 0u64;
    // Steady-state churn at the sim's typical queue depth: push one, pop
    // one at depth 256.
    for i in 0..256 {
        q.push(SimTime::from_nanos(profile(i)), seq, i);
        seq += 1;
    }
    for i in 256..n {
        let (at, _, v) = q.pop().expect("non-empty");
        let now = at.as_nanos();
        acc = acc.wrapping_add(v);
        q.push(SimTime::from_nanos(now + profile(i)), seq, i);
        seq += 1;
    }
    acc
}

fn bench_queues(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.sample_size(20);
    g.bench_function("wheel_churn_4k", |b| {
        b.iter(|| queue_churn::<WheelQueue<u64>>(black_box(4_096)))
    });
    g.bench_function("heap_churn_4k", |b| {
        b.iter(|| queue_churn::<HeapQueue<u64>>(black_box(4_096)))
    });
    g.finish();
}

/// Self-rescheduling model: every event schedules the next, so the bench
/// measures one full engine round trip (pop, dispatch, push) per event.
/// Seeded with 256 concurrent chains — the queue depth a 16-core system
/// simulation actually holds (per-core work, in-flight packets, control).
struct Ticker {
    left: u32,
}

enum Ev {
    Tick(u64),
}

impl Model for Ticker {
    type Event = Ev;
    fn handle(&mut self, _now: SimTime, Ev::Tick(i): Ev, sched: &mut Scheduler<Ev>) {
        if self.left > 0 {
            self.left -= 1;
            sched.after(SimDuration::from_nanos(profile(i)), Ev::Tick(i + 1));
        }
    }
}

fn bench_engine_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_loop");
    g.sample_size(20);
    g.bench_function("wheel_10k_events", |b| {
        b.iter(|| {
            let mut e = Engine::<Ticker, WheelQueue<Ev>>::with_queue(Ticker { left: 10_000 });
            for i in 0..256 {
                e.schedule(SimTime::from_nanos(i), Ev::Tick(i));
            }
            e.run()
        })
    });
    g.bench_function("heap_10k_events", |b| {
        b.iter(|| {
            let mut e = Engine::<Ticker, HeapQueue<Ev>>::with_queue(Ticker { left: 10_000 });
            for i in 0..256 {
                e.schedule(SimTime::from_nanos(i), Ev::Tick(i));
            }
            e.run()
        })
    });
    g.finish();
}

criterion_group!(engine_benches, bench_queues, bench_engine_loop);
criterion_main!(engine_benches);
