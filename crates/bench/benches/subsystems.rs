//! Subsystem benchmarks: Silo transaction throughput, the KV store's
//! GET/SET paths, and the discrete-event engine's event rate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use zygos_kv::proto::{encode_get, encode_set, KvServer};
use zygos_silo::tpcc::{Tpcc, TpccConfig, TpccRng, TxnType};
use zygos_sim::dist::ServiceDist;
use zygos_sim::queueing::{simulate, Policy, QueueConfig};

fn bench_silo(c: &mut Criterion) {
    let tpcc = Tpcc::load(TpccConfig {
        warehouses: 1,
        districts: 10,
        customers_per_district: 300,
        items: 1_000,
        initial_orders: 300,
        seed: 1,
    });
    let mut g = c.benchmark_group("silo_tpcc");
    g.sample_size(20);
    let mut rng = TpccRng::new(5);
    for kind in [TxnType::NewOrder, TxnType::Payment, TxnType::OrderStatus] {
        g.bench_function(kind.label(), |b| {
            b.iter(|| tpcc.run(black_box(kind), &mut rng));
        });
    }
    g.finish();
}

fn bench_kv(c: &mut Criterion) {
    let server = KvServer::new(64);
    server.handle(&encode_set(0, b"bench-key-0123456789", b"xx"));
    let get = encode_get(1, b"bench-key-0123456789");
    let set = encode_set(2, b"bench-key-0123456789", b"yy");
    let mut g = c.benchmark_group("kv");
    g.bench_function("get_hit", |b| b.iter(|| server.handle(black_box(&get))));
    g.bench_function("set", |b| b.iter(|| server.handle(black_box(&set))));
    g.finish();
}

fn bench_des_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("des");
    g.sample_size(10);
    g.bench_function("mg16_fcfs_10k_requests", |b| {
        b.iter(|| {
            simulate(&QueueConfig {
                servers: 16,
                load: 0.7,
                service: ServiceDist::exponential_us(1.0),
                policy: Policy::CentralFcfs,
                requests: 10_000,
                seed: 3,
                warmup: 1_000,
            })
        });
    });
    g.finish();
}

criterion_group!(benches, bench_silo, bench_kv, bench_des_engine);
criterion_main!(benches);
