//! Offline stand-in for `rand`.
//!
//! The workspace implements its own generator (`zygos_sim::rng::Xoshiro256`)
//! and only uses `rand` for the `RngCore`/`SeedableRng` trait vocabulary, so
//! that the generator can drive any `rand`-ecosystem distribution when the
//! real crate is present. This shim provides just those traits (rand 0.8
//! shapes), since the build container has no crates.io access.

use std::fmt;

/// Error type for fallible RNG operations (never produced by this
/// workspace's infallible generators).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator interface (rand 0.8).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

/// A generator constructible from a fixed-size seed (rand 0.8).
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` by splatting it into the seed.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for (chunk, byte) in seed
            .as_mut()
            .chunks_mut(8)
            .zip(std::iter::repeat(state.to_le_bytes()))
        {
            let n = chunk.len();
            chunk.copy_from_slice(&byte[..n]);
        }
        Self::from_seed(seed)
    }
}
