//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! [`prelude::any`], numeric range strategies, `collection::vec`, and
//! simple `[class]{m,n}` string-pattern strategies.
//!
//! Differences from the real crate, accepted because the build container
//! has no crates.io access:
//!
//! * **no shrinking** — a failing case reports its inputs (via the panic
//!   message) but is not minimized;
//! * **derandomization is seed-stable** rather than persisted: each test
//!   derives its case seeds from the test's module path, so runs are
//!   reproducible without a `proptest-regressions` directory;
//! * case count defaults to 64 (`PROPTEST_CASES` overrides).

use std::fmt;
use std::ops::Range;

/// Error carried out of a failing property body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Deterministic generator used to sample strategy values.
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a seed (xoshiro256** via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        if s == [0; 4] {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform double in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        // Multiply-shift; bias is irrelevant for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A value-generation strategy.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy for any value of a type with a canonical uniform generator.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types that [`prelude::any`] can generate.
pub trait Arbitrary: Sized {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),+) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })+
    };
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),+) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_bounded(span) as i128) as $t
            }
        })+
    };
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// `[class]{m,n}` string-pattern strategy (the only regex shape used by
/// this workspace's tests).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (class, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern {self:?}"));
        let len = min + rng.next_bounded((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| class[rng.next_bounded(class.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[chars]{m,n}` where `chars` is single characters and `a-z`
/// ranges. Returns the expanded alphabet and the length bounds.
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class_src, rest) = rest.split_once(']')?;
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = counts.split_once(',')?;
    let (min, max) = (min.trim().parse().ok()?, max.trim().parse().ok()?);
    let chars: Vec<char> = class_src.chars().collect();
    let mut class = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
            class.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            class.push(chars[i]);
            i += 1;
        }
    }
    if class.is_empty() || min > max {
        return None;
    }
    Some((class, min, max))
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing vectors of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.next_bounded(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Drives one property test: case counting and per-case seeding.
pub struct TestRunner {
    seed_base: u64,
    cases: u32,
    rng: TestRng,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        TestRunner {
            seed_base: h,
            cases,
            rng: TestRng::new(h),
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// Re-seeds the generator for case `case`.
    pub fn begin(&mut self, case: u32) {
        self.rng = TestRng::new(self.seed_base.wrapping_add(case as u64));
    }

    /// The current case's generator.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

/// The user-facing prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Any, Strategy, TestCaseError, TestRunner};

    /// Strategy generating any value of `T`.
    pub fn any<T: crate::Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

// Constructor access for `prelude::any` (field is private to this crate).
impl<T> Any<T> {
    #[doc(hidden)]
    pub fn new() -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T> Default for Any<T> {
    fn default() -> Self {
        Any::new()
    }
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Declares property tests: each function's arguments are drawn from the
/// given strategies for every generated case.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::TestRunner::new(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..runner.cases() {
                    runner.begin(case);
                    $(let $arg = $crate::Strategy::generate(&($strat), runner.rng());)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed on case {}: {}",
                            stringify!($name), case, e
                        );
                    }
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -5i32..5, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vectors_respect_size(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn string_patterns_match_class(s in "[a-c]{1,4}") {
            prop_assert!((1..=4).contains(&s.len()), "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn pattern_parser_expands_ranges() {
        let (class, min, max) = super::parse_class_pattern("[a-zA-Z0-9]{0,16}").unwrap();
        assert_eq!(class.len(), 62);
        assert_eq!((min, max), (0, 16));
    }
}
