//! Offline stand-in for `crossbeam`.
//!
//! Provides the subset this workspace uses — `queue::ArrayQueue`,
//! `utils::CachePadded`, and `channel::{unbounded, Sender, Receiver}` —
//! with the same observable semantics (bounded MPMC FIFO, cacheline-aligned
//! wrapper, cloneable unbounded MPMC channel). The implementations favor
//! simplicity over lock-freedom: correctness tests, not throughput, are
//! what the workspace exercises through these types, and the hot SPSC path
//! in `zygos-net` is hand-written rather than delegated here.

/// Bounded queues.
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// A bounded MPMC FIFO queue.
    pub struct ArrayQueue<T> {
        inner: Mutex<VecDeque<T>>,
        cap: usize,
    }

    impl<T> ArrayQueue<T> {
        /// Creates a queue with the given capacity.
        ///
        /// # Panics
        ///
        /// Panics if `cap == 0`.
        pub fn new(cap: usize) -> Self {
            assert!(cap > 0, "capacity must be positive");
            ArrayQueue {
                inner: Mutex::new(VecDeque::with_capacity(cap)),
                cap,
            }
        }

        /// Attempts to enqueue; returns `Err(value)` when full.
        pub fn push(&self, value: T) -> Result<(), T> {
            let mut q = self.inner.lock().unwrap_or_else(|p| p.into_inner());
            if q.len() >= self.cap {
                Err(value)
            } else {
                q.push_back(value);
                Ok(())
            }
        }

        /// Dequeues the oldest element.
        pub fn pop(&self) -> Option<T> {
            self.inner
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .pop_front()
        }

        /// Current length (racy).
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap_or_else(|p| p.into_inner()).len()
        }

        /// True when empty (racy).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Maximum capacity.
        pub fn capacity(&self) -> usize {
            self.cap
        }
    }
}

/// Utility types.
pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Aligns the wrapped value to a cache line to prevent false sharing.
    #[derive(Default, Debug)]
    #[repr(align(128))]
    pub struct CachePadded<T>(T);

    impl<T> CachePadded<T> {
        /// Wraps a value.
        pub const fn new(value: T) -> Self {
            CachePadded(value)
        }

        /// Unwraps the value.
        pub fn into_inner(self) -> T {
            self.0
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.0
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.0
        }
    }
}

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Chan<T> {
        queue: Mutex<ChanState<T>>,
        ready: Condvar,
    }

    struct ChanState<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// All senders are gone and the queue is empty.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(ChanState {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    impl<T> Sender<T> {
        /// Sends a message; fails only when every receiver has dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.items.push_back(value);
            drop(st);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, waiting up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _t) = self
                    .0
                    .ready
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                st = guard;
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Option<T> {
            self.0
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .items
                .pop_front()
        }

        /// Number of queued messages (racy).
        pub fn len(&self) -> usize {
            self.0
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .items
                .len()
        }

        /// True when no messages are queued (racy).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use super::queue::ArrayQueue;
    use std::time::Duration;

    #[test]
    fn array_queue_bounded_fifo() {
        let q = ArrayQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn channel_roundtrip_and_timeout() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(7));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn channel_cross_thread() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            for i in 0..1000u32 {
                tx.send(i).unwrap();
            }
        });
        for i in 0..1000u32 {
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(i));
        }
        h.join().unwrap();
    }
}
