//! Offline stand-in for `criterion`.
//!
//! Provides the harness surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups, `black_box`) with a simple measure-and-print
//! implementation: each benchmark runs a calibrated number of iterations
//! and reports mean ns/iter. No statistics, plots or regression detection —
//! the real crate is unavailable offline, and these benches serve as smoke
//! tests plus order-of-magnitude numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, name), self.sample_size, &mut f);
        self
    }

    /// Finishes the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; its `iter` runs the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` over this sample's iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    // Calibrate the per-sample iteration count to ~1ms of work.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters;
    }
    let ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    println!("bench {name}: {ns:.1} ns/iter ({total_iters} iters)");
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
