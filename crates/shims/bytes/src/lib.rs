//! Offline stand-in for the `bytes` crate.
//!
//! The container this repository builds in has no network access to
//! crates.io, so the workspace vendors a minimal, API-compatible subset of
//! `bytes` — exactly the operations the other crates use. Semantics match
//! the real crate for that subset: [`Bytes`] is a cheaply cloneable,
//! immutable view into shared storage; [`BytesMut`] is a growable buffer
//! with an amortized-O(1) front cursor for `advance`/`split_to`.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Shared Debug impl body for the two buffer types.
macro_rules! fmt_bytes_debug {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "b\"")?;
            for &b in self.as_slice() {
                if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                    write!(f, "{}", b as char)?;
                } else {
                    write!(f, "\\x{b:02x}")?;
                }
            }
            write!(f, "\"")
        }
    };
}

/// A cheaply cloneable, contiguous, immutable slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates `Bytes` from a static slice.
    ///
    /// (The real crate borrows the static data; this shim copies it once,
    /// which is indistinguishable through the API.)
    pub fn from_static(b: &'static [u8]) -> Self {
        Bytes::copy_from_slice(b)
    }

    /// Creates `Bytes` by copying a slice.
    pub fn copy_from_slice(b: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(b);
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view of `self` for the given range (indices are
    /// relative to this view, like the real crate's `Bytes::slice`).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the view into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl fmt::Debug for Bytes {
    fmt_bytes_debug!();
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v.into_boxed_slice());
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Bytes::copy_from_slice(b)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer with a consuming front cursor.
#[derive(Clone, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
    /// Bytes before `head` have been consumed by `advance`/`split_to`.
    head: usize,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
            head: 0,
        }
    }

    /// Reserves space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Number of unconsumed bytes.
    pub fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    /// True if no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, b: &[u8]) {
        self.compact_if_large();
        self.buf.extend_from_slice(b);
    }

    /// Consumes the first `n` bytes (also exposed as [`Buf::advance`]).
    fn consume(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.head += n;
        self.compact_if_large();
    }

    /// Splits off and returns the first `n` bytes.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to past end");
        let front = self.as_slice()[..n].to_vec();
        self.consume(n);
        BytesMut {
            buf: front,
            head: 0,
        }
    }

    /// Shortens the buffer to at most `n` unconsumed bytes.
    pub fn truncate(&mut self, n: usize) {
        if n < self.len() {
            self.buf.truncate(self.head + n);
        }
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.as_slice().to_vec())
    }

    /// Appends `cnt` copies of `val` (the `BufMut::put_bytes` operation).
    pub fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.buf.resize(self.buf.len() + cnt, val);
    }

    fn as_slice(&self) -> &[u8] {
        &self.buf[self.head..]
    }

    /// Reclaims consumed space once it dominates the allocation, keeping
    /// `advance` amortized O(1) without unbounded growth.
    fn compact_if_large(&mut self) {
        if self.head > 4096 && self.head * 2 > self.buf.len() {
            self.buf.drain(..self.head);
            self.head = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for BytesMut {
    fmt_bytes_debug!();
}

/// Read access to a buffer of bytes, consumed front-to-back.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The readable contiguous slice.
    fn chunk(&self) -> &[u8];
    /// Consumes `n` bytes.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        i32::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }

    /// Copies bytes into `dst`, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    #[doc(hidden)]
    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        let mut a = [0u8; N];
        a.copy_from_slice(&self.chunk()[..N]);
        self.advance(N);
        a
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, n: usize) {
        self.consume(n);
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, b: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.put_slice(&vec![val; cnt]);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, b: &[u8]) {
        self.extend_from_slice(b);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, b: &[u8]) {
        self.extend_from_slice(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_slice_and_clone_share() {
        let b = Bytes::copy_from_slice(b"hello world");
        let w = b.slice(6..);
        assert_eq!(&w[..], b"world");
        assert_eq!(b.slice(..5), Bytes::from_static(b"hello"));
    }

    #[test]
    fn bytesmut_roundtrip() {
        let mut m = BytesMut::with_capacity(32);
        m.put_u16_le(0x1234);
        m.put_u64_le(7);
        m.extend_from_slice(b"xyz");
        assert_eq!(m.len(), 13);
        let mut r: &[u8] = &m;
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u64_le(), 7);
        m.advance(10);
        assert_eq!(&m[..], b"xyz");
        let frozen = m.freeze();
        assert_eq!(&frozen[..], b"xyz");
    }

    #[test]
    fn split_to_takes_prefix() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"abcdef");
        let front = m.split_to(2);
        assert_eq!(&front[..], b"ab");
        assert_eq!(&m[..], b"cdef");
    }

    #[test]
    fn buf_on_bytes() {
        let mut b = Bytes::copy_from_slice(&42u32.to_le_bytes());
        assert_eq!(b.remaining(), 4);
        assert_eq!(b.get_u32_le(), 42);
        assert_eq!(b.remaining(), 0);
    }
}
