//! Offline stand-in for `parking_lot`.
//!
//! Wraps the standard-library locks behind `parking_lot`'s non-poisoning
//! API (guards returned directly, no `Result`). Built because the build
//! container has no crates.io access; the performance difference from the
//! real crate is irrelevant to this workspace's correctness tests.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Default, Debug)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, ignoring poisoning (a panicked holder's data is
    /// returned as-is, matching parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

/// A reader-writer lock whose guards never carry poison errors.
#[derive(Default, Debug)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Tries to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
