//! The idle-loop polling policy (paper §5, "Idle loop polling logic").
//!
//! A core is idle when its shuffle queue, remote-syscall queue and software
//! packet queue are all empty. It then polls, in priority order:
//!
//! 1. the head of **its own** NIC hardware descriptor ring,
//! 2. the shuffle queue of every other core (steal a ready connection),
//! 3. the unprocessed software packet queue of every other core,
//! 4. the NIC hardware descriptor ring of every other core.
//!
//! For steps 2–4 the victim order is **randomized** each sweep to avoid
//! systematic bias toward low-numbered cores. Finding work in steps 3–4
//! cannot be acted on directly (the network stack only runs on the home
//! core): the idle core instead sends an IPI to the home core.
//!
//! This module is pure policy: it computes the polling sequence; the
//! runtime and simulator supply the actual probes.

/// One probe the idle loop should perform, in order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PollTarget {
    /// Poll our own NIC hardware ring (step 1).
    OwnHwRing,
    /// Try to steal from this core's shuffle queue (step 2).
    RemoteShuffle(usize),
    /// Check this core's software packet queue; IPI if non-empty (step 3).
    RemoteSwQueue(usize),
    /// Check this core's NIC hardware ring; IPI if non-empty (step 4).
    RemoteHwRing(usize),
}

/// Generates idle-loop polling sequences for one core.
///
/// Keeps a reusable victim permutation buffer to avoid per-sweep
/// allocation; reshuffles it with the caller-provided RNG every sweep.
pub struct IdlePolicy {
    me: usize,
    victims: Vec<usize>,
}

impl IdlePolicy {
    /// Creates the policy for core `me` out of `n_cores`.
    ///
    /// # Panics
    ///
    /// Panics if `me >= n_cores`.
    pub fn new(me: usize, n_cores: usize) -> Self {
        assert!(me < n_cores, "core index out of range");
        IdlePolicy {
            me,
            victims: (0..n_cores).filter(|&c| c != me).collect(),
        }
    }

    /// This core's index.
    pub fn core(&self) -> usize {
        self.me
    }

    /// Produces one full polling sweep, randomizing the victim order with
    /// `shuffle` (a Fisher–Yates step supplied by the caller so both the
    /// deterministic simulator and the live runtime can drive it).
    pub fn sweep(&mut self, mut shuffle: impl FnMut(&mut [usize])) -> Vec<PollTarget> {
        shuffle(&mut self.victims);
        let mut out = Vec::with_capacity(1 + 3 * self.victims.len());
        out.push(PollTarget::OwnHwRing);
        for &v in &self.victims {
            out.push(PollTarget::RemoteShuffle(v));
        }
        for &v in &self.victims {
            out.push(PollTarget::RemoteSwQueue(v));
        }
        for &v in &self.victims {
            out.push(PollTarget::RemoteHwRing(v));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity(_: &mut [usize]) {}

    #[test]
    fn sweep_structure_preserves_priority_order() {
        let mut p = IdlePolicy::new(1, 4);
        let sweep = p.sweep(identity);
        assert_eq!(sweep.len(), 1 + 3 * 3);
        assert_eq!(sweep[0], PollTarget::OwnHwRing);
        // All shuffle probes precede all sw-queue probes precede all
        // hw-ring probes.
        let phase = |t: &PollTarget| match t {
            PollTarget::OwnHwRing => 0,
            PollTarget::RemoteShuffle(_) => 1,
            PollTarget::RemoteSwQueue(_) => 2,
            PollTarget::RemoteHwRing(_) => 3,
        };
        for w in sweep.windows(2) {
            assert!(phase(&w[0]) <= phase(&w[1]), "priority order violated");
        }
    }

    #[test]
    fn never_polls_self_remotely() {
        let mut p = IdlePolicy::new(2, 8);
        for t in p.sweep(identity) {
            match t {
                PollTarget::RemoteShuffle(v)
                | PollTarget::RemoteSwQueue(v)
                | PollTarget::RemoteHwRing(v) => assert_ne!(v, 2),
                PollTarget::OwnHwRing => {}
            }
        }
    }

    #[test]
    fn each_victim_probed_once_per_phase() {
        let mut p = IdlePolicy::new(0, 16);
        let sweep = p.sweep(identity);
        let mut shuffle_victims: Vec<usize> = sweep
            .iter()
            .filter_map(|t| match t {
                PollTarget::RemoteShuffle(v) => Some(*v),
                _ => None,
            })
            .collect();
        shuffle_victims.sort_unstable();
        assert_eq!(shuffle_victims, (1..16).collect::<Vec<_>>());
    }

    #[test]
    fn caller_shuffle_controls_order() {
        let mut p = IdlePolicy::new(0, 4);
        let reversed = |v: &mut [usize]| v.reverse();
        let sweep = p.sweep(reversed);
        // Victims were [1,2,3]; reversed → [3,2,1].
        assert_eq!(sweep[1], PollTarget::RemoteShuffle(3));
        assert_eq!(sweep[2], PollTarget::RemoteShuffle(2));
        assert_eq!(sweep[3], PollTarget::RemoteShuffle(1));
    }

    #[test]
    fn single_core_sweep_is_just_own_ring() {
        let mut p = IdlePolicy::new(0, 1);
        assert_eq!(p.sweep(identity), vec![PollTarget::OwnHwRing]);
    }
}
