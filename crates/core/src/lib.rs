//! The ZygOS scheduling machinery (paper §4–§5).
//!
//! This crate implements the paper's contribution as reusable, real
//! concurrent data structures:
//!
//! * [`spinlock`] — a TATAS spinlock with `try_lock` (remote cores must
//!   never block on a steal attempt; §5 "Remote cores rely on trylock").
//! * [`shuffle`] — the **shuffle layer**: one single-producer /
//!   multi-consumer shuffle queue per core holding *ready connections*,
//!   plus the per-connection `idle → ready → busy` state machine that
//!   provides exclusive socket ownership and therefore per-connection
//!   ordering under stealing (§4.3, §4.4, Figure 5).
//! * [`syscall`] — batched system calls and the remote-syscall channel that
//!   ships a stealing core's syscalls back to the home core (§4.2 step b).
//! * [`idle`] — the idle-loop polling policy: own NIC ring first, then
//!   randomized sweeps of remote shuffle queues, software queues and NIC
//!   rings (§5 "Idle loop polling logic").
//! * [`doorbell`] — the IPI substitute for the live runtime: an atomic
//!   doorbell with reason bits plus an unpark hook (§4.5; delivery is a
//!   *hint*, tolerated to be lost or late, exactly like the paper's
//!   exit-less IPIs).
//! * [`stats`] — steal/IPI/event counters aggregated across cores
//!   (Figure 8's "steals per event" metric).
//!
//! The live runtime (`zygos-runtime`) drives these structures with real
//! threads; the system simulator (`zygos-sysim`) models their costs on a
//! virtual 16-core machine.

pub mod doorbell;
pub mod idle;
pub mod shuffle;
pub mod spinlock;
pub mod stats;
pub mod syscall;

pub use doorbell::{Doorbell, IpiReason};
pub use shuffle::{ConnState, FinishOutcome, ShuffleLayer};
pub use spinlock::SpinLock;
pub use stats::{CoreStats, StatsSnapshot};
pub use syscall::{BatchedSyscall, RemoteSyscallChannel};
