//! Inter-processor interrupt doorbells (paper §4.5, §5).
//!
//! ZygOS sends IPIs for exactly two reasons:
//!
//! 1. **Pending packets**: a remote core saw packets in the home core's NIC
//!    or software queue while its shuffle queue was empty — the home core
//!    must run its network stack to replenish the shuffle queue.
//! 2. **Remote syscalls**: a stealing core enqueued batched syscalls that
//!    only the home core may execute (TX path stays coherency-free).
//!
//! In the paper these are exit-less hardware IPIs (vector 242) whose
//! delivery is *unreliable by design* — "interrupts are used exclusively as
//! hints, the unreliability of delivery impacts tail latency, but not
//! correctness". The live runtime substitutes an atomic doorbell with
//! reason bits plus a `Thread::unpark` kick; the same tolerance applies: a
//! missed doorbell only delays work that the idle loop will find anyway.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::thread::Thread;

use crate::spinlock::SpinLock;

/// Why an IPI was sent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IpiReason {
    /// Pending packets need network-stack processing (idle loop steps c–d).
    PendingPackets = 0,
    /// Remote batched syscalls await execution on the home core.
    RemoteSyscalls = 1,
}

/// A per-core doorbell: pending-reason bits plus an optional thread handle
/// to kick a parked core.
pub struct Doorbell {
    /// Bit `r` set ⇒ reason `r` pending.
    bits: AtomicU64,
    /// Count of doorbells ever rung (telemetry; Figure 8 companion).
    rung: AtomicUsize,
    /// The target core's thread, once it registered.
    target: SpinLock<Option<Thread>>,
}

impl Default for Doorbell {
    fn default() -> Self {
        Doorbell::new()
    }
}

impl Doorbell {
    /// Creates an idle doorbell.
    pub fn new() -> Self {
        Doorbell {
            bits: AtomicU64::new(0),
            rung: AtomicUsize::new(0),
            target: SpinLock::new(None),
        }
    }

    /// Registers the thread that services this doorbell (its home core).
    pub fn register_target(&self, t: Thread) {
        *self.target.lock() = Some(t);
    }

    /// Rings the doorbell for `reason`.
    ///
    /// Returns `true` if this call set a previously clear bit (i.e. the
    /// caller is the one "sending the IPI"; duplicates are coalesced just
    /// like a pending hardware interrupt line).
    pub fn ring(&self, reason: IpiReason) -> bool {
        let bit = 1u64 << (reason as u64);
        let prev = self.bits.fetch_or(bit, Ordering::AcqRel);
        let newly_set = prev & bit == 0;
        if newly_set {
            self.rung.fetch_add(1, Ordering::Relaxed);
            // Kick the target if it parked. Unpark on a running thread is
            // cheap and harmless; a lost wakeup is tolerated by design.
            if let Some(t) = self.target.lock().as_ref() {
                t.unpark();
            }
        }
        newly_set
    }

    /// Atomically takes and clears all pending reasons (the IPI handler).
    pub fn take(&self) -> Vec<IpiReason> {
        let bits = self.bits.swap(0, Ordering::AcqRel);
        let mut out = Vec::new();
        if bits & (1 << IpiReason::PendingPackets as u64) != 0 {
            out.push(IpiReason::PendingPackets);
        }
        if bits & (1 << IpiReason::RemoteSyscalls as u64) != 0 {
            out.push(IpiReason::RemoteSyscalls);
        }
        out
    }

    /// True if any reason is pending (checked at safepoints).
    pub fn any_pending(&self) -> bool {
        self.bits.load(Ordering::Acquire) != 0
    }

    /// Total distinct doorbell rings so far.
    pub fn rung_count(&self) -> usize {
        self.rung.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ring_sets_and_take_clears() {
        let d = Doorbell::new();
        assert!(!d.any_pending());
        assert!(d.ring(IpiReason::PendingPackets));
        assert!(d.any_pending());
        assert_eq!(d.take(), vec![IpiReason::PendingPackets]);
        assert!(!d.any_pending());
        assert!(d.take().is_empty());
    }

    #[test]
    fn duplicate_rings_coalesce() {
        let d = Doorbell::new();
        assert!(d.ring(IpiReason::RemoteSyscalls));
        assert!(!d.ring(IpiReason::RemoteSyscalls), "second ring coalesced");
        assert_eq!(d.rung_count(), 1);
        assert_eq!(d.take(), vec![IpiReason::RemoteSyscalls]);
    }

    #[test]
    fn both_reasons_delivered_together() {
        let d = Doorbell::new();
        d.ring(IpiReason::RemoteSyscalls);
        d.ring(IpiReason::PendingPackets);
        let reasons = d.take();
        assert_eq!(reasons.len(), 2);
        assert!(reasons.contains(&IpiReason::PendingPackets));
        assert!(reasons.contains(&IpiReason::RemoteSyscalls));
    }

    #[test]
    fn unparks_parked_target() {
        let d = Arc::new(Doorbell::new());
        let d2 = Arc::clone(&d);
        let waiter = std::thread::spawn(move || {
            d2.register_target(std::thread::current());
            while !d2.any_pending() {
                std::thread::park_timeout(std::time::Duration::from_millis(50));
            }
            d2.take()
        });
        // Give the waiter a moment to register and park.
        std::thread::sleep(std::time::Duration::from_millis(20));
        d.ring(IpiReason::PendingPackets);
        let got = waiter.join().unwrap();
        assert_eq!(got, vec![IpiReason::PendingPackets]);
    }

    #[test]
    fn concurrent_ringers_count_once_per_set() {
        let d = Arc::new(Doorbell::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let d = Arc::clone(&d);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        d.ring(IpiReason::PendingPackets);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // At least one ring registered, and takes observed ≤ rings.
        assert!(d.rung_count() >= 1);
        assert!(d.rung_count() <= 8000);
    }
}
