//! Batched system calls and the remote-syscall channel (paper §4.2).
//!
//! ZygOS applications interact with the kernel through FlexSC-style batched
//! system calls: the event handler records its syscalls (principally
//! "send this response on that socket") and the kernel executes the batch
//! after the handler returns. When the handler ran on a **remote** core,
//! the batch is shipped back to the home core over a multi-producer /
//! single-consumer queue, so the TCP TX path executes coherency-free on the
//! home core (step (b) of Figure 4).

use bytes::Bytes;
use zygos_net::flow::ConnId;
use zygos_net::ring::MpscRing;

/// One batched system call.
#[derive(Clone, Debug)]
pub enum BatchedSyscall {
    /// Transmit a fully serialized response on a connection.
    SendMsg { conn: ConnId, wire: Bytes },
    /// Close the connection after flushing pending output.
    Close { conn: ConnId },
    /// Signal that the connection's event batch finished without output
    /// (keeps per-connection completion accounting exact).
    Nop { conn: ConnId },
}

impl BatchedSyscall {
    /// The connection this syscall operates on.
    pub fn conn(&self) -> ConnId {
        match self {
            BatchedSyscall::SendMsg { conn, .. }
            | BatchedSyscall::Close { conn }
            | BatchedSyscall::Nop { conn } => *conn,
        }
    }
}

/// The per-home-core remote-syscall queue.
///
/// Producers: any core that executed a stolen connection homed here.
/// Consumer: the home core (between events, or from its IPI handler).
pub struct RemoteSyscallChannel {
    ring: MpscRing<BatchedSyscall>,
}

impl RemoteSyscallChannel {
    /// Creates a channel with the given capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        RemoteSyscallChannel {
            ring: MpscRing::with_capacity(capacity),
        }
    }

    /// Ships a batch of syscalls home. Spins if momentarily full — the
    /// home core is guaranteed to drain (it executes remote syscalls with
    /// interrupts-priority), so this cannot deadlock.
    pub fn ship(&self, batch: Vec<BatchedSyscall>) {
        for mut sc in batch {
            loop {
                match self.ring.push(sc) {
                    Ok(()) => break,
                    Err(back) => {
                        sc = back;
                        std::hint::spin_loop();
                    }
                }
            }
        }
    }

    /// Home core: drains up to `max` pending remote syscalls.
    pub fn drain(&self, max: usize) -> Vec<BatchedSyscall> {
        let mut out = Vec::new();
        while out.len() < max {
            match self.ring.pop() {
                Some(sc) => out.push(sc),
                None => break,
            }
        }
        out
    }

    /// Racy emptiness check (idle-loop / safepoint probe).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Racy length.
    pub fn len(&self) -> usize {
        self.ring.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ship_and_drain_preserve_order() {
        let ch = RemoteSyscallChannel::with_capacity(16);
        ch.ship(vec![
            BatchedSyscall::SendMsg {
                conn: ConnId(1),
                wire: Bytes::from_static(b"a"),
            },
            BatchedSyscall::SendMsg {
                conn: ConnId(1),
                wire: Bytes::from_static(b"b"),
            },
            BatchedSyscall::Close { conn: ConnId(1) },
        ]);
        let got = ch.drain(usize::MAX);
        assert_eq!(got.len(), 3);
        match (&got[0], &got[1], &got[2]) {
            (
                BatchedSyscall::SendMsg { wire: w1, .. },
                BatchedSyscall::SendMsg { wire: w2, .. },
                BatchedSyscall::Close { .. },
            ) => {
                assert_eq!(&w1[..], b"a");
                assert_eq!(&w2[..], b"b");
            }
            other => panic!("wrong order: {other:?}"),
        }
        assert!(ch.is_empty());
    }

    #[test]
    fn drain_respects_max() {
        let ch = RemoteSyscallChannel::with_capacity(16);
        ch.ship(
            (0..10)
                .map(|i| BatchedSyscall::Nop { conn: ConnId(i) })
                .collect(),
        );
        assert_eq!(ch.drain(4).len(), 4);
        assert_eq!(ch.len(), 6);
        assert_eq!(ch.drain(usize::MAX).len(), 6);
    }

    #[test]
    fn conn_accessor() {
        assert_eq!(BatchedSyscall::Close { conn: ConnId(3) }.conn(), ConnId(3));
        assert_eq!(BatchedSyscall::Nop { conn: ConnId(4) }.conn(), ConnId(4));
    }

    #[test]
    fn concurrent_shippers_all_arrive() {
        let ch = Arc::new(RemoteSyscallChannel::with_capacity(64));
        let producers: Vec<_> = (0..4u32)
            .map(|p| {
                let ch = Arc::clone(&ch);
                std::thread::spawn(move || {
                    for i in 0..1_000u32 {
                        ch.ship(vec![BatchedSyscall::Nop {
                            conn: ConnId(p * 10_000 + i),
                        }]);
                    }
                })
            })
            .collect();
        let ch2 = Arc::clone(&ch);
        let consumer = std::thread::spawn(move || {
            let mut seen = 0;
            while seen < 4_000 {
                let batch = ch2.drain(64);
                seen += batch.len();
                if batch.is_empty() {
                    std::hint::spin_loop();
                }
            }
            seen
        });
        for p in producers {
            p.join().unwrap();
        }
        assert_eq!(consumer.join().unwrap(), 4_000);
    }
}
