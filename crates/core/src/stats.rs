//! Scheduler telemetry (the instrumentation behind Figure 8).
//!
//! Each core counts locally-executed events, stolen events, IPIs sent and
//! handled; a snapshot aggregates them into the paper's "steals / event"
//! percentage (Figure 8 plots it against throughput).

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-core counters, updated with relaxed atomics on the fast path.
#[derive(Default)]
pub struct CoreStats {
    /// Events executed by this core for connections homed here.
    pub local_events: AtomicU64,
    /// Events executed by this core for *stolen* connections.
    pub stolen_events: AtomicU64,
    /// Connection dequeues from the local shuffle queue.
    pub local_dequeues: AtomicU64,
    /// Successful steals from other cores' shuffle queues.
    pub steals: AtomicU64,
    /// Failed steal attempts (try_lock missed or queue emptied).
    pub failed_steals: AtomicU64,
    /// IPIs this core sent.
    pub ipis_sent: AtomicU64,
    /// IPIs this core handled.
    pub ipis_handled: AtomicU64,
    /// Remote syscalls this core executed on behalf of stealers.
    pub remote_syscalls: AtomicU64,
}

macro_rules! bump {
    ($($name:ident => $field:ident),+ $(,)?) => {
        $(
            #[doc = concat!("Increments `", stringify!($field), "` by 1.")]
            pub fn $name(&self) {
                self.$field.fetch_add(1, Ordering::Relaxed);
            }
        )+
    };
}

impl CoreStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        CoreStats::default()
    }

    bump! {
        count_local_event => local_events,
        count_stolen_event => stolen_events,
        count_local_dequeue => local_dequeues,
        count_steal => steals,
        count_failed_steal => failed_steals,
        count_ipi_sent => ipis_sent,
        count_ipi_handled => ipis_handled,
        count_remote_syscall => remote_syscalls,
    }
}

/// Aggregated snapshot across all cores.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Sum of locally executed events.
    pub local_events: u64,
    /// Sum of stolen events.
    pub stolen_events: u64,
    /// Sum of local dequeues.
    pub local_dequeues: u64,
    /// Sum of successful steals.
    pub steals: u64,
    /// Sum of failed steal attempts.
    pub failed_steals: u64,
    /// Sum of IPIs sent.
    pub ipis_sent: u64,
    /// Sum of IPIs handled.
    pub ipis_handled: u64,
    /// Sum of remotely-executed syscalls.
    pub remote_syscalls: u64,
}

impl StatsSnapshot {
    /// Collects a snapshot from per-core counters.
    pub fn collect<'a>(cores: impl IntoIterator<Item = &'a CoreStats>) -> Self {
        let mut s = StatsSnapshot::default();
        for c in cores {
            s.local_events += c.local_events.load(Ordering::Relaxed);
            s.stolen_events += c.stolen_events.load(Ordering::Relaxed);
            s.local_dequeues += c.local_dequeues.load(Ordering::Relaxed);
            s.steals += c.steals.load(Ordering::Relaxed);
            s.failed_steals += c.failed_steals.load(Ordering::Relaxed);
            s.ipis_sent += c.ipis_sent.load(Ordering::Relaxed);
            s.ipis_handled += c.ipis_handled.load(Ordering::Relaxed);
            s.remote_syscalls += c.remote_syscalls.load(Ordering::Relaxed);
        }
        s
    }

    /// Total events executed.
    pub fn total_events(&self) -> u64 {
        self.local_events + self.stolen_events
    }

    /// The paper's Figure 8 metric: fraction of events that were stolen.
    pub fn steal_fraction(&self) -> f64 {
        let total = self.total_events();
        if total == 0 {
            0.0
        } else {
            self.stolen_events as f64 / total as f64
        }
    }

    /// IPIs sent per executed event.
    pub fn ipis_per_event(&self) -> f64 {
        let total = self.total_events();
        if total == 0 {
            0.0
        } else {
            self.ipis_sent as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let s = StatsSnapshot::collect([&CoreStats::new(), &CoreStats::new()]);
        assert_eq!(s, StatsSnapshot::default());
        assert_eq!(s.steal_fraction(), 0.0);
        assert_eq!(s.ipis_per_event(), 0.0);
    }

    #[test]
    fn aggregation_sums_cores() {
        let a = CoreStats::new();
        let b = CoreStats::new();
        for _ in 0..3 {
            a.count_local_event();
        }
        a.count_steal();
        b.count_stolen_event();
        b.count_ipi_sent();
        let s = StatsSnapshot::collect([&a, &b]);
        assert_eq!(s.local_events, 3);
        assert_eq!(s.stolen_events, 1);
        assert_eq!(s.steals, 1);
        assert_eq!(s.ipis_sent, 1);
        assert_eq!(s.total_events(), 4);
        assert!((s.steal_fraction() - 0.25).abs() < 1e-12);
        assert!((s.ipis_per_event() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn concurrent_bumps_are_lossless() {
        let stats = std::sync::Arc::new(CoreStats::new());
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let s = std::sync::Arc::clone(&stats);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        s.count_local_event();
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(stats.local_events.load(Ordering::Relaxed), 40_000);
    }
}
