//! A TATAS spinlock with `try_lock`.
//!
//! The paper's shuffle layer uses "one spinlock per core which protects the
//! shuffle queue of that core as well as the state machine transitions for
//! sockets that call that core home", and "remote cores rely on `trylock`
//! for their steal attempts to further reduce contention" (§5). The
//! critical sections are a handful of pointer operations, which is what
//! makes a spinlock (rather than a parking mutex) the right tool.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

/// A test-and-test-and-set spinlock protecting a `T`.
pub struct SpinLock<T: ?Sized> {
    locked: AtomicBool,
    data: UnsafeCell<T>,
}

// SAFETY: The lock provides mutual exclusion: `data` is only reachable
// through a `SpinGuard`, which exists only while `locked` is held. `T: Send`
// is required because the value may be accessed (and dropped) from whichever
// thread holds the lock.
unsafe impl<T: ?Sized + Send> Send for SpinLock<T> {}
// SAFETY: See above; sharing `&SpinLock<T>` across threads only hands out
// exclusive guards, so `T: Send` suffices (as with `std::sync::Mutex`).
unsafe impl<T: ?Sized + Send> Sync for SpinLock<T> {}

impl<T> SpinLock<T> {
    /// Creates an unlocked spinlock.
    pub const fn new(value: T) -> Self {
        SpinLock {
            locked: AtomicBool::new(false),
            data: UnsafeCell::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> SpinLock<T> {
    /// Acquires the lock, spinning until available.
    ///
    /// Home cores use this on their own queue: the critical sections are
    /// tens of nanoseconds, so spinning beats parking by orders of
    /// magnitude at this scale.
    pub fn lock(&self) -> SpinGuard<'_, T> {
        loop {
            // Test-and-test-and-set: spin on a plain load first so the
            // cacheline stays shared until the lock looks free.
            while self.locked.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return SpinGuard { lock: self };
            }
        }
    }

    /// Attempts to acquire without spinning (steal attempts; §5).
    pub fn try_lock(&self) -> Option<SpinGuard<'_, T>> {
        if self.locked.load(Ordering::Relaxed) {
            return None;
        }
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(SpinGuard { lock: self })
        } else {
            None
        }
    }

    /// True if currently held (racy; diagnostics only).
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }

    /// Mutable access without locking (requires `&mut self`, hence safe).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

/// RAII guard; releases the lock on drop.
pub struct SpinGuard<'a, T: ?Sized> {
    lock: &'a SpinLock<T>,
}

impl<T: ?Sized> Deref for SpinGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: The guard's existence proves the lock is held, so access
        // is exclusive.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for SpinGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: As above — exclusive while the guard lives.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for SpinGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_mutual_access() {
        let l = SpinLock::new(5);
        {
            let mut g = l.lock();
            *g += 1;
        }
        assert_eq!(*l.lock(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn try_lock_fails_when_held() {
        let l = SpinLock::new(());
        let g = l.lock();
        assert!(l.is_locked());
        assert!(l.try_lock().is_none());
        drop(g);
        assert!(l.try_lock().is_some());
    }

    #[test]
    fn guard_releases_on_drop() {
        let l = SpinLock::new(0u32);
        drop(l.lock());
        assert!(!l.is_locked());
    }

    #[test]
    fn get_mut_bypasses_lock() {
        let mut l = SpinLock::new(1);
        *l.get_mut() = 7;
        assert_eq!(*l.lock(), 7);
    }

    #[test]
    fn contended_counter_is_exact() {
        let l = Arc::new(SpinLock::new(0u64));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..50_000 {
                        *l.lock() += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*l.lock(), 200_000);
    }

    #[test]
    fn try_lock_under_contention_never_corrupts() {
        let l = Arc::new(SpinLock::new((0u64, 0u64)));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    let mut acquired = 0;
                    while acquired < 10_000 {
                        if let Some(mut g) = l.try_lock() {
                            // Both halves must always move together.
                            g.0 += 1;
                            g.1 += 1;
                            acquired += 1;
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let g = l.lock();
        assert_eq!(g.0, g.1);
        assert_eq!(g.0, 40_000);
    }
}
