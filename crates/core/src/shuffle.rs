//! The shuffle layer (paper §4.2–§4.4).
//!
//! One **shuffle queue** per core holds the *ready connections* whose home
//! is that core. Idle remote cores may atomically steal the head of any
//! queue. Events are grouped **per connection** (not per packet) so that:
//!
//! * no head-of-line blocking: a long request on one connection never
//!   blocks requests of other connections queued behind it (§4.4), and
//! * ordering: whichever core dequeues a connection owns the socket
//!   exclusively until it finishes, so back-to-back requests on one socket
//!   are processed and answered in order without application-level locking
//!   (§4.3).
//!
//! The state machine (paper Figure 5) and its invariant:
//!
//! ```text
//!            produce (home)            dequeue/steal
//!   idle ────────────────▶ ready ────────────────────▶ busy
//!    ▲                       ▲                           │
//!    │      finish: events pending? ──yes─▶ requeue ─────┤
//!    └──────────── no ───────────────────────────────────┘
//! ```
//!
//! **A connection is present in its home shuffle queue exactly once when in
//! the `ready` state, and never otherwise.** Transitions are atomic under
//! the home core's spinlock; each PCB's event list has its own lock (§5).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

use zygos_net::flow::ConnId;

use crate::spinlock::SpinLock;

/// Scheduling state of a connection (paper Figure 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnState {
    /// No pending events, not being processed.
    Idle,
    /// Pending events; present in its home shuffle queue.
    Ready,
    /// Owned by an execution core (home or remote).
    Busy,
}

impl ConnState {
    fn from_u8(v: u8) -> ConnState {
        match v {
            0 => ConnState::Idle,
            1 => ConnState::Ready,
            2 => ConnState::Busy,
            _ => unreachable!("invalid connection state"),
        }
    }
}

/// Result of [`ShuffleLayer::finish`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FinishOutcome {
    /// No further events; the connection went idle.
    Idle,
    /// More events had arrived; the connection was re-enqueued on its home
    /// core's shuffle queue.
    Requeued,
}

struct PcbSched<E> {
    home: usize,
    /// State byte; mutated only while holding the home core's lock.
    state: AtomicU8,
    /// Pending application events, FIFO. Single producer (home core's
    /// network stack), single consumer (the current execution core).
    events: SpinLock<VecDeque<E>>,
}

struct CoreQueue {
    /// The shuffle queue proper: ready connections homed here.
    queue: SpinLock<VecDeque<ConnId>>,
    /// Racy occupancy mirror for lock-free idle-loop polling.
    len: AtomicUsize,
}

/// The shuffle layer for a fixed set of cores and connections.
///
/// Generic over the application event type `E` (a parsed RPC message in the
/// runtime, a token in tests).
pub struct ShuffleLayer<E> {
    cores: Vec<CoreQueue>,
    pcbs: Vec<PcbSched<E>>,
}

impl<E> ShuffleLayer<E> {
    /// Creates a layer with `n_cores` empty shuffle queues.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores == 0`.
    pub fn new(n_cores: usize) -> Self {
        assert!(n_cores > 0, "need at least one core");
        ShuffleLayer {
            cores: (0..n_cores)
                .map(|_| CoreQueue {
                    queue: SpinLock::new(VecDeque::new()),
                    len: AtomicUsize::new(0),
                })
                .collect(),
            pcbs: Vec::new(),
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Number of registered connections.
    pub fn connections(&self) -> usize {
        self.pcbs.len()
    }

    /// Registers a connection homed on `home` (setup phase).
    ///
    /// # Panics
    ///
    /// Panics if `home` is out of range.
    pub fn register(&mut self, home: usize) -> ConnId {
        assert!(home < self.cores.len(), "home core out of range");
        let id = ConnId(self.pcbs.len() as u32);
        self.pcbs.push(PcbSched {
            home,
            state: AtomicU8::new(0),
            events: SpinLock::new(VecDeque::new()),
        });
        id
    }

    /// The home core of a connection.
    pub fn home_of(&self, conn: ConnId) -> usize {
        self.pcbs[conn.index()].home
    }

    /// Current state (racy snapshot; transitions happen under locks).
    pub fn state_of(&self, conn: ConnId) -> ConnState {
        ConnState::from_u8(self.pcbs[conn.index()].state.load(Ordering::Acquire))
    }

    /// Delivers an application event for `conn` (home core's TCP-in path,
    /// §4.2 step 2).
    ///
    /// Returns `true` if the connection transitioned `idle → ready` (i.e.
    /// it was newly enqueued on the shuffle queue); `false` if it was
    /// already ready or busy and the event simply joined its PCB queue.
    pub fn produce(&self, conn: ConnId, event: E) -> bool {
        let pcb = &self.pcbs[conn.index()];
        // Stage 1: append the event under the PCB lock, then release —
        // never hold the PCB lock while taking the core lock (finish()
        // nests the other way; see module docs).
        pcb.events.lock().push_back(event);
        // Stage 2: idle → ready transition under the home core's lock.
        let core = &self.cores[pcb.home];
        let mut q = core.queue.lock();
        let state = ConnState::from_u8(pcb.state.load(Ordering::Relaxed));
        if state == ConnState::Idle {
            pcb.state.store(ConnState::Ready as u8, Ordering::Release);
            q.push_back(conn);
            core.len.store(q.len(), Ordering::Release);
            true
        } else {
            false
        }
    }

    fn pop_from(&self, q: &mut VecDeque<ConnId>, core: &CoreQueue) -> Option<ConnId> {
        let conn = q.pop_front()?;
        core.len.store(q.len(), Ordering::Release);
        let pcb = &self.pcbs[conn.index()];
        debug_assert_eq!(
            ConnState::from_u8(pcb.state.load(Ordering::Relaxed)),
            ConnState::Ready,
            "dequeued connection must be ready"
        );
        pcb.state.store(ConnState::Busy as u8, Ordering::Release);
        Some(conn)
    }

    /// Dequeues the next ready connection from `core`'s own queue
    /// (transitioning it to busy). Home-core fast path; spins on the lock.
    pub fn dequeue_local(&self, core: usize) -> Option<ConnId> {
        let cq = &self.cores[core];
        if cq.len.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut q = cq.queue.lock();
        self.pop_from(&mut q, cq)
    }

    /// Attempts to steal the head of `victim`'s shuffle queue.
    ///
    /// Uses `try_lock` so a contended queue is simply skipped (§5). Returns
    /// the stolen connection (now busy, owned by the caller) or `None`.
    pub fn try_steal(&self, victim: usize) -> Option<ConnId> {
        let cq = &self.cores[victim];
        if cq.len.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut q = cq.queue.try_lock()?;
        self.pop_from(&mut q, cq)
    }

    /// Drains up to `max` pending events of a busy connection.
    ///
    /// The caller must own the connection (have received it from
    /// [`ShuffleLayer::dequeue_local`] / [`ShuffleLayer::try_steal`]). Events are returned in arrival
    /// order — this, plus busy-state exclusivity, is the paper's §4.3
    /// ordering guarantee.
    pub fn take_events(&self, conn: ConnId, max: usize) -> Vec<E> {
        let pcb = &self.pcbs[conn.index()];
        debug_assert_eq!(
            ConnState::from_u8(pcb.state.load(Ordering::Relaxed)),
            ConnState::Busy,
            "only the owner of a busy connection may take events"
        );
        let mut ev = pcb.events.lock();
        let n = ev.len().min(max);
        ev.drain(..n).collect()
    }

    /// Completes execution of a busy connection (paper Figure 5, the
    /// transitions out of `busy`).
    ///
    /// Must be called by the owning execution core after all of the
    /// connection's syscalls have been issued. Re-enqueues on the **home**
    /// queue if more events arrived meanwhile.
    pub fn finish(&self, conn: ConnId) -> FinishOutcome {
        let pcb = &self.pcbs[conn.index()];
        let core = &self.cores[pcb.home];
        // Lock order: home core lock, then PCB event lock ("the transitions
        // from the busy state must test whether the PCB queue is empty and
        // must first grab that lock", §5).
        let mut q = core.queue.lock();
        debug_assert_eq!(
            ConnState::from_u8(pcb.state.load(Ordering::Relaxed)),
            ConnState::Busy,
            "finish on non-busy connection"
        );
        let has_pending = !pcb.events.lock().is_empty();
        if has_pending {
            pcb.state.store(ConnState::Ready as u8, Ordering::Release);
            q.push_back(conn);
            core.len.store(q.len(), Ordering::Release);
            FinishOutcome::Requeued
        } else {
            pcb.state.store(ConnState::Idle as u8, Ordering::Release);
            FinishOutcome::Idle
        }
    }

    /// Racy length of a core's shuffle queue (idle-loop polling; lock-free).
    pub fn queue_len(&self, core: usize) -> usize {
        self.cores[core].len.load(Ordering::Acquire)
    }

    /// Racy check across all queues — used by tests and drain loops.
    pub fn total_ready(&self) -> usize {
        self.cores
            .iter()
            .map(|c| c.len.load(Ordering::Acquire))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn layer(cores: usize, conns_per_core: usize) -> (ShuffleLayer<u64>, Vec<ConnId>) {
        let mut l = ShuffleLayer::new(cores);
        let mut ids = Vec::new();
        for c in 0..cores {
            for _ in 0..conns_per_core {
                ids.push(l.register(c));
            }
        }
        (l, ids)
    }

    #[test]
    fn produce_makes_idle_connection_ready() {
        let (l, ids) = layer(2, 1);
        assert_eq!(l.state_of(ids[0]), ConnState::Idle);
        assert!(l.produce(ids[0], 1));
        assert_eq!(l.state_of(ids[0]), ConnState::Ready);
        assert_eq!(l.queue_len(0), 1);
        // A second event does not re-enqueue.
        assert!(!l.produce(ids[0], 2));
        assert_eq!(l.queue_len(0), 1);
    }

    #[test]
    fn dequeue_local_transitions_to_busy() {
        let (l, ids) = layer(1, 1);
        l.produce(ids[0], 7);
        let got = l.dequeue_local(0).unwrap();
        assert_eq!(got, ids[0]);
        assert_eq!(l.state_of(got), ConnState::Busy);
        assert_eq!(l.queue_len(0), 0);
        assert!(l.dequeue_local(0).is_none());
    }

    #[test]
    fn events_drain_in_fifo_order() {
        let (l, ids) = layer(1, 1);
        for e in 0..5 {
            l.produce(ids[0], e);
        }
        let conn = l.dequeue_local(0).unwrap();
        assert_eq!(l.take_events(conn, usize::MAX), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn take_events_respects_max() {
        let (l, ids) = layer(1, 1);
        for e in 0..5 {
            l.produce(ids[0], e);
        }
        let conn = l.dequeue_local(0).unwrap();
        assert_eq!(l.take_events(conn, 2), vec![0, 1]);
        assert_eq!(l.take_events(conn, 10), vec![2, 3, 4]);
    }

    #[test]
    fn finish_goes_idle_when_drained() {
        let (l, ids) = layer(1, 1);
        l.produce(ids[0], 1);
        let conn = l.dequeue_local(0).unwrap();
        let _ = l.take_events(conn, usize::MAX);
        assert_eq!(l.finish(conn), FinishOutcome::Idle);
        assert_eq!(l.state_of(conn), ConnState::Idle);
    }

    #[test]
    fn finish_requeues_when_events_pending() {
        let (l, ids) = layer(1, 1);
        l.produce(ids[0], 1);
        let conn = l.dequeue_local(0).unwrap();
        let _ = l.take_events(conn, usize::MAX);
        // A new event lands while busy.
        assert!(!l.produce(conn, 2));
        assert_eq!(l.finish(conn), FinishOutcome::Requeued);
        assert_eq!(l.state_of(conn), ConnState::Ready);
        assert_eq!(l.queue_len(0), 1);
        // And it is consumable again.
        let again = l.dequeue_local(0).unwrap();
        assert_eq!(l.take_events(again, usize::MAX), vec![2]);
    }

    #[test]
    fn steal_takes_from_victim_queue() {
        let (l, ids) = layer(2, 1);
        l.produce(ids[0], 1); // Homed on core 0.
        let stolen = l.try_steal(0).unwrap();
        assert_eq!(stolen, ids[0]);
        assert_eq!(l.state_of(stolen), ConnState::Busy);
        // Requeue after finish returns to the HOME queue (core 0), even if
        // a remote core executed it.
        l.produce(stolen, 2);
        assert_eq!(l.finish(stolen), FinishOutcome::Requeued);
        assert_eq!(l.queue_len(0), 1);
        assert_eq!(l.queue_len(1), 0);
    }

    #[test]
    fn steal_fails_on_empty_queue() {
        let (l, _ids) = layer(2, 1);
        assert!(l.try_steal(0).is_none());
        assert!(l.try_steal(1).is_none());
    }

    #[test]
    fn fifo_across_connections_within_a_queue() {
        let (l, ids) = layer(1, 3);
        l.produce(ids[1], 0);
        l.produce(ids[0], 0);
        l.produce(ids[2], 0);
        assert_eq!(l.dequeue_local(0).unwrap(), ids[1]);
        assert_eq!(l.dequeue_local(0).unwrap(), ids[0]);
        assert_eq!(l.dequeue_local(0).unwrap(), ids[2]);
    }

    /// The paper's core invariant, hammered concurrently: a connection is
    /// in a shuffle queue exactly once iff ready; every event is delivered
    /// exactly once and in order.
    #[test]
    fn concurrent_producers_and_stealers_preserve_order_and_count() {
        const CORES: usize = 4;
        const CONNS: usize = 16;
        const EVENTS_PER_CONN: u64 = 2_000;

        let mut l = ShuffleLayer::new(CORES);
        let ids: Vec<ConnId> = (0..CONNS).map(|i| l.register(i % CORES)).collect();
        let l = Arc::new(l);
        let delivered = Arc::new(
            (0..CONNS)
                .map(|_| SpinLock::new(Vec::<u64>::new()))
                .collect::<Vec<_>>(),
        );

        // One producer thread per core produces round-robin over its conns.
        let producers: Vec<_> = (0..CORES)
            .map(|core| {
                let l = Arc::clone(&l);
                let ids = ids.clone();
                std::thread::spawn(move || {
                    let my: Vec<ConnId> = ids
                        .iter()
                        .copied()
                        .filter(|c| l.home_of(*c) == core)
                        .collect();
                    for seq in 0..EVENTS_PER_CONN {
                        for &c in &my {
                            l.produce(c, seq);
                        }
                    }
                })
            })
            .collect();

        // Worker threads: each drains its own queue and steals from others.
        let total_expected = (CONNS as u64) * EVENTS_PER_CONN;
        let consumed = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..CORES)
            .map(|core| {
                let l = Arc::clone(&l);
                let delivered = Arc::clone(&delivered);
                let consumed = Arc::clone(&consumed);
                std::thread::spawn(move || {
                    while (consumed.load(Ordering::Relaxed) as u64) < total_expected {
                        let conn = l.dequeue_local(core).or_else(|| {
                            (0..CORES)
                                .filter(|&v| v != core)
                                .find_map(|v| l.try_steal(v))
                        });
                        if let Some(conn) = conn {
                            let evs = l.take_events(conn, usize::MAX);
                            consumed.fetch_add(evs.len(), Ordering::Relaxed);
                            delivered[conn.index()].lock().extend(evs);
                            l.finish(conn);
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                })
            })
            .collect();

        for p in producers {
            p.join().unwrap();
        }
        for w in workers {
            w.join().unwrap();
        }

        for (i, log) in delivered.iter().enumerate() {
            let log = log.lock();
            assert_eq!(
                log.len(),
                EVENTS_PER_CONN as usize,
                "conn {i}: exactly-once delivery"
            );
            for (j, w) in log.windows(2).enumerate() {
                assert!(
                    w[0] <= w[1],
                    "conn {i}: order violated at {j}: {} then {}",
                    w[0],
                    w[1]
                );
            }
        }
        // Everything drained; all idle.
        assert_eq!(l.total_ready(), 0);
        for &c in &ids {
            assert_eq!(l.state_of(c), ConnState::Idle);
        }
    }

    #[test]
    #[should_panic(expected = "home core out of range")]
    fn register_checks_core() {
        let mut l = ShuffleLayer::<u32>::new(2);
        l.register(2);
    }
}
