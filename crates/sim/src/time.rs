//! Simulated time.
//!
//! All simulations in this repository run on a nanosecond-resolution virtual
//! clock. Using integer nanoseconds (rather than `f64` seconds) keeps event
//! ordering exact and makes runs reproducible across platforms.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The maximum representable instant (used as an "infinitely far" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from a floating-point number of microseconds.
    ///
    /// Negative or non-finite inputs saturate to zero; this keeps distribution
    /// sampling (which may round to tiny negatives) safe.
    pub fn from_micros_f64(us: f64) -> Self {
        if !us.is_finite() || us <= 0.0 {
            return SimTime(0);
        }
        SimTime((us * 1_000.0).round() as u64)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this instant expressed in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns this instant expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction; returns the duration from `earlier` to `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from a floating-point number of microseconds.
    ///
    /// Negative or non-finite inputs saturate to zero.
    pub fn from_micros_f64(us: f64) -> Self {
        if !us.is_finite() || us <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((us * 1_000.0).round() as u64)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this duration expressed in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns this duration expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Multiplies the duration by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micros_roundtrip() {
        let t = SimTime::from_micros(25);
        assert_eq!(t.as_nanos(), 25_000);
        assert!((t.as_micros_f64() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn from_micros_f64_rounds() {
        assert_eq!(SimTime::from_micros_f64(1.5).as_nanos(), 1_500);
        assert_eq!(SimTime::from_micros_f64(0.0004).as_nanos(), 0);
        assert_eq!(SimTime::from_micros_f64(-3.0).as_nanos(), 0);
        assert_eq!(SimTime::from_micros_f64(f64::NAN).as_nanos(), 0);
    }

    #[test]
    fn arithmetic_saturates() {
        let t = SimTime::MAX + SimDuration::from_micros(1);
        assert_eq!(t, SimTime::MAX);
        assert_eq!(SimTime::ZERO - SimTime::from_micros(5), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_nanos(u64::MAX).saturating_mul(2).0,
            u64::MAX
        );
    }

    #[test]
    fn duration_since_is_saturating() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(4);
        assert_eq!(a.duration_since(b), SimDuration::from_micros(6));
        assert_eq!(b.duration_since(a), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_nanos(2) > SimTime::from_nanos(1));
        assert!(SimDuration::from_micros(1) < SimDuration::from_micros(2));
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX.checked_add(SimDuration(1)).is_none());
        assert_eq!(
            SimTime(1).checked_add(SimDuration(1)),
            Some(SimTime::from_nanos(2))
        );
    }
}
