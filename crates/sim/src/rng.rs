//! Deterministic pseudo-random number generation.
//!
//! Experiments must regenerate bit-identically from a seed, across platforms
//! and `rand` versions. We therefore implement the generator ourselves:
//! [`Xoshiro256`] (xoshiro256**), seeded through SplitMix64 as its authors
//! recommend. The type also implements [`rand::RngCore`] so it can drive any
//! distribution from the `rand` ecosystem.

use rand::{Error, RngCore, SeedableRng};

/// SplitMix64 step; used to expand a 64-bit seed into a full xoshiro state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The xoshiro256** generator (Blackman & Vigna).
///
/// Fast, 256 bits of state, passes BigCrush; more than adequate for
/// simulation workloads. Not cryptographically secure.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // An all-zero state is the one invalid state; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256 { s }
    }

    /// Returns the next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64_raw(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a double uniformly distributed in `[0, 1)`.
    ///
    /// Uses the top 53 bits, the standard full-precision construction.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a double uniformly distributed in `(0, 1]`.
    ///
    /// Useful for `-ln(u)` style inverse-CDF sampling where `u = 0` would
    /// produce infinity.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Returns an exponentially distributed value with the given mean.
    #[inline]
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        -mean * self.next_f64_open().ln()
    }

    /// Returns a uniformly distributed integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method for lack of bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64_raw();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: only reached with probability < bound / 2^64.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_bounded(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Derives an independent child generator (for per-core streams).
    ///
    /// Mixes the stream id into fresh SplitMix64 output so that sibling
    /// streams are uncorrelated.
    pub fn fork(&mut self, stream: u64) -> Xoshiro256 {
        let base = self.next_u64_raw();
        Xoshiro256::new(base ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }
}

impl RngCore for Xoshiro256 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64_raw() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_u64_raw()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Xoshiro256 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Xoshiro256::new(u64::from_le_bytes(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Xoshiro256::new(7);
        let mut b = Xoshiro256::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64_raw(), b.next_u64_raw());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::new(1);
        let mut b = Xoshiro256::new(2);
        let same = (0..64)
            .filter(|_| a.next_u64_raw() == b.next_u64_raw())
            .count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.next_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn exp_mean_close() {
        let mut r = Xoshiro256::new(11);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.next_exp(10.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.15, "mean = {mean}");
    }

    #[test]
    fn bounded_covers_range_uniformly() {
        let mut r = Xoshiro256::new(5);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.next_bounded(10) as usize] += 1;
        }
        for &c in &counts {
            // Expected 10_000 per cell; loose 10% band.
            assert!((9_000..11_000).contains(&c), "count = {c}");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn bounded_zero_panics() {
        Xoshiro256::new(1).next_bounded(0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // With 50 elements, the identity permutation is essentially impossible.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_uncorrelated() {
        let mut root = Xoshiro256::new(1234);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let same = (0..64)
            .filter(|_| a.next_u64_raw() == b.next_u64_raw())
            .count();
        assert!(same < 4);
    }

    #[test]
    fn fill_bytes_handles_remainder() {
        let mut r = Xoshiro256::new(21);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
