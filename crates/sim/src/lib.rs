//! Discrete-event simulation kernel for the ZygOS reproduction.
//!
//! This crate provides the foundation every experiment in the repository is
//! built on:
//!
//! * [`time`] — a nanosecond-resolution simulated clock ([`time::SimTime`]).
//! * [`rng`] — a deterministic, seedable PRNG ([`rng::Xoshiro256`]) so every
//!   figure regenerates bit-identically.
//! * [`dist`] — the service-time distributions studied by the paper
//!   (deterministic, exponential, bimodal-1, bimodal-2) plus empirical
//!   distributions sampled from live measurements.
//! * [`engine`] — a generic discrete-event engine with a binary-heap event
//!   queue and stable FIFO tie-breaking.
//! * [`stats`] — log-bucketed latency histograms with percentile queries.
//! * [`queueing`] — the four idealized queueing models of the paper's §2.3
//!   (centralized/partitioned × FCFS/PS) and the max-load@SLO search used
//!   throughout the evaluation.
//!
//! # Example
//!
//! ```
//! use zygos_sim::dist::ServiceDist;
//! use zygos_sim::queueing::{QueueConfig, Policy, simulate};
//!
//! // 99th-percentile latency of an M/G/16/FCFS system at 50% load.
//! let cfg = QueueConfig {
//!     servers: 16,
//!     load: 0.5,
//!     service: ServiceDist::exponential_us(1.0),
//!     policy: Policy::CentralFcfs,
//!     requests: 50_000,
//!     seed: 42,
//!     warmup: 5_000,
//! };
//! let out = simulate(&cfg);
//! assert!(out.p99_us() > 4.6); // At least the no-queueing p99 of Exp(1).
//! ```

pub mod dist;
pub mod engine;
pub mod queueing;
pub mod rng;
pub mod stats;
pub mod time;

pub use dist::ServiceDist;
pub use engine::{Engine, Scheduler};
pub use rng::Xoshiro256;
pub use stats::LatencyHistogram;
pub use time::SimTime;
