//! A generic discrete-event simulation engine.
//!
//! The engine owns a model `M` and a time-ordered event queue of `M::Event`
//! values. Events scheduled for the same instant fire in FIFO order (stable
//! tie-breaking by sequence number), which keeps simulations deterministic.
//!
//! # Event queues
//!
//! The queue behind the engine is pluggable through [`EventQueue`]:
//!
//! * [`WheelQueue`] (the default) — a hierarchical timing wheel: a
//!   near-horizon wheel of 1ns buckets (65.5µs), a second-level wheel of
//!   bucket pages behind it (~268ms), and a sorted overflow heap for the
//!   far future. Push and pop are O(1) amortized instead of the heap's
//!   O(log n) — and the event queue is touched several times per simulated
//!   request, so this is the floor under the whole experiment plane's
//!   events/sec.
//! * [`HeapQueue`] — the original `BinaryHeap` engine, kept as the
//!   differential-testing oracle (`crates/sim/tests/engine_diff.rs` drives
//!   both through randomized schedules and asserts identical pop order).
//!   Building with `--features heap-engine` swaps it back in as the
//!   default for every simulation.
//!
//! Both queues implement the exact same ordering contract: pops come out
//! in ascending `(time, seq)` order, so a simulation's outputs are
//! bit-identical whichever queue runs it.
//!
//! # Example
//!
//! ```
//! use zygos_sim::engine::{Engine, Model, Scheduler};
//! use zygos_sim::time::{SimDuration, SimTime};
//!
//! struct Counter {
//!     fired: u32,
//! }
//!
//! enum Ev {
//!     Tick,
//! }
//!
//! impl Model for Counter {
//!     type Event = Ev;
//!     fn handle(&mut self, _now: SimTime, _ev: Ev, sched: &mut Scheduler<Ev>) {
//!         self.fired += 1;
//!         if self.fired < 10 {
//!             sched.after(SimDuration::from_micros(1), Ev::Tick);
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Counter { fired: 0 });
//! engine.schedule(SimTime::ZERO, Ev::Tick);
//! engine.run();
//! assert_eq!(engine.model().fired, 10);
//! assert_eq!(engine.now(), SimTime::from_micros(9));
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A simulation model: application state plus an event handler.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Handles one event at simulated time `now`, possibly scheduling more
    /// events through `sched`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Interface handed to event handlers for scheduling follow-up events.
///
/// The backing buffer is owned by the engine and recycled across events,
/// so scheduling from a handler never allocates in steady state.
pub struct Scheduler<E> {
    now: SimTime,
    pending: Vec<(SimTime, E)>,
    stopped: bool,
}

impl<E> Scheduler<E> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Times in the past are clamped to `now` (the event fires immediately
    /// after the current one).
    pub fn at(&mut self, at: SimTime, event: E) {
        let t = at.max(self.now);
        self.pending.push((t, event));
    }

    /// Schedules `event` after a relative delay.
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.pending.push((self.now + delay, event));
    }

    /// Requests the run loop to stop after the current event completes.
    pub fn stop(&mut self) {
        self.stopped = true;
    }
}

/// The ordering contract every engine queue implements: pops come out in
/// ascending `(time, seq)` order, FIFO among equal-time events.
pub trait EventQueue<E>: Default {
    /// Inserts an event. `at` never precedes the last pop (the engine
    /// clamps to `now`), and `seq` strictly increases across pushes.
    fn push(&mut self, at: SimTime, seq: u64, event: E);

    /// Removes and returns the earliest `(time, seq, event)`.
    fn pop(&mut self) -> Option<(SimTime, u64, E)>;

    /// The timestamp the next pop would return (normalizes internal
    /// cursors, hence `&mut`; the content is untouched).
    fn peek_at(&mut self) -> Option<SimTime>;

    /// Number of queued events.
    fn len(&self) -> usize;

    /// True when no events remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The engine's default queue: the timing wheel, unless the `heap-engine`
/// feature swaps the `BinaryHeap` oracle back in.
#[cfg(not(feature = "heap-engine"))]
pub type DefaultQueue<E> = WheelQueue<E>;
/// The engine's default queue (heap oracle, `heap-engine` build).
#[cfg(feature = "heap-engine")]
pub type DefaultQueue<E> = HeapQueue<E>;

// ---------------------------------------------------------------------------
// Heap queue (the differential-testing oracle).
// ---------------------------------------------------------------------------

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E: Clone> Clone for Entry<E> {
    fn clone(&self) -> Self {
        Entry {
            at: self.at,
            seq: self.seq,
            event: self.event.clone(),
        }
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The original `BinaryHeap` event queue: O(log n) push/pop.
///
/// Kept as the oracle for differential tests of [`WheelQueue`], and as the
/// engine default under the `heap-engine` feature.
pub struct HeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
}

impl<E: Clone> Clone for HeapQueue<E> {
    fn clone(&self) -> Self {
        HeapQueue {
            heap: self.heap.clone(),
        }
    }
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
        }
    }
}

impl<E> EventQueue<E> for HeapQueue<E> {
    fn push(&mut self, at: SimTime, seq: u64, event: E) {
        self.heap.push(Entry { at, seq, event });
    }

    fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        self.heap.pop().map(|e| (e.at, e.seq, e.event))
    }

    fn peek_at(&mut self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

// ---------------------------------------------------------------------------
// Hierarchical timing wheel.
// ---------------------------------------------------------------------------

/// One level-0 page spans 2^16 ns = 65.5µs — service times, RTTs and
/// control ticks all land inside the current page.
const L0_BITS: u32 = 16;
/// Level-0 buckets are 32ns wide (2048 per page): coarse enough that the
/// bucket array stays cache-resident, fine enough that a bucket holds a
/// handful of events — sorted by `(time, seq)` when the cursor reaches it.
const GRAIN_BITS: u32 = 5;
const L0_SLOT_BITS: u32 = L0_BITS - GRAIN_BITS;
const L0_SLOTS: usize = 1 << L0_SLOT_BITS;
/// Level-1 wheel: one slot per level-0 *page* (65.5µs each), covering a
/// ~268ms horizon. Entries cascade into level 0 when their page opens.
const L1_BITS: u32 = 12;
const L1_SLOTS: usize = 1 << L1_BITS;

/// Bit mask selecting bits at or above `bit` (all-zero past the word).
#[inline]
fn mask_from(bit: usize) -> u64 {
    if bit >= 64 {
        0
    } else {
        !0u64 << bit
    }
}

/// A hierarchical timing-wheel event queue: O(1) push and amortized-O(1)
/// pop, with a sorted overflow heap behind the wheel horizon.
///
/// Ordering is exact — pops come out in `(time, seq)` order, bit-identical
/// to [`HeapQueue`]:
///
/// * a level-0 bucket spans 32ns; it is sorted by `(time, seq)` when the
///   cursor reaches it (and re-sorted if pushes land on the in-progress
///   bucket), so in-bucket order is total;
/// * across structures, bucketing by page keeps time order: an event in a
///   farther structure (overflow vs level 1 vs level 0) always belongs to
///   a later page than anything nearer, and cascades re-bucket entries
///   before they are eligible to pop.
pub struct WheelQueue<E> {
    /// Absolute page (`time >> L0_BITS`) the level-0 wheel currently maps.
    page: u64,
    /// Level-0 slot of the last pop; pushes never land on earlier times
    /// (they rewind the cursor if they target an earlier slot).
    cursor: usize,
    /// Whether the cursor bucket is currently sorted.
    cursor_sorted: bool,
    /// Level-0 buckets: `(time_ns, seq, event)` per entry.
    l0: Vec<Vec<(u64, u64, E)>>,
    /// Level-0 occupancy bitmap, one bit per slot (`L0_SLOTS` ≤ 4096 bits,
    /// a handful of words — no summary level needed).
    l0_occ: [u64; L0_SLOTS / 64],
    /// Level-1 slots: entries of one future page each (slot = absolute
    /// page masked), in push order.
    l1: Vec<Vec<(u64, u64, E)>>,
    l1_occ: Vec<u64>,
    /// Events beyond the level-1 horizon, sorted by `(time, seq)`.
    overflow: BinaryHeap<Entry<E>>,
    len: usize,
    /// Events currently resident per level — lets a sparse queue skip the
    /// bitmap scans of empty levels entirely.
    l0_len: usize,
    l1_len: usize,
}

/// A cloned wheel is an exact snapshot: the page, cursor and per-level
/// contents round-trip verbatim, so a checkpoint taken mid-page (cursor
/// inside level 0, cascades pending in level 1 / overflow) resumes with
/// the identical pop stream. Pinned by `tests/checkpoint.rs`.
impl<E: Clone> Clone for WheelQueue<E> {
    fn clone(&self) -> Self {
        WheelQueue {
            page: self.page,
            cursor: self.cursor,
            cursor_sorted: self.cursor_sorted,
            l0: self.l0.clone(),
            l0_occ: self.l0_occ,
            l1: self.l1.clone(),
            l1_occ: self.l1_occ.clone(),
            overflow: self.overflow.clone(),
            len: self.len,
            l0_len: self.l0_len,
            l1_len: self.l1_len,
        }
    }
}

impl<E> Default for WheelQueue<E> {
    fn default() -> Self {
        WheelQueue {
            page: 0,
            cursor: 0,
            cursor_sorted: true,
            l0: (0..L0_SLOTS).map(|_| Vec::new()).collect(),
            l0_occ: [0; L0_SLOTS / 64],
            l1: (0..L1_SLOTS).map(|_| Vec::new()).collect(),
            l1_occ: vec![0; L1_SLOTS / 64],
            overflow: BinaryHeap::new(),
            len: 0,
            l0_len: 0,
            l1_len: 0,
        }
    }
}

impl<E> WheelQueue<E> {
    #[inline]
    fn l0_set(&mut self, slot: usize) {
        self.l0_occ[slot >> 6] |= 1 << (slot & 63);
    }

    #[inline]
    fn l0_clear(&mut self, slot: usize) {
        self.l0_occ[slot >> 6] &= !(1 << (slot & 63));
    }

    /// First occupied level-0 slot at or after `from`, if any.
    fn l0_next(&self, from: usize) -> Option<usize> {
        let mut w = from >> 6;
        let mut bits = self.l0_occ[w] & mask_from(from & 63);
        loop {
            if bits != 0 {
                return Some((w << 6) | bits.trailing_zeros() as usize);
            }
            w += 1;
            if w >= self.l0_occ.len() {
                return None;
            }
            bits = self.l0_occ[w];
        }
    }

    /// Sorts the cursor bucket if it may be out of order.
    #[inline]
    fn ensure_sorted(&mut self) {
        if !self.cursor_sorted {
            self.l0[self.cursor].sort_unstable_by_key(|e| (e.0, e.1));
            self.cursor_sorted = true;
        }
    }

    /// First occupied level-1 slot in circular order starting at `from`,
    /// with its absolute page (recovered from its first entry's time).
    fn l1_next(&self, from: usize) -> Option<(usize, u64)> {
        let words = self.l1_occ.len();
        let mut w = from >> 6;
        let mut bits = self.l1_occ[w] & mask_from(from & 63);
        for step in 0..=words {
            if bits != 0 {
                let slot = (w << 6) | bits.trailing_zeros() as usize;
                let page = self.l1[slot].first().expect("occupied l1 slot").0 >> L0_BITS;
                return Some((slot, page));
            }
            if step == words {
                break;
            }
            w = (w + 1) % words;
            bits = self.l1_occ[w];
        }
        None
    }

    /// Places an entry into level 0 of the current page.
    #[inline]
    fn l0_insert(&mut self, ns: u64, seq: u64, event: E) {
        debug_assert_eq!(ns >> L0_BITS, self.page);
        let slot = ((ns >> GRAIN_BITS) & (L0_SLOTS as u64 - 1)) as usize;
        self.l0[slot].push((ns, seq, event));
        self.l0_set(slot);
        self.l0_len += 1;
        if slot == self.cursor {
            self.cursor_sorted = false;
        }
    }

    /// Advances the wheel to the next page holding events, cascading
    /// level-1 and overflow entries into level 0. Precondition: level 0 is
    /// exhausted. Returns false when the whole queue is empty.
    fn advance_page(&mut self) -> bool {
        let next_l1 = if self.l1_len > 0 {
            self.l1_next(((self.page + 1) & (L1_SLOTS as u64 - 1)) as usize)
        } else {
            None
        };
        let next_of = self.overflow.peek().map(|e| e.at.as_nanos() >> L0_BITS);
        let target = match (next_l1, next_of) {
            (Some((_, p1)), Some(p2)) => p1.min(p2),
            (Some((_, p1)), None) => p1,
            (None, Some(p2)) => p2,
            (None, None) => return false,
        };
        self.page = target;
        self.cursor = 0;
        self.cursor_sorted = false;
        while let Some(e) = self.overflow.peek() {
            if e.at.as_nanos() >> L0_BITS != target {
                break;
            }
            let e = self.overflow.pop().expect("peeked");
            self.l0_insert(e.at.as_nanos(), e.seq, e.event);
        }
        if let Some((slot, p1)) = next_l1 {
            if p1 == target {
                let mut entries = std::mem::take(&mut self.l1[slot]);
                self.l1_occ[slot >> 6] &= !(1 << (slot & 63));
                self.l1_len -= entries.len();
                for (ns, seq, event) in entries.drain(..) {
                    self.l0_insert(ns, seq, event);
                }
                // Hand the spare buffer back so cascades stop allocating
                // once the hottest page size has been seen.
                self.l1[slot] = entries;
            }
        }
        true
    }

    /// Moves the cursor onto the next occupied level-0 slot, advancing
    /// pages as needed. Returns false when the queue is empty. Only `pop`
    /// may cross pages: once a page is advanced, pushes at earlier times
    /// (legal until the next pop raises `now`) could no longer be placed.
    fn normalize(&mut self) -> bool {
        if self.len == 0 {
            return false;
        }
        loop {
            if self.l0_len > 0 {
                if let Some(slot) = self.l0_next(self.cursor) {
                    if slot != self.cursor {
                        self.cursor = slot;
                        self.cursor_sorted = false;
                    }
                    return true;
                }
            }
            if !self.advance_page() {
                return false;
            }
        }
    }
}

impl<E> EventQueue<E> for WheelQueue<E> {
    fn push(&mut self, at: SimTime, seq: u64, event: E) {
        let ns = at.as_nanos();
        let page = ns >> L0_BITS;
        self.len += 1;
        if page == self.page {
            let slot = ((ns >> GRAIN_BITS) & (L0_SLOTS as u64 - 1)) as usize;
            // `peek_at` may have advanced the cursor past a slot a later
            // push targets (pushes clamp to the *popped* time, not the
            // peeked one); rewinding only costs a rescan.
            if slot < self.cursor {
                self.cursor = slot;
                self.cursor_sorted = false;
            }
            self.l0_insert(ns, seq, event);
        } else if page.wrapping_sub(self.page) < L1_SLOTS as u64 {
            let slot = (page & (L1_SLOTS as u64 - 1)) as usize;
            self.l1[slot].push((ns, seq, event));
            self.l1_occ[slot >> 6] |= 1 << (slot & 63);
            self.l1_len += 1;
        } else {
            self.overflow.push(Entry { at, seq, event });
        }
    }

    fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        if !self.normalize() {
            return None;
        }
        self.ensure_sorted();
        let slot = &mut self.l0[self.cursor];
        // A bucket holds a handful of near-simultaneous events, so the
        // FIFO front-removal shift is a few entries at most.
        let (ns, seq, event) = slot.remove(0);
        if slot.is_empty() {
            self.l0_clear(self.cursor);
        }
        self.len -= 1;
        self.l0_len -= 1;
        Some((SimTime::from_nanos(ns), seq, event))
    }

    fn peek_at(&mut self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        // Within the current page the cursor may advance (pushes that need
        // an earlier slot rewind it). Across pages, only report the next
        // time — cascading is pop's job: after a cascade the wheel can no
        // longer place a push at an earlier, still-legal time.
        if self.l0_len > 0 {
            let _ = self.normalize();
            self.ensure_sorted();
            return Some(SimTime::from_nanos(self.l0[self.cursor][0].0));
        }
        let next_l1 = if self.l1_len > 0 {
            self.l1_next(((self.page + 1) & (L1_SLOTS as u64 - 1)) as usize)
                .map(|(slot, _)| {
                    self.l1[slot]
                        .iter()
                        .map(|e| e.0)
                        .min()
                        .expect("occupied l1 slot")
                })
        } else {
            None
        };
        let next_of = self.overflow.peek().map(|e| e.at.as_nanos());
        match (next_l1, next_of) {
            (Some(a), Some(b)) => Some(SimTime::from_nanos(a.min(b))),
            (Some(a), None) => Some(SimTime::from_nanos(a)),
            (None, Some(b)) => Some(SimTime::from_nanos(b)),
            (None, None) => None,
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

// ---------------------------------------------------------------------------
// Engine.
// ---------------------------------------------------------------------------

/// The discrete-event engine: an event queue plus the model under
/// simulation. Generic over the queue; defaults to the timing wheel.
pub struct Engine<M: Model, Q: EventQueue<M::Event> = DefaultQueue<<M as Model>::Event>> {
    queue: Q,
    seq: u64,
    now: SimTime,
    model: M,
    processed: u64,
    /// Recycled buffer behind [`Scheduler`]: events scheduled by a handler
    /// land here and are drained into the queue, allocation-free in steady
    /// state.
    scratch: Vec<(SimTime, M::Event)>,
}

impl<M: Model> Engine<M> {
    /// Creates an engine at time zero with an empty event queue (the
    /// default queue kind).
    pub fn new(model: M) -> Self {
        Self::with_queue(model)
    }
}

impl<M: Model, Q: EventQueue<M::Event>> Engine<M, Q> {
    /// Creates an engine backed by an explicit queue type — e.g.
    /// `Engine::<MyModel, HeapQueue<_>>::with_queue(model)` for
    /// differential testing against the heap oracle.
    pub fn with_queue(model: M) -> Self {
        Engine {
            queue: Q::default(),
            seq: 0,
            now: SimTime::ZERO,
            model,
            processed: 0,
            scratch: Vec::new(),
        }
    }

    /// Schedules an event at an absolute time (clamped to the current time).
    pub fn schedule(&mut self, at: SimTime, event: M::Event) {
        let at = at.max(self.now);
        self.queue.push(at, self.seq, event);
        self.seq += 1;
    }

    /// The current simulated time (time of the last handled event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events handled so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Shared access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model (for setup between runs).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the engine, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Runs until the event queue is empty or a handler calls
    /// [`Scheduler::stop`]. Returns the number of events processed.
    pub fn run(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }

    /// Runs until the queue empties, a handler stops the run, or the next
    /// event would fire strictly after `deadline`.
    ///
    /// Events scheduled exactly at `deadline` are processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let start = self.processed;
        let unbounded = deadline == SimTime::MAX;
        loop {
            // Without a deadline, pop directly — the per-event peek would
            // walk the queue's cursor twice for nothing.
            if !unbounded {
                match self.queue.peek_at() {
                    Some(at) if at <= deadline => {}
                    _ => break,
                }
            }
            let Some((at, _seq, event)) = self.queue.pop() else {
                break;
            };
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            let mut sched = Scheduler {
                now: self.now,
                pending: std::mem::take(&mut self.scratch),
                stopped: false,
            };
            self.model.handle(self.now, event, &mut sched);
            self.processed += 1;
            let stopped = sched.stopped;
            let mut pending = sched.pending;
            for (at, ev) in pending.drain(..) {
                self.queue.push(at, self.seq, ev);
                self.seq += 1;
            }
            self.scratch = pending;
            if stopped {
                break;
            }
        }
        self.processed - start
    }

    /// Processes exactly one event. Returns `false` (with no state change)
    /// when the queue is empty; a handler calling [`Scheduler::stop`] still
    /// counts as one processed event and returns `true`. Interleaving
    /// `step` with [`Engine::run_until`] is exact: the engine has no
    /// between-events state beyond `(queue, seq, now, processed)`.
    pub fn step(&mut self) -> bool {
        let Some((at, _seq, event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        let mut sched = Scheduler {
            now: self.now,
            pending: std::mem::take(&mut self.scratch),
            stopped: false,
        };
        self.model.handle(self.now, event, &mut sched);
        self.processed += 1;
        let mut pending = sched.pending;
        for (at, ev) in pending.drain(..) {
            self.queue.push(at, self.seq, ev);
            self.seq += 1;
        }
        self.scratch = pending;
        true
    }

    /// True if no events remain.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Takes a deterministic checkpoint: a full snapshot of the engine's
    /// event plane (queue contents, sequence counter, clock, processed
    /// count) plus the model's world state via its `Clone`.
    ///
    /// The exact-resume guarantee: resuming the checkpoint and processing
    /// N events is bit-identical to processing those N events on the
    /// original — same pop order, same model trajectory — because the
    /// engine holds no state outside the snapshot (the scratch buffer is
    /// empty between events). Pinned by `tests/checkpoint.rs` on both
    /// queue backends, including checkpoints taken mid-page on the wheel.
    pub fn checkpoint(&self) -> Self
    where
        Self: Clone,
    {
        self.clone()
    }
}

/// See [`Engine::checkpoint`]: a clone is an exact snapshot.
impl<M, Q> Clone for Engine<M, Q>
where
    M: Model + Clone,
    M::Event: Clone,
    Q: EventQueue<M::Event> + Clone,
{
    fn clone(&self) -> Self {
        Engine {
            queue: self.queue.clone(),
            seq: self.seq,
            now: self.now,
            model: self.model.clone(),
            processed: self.processed,
            // Drained back after every event; empty between events.
            scratch: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        order: Vec<(u64, u32)>,
    }

    enum Ev {
        Tag(u32),
        Chain(u32),
        StopNow,
    }

    impl Model for Recorder {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
            match ev {
                Ev::Tag(id) => self.order.push((now.as_nanos(), id)),
                Ev::Chain(n) => {
                    self.order.push((now.as_nanos(), n));
                    if n > 0 {
                        sched.after(SimDuration::from_nanos(10), Ev::Chain(n - 1));
                    }
                }
                Ev::StopNow => sched.stop(),
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut e = Engine::new(Recorder::default());
        e.schedule(SimTime::from_nanos(30), Ev::Tag(3));
        e.schedule(SimTime::from_nanos(10), Ev::Tag(1));
        e.schedule(SimTime::from_nanos(20), Ev::Tag(2));
        e.run();
        assert_eq!(e.model().order, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn same_time_events_are_fifo() {
        let mut e = Engine::new(Recorder::default());
        for id in 0..100 {
            e.schedule(SimTime::from_nanos(5), Ev::Tag(id));
        }
        e.run();
        let ids: Vec<u32> = e.model().order.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_follow_ups() {
        let mut e = Engine::new(Recorder::default());
        e.schedule(SimTime::ZERO, Ev::Chain(4));
        let n = e.run();
        assert_eq!(n, 5);
        assert_eq!(e.now(), SimTime::from_nanos(40));
    }

    #[test]
    fn run_until_respects_deadline_inclusive() {
        let mut e = Engine::new(Recorder::default());
        e.schedule(SimTime::from_nanos(10), Ev::Tag(1));
        e.schedule(SimTime::from_nanos(20), Ev::Tag(2));
        e.schedule(SimTime::from_nanos(21), Ev::Tag(3));
        e.run_until(SimTime::from_nanos(20));
        assert_eq!(e.model().order.len(), 2);
        assert!(!e.is_idle());
        e.run();
        assert_eq!(e.model().order.len(), 3);
    }

    #[test]
    fn stop_halts_the_loop() {
        let mut e = Engine::new(Recorder::default());
        e.schedule(SimTime::from_nanos(1), Ev::StopNow);
        e.schedule(SimTime::from_nanos(2), Ev::Tag(9));
        e.run();
        assert!(e.model().order.is_empty());
        assert!(!e.is_idle());
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut e = Engine::new(Recorder::default());
        e.schedule(SimTime::from_nanos(50), Ev::Tag(1));
        e.run();
        // Scheduling "at 10" after time reached 50 clamps to 50.
        e.schedule(SimTime::from_nanos(10), Ev::Tag(2));
        e.run();
        assert_eq!(e.model().order, vec![(50, 1), (50, 2)]);
    }

    #[test]
    fn wheel_crosses_pages_and_overflow_horizons() {
        // Events on both sides of the level-0 page boundary (65.5µs), the
        // level-1 horizon (~268ms) and far beyond, interleaved with
        // same-time ties, must still pop in (time, seq) order.
        let mut e = Engine::<Recorder, WheelQueue<Ev>>::with_queue(Recorder::default());
        let times = [
            3u64,
            (1 << 16) - 1,
            1 << 16,
            (1 << 16) + 1,
            (1 << 20) + 7,
            (1 << 28) | 12345,
            1 << 29,
            1 << 29, // tie
            (1 << 40) + 5,
            u64::MAX >> 1,
        ];
        // Push in scrambled order.
        for (i, &idx) in [7usize, 2, 9, 0, 4, 8, 1, 5, 3, 6].iter().enumerate() {
            e.schedule(SimTime::from_nanos(times[idx]), Ev::Tag(i as u32));
        }
        e.run();
        let popped: Vec<u64> = e.model().order.iter().map(|&(t, _)| t).collect();
        let mut want = times.to_vec();
        want.sort_unstable();
        assert_eq!(popped, want);
        // The tie at 1<<29 (times[7] then times[6] in the scramble): FIFO
        // keeps the push order, Tag(0) before Tag(9).
        let tie_ids: Vec<u32> = e
            .model()
            .order
            .iter()
            .filter(|&&(t, _)| t == 1 << 29)
            .map(|&(_, id)| id)
            .collect();
        assert_eq!(tie_ids, vec![0, 9]);
    }

    #[test]
    fn wheel_and_heap_agree_on_a_dense_chain() {
        fn run_on<Q: EventQueue<Ev>>() -> Vec<(u64, u32)> {
            let mut e = Engine::<Recorder, Q>::with_queue(Recorder::default());
            // A deterministic mix: chains, ties and far-future tags.
            for i in 0..50u32 {
                let t = (i as u64 * 7919) % 200_000;
                e.schedule(SimTime::from_nanos(t), Ev::Tag(i));
                e.schedule(SimTime::from_nanos(t), Ev::Tag(1000 + i));
            }
            e.schedule(SimTime::ZERO, Ev::Chain(30));
            e.schedule(SimTime::from_nanos(1 << 34), Ev::Tag(9999));
            e.run();
            e.into_model().order
        }
        assert_eq!(run_on::<WheelQueue<Ev>>(), run_on::<HeapQueue<Ev>>());
    }
}
