//! A generic discrete-event simulation engine.
//!
//! The engine owns a model `M` and a time-ordered event queue of `M::Event`
//! values. Events scheduled for the same instant fire in FIFO order (stable
//! tie-breaking by sequence number), which keeps simulations deterministic.
//!
//! # Example
//!
//! ```
//! use zygos_sim::engine::{Engine, Model, Scheduler};
//! use zygos_sim::time::{SimDuration, SimTime};
//!
//! struct Counter {
//!     fired: u32,
//! }
//!
//! enum Ev {
//!     Tick,
//! }
//!
//! impl Model for Counter {
//!     type Event = Ev;
//!     fn handle(&mut self, _now: SimTime, _ev: Ev, sched: &mut Scheduler<Ev>) {
//!         self.fired += 1;
//!         if self.fired < 10 {
//!             sched.after(SimDuration::from_micros(1), Ev::Tick);
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Counter { fired: 0 });
//! engine.schedule(SimTime::ZERO, Ev::Tick);
//! engine.run();
//! assert_eq!(engine.model().fired, 10);
//! assert_eq!(engine.now(), SimTime::from_micros(9));
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A simulation model: application state plus an event handler.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Handles one event at simulated time `now`, possibly scheduling more
    /// events through `sched`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Interface handed to event handlers for scheduling follow-up events.
pub struct Scheduler<E> {
    now: SimTime,
    pending: Vec<(SimTime, E)>,
    stopped: bool,
}

impl<E> Scheduler<E> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Times in the past are clamped to `now` (the event fires immediately
    /// after the current one).
    pub fn at(&mut self, at: SimTime, event: E) {
        let t = at.max(self.now);
        self.pending.push((t, event));
    }

    /// Schedules `event` after a relative delay.
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.pending.push((self.now + delay, event));
    }

    /// Requests the run loop to stop after the current event completes.
    pub fn stop(&mut self) {
        self.stopped = true;
    }
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The discrete-event engine: an event heap plus the model under simulation.
pub struct Engine<M: Model> {
    heap: BinaryHeap<Entry<M::Event>>,
    seq: u64,
    now: SimTime,
    model: M,
    processed: u64,
}

impl<M: Model> Engine<M> {
    /// Creates an engine at time zero with an empty event queue.
    pub fn new(model: M) -> Self {
        Engine {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            model,
            processed: 0,
        }
    }

    /// Schedules an event at an absolute time (clamped to the current time).
    pub fn schedule(&mut self, at: SimTime, event: M::Event) {
        let at = at.max(self.now);
        self.heap.push(Entry {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// The current simulated time (time of the last handled event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events handled so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Shared access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model (for setup between runs).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the engine, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Runs until the event queue is empty or a handler calls
    /// [`Scheduler::stop`]. Returns the number of events processed.
    pub fn run(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }

    /// Runs until the queue empties, a handler stops the run, or the next
    /// event would fire strictly after `deadline`.
    ///
    /// Events scheduled exactly at `deadline` are processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let start = self.processed;
        while let Some(top) = self.heap.peek() {
            if top.at > deadline {
                break;
            }
            let entry = self.heap.pop().expect("peeked entry must pop");
            debug_assert!(entry.at >= self.now, "time went backwards");
            self.now = entry.at;
            let mut sched = Scheduler {
                now: self.now,
                pending: Vec::new(),
                stopped: false,
            };
            self.model.handle(self.now, entry.event, &mut sched);
            self.processed += 1;
            let stopped = sched.stopped;
            for (at, ev) in sched.pending {
                self.heap.push(Entry {
                    at,
                    seq: self.seq,
                    event: ev,
                });
                self.seq += 1;
            }
            if stopped {
                break;
            }
        }
        self.processed - start
    }

    /// True if no events remain.
    pub fn is_idle(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        order: Vec<(u64, u32)>,
    }

    enum Ev {
        Tag(u32),
        Chain(u32),
        StopNow,
    }

    impl Model for Recorder {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
            match ev {
                Ev::Tag(id) => self.order.push((now.as_nanos(), id)),
                Ev::Chain(n) => {
                    self.order.push((now.as_nanos(), n));
                    if n > 0 {
                        sched.after(SimDuration::from_nanos(10), Ev::Chain(n - 1));
                    }
                }
                Ev::StopNow => sched.stop(),
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut e = Engine::new(Recorder::default());
        e.schedule(SimTime::from_nanos(30), Ev::Tag(3));
        e.schedule(SimTime::from_nanos(10), Ev::Tag(1));
        e.schedule(SimTime::from_nanos(20), Ev::Tag(2));
        e.run();
        assert_eq!(e.model().order, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn same_time_events_are_fifo() {
        let mut e = Engine::new(Recorder::default());
        for id in 0..100 {
            e.schedule(SimTime::from_nanos(5), Ev::Tag(id));
        }
        e.run();
        let ids: Vec<u32> = e.model().order.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_follow_ups() {
        let mut e = Engine::new(Recorder::default());
        e.schedule(SimTime::ZERO, Ev::Chain(4));
        let n = e.run();
        assert_eq!(n, 5);
        assert_eq!(e.now(), SimTime::from_nanos(40));
    }

    #[test]
    fn run_until_respects_deadline_inclusive() {
        let mut e = Engine::new(Recorder::default());
        e.schedule(SimTime::from_nanos(10), Ev::Tag(1));
        e.schedule(SimTime::from_nanos(20), Ev::Tag(2));
        e.schedule(SimTime::from_nanos(21), Ev::Tag(3));
        e.run_until(SimTime::from_nanos(20));
        assert_eq!(e.model().order.len(), 2);
        assert!(!e.is_idle());
        e.run();
        assert_eq!(e.model().order.len(), 3);
    }

    #[test]
    fn stop_halts_the_loop() {
        let mut e = Engine::new(Recorder::default());
        e.schedule(SimTime::from_nanos(1), Ev::StopNow);
        e.schedule(SimTime::from_nanos(2), Ev::Tag(9));
        e.run();
        assert!(e.model().order.is_empty());
        assert!(!e.is_idle());
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut e = Engine::new(Recorder::default());
        e.schedule(SimTime::from_nanos(50), Ev::Tag(1));
        e.run();
        // Scheduling "at 10" after time reached 50 clamps to 50.
        e.schedule(SimTime::from_nanos(10), Ev::Tag(2));
        e.run();
        assert_eq!(e.model().order, vec![(50, 1), (50, 2)]);
    }
}
