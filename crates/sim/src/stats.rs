//! Latency recording and percentile statistics.
//!
//! [`LatencyHistogram`] is a log-linear (HDR-style) histogram over
//! nanosecond durations: values are bucketed with ~0.1% relative precision
//! (1024 sub-buckets per power of two), covering the full `u64` range in
//! constant memory. All figure harnesses report percentiles through it, and
//! Figure 10a's CCDF is exported from it.

use crate::time::SimDuration;

const SUB_BUCKET_HALF_COUNT_BITS: u32 = 10;
const SUB_BUCKET_HALF_COUNT: usize = 1 << SUB_BUCKET_HALF_COUNT_BITS; // 1024
const SUB_BUCKET_COUNT: usize = SUB_BUCKET_HALF_COUNT * 2; // 2048
const SUB_BUCKET_MASK: u64 = (SUB_BUCKET_COUNT - 1) as u64;
// Number of logarithmic buckets needed to cover u64 with 2048-wide bucket 0.
const BUCKET_COUNT: usize = 64 - (SUB_BUCKET_HALF_COUNT_BITS as usize + 1) + 1; // 54
const COUNTS_LEN: usize = (BUCKET_COUNT + 1) * SUB_BUCKET_HALF_COUNT;

/// Index of the log-linear bucket `value` falls in (shared by
/// [`LatencyHistogram`] and [`WindowHistogram`]).
#[inline]
fn counts_index_of(value: u64) -> usize {
    let pow2 = 63 - (value | SUB_BUCKET_MASK).leading_zeros() as usize;
    let bucket = pow2 - SUB_BUCKET_HALF_COUNT_BITS as usize;
    let sub = (value >> bucket) as usize;
    debug_assert!((SUB_BUCKET_HALF_COUNT..SUB_BUCKET_COUNT).contains(&sub) || bucket == 0);
    bucket * SUB_BUCKET_HALF_COUNT + sub
}

/// Lowest value mapping to counts index `idx` (inverse of
/// [`counts_index_of`] up to bucket precision).
#[inline]
fn lowest_of_index(idx: usize) -> u64 {
    let bucket = idx / SUB_BUCKET_HALF_COUNT;
    let sub = idx % SUB_BUCKET_HALF_COUNT;
    let (b, s) = if bucket == 0 {
        (0, sub)
    } else {
        (bucket - 1, sub + SUB_BUCKET_HALF_COUNT)
    };
    (s as u64) << b
}

/// A log-linear histogram of durations with ~0.1% value precision.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; COUNTS_LEN],
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        // Index of the highest set bit at or above the sub-bucket range.
        let pow2 = 63 - (value | SUB_BUCKET_MASK).leading_zeros() as usize;
        pow2 - SUB_BUCKET_HALF_COUNT_BITS as usize
    }

    fn counts_index(value: u64) -> usize {
        // Bucket 0 owns indices [0, 2048) (its sub spans the full range);
        // bucket b ≥ 1 owns [(b+1)·1024, (b+2)·1024) with sub ∈ [1024, 2048).
        // Both collapse to `b·1024 + sub` without underflow.
        counts_index_of(value)
    }

    /// Highest value that maps to the same bucket as `value`.
    pub(crate) fn highest_equivalent(value: u64) -> u64 {
        let bucket = Self::bucket_index(value);
        let sub = value >> bucket;
        ((sub + 1) << bucket) - 1
    }

    /// Records one duration expressed in nanoseconds.
    pub fn record_nanos(&mut self, ns: u64) {
        // Map zero to the first bucket; counts_index handles it naturally.
        let idx = Self::counts_index(ns);
        self.counts[idx] += 1;
        self.total += 1;
        self.min = self.min.min(ns);
        self.max = self.max.max(ns);
        self.sum += ns as u128;
    }

    /// Records one [`SimDuration`].
    pub fn record(&mut self, d: SimDuration) {
        self.record_nanos(d.as_nanos());
    }

    /// Records a duration expressed in (fractional) microseconds.
    pub fn record_micros_f64(&mut self, us: f64) {
        self.record(SimDuration::from_micros_f64(us));
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact minimum recorded value (nanoseconds), or 0 when empty.
    pub fn min_nanos(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value (nanoseconds), or 0 when empty.
    pub fn max_nanos(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean of recorded values (nanoseconds).
    pub fn mean_nanos(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Mean in microseconds.
    pub fn mean_us(&self) -> f64 {
        self.mean_nanos() / 1_000.0
    }

    /// Value at quantile `q ∈ [0, 1]`, in nanoseconds.
    ///
    /// Returns the highest value equivalent to the bucket containing the
    /// `ceil(q · count)`-th recorded value (so the reported percentile is
    /// never an underestimate beyond bucket precision). Returns 0 when empty.
    ///
    /// Small-sample semantics (audited for off-by-one): the rank is
    /// `ceil(q·n)` clamped to `[1, n]`, so for `n < 100` the p99 rank is
    /// `n` and the **maximum** is reported — the conservative choice for
    /// an SLO check (a tail estimate from 50 samples that ignored the
    /// worst sample would be an underestimate). At exactly `n = 100`,
    /// `ceil(99.0) = 99` selects the 99th order statistic, not the 100th.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                let lowest = lowest_of_index(idx);
                return Self::highest_equivalent(lowest).min(self.max);
            }
        }
        self.max
    }

    /// Value at quantile `q`, in microseconds.
    pub fn quantile_us(&self, q: f64) -> f64 {
        self.value_at_quantile(q) as f64 / 1_000.0
    }

    /// The 99th percentile in microseconds — the paper's headline metric.
    pub fn p99_us(&self) -> f64 {
        self.quantile_us(0.99)
    }

    /// Median in microseconds.
    pub fn p50_us(&self) -> f64 {
        self.quantile_us(0.50)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.total > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Iterates the complementary CDF as `(value_us, fraction_greater_equal)`
    /// pairs over non-empty buckets, in increasing value order.
    ///
    /// Used to export Figure 10a's per-transaction CCDF curves.
    pub fn ccdf_us(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        if self.total == 0 {
            return out;
        }
        let mut remaining = self.total;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let lowest = lowest_of_index(idx);
            out.push((
                lowest as f64 / 1_000.0,
                remaining as f64 / self.total as f64,
            ));
            remaining -= c;
        }
        out
    }

    /// A compact one-line summary (count, mean, p50/p99/p999, max) in µs.
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={:.2}us p50={:.2}us p99={:.2}us p99.9={:.2}us max={:.2}us",
            self.total,
            self.mean_us(),
            self.p50_us(),
            self.p99_us(),
            self.quantile_us(0.999),
            self.max_nanos() as f64 / 1_000.0,
        )
    }
}

/// A clearable latency *window* over the same log-linear buckets as
/// [`LatencyHistogram`]: constant memory, O(distinct values) clear, and
/// bounded-error (~0.1%) quantiles.
///
/// Built for control-tick windows — the per-tick signal a controller
/// harvests and resets. The previous shape (a `Vec<u64>` flattened and
/// `sort_unstable`d on every tick) costs O(n log n) per tick and an
/// allocation per harvest; this records in O(1), clears in O(touched
/// buckets), and quantiles by sorting only the *touched bucket indices*
/// (bounded by the bucket count, in practice a few dozen).
///
/// Quantile semantics match [`LatencyHistogram::value_at_quantile`]: the
/// rank is `ceil(q·n)` clamped to `[1, n]` and the reported value is the
/// top of the selected bucket (never an underestimate beyond bucket
/// precision), clamped to the observed maximum.
#[derive(Clone)]
pub struct WindowHistogram {
    counts: Vec<u32>,
    /// Indices with nonzero counts, unsorted until a quantile is taken.
    touched: Vec<u32>,
    total: u64,
    max: u64,
}

impl Default for WindowHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl WindowHistogram {
    /// Creates an empty window.
    pub fn new() -> Self {
        WindowHistogram {
            counts: vec![0; COUNTS_LEN],
            touched: Vec::new(),
            total: 0,
            max: 0,
        }
    }

    /// Records one duration expressed in nanoseconds.
    #[inline]
    pub fn record_nanos(&mut self, ns: u64) {
        let idx = counts_index_of(ns);
        if self.counts[idx] == 0 {
            self.touched.push(idx as u32);
        }
        self.counts[idx] += 1;
        self.total += 1;
        self.max = self.max.max(ns);
    }

    /// Number of recorded values since the last [`WindowHistogram::clear`].
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if the window is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Resets the window, touching only the buckets that were used.
    pub fn clear(&mut self) {
        for &i in &self.touched {
            self.counts[i as usize] = 0;
        }
        self.touched.clear();
        self.total = 0;
        self.max = 0;
    }

    /// Value at quantile `q ∈ [0, 1]` in nanoseconds (0 when empty).
    /// Sorts the touched-bucket list in place, hence `&mut`.
    pub fn value_at_quantile(&mut self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return 0;
        }
        self.touched.sort_unstable();
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for &i in &self.touched {
            seen += self.counts[i as usize] as u64;
            if seen >= rank {
                let lowest = lowest_of_index(i as usize);
                return LatencyHistogram::highest_equivalent(lowest).min(self.max);
            }
        }
        self.max
    }

    /// Value at quantile `q`, in microseconds.
    pub fn quantile_us(&mut self, q: f64) -> f64 {
        self.value_at_quantile(q) as f64 / 1_000.0
    }
}

/// Weighted latency samples for rare-event estimation.
///
/// Importance splitting (RESTART) records each completion with the weight
/// of the trajectory that produced it (`1/∏ splits` across the levels the
/// trajectory crossed); the deep-tail quantile is then the *weighted*
/// inverse CDF. Unlike the histograms above this keeps exact values — the
/// sample counts in splitting runs are small enough (one entry per
/// completion across all trajectories) that bucketing would only add a
/// second error term to an already-statistical estimate.
#[derive(Clone, Debug, Default)]
pub struct WeightedSamples {
    /// `(value_ns, weight)` pairs, unsorted until a quantile is taken.
    samples: Vec<(u64, f64)>,
}

impl WeightedSamples {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value with the given (positive) weight.
    pub fn push(&mut self, value_ns: u64, weight: f64) {
        debug_assert!(weight > 0.0, "weights must be positive");
        self.samples.push((value_ns, weight));
    }

    /// Number of recorded samples (trajectory completions, not effective
    /// sample size).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total recorded weight — the estimator's denominator. For an
    /// unbiased splitting run this converges to the number of *base*
    /// completions the run emulates.
    pub fn total_weight(&self) -> f64 {
        self.samples.iter().map(|&(_, w)| w).sum()
    }

    /// Weighted quantile in nanoseconds: the smallest recorded value `v`
    /// with `weight{x ≤ v} ≥ q · total_weight` (0 when empty). Sorts the
    /// samples in place, hence `&mut`.
    pub fn value_at_quantile(&mut self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.samples.is_empty() {
            return 0;
        }
        self.samples.sort_unstable_by_key(|s| s.0);
        let target = q * self.total_weight();
        let mut acc = 0.0;
        for &(v, w) in &self.samples {
            acc += w;
            if acc >= target {
                return v;
            }
        }
        self.samples.last().expect("non-empty").0
    }

    /// Weighted quantile in microseconds.
    pub fn quantile_us(&mut self, q: f64) -> f64 {
        self.value_at_quantile(q) as f64 / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.value_at_quantile(0.99), 0);
        assert_eq!(h.min_nanos(), 0);
        assert_eq!(h.mean_nanos(), 0.0);
        assert!(h.ccdf_us().is_empty());
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..2048u64 {
            h.record_nanos(v);
        }
        // Values below 2048 land in dedicated unit-width buckets.
        assert_eq!(h.value_at_quantile(0.0), 0);
        assert_eq!(h.count(), 2048);
        assert_eq!(h.min_nanos(), 0);
        assert_eq!(h.max_nanos(), 2047);
        let mid = h.value_at_quantile(0.5);
        assert!((1023..=1024).contains(&mid), "mid = {mid}");
    }

    #[test]
    fn large_values_within_relative_error() {
        let mut h = LatencyHistogram::new();
        let v = 1_234_567_890u64;
        h.record_nanos(v);
        let q = h.value_at_quantile(1.0);
        assert!(q >= v);
        assert!((q - v) as f64 / (v as f64) < 0.002, "q = {q}");
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100_000u64 {
            h.record_nanos(v);
        }
        let p99 = h.value_at_quantile(0.99);
        assert!((98_900..=99_200).contains(&p99), "p99 = {p99}");
        let p50 = h.value_at_quantile(0.5);
        assert!((49_900..=50_100).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record_nanos(v);
        }
        assert_eq!(h.mean_nanos(), 25.0);
    }

    #[test]
    fn merge_equals_union() {
        let mut rng = Xoshiro256::new(3);
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 0..10_000 {
            let v = rng.next_bounded(10_000_000) + 1;
            if i % 2 == 0 {
                a.record_nanos(v);
            } else {
                b.record_nanos(v);
            }
            all.record_nanos(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.max_nanos(), all.max_nanos());
        assert_eq!(a.min_nanos(), all.min_nanos());
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.value_at_quantile(q), all.value_at_quantile(q));
        }
    }

    #[test]
    fn ccdf_is_monotone() {
        let mut rng = Xoshiro256::new(8);
        let mut h = LatencyHistogram::new();
        for _ in 0..5_000 {
            h.record_nanos(rng.next_bounded(1_000_000));
        }
        let ccdf = h.ccdf_us();
        assert!((ccdf[0].1 - 1.0).abs() < 1e-12);
        for w in ccdf.windows(2) {
            assert!(w[0].0 < w[1].0, "values increase");
            assert!(w[0].1 >= w[1].1, "ccdf decreases");
        }
    }

    #[test]
    fn quantile_never_underestimates_true_rank_value() {
        let mut rng = Xoshiro256::new(13);
        let mut values: Vec<u64> = (0..20_000).map(|_| rng.next_bounded(1 << 40)).collect();
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record_nanos(v);
        }
        values.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
            let truth = values[rank];
            let est = h.value_at_quantile(q);
            assert!(est >= truth, "q={q}: est {est} < truth {truth}");
            assert!(
                est as f64 <= truth as f64 * 1.002 + 2.0,
                "q={q}: est {est} way above truth {truth}"
            );
        }
    }

    #[test]
    fn p99_of_fewer_than_100_samples_is_the_max() {
        // Regression for the small-sample rank arithmetic: for n < 100,
        // ceil(0.99·n) = n, so p99 must report the maximum — not the
        // (n−1)-th order statistic an off-by-one would select.
        for n in [1u64, 2, 10, 50, 99] {
            let mut h = LatencyHistogram::new();
            for v in 1..=n {
                h.record_nanos(v);
            }
            assert_eq!(h.value_at_quantile(0.99), n, "p99 of {n} distinct samples");
        }
    }

    #[test]
    fn p99_of_exactly_100_samples_is_the_99th_order_statistic() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100u64 {
            h.record_nanos(v);
        }
        // ceil(0.99·100) = 99 ⇒ the 99th smallest, not the max.
        assert_eq!(h.value_at_quantile(0.99), 99);
        assert_eq!(h.value_at_quantile(1.0), 100);
    }

    #[test]
    fn extreme_quantiles_hit_min_and_max_buckets() {
        let mut h = LatencyHistogram::new();
        for v in [7u64, 13, 1_000] {
            h.record_nanos(v);
        }
        // Rank clamps to [1, n]: q=0 selects the first recorded bucket.
        assert_eq!(h.value_at_quantile(0.0), 7);
        assert_eq!(h.value_at_quantile(1.0), 1_000);
    }

    #[test]
    fn window_histogram_tracks_exact_quantiles_within_bucket_error() {
        let mut rng = Xoshiro256::new(21);
        let mut w = WindowHistogram::new();
        let mut exact = LatencyHistogram::new();
        let mut values = Vec::new();
        for _ in 0..5_000 {
            let v = rng.next_bounded(50_000_000) + 1_000;
            w.record_nanos(v);
            exact.record_nanos(v);
            values.push(v);
        }
        assert_eq!(w.count(), 5_000);
        // The window agrees with the full histogram exactly (same buckets,
        // same rank rule).
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(w.value_at_quantile(q), exact.value_at_quantile(q), "q={q}");
        }
        // And with the true order statistics within bucket precision.
        values.sort_unstable();
        let rank = ((0.99 * values.len() as f64).ceil() as usize).max(1) - 1;
        let truth = values[rank];
        let est = w.value_at_quantile(0.99);
        assert!(est >= truth && est as f64 <= truth as f64 * 1.002 + 2.0);
    }

    #[test]
    fn window_histogram_clear_resets_and_reuses() {
        let mut w = WindowHistogram::new();
        for v in [5u64, 5, 7, 1 << 30] {
            w.record_nanos(v);
        }
        assert_eq!(w.value_at_quantile(1.0), 1 << 30);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.value_at_quantile(0.99), 0, "empty window reports 0");
        // Reuse after clear behaves like a fresh window.
        w.record_nanos(42);
        assert_eq!(w.count(), 1);
        assert_eq!(w.value_at_quantile(0.5), 42);
    }

    #[test]
    fn weighted_samples_match_unweighted_quantiles_at_unit_weight() {
        let mut w = WeightedSamples::new();
        let mut values: Vec<u64> = Vec::new();
        let mut rng = Xoshiro256::new(17);
        for _ in 0..5_000 {
            let v = rng.next_bounded(1_000_000) + 1;
            w.push(v, 1.0);
            values.push(v);
        }
        values.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
            let truth = values[rank];
            let est = w.value_at_quantile(q);
            assert!(
                (est as i64 - truth as i64).unsigned_abs() <= 1,
                "q={q}: est {est} vs truth {truth}"
            );
        }
    }

    #[test]
    fn weighted_samples_respect_weights() {
        // 90% of the weight at 10, 10% at 1000: the p95 must be 1000 and
        // the p50 must be 10, regardless of sample multiplicity.
        let mut w = WeightedSamples::new();
        w.push(10, 0.9);
        for _ in 0..100 {
            w.push(1_000, 0.001);
        }
        assert_eq!(w.value_at_quantile(0.5), 10);
        assert_eq!(w.value_at_quantile(0.95), 1_000);
        assert!((w.total_weight() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn record_micros_f64_scales() {
        let mut h = LatencyHistogram::new();
        h.record_micros_f64(12.5);
        assert_eq!(h.max_nanos(), 12_500);
        assert!((h.p99_us() - 12.5).abs() / 12.5 < 0.002);
    }
}
