//! FCFS queueing models: `M/G/n/FCFS` and `n×M/G/1/FCFS`.
//!
//! Both are expressed as one model on the generic engine: the centralized
//! variant has a single logical queue that any idle server may serve; the
//! partitioned variant assigns each arrival to a uniformly random queue,
//! idealizing RSS hashing of a large connection count (paper §2.3).

use std::collections::VecDeque;

use crate::dist::ServiceDist;
use crate::engine::{Engine, Model, Scheduler};
use crate::rng::Xoshiro256;
use crate::stats::LatencyHistogram;
use crate::time::{SimDuration, SimTime};

use super::{Policy, QueueConfig, SimOutput};

enum Ev {
    /// A new request enters the system (open-loop Poisson source).
    Arrival,
    /// The request running on `server` completes.
    Departure { server: usize },
}

struct Job {
    arrived: SimTime,
    service: SimDuration,
}

struct Fcfs {
    queues: Vec<VecDeque<Job>>,
    /// `None` if the server is idle, else the arrival time of the job in
    /// service (service completion is carried by the event).
    busy: Vec<bool>,
    central: bool,
    rng: Xoshiro256,
    service: ServiceDist,
    inter_mean_us: f64,
    latency: LatencyHistogram,
    completed: u64,
    warmup: u64,
    target: u64,
    done: bool,
}

impl Fcfs {
    /// Picks the queue an arrival joins.
    fn arrival_queue(&mut self) -> usize {
        if self.central {
            0
        } else {
            self.rng.next_bounded(self.queues.len() as u64) as usize
        }
    }

    /// The queue a given server drains.
    fn server_queue(&self, server: usize) -> usize {
        if self.central {
            0
        } else {
            server
        }
    }

    /// Starts `job` on `server`, returning the completion delay.
    fn start(&mut self, server: usize, job: &Job, now: SimTime, sched: &mut Scheduler<Ev>) {
        debug_assert!(!self.busy[server]);
        self.busy[server] = true;
        let response = (now + job.service).duration_since(job.arrived);
        self.record(response);
        let _ = now;
        sched.after(job.service, Ev::Departure { server });
    }

    fn record(&mut self, response: SimDuration) {
        self.completed += 1;
        if self.completed > self.warmup {
            self.latency.record(response);
            if self.completed - self.warmup >= self.target {
                self.done = true;
            }
        }
    }
}

impl Model for Fcfs {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::Arrival => {
                // Open loop: schedule the next arrival regardless of state.
                let gap = SimDuration::from_micros_f64(self.rng.next_exp(self.inter_mean_us));
                sched.after(gap, Ev::Arrival);

                let q = self.arrival_queue();
                let job = Job {
                    arrived: now,
                    service: self.service.sample(&mut self.rng),
                };
                // An idle server attached to this queue starts it at once.
                let idle = if self.central {
                    (0..self.busy.len()).find(|&s| !self.busy[s])
                } else if !self.busy[q] {
                    Some(q)
                } else {
                    None
                };
                match idle {
                    Some(server) => self.start(server, &job, now, sched),
                    None => self.queues[q].push_back(job),
                }
            }
            Ev::Departure { server } => {
                self.busy[server] = false;
                if self.done {
                    sched.stop();
                    return;
                }
                let q = self.server_queue(server);
                if let Some(job) = self.queues[q].pop_front() {
                    self.start(server, &job, now, sched);
                }
            }
        }
    }
}

/// Runs an FCFS model to completion.
pub(super) fn run(cfg: &QueueConfig) -> SimOutput {
    let central = cfg.policy == Policy::CentralFcfs;
    let n = cfg.servers;
    let model = Fcfs {
        queues: (0..if central { 1 } else { n })
            .map(|_| VecDeque::new())
            .collect(),
        busy: vec![false; n],
        central,
        rng: Xoshiro256::new(cfg.seed),
        service: cfg.service.clone(),
        inter_mean_us: 1.0 / cfg.lambda_per_us(),
        latency: LatencyHistogram::new(),
        completed: 0,
        warmup: cfg.warmup,
        target: cfg.requests,
        done: false,
    };
    let mut engine = Engine::new(model);
    engine.schedule(SimTime::ZERO, Ev::Arrival);
    engine.run();
    let now = engine.now();
    let model = engine.into_model();
    SimOutput {
        latency: model.latency,
        sim_time_us: now.as_micros_f64(),
        completed: model.completed.saturating_sub(model.warmup),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(policy: Policy) -> QueueConfig {
        QueueConfig {
            servers: 4,
            load: 0.5,
            service: ServiceDist::deterministic_us(1.0),
            policy,
            requests: 20_000,
            seed: 5,
            warmup: 2_000,
        }
    }

    #[test]
    fn completes_requested_count() {
        let out = run(&base(Policy::CentralFcfs));
        assert!(out.completed >= 20_000);
        assert_eq!(out.latency.count(), out.completed);
    }

    #[test]
    fn deterministic_min_latency_is_service_time() {
        let out = run(&base(Policy::CentralFcfs));
        // Every response takes at least one service time.
        assert!(out.latency.min_nanos() >= 1_000);
    }

    #[test]
    fn throughput_matches_offered_load() {
        let cfg = base(Policy::PartitionedFcfs);
        let out = run(&cfg);
        // Offered rate = 0.5 * 4 servers / 1µs = 2 req/µs. The simulated
        // time span covers warmup completions too, so count them back in.
        let rate = (out.completed + cfg.warmup) as f64 / out.sim_time_us;
        assert!((rate - 2.0).abs() < 0.1, "rate = {rate}");
    }

    #[test]
    fn single_server_fcfs_lindley_check() {
        // For D/D/1-like (deterministic service, Poisson arrivals at low
        // load) latency must stay close to the bare service time.
        let mut cfg = base(Policy::PartitionedFcfs);
        cfg.servers = 1;
        cfg.load = 0.1;
        let out = run(&cfg);
        assert!(out.p99_us() < 2.5, "p99 = {}", out.p99_us());
    }

    #[test]
    fn utilization_scales_with_load() {
        // At load 0.9 with deterministic service the system must stay stable
        // (bounded p99) but clearly above the no-queueing floor.
        let mut cfg = base(Policy::CentralFcfs);
        cfg.load = 0.9;
        cfg.requests = 50_000;
        let out = run(&cfg);
        assert!(out.p99_us() > 1.0);
        assert!(out.p99_us() < 50.0, "p99 = {}", out.p99_us());
    }
}
