//! Idealized queueing models (paper §2.3, Figure 2).
//!
//! Four open-loop models with Poisson arrivals, in Kendall notation:
//!
//! * `M/G/n/FCFS` — **centralized FCFS**: one global queue, any idle server
//!   takes the head. Idealizes floating connections / ZygOS.
//! * `n×M/G/1/FCFS` — **partitioned FCFS**: arrivals are assigned uniformly
//!   at random to one of `n` private queues. Idealizes RSS-partitioned
//!   dataplanes (IX, Linux-partitioned).
//! * `M/G/n/PS` — centralized processor sharing (thread-per-connection on a
//!   rebalancing OS).
//! * `n×M/G/1/PS` — partitioned processor sharing.
//!
//! All models are zero-overhead: no network stack, no scheduling cost. They
//! are the grey upper-bound lines in the paper's Figures 3 and 7 and the
//! four curves of Figure 2.

mod fcfs;
mod ps;
pub mod theory;

use crate::dist::ServiceDist;
use crate::stats::LatencyHistogram;

/// Which of the four idealized models to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// `M/G/n/FCFS` — single queue, first-come first-served.
    CentralFcfs,
    /// `n×M/G/1/FCFS` — random assignment to per-server FIFO queues.
    PartitionedFcfs,
    /// `M/G/n/PS` — egalitarian processor sharing over `n` processors.
    CentralPs,
    /// `n×M/G/1/PS` — random assignment to per-server PS queues.
    PartitionedPs,
}

impl Policy {
    /// All four policies, in the order plotted by Figure 2.
    pub const ALL: [Policy; 4] = [
        Policy::PartitionedPs,
        Policy::PartitionedFcfs,
        Policy::CentralFcfs,
        Policy::CentralPs,
    ];

    /// Kendall-style label, e.g. `M/G/16/FCFS`.
    pub fn label(&self, n: usize) -> String {
        match self {
            Policy::CentralFcfs => format!("M/G/{n}/FCFS"),
            Policy::PartitionedFcfs => format!("{n}xM/G/1/FCFS"),
            Policy::CentralPs => format!("M/G/{n}/PS"),
            Policy::PartitionedPs => format!("{n}xM/G/1/PS"),
        }
    }
}

/// Configuration for one queueing-model run.
#[derive(Clone, Debug)]
pub struct QueueConfig {
    /// Number of servers `n` (the paper uses 16).
    pub servers: usize,
    /// Offered load `ρ = λ·S̄ / n`, in `(0, 1)`.
    pub load: f64,
    /// Service-time distribution.
    pub service: ServiceDist,
    /// Scheduling policy.
    pub policy: Policy,
    /// Number of completed requests to measure (after warmup).
    pub requests: u64,
    /// RNG seed.
    pub seed: u64,
    /// Completions to discard before measuring (reach steady state).
    pub warmup: u64,
}

impl QueueConfig {
    /// Arrival rate λ in requests per microsecond.
    pub fn lambda_per_us(&self) -> f64 {
        self.load * self.servers as f64 / self.service.mean_us()
    }
}

/// Measured output of a queueing-model run.
pub struct SimOutput {
    /// Response-time (sojourn) histogram over measured completions.
    pub latency: LatencyHistogram,
    /// Total simulated time in microseconds.
    pub sim_time_us: f64,
    /// Completions measured (excludes warmup).
    pub completed: u64,
}

impl SimOutput {
    /// 99th-percentile response time in microseconds.
    pub fn p99_us(&self) -> f64 {
        self.latency.p99_us()
    }

    /// Mean response time in microseconds.
    pub fn mean_us(&self) -> f64 {
        self.latency.mean_us()
    }
}

/// Runs one queueing-model simulation.
///
/// # Panics
///
/// Panics if `load` is not in `(0, 1)` or `servers == 0`.
pub fn simulate(cfg: &QueueConfig) -> SimOutput {
    assert!(cfg.servers > 0, "need at least one server");
    assert!(
        cfg.load > 0.0 && cfg.load < 1.0,
        "load must be in (0,1), got {}",
        cfg.load
    );
    match cfg.policy {
        Policy::CentralFcfs | Policy::PartitionedFcfs => fcfs::run(cfg),
        Policy::CentralPs | Policy::PartitionedPs => ps::run(cfg),
    }
}

/// Finds the maximum load whose p99 response time meets `slo_us`.
///
/// `p99_of_load` maps a load in `(0, 1)` to a measured p99; the function is
/// assumed monotone non-decreasing in load (true of every system studied).
/// Returns a load on a grid of `1 / resolution` steps.
///
/// This implements the paper's "maximum load @ SLO" metric (§3.1) used by
/// Figures 3 and 7 and Table 1.
pub fn max_load_at_slo(
    mut p99_of_load: impl FnMut(f64) -> f64,
    slo_us: f64,
    resolution: usize,
) -> f64 {
    // Binary search on the load grid [1, resolution-1] / resolution.
    let mut hi = resolution; // Lowest grid point known to violate it.
                             // Check the smallest load first: if even that violates, return 0.
    if p99_of_load(1.0 / resolution as f64) > slo_us {
        return 0.0;
    }
    let mut lo = 1usize; // Highest grid point known to meet the SLO.
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        let load = mid as f64 / resolution as f64;
        if p99_of_load(load) <= slo_us {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo as f64 / resolution as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(policy: Policy, load: f64, service: ServiceDist) -> QueueConfig {
        QueueConfig {
            servers: 16,
            load,
            service,
            policy,
            requests: 60_000,
            seed: 99,
            warmup: 6_000,
        }
    }

    #[test]
    fn low_load_latency_approaches_service_quantile() {
        // At 5% load queueing is negligible: p99 ≈ service p99.
        for (service, expect) in [
            (ServiceDist::deterministic_us(1.0), 1.0),
            (ServiceDist::exponential_us(1.0), 100f64.ln()),
            (ServiceDist::bimodal1_us(1.0), 5.5),
            (ServiceDist::bimodal2_us(1.0), 0.5),
        ] {
            let out = simulate(&cfg(Policy::CentralFcfs, 0.05, service.clone()));
            let p99 = out.p99_us();
            assert!(
                (p99 - expect).abs() / expect < 0.25,
                "{}: p99 {p99} vs {expect}",
                service.label()
            );
        }
    }

    #[test]
    fn central_fcfs_beats_partitioned_fcfs() {
        // Paper Observation 1: single-queue beats multi-queue.
        let service = ServiceDist::exponential_us(1.0);
        let central = simulate(&cfg(Policy::CentralFcfs, 0.7, service.clone())).p99_us();
        let part = simulate(&cfg(Policy::PartitionedFcfs, 0.7, service)).p99_us();
        assert!(
            central < part * 0.8,
            "central {central} should beat partitioned {part}"
        );
    }

    #[test]
    fn fcfs_beats_ps_for_low_dispersion() {
        // Paper Observation 2 (first half): FCFS wins for exponential.
        let service = ServiceDist::exponential_us(1.0);
        let fcfs = simulate(&cfg(Policy::CentralFcfs, 0.8, service.clone())).p99_us();
        let ps = simulate(&cfg(Policy::CentralPs, 0.8, service)).p99_us();
        assert!(fcfs < ps, "fcfs {fcfs} should beat ps {ps}");
    }

    #[test]
    fn ps_beats_fcfs_for_bimodal2() {
        // Paper Observation 2 (second half): PS wins under high dispersion.
        let service = ServiceDist::bimodal2_us(1.0);
        let mut c = cfg(Policy::CentralFcfs, 0.6, service.clone());
        c.requests = 200_000;
        let fcfs = simulate(&c).p99_us();
        c.policy = Policy::CentralPs;
        let ps = simulate(&c).p99_us();
        assert!(ps < fcfs, "ps {ps} should beat fcfs {fcfs} for bimodal-2");
    }

    #[test]
    fn mm1_partitioned_matches_theory() {
        // Each partition of 16×M/G/1 with exponential service is an M/M/1
        // queue; sojourn time is Exp(µ−λ), so p99 = ln(100)/(1−ρ)·S̄.
        let mut c = cfg(
            Policy::PartitionedFcfs,
            0.5,
            ServiceDist::exponential_us(1.0),
        );
        c.requests = 400_000;
        let got = simulate(&c).p99_us();
        let expect = 100f64.ln() / 0.5;
        assert!(
            (got - expect).abs() / expect < 0.08,
            "p99 {got} vs theory {expect}"
        );
    }

    #[test]
    fn max_load_search_brackets_slo() {
        // Synthetic monotone p99 curve: p99(ρ) = 1/(1−ρ).
        let f = |rho: f64| 1.0 / (1.0 - rho);
        let load = max_load_at_slo(f, 10.0, 200);
        // True answer: ρ = 0.9.
        assert!((load - 0.9).abs() <= 0.01, "load = {load}");
    }

    #[test]
    fn max_load_zero_when_unachievable() {
        // SLO below the no-load latency is never met.
        let load = max_load_at_slo(|_| 100.0, 10.0, 100);
        assert_eq!(load, 0.0);
    }

    #[test]
    fn labels() {
        assert_eq!(Policy::CentralFcfs.label(16), "M/G/16/FCFS");
        assert_eq!(Policy::PartitionedFcfs.label(16), "16xM/G/1/FCFS");
        assert_eq!(Policy::CentralPs.label(16), "M/G/16/PS");
        assert_eq!(Policy::PartitionedPs.label(16), "16xM/G/1/PS");
    }
}
