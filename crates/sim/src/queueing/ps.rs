//! Processor-sharing queueing models: `M/G/n/PS` and `n×M/G/1/PS`.
//!
//! Egalitarian processor sharing: `k` resident jobs share the processors
//! equally, each progressing at rate `min(1, n/k)` (in units of work per
//! unit time). These models idealize thread-per-connection designs on
//! time-sharing operating systems (paper §2.3).
//!
//! Because service rates change at every arrival/departure, completions are
//! scheduled speculatively and invalidated by an epoch counter whenever the
//! job set of a queue changes.

use crate::dist::ServiceDist;
use crate::engine::{Engine, Model, Scheduler};
use crate::rng::Xoshiro256;
use crate::stats::LatencyHistogram;
use crate::time::{SimDuration, SimTime};

use super::{Policy, QueueConfig, SimOutput};

enum Ev {
    Arrival,
    /// Speculative completion for `queue`; stale if `epoch` mismatches.
    Completion {
        queue: usize,
        epoch: u64,
    },
}

struct PsJob {
    arrived: SimTime,
    /// Remaining work in microseconds (at rate 1.0).
    remaining_us: f64,
}

struct PsQueue {
    jobs: Vec<PsJob>,
    epoch: u64,
    last_update: SimTime,
    /// Processors dedicated to this queue (n for central, 1 per partition).
    processors: f64,
}

impl PsQueue {
    /// Current per-job service rate.
    fn rate(&self) -> f64 {
        if self.jobs.is_empty() {
            0.0
        } else {
            (self.processors / self.jobs.len() as f64).min(1.0)
        }
    }

    /// Advances all resident jobs to `now` at the current shared rate.
    fn advance(&mut self, now: SimTime) {
        let elapsed_us = now.duration_since(self.last_update).as_micros_f64();
        self.last_update = now;
        if elapsed_us <= 0.0 || self.jobs.is_empty() {
            return;
        }
        let work = elapsed_us * self.rate();
        for j in &mut self.jobs {
            j.remaining_us = (j.remaining_us - work).max(0.0);
        }
    }

    /// Schedules the next speculative completion, bumping the epoch.
    fn reschedule(&mut self, queue_idx: usize, sched: &mut Scheduler<Ev>) {
        self.epoch += 1;
        if self.jobs.is_empty() {
            return;
        }
        let min_rem = self
            .jobs
            .iter()
            .map(|j| j.remaining_us)
            .fold(f64::INFINITY, f64::min);
        let dt_us = min_rem / self.rate();
        sched.after(
            SimDuration::from_micros_f64(dt_us),
            Ev::Completion {
                queue: queue_idx,
                epoch: self.epoch,
            },
        );
    }
}

struct Ps {
    queues: Vec<PsQueue>,
    central: bool,
    rng: Xoshiro256,
    service: ServiceDist,
    inter_mean_us: f64,
    latency: LatencyHistogram,
    completed: u64,
    warmup: u64,
    target: u64,
    done: bool,
}

impl Model for Ps {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::Arrival => {
                let gap = SimDuration::from_micros_f64(self.rng.next_exp(self.inter_mean_us));
                sched.after(gap, Ev::Arrival);
                if self.done {
                    sched.stop();
                    return;
                }
                let q = if self.central {
                    0
                } else {
                    self.rng.next_bounded(self.queues.len() as u64) as usize
                };
                let service_us = self.service.sample_us(&mut self.rng).max(1e-6);
                let queue = &mut self.queues[q];
                queue.advance(now);
                queue.jobs.push(PsJob {
                    arrived: now,
                    remaining_us: service_us,
                });
                queue.reschedule(q, sched);
            }
            Ev::Completion { queue, epoch } => {
                if self.queues[queue].epoch != epoch {
                    return; // Stale speculative completion.
                }
                let qref = &mut self.queues[queue];
                qref.advance(now);
                // The minimum-remaining job completes; floating-point noise
                // means it may be slightly above zero.
                let (idx, _) = qref
                    .jobs
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        a.1.remaining_us
                            .partial_cmp(&b.1.remaining_us)
                            .expect("remaining work is never NaN")
                    })
                    .expect("completion fired on empty queue");
                let job = qref.jobs.swap_remove(idx);
                qref.reschedule(queue, sched);
                let response = now.duration_since(job.arrived);
                self.completed += 1;
                if self.completed > self.warmup {
                    self.latency.record(response);
                    if self.completed - self.warmup >= self.target {
                        self.done = true;
                        sched.stop();
                    }
                }
            }
        }
    }
}

/// Runs a PS model to completion.
pub(super) fn run(cfg: &QueueConfig) -> SimOutput {
    let central = cfg.policy == Policy::CentralPs;
    let n = cfg.servers;
    let queue_count = if central { 1 } else { n };
    let processors = if central { n as f64 } else { 1.0 };
    let model = Ps {
        queues: (0..queue_count)
            .map(|_| PsQueue {
                jobs: Vec::new(),
                epoch: 0,
                last_update: SimTime::ZERO,
                processors,
            })
            .collect(),
        central,
        rng: Xoshiro256::new(cfg.seed),
        service: cfg.service.clone(),
        inter_mean_us: 1.0 / cfg.lambda_per_us(),
        latency: LatencyHistogram::new(),
        completed: 0,
        warmup: cfg.warmup,
        target: cfg.requests,
        done: false,
    };
    let mut engine = Engine::new(model);
    engine.schedule(SimTime::ZERO, Ev::Arrival);
    engine.run();
    let now = engine.now();
    let model = engine.into_model();
    SimOutput {
        latency: model.latency,
        sim_time_us: now.as_micros_f64(),
        completed: model.completed.saturating_sub(model.warmup),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(policy: Policy, load: f64) -> QueueConfig {
        QueueConfig {
            servers: 4,
            load,
            service: ServiceDist::exponential_us(1.0),
            policy,
            requests: 30_000,
            seed: 17,
            warmup: 3_000,
        }
    }

    #[test]
    fn low_load_ps_latency_is_service_time() {
        // A lone job runs at full rate: response == service.
        let out = run(&base(Policy::CentralPs, 0.02));
        let expect = 100f64.ln();
        let got = out.p99_us();
        assert!((got - expect).abs() / expect < 0.3, "p99 = {got}");
    }

    #[test]
    fn mm1_ps_mean_matches_theory() {
        // M/M/1/PS mean sojourn = S̄ / (1−ρ), same as FCFS.
        let mut cfg = base(Policy::PartitionedPs, 0.5);
        cfg.servers = 1;
        cfg.requests = 200_000;
        let out = run(&cfg);
        let mean = out.mean_us();
        assert!((mean - 2.0).abs() < 0.15, "mean = {mean}");
    }

    #[test]
    fn ps_is_stable_below_saturation() {
        let out = run(&base(Policy::CentralPs, 0.85));
        assert!(out.p99_us() < 200.0, "p99 = {}", out.p99_us());
    }

    #[test]
    fn short_jobs_unaffected_by_long_jobs() {
        // Under bimodal-2 the 99th percentile of PS stays near the short
        // task size — long jobs do not block short ones.
        let mut cfg = base(Policy::CentralPs, 0.5);
        cfg.servers = 16;
        cfg.service = ServiceDist::bimodal2_us(1.0);
        cfg.requests = 100_000;
        let out = run(&cfg);
        assert!(out.p99_us() < 20.0, "p99 = {}", out.p99_us());
    }

    #[test]
    fn completion_count_is_exact() {
        let out = run(&base(Policy::CentralPs, 0.4));
        assert_eq!(out.latency.count(), 30_000);
    }
}
