//! Closed-form queueing-theory references.
//!
//! These formulas anchor the simulators: where theory has an exact answer,
//! tests require the simulation to match it. They also provide the paper's
//! cited operating points (e.g. "for the exponential distribution a load of
//! 53.7% for the partitioned-FCFS model" at SLO = 10·S̄, §3.1).

/// Mean sojourn time of an M/M/1 queue (FCFS or PS), in units of `S̄`.
///
/// # Panics
///
/// Panics unless `0 ≤ ρ < 1`.
pub fn mm1_mean_sojourn(rho: f64) -> f64 {
    assert!((0.0..1.0).contains(&rho), "rho out of range");
    1.0 / (1.0 - rho)
}

/// Quantile `q` of the M/M/1-FCFS sojourn time, in units of `S̄`.
///
/// The sojourn time of M/M/1-FCFS is exponential with rate `µ − λ`, so the
/// `q`-quantile is `−ln(1−q) / (1−ρ)`.
pub fn mm1_sojourn_quantile(rho: f64, q: f64) -> f64 {
    assert!((0.0..1.0).contains(&rho), "rho out of range");
    assert!((0.0..1.0).contains(&q), "q out of range");
    -(1.0 - q).ln() / (1.0 - rho)
}

/// Maximum load of an M/M/1-FCFS queue meeting `p99 ≤ slo_multiple · S̄`.
///
/// Solving `ln(100)/(1−ρ) = slo_multiple` for ρ. For the paper's SLO of
/// 10·S̄ this gives ρ ≈ 0.5396 — the "53.7%" the paper quotes for the
/// partitioned-FCFS exponential model.
pub fn mm1_max_load_at_p99_slo(slo_multiple: f64) -> f64 {
    (1.0 - 100f64.ln() / slo_multiple).max(0.0)
}

/// Erlang-C probability that an arrival to an M/M/n queue must wait.
pub fn erlang_c(n: usize, offered_load: f64) -> f64 {
    assert!(n > 0);
    let a = offered_load * n as f64; // Offered traffic in Erlangs.
    assert!(a < n as f64, "system must be stable");
    // Compute iteratively to avoid factorial overflow.
    let mut inv_b = 1.0; // Erlang-B recurrence: B(0, a) = 1.
    for k in 1..=n {
        inv_b = 1.0 + inv_b * k as f64 / a;
    }
    let b = 1.0 / inv_b;
    let rho = offered_load;
    b / (1.0 - rho + rho * b)
}

/// Quantile `q` of the M/M/n-FCFS sojourn time, in units of `S̄`.
///
/// Conditional on waiting, the wait is exponential with rate `n·µ − λ`; the
/// sojourn is wait + service. We evaluate the sojourn CCDF numerically and
/// invert by bisection (the distribution is a mixture, so no simple closed
/// form for quantiles of wait+service).
pub fn mmn_sojourn_quantile(n: usize, rho: f64, q: f64) -> f64 {
    assert!((0.0..1.0).contains(&rho));
    let pw = erlang_c(n, rho);
    let theta = n as f64 * (1.0 - rho); // Rate of the conditional wait, in 1/S̄.
                                        // CCDF of sojourn T = W + S with W = 0 w.p. 1−pw, Exp(theta) w.p. pw,
                                        // S = Exp(1) independent:
                                        //   P[T > t] = (1−pw)·e^{−t} + pw · (theta·e^{−t} − e^{−theta·t}) / (theta − 1)
                                        // (for theta ≠ 1).
    let ccdf = |t: f64| -> f64 {
        let s = (-t).exp();
        if (theta - 1.0).abs() < 1e-9 {
            (1.0 - pw) * s + pw * s * (1.0 + t)
        } else {
            (1.0 - pw) * s + pw * (theta * s - (-theta * t).exp()) / (theta - 1.0)
        }
    };
    let target = 1.0 - q;
    let mut lo = 0.0;
    let mut hi = 1.0;
    while ccdf(hi) > target {
        hi *= 2.0;
        if hi > 1e9 {
            return f64::INFINITY;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if ccdf(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Maximum load of M/M/n-FCFS meeting `p99 ≤ slo_multiple · S̄`, by bisection.
pub fn mmn_max_load_at_p99_slo(n: usize, slo_multiple: f64) -> f64 {
    if mmn_sojourn_quantile(n, 1e-6, 0.99) > slo_multiple {
        return 0.0;
    }
    let mut lo = 1e-6;
    let mut hi = 1.0 - 1e-6;
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if mmn_sojourn_quantile(n, mid, 0.99) <= slo_multiple {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_mean() {
        assert_eq!(mm1_mean_sojourn(0.0), 1.0);
        assert_eq!(mm1_mean_sojourn(0.5), 2.0);
        assert!((mm1_mean_sojourn(0.9) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn mm1_p99_at_half_load() {
        let p99 = mm1_sojourn_quantile(0.5, 0.99);
        assert!((p99 - 2.0 * 100f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn paper_quoted_partitioned_load() {
        // §3.1: "a load of 53.7% for the partitioned-FCFS model".
        let rho = mm1_max_load_at_p99_slo(10.0);
        assert!((rho - 0.5396).abs() < 0.001, "rho = {rho}");
    }

    #[test]
    fn paper_quoted_centralized_load() {
        // §3.1: "96.3% for centralized-FCFS" (M/M/16, SLO 10·S̄ at p99).
        let rho = mmn_max_load_at_p99_slo(16, 10.0);
        assert!((rho - 0.963).abs() < 0.005, "rho = {rho}");
    }

    #[test]
    fn erlang_c_sanity() {
        // Single server: delay probability equals utilization.
        assert!((erlang_c(1, 0.5) - 0.5).abs() < 1e-9);
        // Many servers at low load: almost never wait.
        assert!(erlang_c(16, 0.1) < 1e-6);
        // High load: waits become likely.
        assert!(erlang_c(16, 0.95) > 0.5);
    }

    #[test]
    fn mmn_quantile_limits() {
        // With n=1 the numeric inversion must match the closed form.
        let num = mmn_sojourn_quantile(1, 0.5, 0.99);
        let exact = mm1_sojourn_quantile(0.5, 0.99);
        assert!((num - exact).abs() < 1e-6, "num {num} vs exact {exact}");
        // At vanishing load the sojourn is just the service: p99 → ln(100).
        let low = mmn_sojourn_quantile(16, 1e-9, 0.99);
        assert!((low - 100f64.ln()).abs() < 1e-3, "low = {low}");
    }

    #[test]
    fn mmn_beats_mm1_pooling_gain() {
        // Pooling 16 servers massively raises the achievable load.
        let single = mm1_max_load_at_p99_slo(10.0);
        let pooled = mmn_max_load_at_p99_slo(16, 10.0);
        assert!(pooled > single + 0.3);
    }
}
