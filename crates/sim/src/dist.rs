//! Service-time distributions.
//!
//! The paper studies four distributions (§2.3), all normalized to the same
//! mean `S̄`:
//!
//! * **deterministic** — `P[X = S̄] = 1`
//! * **exponential** — mean `S̄`
//! * **bimodal-1** — `P[X = S̄/2] = 0.9`, `P[X = 5.5·S̄] = 0.1`
//! * **bimodal-2** — `P[X = S̄/2] = 0.999`, `P[X = 500.5·S̄] = 0.001`
//!
//! In addition we support **empirical** distributions (used to feed measured
//! Silo/TPC-C service times into the system simulator for Figure 10b and
//! Table 1) and **log-normal** (used by ablation experiments).

use crate::rng::Xoshiro256;
use crate::time::SimDuration;

/// A service-time distribution over positive durations, in microseconds.
#[derive(Clone, Debug)]
pub enum ServiceDist {
    /// Every task takes exactly `us` microseconds.
    Deterministic { us: f64 },
    /// Exponentially distributed with the given mean (microseconds).
    Exponential { mean_us: f64 },
    /// Two-point distribution: `fast_us` with probability `p_fast`,
    /// otherwise `slow_us`.
    TwoPoint {
        fast_us: f64,
        slow_us: f64,
        p_fast: f64,
    },
    /// Log-normal with the given mean and squared coefficient of variation.
    LogNormal { mean_us: f64, cv2: f64 },
    /// Empirical distribution: samples uniformly from recorded values.
    ///
    /// The vector must be non-empty; values are microseconds.
    Empirical { samples: std::sync::Arc<Vec<f64>> },
}

impl ServiceDist {
    /// Deterministic service time of `mean_us` microseconds.
    pub fn deterministic_us(mean_us: f64) -> Self {
        ServiceDist::Deterministic { us: mean_us }
    }

    /// Exponential service time with mean `mean_us` microseconds.
    pub fn exponential_us(mean_us: f64) -> Self {
        ServiceDist::Exponential { mean_us }
    }

    /// The paper's **bimodal-1**: `P[X = S̄/2] = 0.9`, `P[X = 5.5·S̄] = 0.1`.
    pub fn bimodal1_us(mean_us: f64) -> Self {
        ServiceDist::TwoPoint {
            fast_us: 0.5 * mean_us,
            slow_us: 5.5 * mean_us,
            p_fast: 0.9,
        }
    }

    /// The paper's **bimodal-2**: `P[X = S̄/2] = 0.999`,
    /// `P[X = 500.5·S̄] = 0.001`.
    pub fn bimodal2_us(mean_us: f64) -> Self {
        ServiceDist::TwoPoint {
            fast_us: 0.5 * mean_us,
            slow_us: 500.5 * mean_us,
            p_fast: 0.999,
        }
    }

    /// Log-normal with mean `mean_us` and squared coefficient of variation
    /// `cv2` (variance / mean²).
    pub fn lognormal_us(mean_us: f64, cv2: f64) -> Self {
        ServiceDist::LogNormal { mean_us, cv2 }
    }

    /// Builds an empirical distribution from measured samples (microseconds).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn empirical_us(samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "empirical distribution needs samples");
        ServiceDist::Empirical {
            samples: std::sync::Arc::new(samples),
        }
    }

    /// The same distribution with every service time multiplied by
    /// `factor` — shape (and `cv²`) preserved, mean scaled. A `factor` of
    /// exactly 1.0 returns a structural clone, so scaling by unity is an
    /// identity even at the bit level. Models a uniformly slower (or
    /// faster) server: a degraded fleet shard serves the same request mix
    /// at `factor ×` its healthy cost.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "service scale factor must be positive and finite"
        );
        if factor == 1.0 {
            return self.clone();
        }
        match self {
            ServiceDist::Deterministic { us } => ServiceDist::Deterministic { us: us * factor },
            ServiceDist::Exponential { mean_us } => ServiceDist::Exponential {
                mean_us: mean_us * factor,
            },
            ServiceDist::TwoPoint {
                fast_us,
                slow_us,
                p_fast,
            } => ServiceDist::TwoPoint {
                fast_us: fast_us * factor,
                slow_us: slow_us * factor,
                p_fast: *p_fast,
            },
            ServiceDist::LogNormal { mean_us, cv2 } => ServiceDist::LogNormal {
                mean_us: mean_us * factor,
                cv2: *cv2,
            },
            ServiceDist::Empirical { samples } => ServiceDist::Empirical {
                samples: std::sync::Arc::new(samples.iter().map(|s| s * factor).collect()),
            },
        }
    }

    /// The theoretical mean of the distribution, in microseconds.
    pub fn mean_us(&self) -> f64 {
        match self {
            ServiceDist::Deterministic { us } => *us,
            ServiceDist::Exponential { mean_us } => *mean_us,
            ServiceDist::TwoPoint {
                fast_us,
                slow_us,
                p_fast,
            } => p_fast * fast_us + (1.0 - p_fast) * slow_us,
            ServiceDist::LogNormal { mean_us, .. } => *mean_us,
            ServiceDist::Empirical { samples } => {
                samples.iter().sum::<f64>() / samples.len() as f64
            }
        }
    }

    /// Draws one service time in microseconds.
    pub fn sample_us(&self, rng: &mut Xoshiro256) -> f64 {
        match self {
            ServiceDist::Deterministic { us } => *us,
            ServiceDist::Exponential { mean_us } => rng.next_exp(*mean_us),
            ServiceDist::TwoPoint {
                fast_us,
                slow_us,
                p_fast,
            } => {
                if rng.next_f64() < *p_fast {
                    *fast_us
                } else {
                    *slow_us
                }
            }
            ServiceDist::LogNormal { mean_us, cv2 } => {
                // mean = exp(mu + sigma^2/2); cv2 = exp(sigma^2) - 1.
                let sigma2 = (1.0 + cv2).ln();
                let mu = mean_us.ln() - sigma2 / 2.0;
                let z = gaussian(rng);
                (mu + sigma2.sqrt() * z).exp()
            }
            ServiceDist::Empirical { samples } => {
                samples[rng.next_bounded(samples.len() as u64) as usize]
            }
        }
    }

    /// Draws one service time as a [`SimDuration`].
    pub fn sample(&self, rng: &mut Xoshiro256) -> SimDuration {
        SimDuration::from_micros_f64(self.sample_us(rng))
    }

    /// The exact quantile where a closed form exists, `None` otherwise.
    ///
    /// `q` is in `[0, 1]`; the result is in microseconds. Useful for the
    /// zero-load asymptotes of the paper's Figure 2 (e.g. the p99 of the
    /// exponential is `ln(100) · S̄ ≈ 4.6·S̄`).
    pub fn quantile_us(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        match self {
            ServiceDist::Deterministic { us } => Some(*us),
            ServiceDist::Exponential { mean_us } => Some(-mean_us * (1.0 - q).ln()),
            ServiceDist::TwoPoint {
                fast_us,
                slow_us,
                p_fast,
            } => Some(if q < *p_fast { *fast_us } else { *slow_us }),
            ServiceDist::LogNormal { .. } => None,
            ServiceDist::Empirical { samples } => {
                let mut sorted: Vec<f64> = samples.as_ref().clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
                let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
                Some(sorted[idx])
            }
        }
    }

    /// Squared coefficient of variation (variance / mean²), where known.
    pub fn cv2(&self) -> Option<f64> {
        match self {
            ServiceDist::Deterministic { .. } => Some(0.0),
            ServiceDist::Exponential { .. } => Some(1.0),
            ServiceDist::TwoPoint {
                fast_us,
                slow_us,
                p_fast,
            } => {
                let m = self.mean_us();
                let m2 = p_fast * fast_us * fast_us + (1.0 - p_fast) * slow_us * slow_us;
                Some((m2 - m * m) / (m * m))
            }
            ServiceDist::LogNormal { cv2, .. } => Some(*cv2),
            ServiceDist::Empirical { samples } => {
                let m = self.mean_us();
                let m2 = samples.iter().map(|x| x * x).sum::<f64>() / samples.len() as f64;
                Some((m2 - m * m) / (m * m))
            }
        }
    }

    /// A short human-readable name used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            ServiceDist::Deterministic { .. } => "deterministic",
            ServiceDist::Exponential { .. } => "exponential",
            ServiceDist::TwoPoint { p_fast, .. } => {
                if *p_fast > 0.99 {
                    "bimodal-2"
                } else {
                    "bimodal-1"
                }
            }
            ServiceDist::LogNormal { .. } => "lognormal",
            ServiceDist::Empirical { .. } => "empirical",
        }
    }
}

/// Standard normal deviate via Marsaglia's polar method.
fn gaussian(rng: &mut Xoshiro256) -> f64 {
    loop {
        let u = 2.0 * rng.next_f64() - 1.0;
        let v = 2.0 * rng.next_f64() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_mean(dist: &ServiceDist, n: usize, seed: u64) -> f64 {
        let mut rng = Xoshiro256::new(seed);
        (0..n).map(|_| dist.sample_us(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn all_paper_distributions_have_unit_mean() {
        for d in [
            ServiceDist::deterministic_us(1.0),
            ServiceDist::exponential_us(1.0),
            ServiceDist::bimodal1_us(1.0),
            ServiceDist::bimodal2_us(1.0),
        ] {
            assert!(
                (d.mean_us() - 1.0).abs() < 1e-12,
                "{} mean = {}",
                d.label(),
                d.mean_us()
            );
        }
    }

    #[test]
    fn sample_means_match_theory() {
        for d in [
            ServiceDist::deterministic_us(10.0),
            ServiceDist::exponential_us(10.0),
            ServiceDist::bimodal1_us(10.0),
            ServiceDist::lognormal_us(10.0, 4.0),
        ] {
            let m = empirical_mean(&d, 300_000, 77);
            assert!(
                (m - 10.0).abs() / 10.0 < 0.05,
                "{}: sample mean {m}",
                d.label()
            );
        }
    }

    #[test]
    fn bimodal1_point_masses() {
        let d = ServiceDist::bimodal1_us(10.0);
        let mut rng = Xoshiro256::new(1);
        let mut fast = 0usize;
        let n = 100_000;
        for _ in 0..n {
            let x = d.sample_us(&mut rng);
            assert!(x == 5.0 || x == 55.0);
            if x == 5.0 {
                fast += 1;
            }
        }
        let p = fast as f64 / n as f64;
        assert!((p - 0.9).abs() < 0.01, "p_fast = {p}");
    }

    #[test]
    fn quantiles_match_paper_figure2_asymptotes() {
        // Figure 2's zero-load p99 values for S̄ = 1.
        assert!(
            (ServiceDist::deterministic_us(1.0)
                .quantile_us(0.99)
                .unwrap()
                - 1.0)
                .abs()
                < 1e-12
        );
        let exp99 = ServiceDist::exponential_us(1.0).quantile_us(0.99).unwrap();
        assert!((exp99 - 100f64.ln()).abs() < 1e-9, "{exp99}");
        assert_eq!(ServiceDist::bimodal1_us(1.0).quantile_us(0.99), Some(5.5));
        assert_eq!(ServiceDist::bimodal2_us(1.0).quantile_us(0.99), Some(0.5));
    }

    #[test]
    fn cv2_values() {
        assert_eq!(ServiceDist::deterministic_us(5.0).cv2(), Some(0.0));
        assert_eq!(ServiceDist::exponential_us(5.0).cv2(), Some(1.0));
        // Bimodal-2 has enormous dispersion — that is the point of the paper's
        // "PS wins under high dispersion" observation.
        assert!(ServiceDist::bimodal2_us(1.0).cv2().unwrap() > 100.0);
    }

    #[test]
    fn empirical_distribution_samples_from_input() {
        let d = ServiceDist::empirical_us(vec![1.0, 2.0, 3.0]);
        let mut rng = Xoshiro256::new(4);
        for _ in 0..1000 {
            let x = d.sample_us(&mut rng);
            assert!(x == 1.0 || x == 2.0 || x == 3.0);
        }
        assert!((d.mean_us() - 2.0).abs() < 1e-12);
        assert_eq!(d.quantile_us(0.0), Some(1.0));
        assert_eq!(d.quantile_us(1.0), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn empty_empirical_panics() {
        ServiceDist::empirical_us(vec![]);
    }

    #[test]
    fn lognormal_dispersion_tracks_cv2() {
        let d = ServiceDist::lognormal_us(10.0, 9.0);
        let mut rng = Xoshiro256::new(6);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample_us(&mut rng)).collect();
        let m = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64;
        let cv2 = var / (m * m);
        assert!((cv2 - 9.0).abs() < 1.0, "cv2 = {cv2}");
    }
}
