//! Checkpoint exactness: `checkpoint()` then `run` must be bit-identical
//! to running straight through, on both queue backends.
//!
//! The engine's contract (`Engine::checkpoint`) is that a clone taken
//! between events captures the *entire* future: resuming the clone and
//! resuming the original produce the same event trace, event for event.
//! The hard cases live in the timing wheel — a checkpoint can land
//! mid-page, with a partially drained level-0 slot, a sorted-cursor
//! remainder, and occupancy bitmaps mid-word — so every property here
//! runs on `WheelQueue` and on the `HeapQueue` oracle, and the mid-page
//! test pins the wheel's manual `Clone` against the oracle at every
//! possible checkpoint offset.

use proptest::prelude::*;
use zygos_sim::engine::{Engine, EventQueue, HeapQueue, Model, Scheduler, WheelQueue};
use zygos_sim::time::{SimDuration, SimTime};

/// A model whose handler chains follow-ups at pseudo-random offsets (the
/// same fan-out recipe as `engine_diff.rs`), cloneable so an engine
/// checkpoint carries it.
#[derive(Clone)]
struct Chaos {
    trace: Vec<(u64, u32)>,
    budget: u32,
}

#[derive(Clone)]
enum Ev {
    Step(u32),
}

impl Model for Chaos {
    type Event = Ev;
    fn handle(&mut self, now: SimTime, Ev::Step(x): Ev, sched: &mut Scheduler<Ev>) {
        self.trace.push((now.as_nanos(), x));
        if self.budget == 0 {
            return;
        }
        self.budget -= 1;
        let h = (x as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for k in 0..(1 + (h % 3)) {
            let delay = match (h >> (8 * k)) % 5 {
                0 => 0,
                1 => (h >> 11) % 4_096,
                2 => (h >> 13) % 70_000,
                3 => (h >> 17) % (1 << 28),
                _ => (h >> 19) % (1 << 35),
            };
            sched.after(
                SimDuration::from_nanos(delay),
                Ev::Step(x.wrapping_mul(31).wrapping_add(k as u32 + 1)),
            );
        }
    }
}

fn seeded<Q: EventQueue<Ev>>(budget: u32) -> Engine<Chaos, Q> {
    let mut e = Engine::<Chaos, Q>::with_queue(Chaos {
        trace: Vec::new(),
        budget,
    });
    for i in 0..16 {
        e.schedule(SimTime::from_nanos(i * 1_000), Ev::Step(i as u32 + 1));
    }
    e
}

/// Runs `m` events, checkpoints, then finishes original and clone: both
/// must equal the straight-through trace exactly.
fn check_resume<Q: EventQueue<Ev> + Clone>(m: u64) {
    let mut straight = seeded::<Q>(800);
    straight.run();
    let want = straight.into_model().trace;

    let mut orig = seeded::<Q>(800);
    for _ in 0..m {
        if !orig.step() {
            break;
        }
    }
    let ck = orig.checkpoint();
    assert_eq!(ck.now(), orig.now());
    assert_eq!(ck.processed(), orig.processed());

    orig.run();
    assert_eq!(
        orig.into_model().trace,
        want,
        "taking a checkpoint perturbed the original"
    );

    let mut resumed = ck;
    resumed.run();
    assert_eq!(
        resumed.into_model().trace,
        want,
        "checkpoint -> resume diverged from straight-through"
    );
}

proptest! {
    /// checkpoint after M events + run(N) == run(M+N), for arbitrary M,
    /// on both queue backends.
    #[test]
    fn checkpoint_resume_equals_straight_through(m in 0u64..2_500) {
        check_resume::<WheelQueue<Ev>>(m);
        check_resume::<HeapQueue<Ev>>(m);
    }
}

/// Pushes concentrated at level-0 page boundaries: multiples of the
/// 65.5µs page stride, off by -1/0/+1, with heavy ties. Stepping `k`
/// events before the checkpoint lands the wheel mid-page with a partially
/// drained, cursor-sorted slot — the states a derived field-by-field
/// clone is most likely to get wrong.
#[test]
fn checkpoint_mid_page_at_wheel_boundary_matches_heap() {
    /// Sink model: records pops, schedules nothing, so the drain order is
    /// purely the queue's.
    #[derive(Clone)]
    struct Sink {
        trace: Vec<(u64, u32)>,
    }
    #[derive(Clone)]
    struct Tag(u32);
    impl Model for Sink {
        type Event = Tag;
        fn handle(&mut self, now: SimTime, Tag(x): Tag, _sched: &mut Scheduler<Tag>) {
            self.trace.push((now.as_nanos(), x));
        }
    }
    fn seeded<Q: EventQueue<Tag>>() -> Engine<Sink, Q> {
        let mut e = Engine::<Sink, Q>::with_queue(Sink { trace: Vec::new() });
        let mut tag = 0u32;
        for page in 0..4u64 {
            for off in [0u64, 1, 2] {
                // Three ties per instant: exercises FIFO-within-slot.
                for _ in 0..3 {
                    let at = (page << 16) + off - u64::from(page > 0);
                    e.schedule(SimTime::from_nanos(at), Tag(tag));
                    tag += 1;
                }
            }
        }
        e
    }
    let mut oracle = seeded::<HeapQueue<Tag>>();
    oracle.run();
    let want = oracle.into_model().trace;
    let total = want.len() as u64;
    for k in 0..=total {
        let mut e = seeded::<WheelQueue<Tag>>();
        for _ in 0..k {
            assert!(e.step());
        }
        let mut resumed = e.checkpoint();
        resumed.run();
        assert_eq!(
            resumed.into_model().trace,
            want,
            "mid-page checkpoint at offset {k} diverged from the heap oracle"
        );
    }
}
